/**
 * @file
 * Fig. 13 reproduction: raw core utilization (%) averaged across
 * inputs for each benchmark — Xeon Phi vs GTX-750Ti at their tuned
 * configurations vs HeteroMap's selection. Expected shape: the Phi's
 * cores idle on low-locality traversals (SSSP) while the GPU hides
 * latency by thread switching; HeteroMap improves the geomean by
 * picking the better-utilized accelerator per combination (~20%).
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 13: core utilization (%) averaged across "
                 "inputs per benchmark\n\n";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    HeteroMap framework =
        trainedHeteroMap(pair, oracle, PredictorKind::Deep128);

    TextTable table({"Benchmark", "GTX-750Ti", "XeonPhi", "HeteroMap"});
    std::vector<double> all_gpu, all_phi, all_hetero;

    for (const auto &wname : workloadNames()) {
        std::vector<double> gpu_util, phi_util, hetero_util;
        for (const auto *bench : casesForWorkload(wname)) {
            CaseBaselines base =
                computeBaselines(*bench, pair, oracle);
            gpu_util.push_back(
                oracle.run(*bench, pair, base.gpuBest).utilization);
            phi_util.push_back(
                oracle.run(*bench, pair, base.multicoreBest)
                    .utilization);
            hetero_util.push_back(
                framework.deploy(*bench).report.utilization);
        }
        all_gpu.insert(all_gpu.end(), gpu_util.begin(),
                       gpu_util.end());
        all_phi.insert(all_phi.end(), phi_util.begin(),
                       phi_util.end());
        all_hetero.insert(all_hetero.end(), hetero_util.begin(),
                          hetero_util.end());
        table.addRow({wname, formatPercent(mean(gpu_util), 1),
                      formatPercent(mean(phi_util), 1),
                      formatPercent(mean(hetero_util), 1)});
    }
    table.print(std::cout);

    std::cout << "\nOverall means: GPU "
              << formatPercent(mean(all_gpu), 1) << ", Phi "
              << formatPercent(mean(all_phi), 1) << ", HeteroMap "
              << formatPercent(mean(all_hetero), 1)
              << " (paper: HeteroMap ~20% above both machines)\n";
    return 0;
}
