/**
 * @file
 * Table I reproduction: the evaluation input datasets — the paper's
 * nominal characteristics next to the measured statistics of the
 * scaled-down proxy graphs this build executes (see DESIGN.md Sec. 2
 * for the substitution).
 */

#include <iostream>

#include "graph/datasets.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    std::cout << "Table I: Input Datasets (nominal = paper values, "
                 "proxy = executed graph)\n\n";

    TextTable table({"Data", "Family", "#V", "#E", "Max.Deg",
                     "Diameter", "proxy #V", "proxy #E",
                     "proxy MaxDeg", "proxy Dia"});
    for (const auto &dataset : evaluationDatasets()) {
        const auto &nom = dataset.nominal();
        const auto &proxy = dataset.proxyStats();
        table.addRow({
            dataset.name() + " (" + dataset.shortName() + ")",
            dataset.family(),
            formatCount(nom.numVertices),
            formatCount(nom.numEdges),
            formatCount(nom.maxDegree),
            formatCount(nom.diameter),
            formatCount(proxy.numVertices),
            formatCount(proxy.numEdges),
            formatCount(proxy.maxDegree),
            formatCount(proxy.diameter),
        });
    }
    table.print(std::cout);

    auto maxima = literatureMaxima();
    std::cout << "\nNormalization maxima (Sec. III-B): V="
              << formatCount(static_cast<uint64_t>(maxima.maxVertices))
              << " E="
              << formatCount(static_cast<uint64_t>(maxima.maxEdges))
              << " deg="
              << formatCount(static_cast<uint64_t>(maxima.maxDegree))
              << " dia="
              << formatCount(static_cast<uint64_t>(maxima.maxDiameter))
              << "\n";
    return 0;
}
