/**
 * @file
 * Fig. 15 reproduction: the 40-core CPU against both GPUs — geomean
 * completion times per benchmark (averaged over inputs), normalized
 * to the GPU. Expected shape: the GPUs win the highly parallel
 * benchmarks (SSSP-BF, BFS); the CPU wins most others against the
 * GTX-750Ti; the GTX-970 claws back DFS and Conn. Comp.; HeteroMap
 * gains ~22% over the GTX-750 and ~5% over the GTX-970.
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

void
compare(const Oracle &oracle, AcceleratorPair pair,
        const char *paper_note)
{
    pair = pinnedPair(pair);
    HeteroMap framework =
        trainedHeteroMap(pair, oracle, PredictorKind::Deep128);

    std::cout << "\n== " << pair.name() << " (mem pinned "
              << (pair.gpu.memBytes >> 30) << " GB) ==\n";
    TextTable table({"Benchmark", "GPU-only", "CPU-only", "HeteroMap",
                     "Ideal"});
    std::vector<double> cpu_norm, hetero_norm, ideal_norm;

    for (const auto &wname : workloadNames()) {
        std::vector<double> cpu_w, hetero_w, ideal_w;
        for (const auto *bench : casesForWorkload(wname)) {
            CaseBaselines base =
                computeBaselines(*bench, pair, oracle);
            Deployment deployment = framework.deploy(*bench);
            cpu_w.push_back(base.multicoreSeconds / base.gpuSeconds);
            hetero_w.push_back(deployedSeconds(deployment, *bench) /
                               base.gpuSeconds);
            ideal_w.push_back(base.idealSeconds / base.gpuSeconds);
        }
        cpu_norm.insert(cpu_norm.end(), cpu_w.begin(), cpu_w.end());
        hetero_norm.insert(hetero_norm.end(), hetero_w.begin(),
                           hetero_w.end());
        ideal_norm.insert(ideal_norm.end(), ideal_w.begin(),
                          ideal_w.end());
        table.addRow({wname, "1.00", formatNumber(geomean(cpu_w), 2),
                      formatNumber(geomean(hetero_w), 2),
                      formatNumber(geomean(ideal_w), 2)});
    }
    table.print(std::cout);
    std::cout << "geomean: CPU-only "
              << formatNumber(geomean(cpu_norm), 3) << ", HeteroMap "
              << formatNumber(geomean(hetero_norm), 3)
              << " (gain over GPU-only "
              << formatNumber(
                     (1.0 / geomean(hetero_norm) - 1.0) * 100.0, 1)
              << "%; " << paper_note << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 15: 40-core CPU vs GPUs (normalized to the "
                 "GPU; higher is worse)\n";

    Oracle oracle;
    compare(oracle, {gtx750TiSpec(), xeon40CoreSpec()},
            "paper: 22% over the GTX-750, CPU 3% ahead of it overall");
    compare(oracle, {gtx970Spec(), xeon40CoreSpec()},
            "paper: 5% over the GTX-970, GPU 10% ahead of the CPU");
    return 0;
}
