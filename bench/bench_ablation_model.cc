/**
 * @file
 * Ablation studies on the design choices DESIGN.md calls out:
 *
 *  1. Performance-model mechanisms: disable one modelled effect at a
 *     time (warp divergence, the Phi's scalar-bandwidth derating,
 *     thread-placement costs, the memory-size streaming penalty,
 *     kernel-launch costs) and measure how the heterogeneity benefit
 *     (tuned ideal vs single-accelerator baselines) and the
 *     per-combination winner split respond. Shows which mechanisms
 *     carry the paper's headline result.
 *
 *  2. Decision-tree threshold: the paper fixes 0.5 as the unbiased
 *     mid-point and leaves tuning "as future work" — swept here.
 */

#include <iostream>

#include "core/experiment.hh"
#include "model/decision_tree.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

namespace {

struct AblationResult {
    double idealOverGpu;   //!< geomean speedup of ideal vs GPU-only
    double idealOverMc;    //!< geomean speedup of ideal vs Phi-only
    unsigned gpuWins;      //!< combinations the GPU side wins
};

AblationResult
evaluate(const PerfModelParams &params)
{
    Oracle oracle(params);
    AcceleratorPair pair = pinnedPair(primaryPair());

    std::vector<double> gpu_ratio, mc_ratio;
    unsigned gpu_wins = 0;
    for (const auto &bench : evaluationCases()) {
        CaseBaselines base = computeBaselines(
            bench, pair, oracle, GridGranularity::Coarse);
        gpu_ratio.push_back(base.gpuSeconds / base.idealSeconds);
        mc_ratio.push_back(base.multicoreSeconds / base.idealSeconds);
        gpu_wins += base.gpuSeconds <= base.multicoreSeconds;
    }
    return {geomean(gpu_ratio), geomean(mc_ratio), gpu_wins};
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Ablation 1: performance-model mechanisms "
                 "(primary pair, 81 combinations)\n\n";

    struct Variant {
        const char *name;
        PerfModelParams params;
    };
    std::vector<Variant> variants;
    variants.push_back({"full model", {}});
    {
        PerfModelParams p;
        p.gpuDivergenceCoef = 0.0;
        variants.push_back({"no warp divergence", p});
    }
    {
        PerfModelParams p;
        p.sync.placementPenalty = 0.0;
        p.sync.affinityPenalty = 0.0;
        variants.push_back({"no placement/affinity cost", p});
    }
    {
        PerfModelParams p;
        p.memorySize.chunkPassPenalty = 0.0;
        p.memorySize.convergencePenalty = 0.0;
        variants.push_back({"no memory-size penalty", p});
    }
    {
        PerfModelParams p;
        p.sync.wakeupNs = 0.0;
        variants.push_back({"free thread wake-ups", p});
    }
    {
        PerfModelParams p;
        p.cache.coherentRwReuse = p.cache.incoherentRwReuse;
        variants.push_back({"no coherence reuse benefit", p});
    }

    TextTable table({"variant", "ideal vs GPU-only", "ideal vs "
                     "Phi-only", "GPU wins (of 81)"});
    for (const auto &variant : variants) {
        AblationResult r = evaluate(variant.params);
        table.addRow({variant.name,
                      formatPercent(r.idealOverGpu - 1.0, 1),
                      formatPercent(r.idealOverMc - 1.0, 1),
                      std::to_string(r.gpuWins)});
    }
    table.print(std::cout);

    // --- Ablation 2: decision-tree threshold sweep ---------------
    std::cout << "\nAblation 2: decision-tree threshold (paper "
                 "default 0.5; tuning left as future work)\n\n";
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());

    std::vector<CaseBaselines> baselines;
    for (const auto &bench : evaluationCases())
        baselines.push_back(computeBaselines(
            bench, pair, oracle, GridGranularity::Coarse));

    TextTable sweep({"threshold", "speedup vs GPU-only",
                     "M1 agreement with ideal"});
    for (double threshold : {0.3, 0.4, 0.5, 0.6, 0.7}) {
        DecisionTreeHeuristic tree(threshold);
        std::vector<double> vs_gpu;
        unsigned m1_ok = 0;
        const auto &cases = evaluationCases();
        for (std::size_t i = 0; i < cases.size(); ++i) {
            MConfig config =
                deployNormalized(tree.predict(cases[i].features), pair);
            double seconds = oracle.seconds(cases[i], pair, config);
            vs_gpu.push_back(baselines[i].gpuSeconds / seconds);
            m1_ok += config.accelerator ==
                     baselines[i].idealBest.accelerator;
        }
        sweep.addRow({formatNumber(threshold, 1),
                      formatPercent(geomean(vs_gpu) - 1.0, 1),
                      std::to_string(m1_ok) + "/81"});
    }
    sweep.print(std::cout);
    return 0;
}
