/**
 * @file
 * Fig. 1 reproduction: completion time of SSSP as thread counts sweep
 * from minimum to maximum on both accelerators, for a sparse road
 * network (USA-Cal) and a dense graph (CAGE-14). Expected shape: the
 * multicore wins the road network by a wide margin (long dependency
 * chains starve the GPU), the GPU wins the dense graph, and both
 * curves bottom out at intermediate threading (the U-shape from
 * memory-system stress).
 */

#include <iostream>

#include "core/oracle.hh"
#include "core/experiment.hh"
#include "graph/datasets.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

void
sweep(const Oracle &oracle, const AcceleratorPair &pair,
      const BenchmarkCase &bench)
{
    std::cout << "\n== " << bench.label()
              << " (normalized thread fraction -> modelled ms) ==\n";
    TextTable table({"threads%", pair.gpu.name + " (ms)",
                     pair.multicore.name + " (ms)"});

    const double fractions[] = {0.05, 0.1, 0.2, 0.35, 0.5,
                                0.65, 0.8, 0.9, 1.0};
    double best_gpu = 1e300;
    double best_mc = 1e300;
    for (double f : fractions) {
        MConfig gpu;
        gpu.accelerator = AcceleratorKind::Gpu;
        gpu.gpuGlobalThreads = std::max<unsigned>(
            1, static_cast<unsigned>(f * pair.gpu.maxGlobalThreads));
        gpu.gpuLocalThreads = 128;

        MConfig mc;
        mc.accelerator = AcceleratorKind::Multicore;
        mc.cores = std::max<unsigned>(
            1, static_cast<unsigned>(f * pair.multicore.cores));
        mc.threadsPerCore = pair.multicore.threadsPerCore;
        mc.simdWidth = pair.multicore.simdWidth;
        mc.schedule = SchedulePolicy::Dynamic;
        mc.chunkSize = 16;

        double tg = oracle.seconds(bench, pair, gpu) * 1e3;
        double tm = oracle.seconds(bench, pair, mc) * 1e3;
        best_gpu = std::min(best_gpu, tg);
        best_mc = std::min(best_mc, tm);
        table.addRow({formatNumber(f * 100.0, 0), formatNumber(tg, 4),
                      formatNumber(tm, 4)});
    }
    table.print(std::cout);
    std::cout << "best: GPU " << formatNumber(best_gpu, 4) << " ms, "
              << "multicore " << formatNumber(best_mc, 4) << " ms -> "
              << (best_gpu < best_mc ? "GPU" : "multicore") << " wins by "
              << formatNumber(std::max(best_gpu, best_mc) /
                              std::min(best_gpu, best_mc), 2)
              << "x\n";
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 1: input variations across accelerators "
                 "(Delta-stepping SSSP)\n";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    auto delta = makeWorkload("SSSP-Delta");
    auto bf = makeWorkload("SSSP-BF");

    // Sparse road network: multicore territory.
    sweep(oracle, pair, makeCase(*delta, datasetByShortName("CA")));
    // Dense graph: GPU territory (the paper sweeps the same kernel;
    // we show both SSSP variants on CAGE for completeness).
    sweep(oracle, pair, makeCase(*bf, datasetByShortName("CAGE")));
    sweep(oracle, pair, makeCase(*delta, datasetByShortName("CAGE")));
    return 0;
}
