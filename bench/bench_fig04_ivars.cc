/**
 * @file
 * Fig. 4 reproduction: the discretized I variables for the Table I
 * real graphs. Anchors quoted in the paper: USA-Cal = [0.1, 0.1, 0.0,
 * 0.8], Friendster I1 = I2 = 0.8, Twitter I3 = 1, Rgg I4 = 1, and
 * I4 = 0 for every other (low-diameter) graph.
 */

#include <iostream>

#include "features/ivars.hh"
#include "graph/datasets.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    std::cout << "Fig. 4: Input (I) model variables (0.1 grid, from "
                 "nominal Table I characteristics)\n\n";

    TextTable table({"Input", "I1 (size)", "I2 (density)",
                     "I3 (max deg)", "I4 (diameter)"});
    for (const auto &dataset : evaluationDatasets()) {
        IVariables i = extractIVariables(dataset);
        table.addRow({dataset.shortName(), formatNumber(i.i1, 1),
                      formatNumber(i.i2, 1), formatNumber(i.i3, 1),
                      formatNumber(i.i4, 1)});
    }
    table.print(std::cout);

    std::cout << "\nDerived Sec. IV terms:\n";
    TextTable derived({"Input", "Avg.Deg = |I3 - I2/I1|",
                       "Avg.Deg.Dia = |(I4 + Avg.Deg)/2|"});
    for (const auto &dataset : evaluationDatasets()) {
        IVariables i = extractIVariables(dataset);
        derived.addRow({dataset.shortName(),
                        formatNumber(i.avgDegreeTerm(), 2),
                        formatNumber(i.avgDegreeDiameterTerm(), 2)});
    }
    derived.print(std::cout);
    return 0;
}
