/**
 * @file
 * Fig. 5/6 reproduction: the benchmark (B) model variables for every
 * evaluated workload — both the check-mark view (Fig. 5) and the full
 * 0.1-grid discretization (Fig. 6 shows SSSP-BF's worked example:
 * B1 = 1, B7 = 0.8, B9 = B10 = 0.5, B11 = 0.2, B12 = B13 = 0.2).
 */

#include <iostream>

#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    std::cout << "Fig. 5: Benchmark (B) model variables\n\n";

    std::vector<std::string> headers{"Benchmark"};
    for (int k = 1; k <= 13; ++k)
        headers.push_back("B" + std::to_string(k));

    TextTable checks(headers);
    TextTable values(headers);
    for (const auto &workload : allWorkloads()) {
        std::vector<std::string> check_row{workload->name()};
        std::vector<std::string> value_row{workload->name()};
        for (double v : workload->bVariables().asArray()) {
            check_row.push_back(v > 0.0 ? "x" : "");
            value_row.push_back(formatNumber(v, 1));
        }
        checks.addRow(check_row);
        values.addRow(value_row);
    }
    checks.print(std::cout);
    std::cout << "\nFig. 6-style discretization (0.1 grid):\n\n";
    values.print(std::cout);

    std::cout
        << "\nLegend: B1-B5 phase mix (vertex division, pareto, "
           "pareto-dynamic, push-pop, reduction; sums to 1),\n"
           "B6 %FP data, B7 loop-index addressing, B8 indirect "
           "addressing, B9 read-only shared,\n"
           "B10 read-write shared, B11 local data, B12 atomic "
           "contention, B13 barriers per iteration.\n";
    return 0;
}
