/**
 * @file
 * Network serving soak: drives a loopback NetServer with open-loop,
 * multi-tenant traffic — thousands of simulated clients whose
 * popularity follows a Zipf distribution (a few hot tenants, a long
 * cold tail), multiplexed over a handful of real connections — and
 * reports wire throughput, the p50/p95/p99/p99.9 on-wire latency per
 * lane, per-shard stats-cache affinity, and the quota-fairness
 * split.
 *
 * The run doubles as an acceptance check (nonzero exit on failure):
 *
 *  - zero broken connections (no transport errors client-side);
 *  - quota-limited tenants shed via ShedReason::QuotaExceeded while
 *    every within-quota tenant sees zero sheds;
 *  - priority-lane traffic is never quota-shed by the normal-lane
 *    throttle.
 *
 * Run: ./bench_net_serving [--requests N] [--clients C] [--conns K]
 *                          [--shards S] [--workers W] [--rate RPS]
 *                          [--limited L] [--seed SEED]
 *                          [--telemetry-out out.json]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "serve/model_registry.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

struct SoakOptions {
    std::size_t requests = 2000;
    std::size_t clients = 1000;  //!< simulated tenant ids
    std::size_t conns = 4;       //!< real connections (sender threads)
    std::size_t shards = 2;
    std::size_t workers = 2;
    double rateRps = 0.0;        //!< 0 = as fast as the conns go
    std::size_t limited = 3;     //!< tenants given a tiny quota
    uint64_t seed = 42;
    double priorityFraction = 0.1;
};

SoakOptions
parseArgs(int argc, char **argv)
{
    SoakOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "bench_net_serving: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--requests")
            options.requests = std::strtoull(next(), nullptr, 10);
        else if (arg == "--clients")
            options.clients = std::strtoull(next(), nullptr, 10);
        else if (arg == "--conns")
            options.conns = std::strtoull(next(), nullptr, 10);
        else if (arg == "--shards")
            options.shards = std::strtoull(next(), nullptr, 10);
        else if (arg == "--workers")
            options.workers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--rate")
            options.rateRps = std::strtod(next(), nullptr);
        else if (arg == "--limited")
            options.limited = std::strtoull(next(), nullptr, 10);
        else if (arg == "--seed")
            options.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--priority-fraction")
            options.priorityFraction = std::strtod(next(), nullptr);
        else {
            std::cerr << "bench_net_serving: unknown argument "
                      << arg << "\n";
            std::exit(2);
        }
    }
    return options;
}

/**
 * Zipf(s = 1.1) sampler over [0, n): inverse-CDF walk on the
 * precomputed cumulative harmonic weights. A few tenants take most
 * of the traffic — the worst case for per-tenant fairness and the
 * best case for fingerprint-routed cache affinity.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s)
    {
        cdf_.reserve(n);
        double total = 0.0;
        for (std::size_t rank = 1; rank <= n; ++rank) {
            total += 1.0 / std::pow(static_cast<double>(rank), s);
            cdf_.push_back(total);
        }
        for (double &cumulative : cdf_)
            cumulative /= total;
    }

    std::size_t
    sample(double uniform01) const
    {
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(),
                                         uniform01);
        return static_cast<std::size_t>(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    telemetry::TelemetryFileWriter telemetry_writer(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    const SoakOptions soak = parseArgs(argc, argv);

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    serve::ModelRegistry registry(pair, oracle);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));

    net::ServerOptions server_options;
    server_options.endpoint =
        net::parseEndpoint("tcp:127.0.0.1:0").value();
    server_options.shards = soak.shards;
    server_options.shard.workers = soak.workers;
    // Generous default quota: within-quota tenants must never shed.
    server_options.admission.clientRatePerSec = 1e6;
    server_options.admission.clientBurst = 1e6;

    net::NetServer server(registry, server_options);
    const char *graph_names[] = {"mesh", "social", "road"};
    server.registerGraph(
        "mesh",
        std::make_shared<const Graph>(generateMesh(1024, 4, 1)));
    server.registerGraph("social",
                         std::make_shared<const Graph>(
                             generatePreferentialAttachment(1024, 4,
                                                            7)));
    server.registerGraph(
        "road",
        std::make_shared<const Graph>(generateRoadGrid(32, 32, 3)));

    // Tenants [0, limited) get a token bucket that exhausts almost
    // immediately; everyone else keeps the generous default. The
    // Zipf head makes the limited tenants the *hottest* senders, so
    // the quota actually bites.
    const std::size_t limited =
        std::min(soak.limited, soak.clients);
    for (std::size_t client = 0; client < limited; ++client)
        server.admission().setClientQuota(client, 0.001, 5.0);

    auto bound = server.start();
    if (!bound.ok()) {
        std::cerr << "bench_net_serving: start failed: "
                  << bound.error().toString() << "\n";
        return 1;
    }

    const ZipfSampler zipf(soak.clients, 1.1);
    const std::vector<std::string> workload_names = {"PR", "BFS"};

    // Per-lane wire-latency histograms plus per-tenant-class
    // accounting, all client-side.
    telemetry::Histogram normal_hist, priority_hist;
    std::atomic<uint64_t> ok{0}, shed_quota{0}, shed_other{0},
        errors{0};
    std::atomic<uint64_t> limited_ok{0}, limited_quota_shed{0};
    std::atomic<uint64_t> unlimited_shed{0}, priority_shed{0};
    std::atomic<uint64_t> transport_errors{0};

    Timer wall;
    wall.start();
    std::vector<std::thread> senders;
    senders.reserve(soak.conns);
    const std::size_t per_conn =
        (soak.requests + soak.conns - 1) / soak.conns;
    for (std::size_t conn = 0; conn < soak.conns; ++conn) {
        senders.emplace_back([&, conn] {
            Rng rng(soak.seed * 7919 + conn);
            net::NetClient client(bound.value());
            const std::size_t begin = conn * per_conn;
            const std::size_t end =
                std::min(begin + per_conn, soak.requests);

            // Open loop: this connection owes arrivals at
            // rate / conns; pacing is against the wall clock, so a
            // slow response does not slow the schedule.
            const bool paced = soak.rateRps > 0.0;
            const auto interval =
                paced ? std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(soak.conns) /
                                soak.rateRps))
                      : std::chrono::steady_clock::duration::zero();
            auto next_arrival = std::chrono::steady_clock::now();

            for (std::size_t i = begin; i < end; ++i) {
                if (paced) {
                    std::this_thread::sleep_until(next_arrival);
                    next_arrival += interval;
                }
                const std::size_t tenant =
                    zipf.sample(rng.nextDouble());
                const bool priority =
                    rng.nextDouble() < soak.priorityFraction;
                client.setClientId(tenant);
                client.setPriority(priority);

                serve::ServeRequest request;
                request.workload = std::shared_ptr<const Workload>(
                    makeWorkload(workload_names[i %
                                                workload_names
                                                    .size()]));
                request.inputName = graph_names[tenant % 3];
                const auto sent =
                    std::chrono::steady_clock::now();
                auto response = client.call(std::move(request));
                const double wire_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - sent)
                        .count();

                if (response.status == serve::ServeStatus::Ok) {
                    ok.fetch_add(1);
                    (priority ? priority_hist : normal_hist)
                        .record(wire_ms);
                    if (tenant < limited)
                        limited_ok.fetch_add(1);
                } else if (response.status ==
                           serve::ServeStatus::Shed) {
                    if (response.shedReason ==
                        serve::ShedReason::QuotaExceeded) {
                        shed_quota.fetch_add(1);
                        if (tenant < limited)
                            limited_quota_shed.fetch_add(1);
                    } else {
                        shed_other.fetch_add(1);
                    }
                    if (tenant >= limited)
                        unlimited_shed.fetch_add(1);
                    if (priority)
                        priority_shed.fetch_add(1);
                } else {
                    errors.fetch_add(1);
                }
            }
            transport_errors.fetch_add(client.transportErrors());
        });
    }
    for (auto &sender : senders)
        sender.join();
    const double elapsed_s = wall.elapsedSeconds();

    const net::ServerStats stats = server.stats();
    const auto normal = normal_hist.snapshot();
    const auto priority = priority_hist.snapshot();

    TextTable summary({"metric", "value"});
    auto row = [&](const std::string &name, double value) {
        summary.addRow({name, formatNumber(value, 3)});
    };
    row("requests", static_cast<double>(soak.requests));
    row("wall_s", elapsed_s);
    row("throughput_rps",
        static_cast<double>(soak.requests) / elapsed_s);
    row("ok", static_cast<double>(ok.load()));
    row("shed_quota", static_cast<double>(shed_quota.load()));
    row("shed_other", static_cast<double>(shed_other.load()));
    row("errors", static_cast<double>(errors.load()));
    row("transport_errors",
        static_cast<double>(transport_errors.load()));
    row("normal_p50_ms", normal.percentile(0.50));
    row("normal_p95_ms", normal.percentile(0.95));
    row("normal_p99_ms", normal.percentile(0.99));
    row("normal_p999_ms", normal.percentile(0.999));
    row("priority_p99_ms", priority.percentile(0.99));
    row("frames_received",
        static_cast<double>(stats.framesReceived));
    row("bad_frames", static_cast<double>(stats.badFrames));
    row("slow_reader_disconnects",
        static_cast<double>(stats.slowReaderDisconnects));
    summary.print(std::cout);
    std::cout << "\n";

    // Per-shard cache affinity: consistent-hash routing should keep
    // each graph's stats-cache entries on exactly one shard.
    TextTable shard_table(
        {"shard", "completed", "stats_hits", "stats_misses"});
    for (std::size_t shard = 0; shard < server.shards(); ++shard) {
        const auto status = server.shard(shard).statusz();
        shard_table.addRow(
            {std::to_string(shard),
             std::to_string(status.completed),
             std::to_string(status.statsHits),
             std::to_string(status.statsMisses)});
    }
    shard_table.print(std::cout);
    std::cout << "\n";

    const uint64_t quota_rejected_total =
        server.admission().quotaRejected(net::Lane::Normal) +
        server.admission().quotaRejected(net::Lane::Priority);

    // --- Acceptance checks -------------------------------------------
    bool pass = true;
    auto check = [&](bool condition, const std::string &what) {
        std::cout << (condition ? "PASS: " : "FAIL: ") << what
                  << "\n";
        pass = pass && condition;
    };
    check(transport_errors.load() == 0, "0 broken connections");
    check(errors.load() == 0, "0 error responses");
    check(limited == 0 || limited_quota_shed.load() > 0,
          "quota-limited tenants shed via quota_rejected (" +
              std::to_string(limited_quota_shed.load()) + ")");
    check(unlimited_shed.load() == 0,
          "within-quota tenants saw 0 sheds");
    check(quota_rejected_total == shed_quota.load(),
          "server quota_rejected matches client-observed sheds");
    std::cout << (pass ? "SOAK PASS" : "SOAK FAIL") << "\n";
    server.stop();
    return pass ? 0 : 1;
}
