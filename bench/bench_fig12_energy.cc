/**
 * @file
 * Fig. 12 reproduction: normalized energy per benchmark (geomean over
 * inputs), Xeon Phi vs GTX-750Ti vs HeteroMap trained for the energy
 * objective vs the energy-ideal.
 *
 * The paper normalizes to the maximal energy of any B-I combination;
 * our modelled energies span more decades than the paper's measured
 * ones (proxy runtimes vary more than wall-clock seconds on real
 * hardware), so a single global maximum would flatten every bar to
 * zero. Each combination is therefore normalized to its own worst
 * scheme before aggregating — the same "fraction of the worst energy"
 * reading, robust to the wider spread. Expected shape: the Phi's
 * 300 W rating makes it the energy hog; HeteroMap lands near the
 * ideal, a >2x average gain over the worse single accelerator
 * (paper: ~2.4x).
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/training.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 12: energy benefits (per-combination "
                 "normalized; lower is better)\n\n";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());

    // Train HeteroMap for the energy objective (Sec. VII-C).
    TrainingOptions options;
    options.syntheticBenchmarks = 32;
    options.syntheticIterations = 1;
    options.energyObjective = true;
    TrainingPipeline pipeline(pair, oracle, options);
    HeteroMap framework(pair, makePredictor(PredictorKind::Deep128),
                        oracle);
    framework.trainOffline(pipeline.run());

    MSearchSpace space(pair, GridGranularity::Fine);
    TextTable table({"Benchmark", "GTX-750Ti", "XeonPhi", "HeteroMap",
                     "Ideal"});
    std::vector<double> gain_over_single;
    std::vector<double> all_gpu, all_phi, all_hetero, all_ideal;

    for (const auto &wname : workloadNames()) {
        std::vector<double> gpu_n, phi_n, hetero_n, ideal_n;
        for (const auto *bench : casesForWorkload(wname)) {
            auto objective = oracle.energyObjective(*bench, pair);
            double gpu =
                gridSearchSide(space, objective, AcceleratorKind::Gpu)
                    .bestScore;
            double phi = gridSearchSide(space, objective,
                                        AcceleratorKind::Multicore)
                             .bestScore;
            double hetero =
                framework.deploy(*bench).report.joules;
            double ideal = std::min(gpu, phi);
            double norm = std::max({gpu, phi, hetero});

            gpu_n.push_back(gpu / norm);
            phi_n.push_back(phi / norm);
            hetero_n.push_back(hetero / norm);
            ideal_n.push_back(ideal / norm);
            gain_over_single.push_back(std::min(gpu, phi) / hetero);
        }
        all_gpu.insert(all_gpu.end(), gpu_n.begin(), gpu_n.end());
        all_phi.insert(all_phi.end(), phi_n.begin(), phi_n.end());
        all_hetero.insert(all_hetero.end(), hetero_n.begin(),
                          hetero_n.end());
        all_ideal.insert(all_ideal.end(), ideal_n.begin(),
                         ideal_n.end());
        table.addRow({wname, formatNumber(geomean(gpu_n), 3),
                      formatNumber(geomean(phi_n), 3),
                      formatNumber(geomean(hetero_n), 3),
                      formatNumber(geomean(ideal_n), 3)});
    }
    table.print(std::cout);

    std::cout << "\nOverall geomeans: GPU "
              << formatNumber(geomean(all_gpu), 3) << ", Phi "
              << formatNumber(geomean(all_phi), 3) << ", HeteroMap "
              << formatNumber(geomean(all_hetero), 3) << ", ideal "
              << formatNumber(geomean(all_ideal), 3) << "\n"
              << "Worse-single-accelerator energy vs HeteroMap: "
              << formatNumber(geomean(all_phi) /
                              geomean(all_hetero), 2)
              << "x (paper: ~2.4x overall gain)\n"
              << "Better-single-accelerator energy vs HeteroMap: "
              << formatNumber(geomean(gain_over_single), 2) << "x\n";
    return 0;
}
