/**
 * @file
 * Extension study: phase-level accelerator mapping ("temporal
 * aspects", which Sec. V-A leaves out). For every benchmark-input
 * combination, compares the whole-benchmark ideal against assigning
 * each *phase* to its best accelerator, with and without charging
 * PCIe-class state transfers on every switch. Shows how much headroom
 * the paper's future-work direction holds and where transfer costs
 * erase it.
 */

#include <iostream>

#include "core/phase_mapping.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Phase-level mapping headroom (primary pair; values "
                 "normalized to the whole-benchmark ideal, lower is "
                 "better)\n\n";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());

    TextTable table({"Benchmark", "phase-ideal (free)",
                     "phase-ideal (PCIe)", "avg switches/iter",
                     "split assignments"});
    std::vector<double> free_all, pcie_all;

    for (const auto &wname : workloadNames()) {
        std::vector<double> free_n, pcie_n, switches;
        unsigned split_cases = 0;
        for (const auto *bench : casesForWorkload(wname)) {
            PhaseMappingResult r =
                evaluatePhaseMapping(*bench, pair, oracle);
            free_n.push_back(r.freeTransferSeconds /
                             r.wholeBenchmarkSeconds);
            pcie_n.push_back(r.withTransferSeconds /
                             r.wholeBenchmarkSeconds);
            switches.push_back(r.switchesPerIteration);
            bool split = false;
            for (const auto &[name, side] : r.assignment)
                split |= side != r.assignment.front().second;
            split_cases += split;
        }
        free_all.insert(free_all.end(), free_n.begin(), free_n.end());
        pcie_all.insert(pcie_all.end(), pcie_n.begin(), pcie_n.end());
        table.addRow({wname, formatNumber(geomean(free_n), 3),
                      formatNumber(geomean(pcie_n), 3),
                      formatNumber(mean(switches), 1),
                      std::to_string(split_cases) + "/9"});
    }
    table.print(std::cout);

    std::cout << "\nOverall geomeans: free transfers "
              << formatNumber(geomean(free_all), 3)
              << ", with PCIe transfers "
              << formatNumber(geomean(pcie_all), 3) << "\n"
              << "Interpretation: values < 1 mean phase-level "
                 "mapping beats the whole-benchmark ideal; the gap "
                 "between the two columns is what the interconnect "
                 "takes back.\n";
    return 0;
}
