/**
 * @file
 * Fig. 11 reproduction: scheduler comparison for every graph
 * workload-input combination on the primary (GTX-750Ti, Xeon Phi
 * 7120P) setup. All results are normalized to the tuned GPU-only run
 * (higher is worse, as in the paper). HeteroMap uses the Deep.128
 * learner and its completion times include the measured framework
 * overhead. Expected shape: SSSP-BF/BFS-style combinations GPU-biased,
 * PR/PR-DP/COMM/SSSP-Delta multicore-biased with large-graph
 * exceptions, HeteroMap tracking the per-combination winner within
 * ~10% of ideal.
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 11: scheduler comparison, GTX-750Ti + Xeon Phi "
                 "(normalized to the GPU; higher is worse)\n\n";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    HeteroMap framework =
        trainedHeteroMap(pair, oracle, PredictorKind::Deep128);

    TextTable table({"Combination", "GPU-only", "XeonPhi-only",
                     "HeteroMap", "Ideal"});
    std::vector<double> phi_norm;
    std::vector<double> hetero_norm;
    std::vector<double> ideal_norm;

    for (const auto &bench : evaluationCases()) {
        CaseBaselines base = computeBaselines(bench, pair, oracle);
        Deployment deployment = framework.deploy(bench);

        double phi = base.multicoreSeconds / base.gpuSeconds;
        double hetero =
            deployedSeconds(deployment, bench) / base.gpuSeconds;
        double ideal = base.idealSeconds / base.gpuSeconds;
        phi_norm.push_back(phi);
        hetero_norm.push_back(hetero);
        ideal_norm.push_back(ideal);

        table.addRow({bench.label(), "1.00", formatNumber(phi, 2),
                      formatNumber(hetero, 2),
                      formatNumber(ideal, 2)});
    }
    table.print(std::cout);

    std::cout << "\nGeomeans (normalized to GPU-only):\n"
              << "  XeonPhi-only: " << formatNumber(geomean(phi_norm), 3)
              << "\n  HeteroMap:    "
              << formatNumber(geomean(hetero_norm), 3)
              << "  -> " << formatNumber(
                     (1.0 / geomean(hetero_norm) - 1.0) * 100.0, 1)
              << "% better than GPU-only (paper: 31%), "
              << formatNumber((geomean(phi_norm) /
                               geomean(hetero_norm) - 1.0) * 100.0, 1)
              << "% better than Phi-only (paper: 75%)\n"
              << "  Ideal:        "
              << formatNumber(geomean(ideal_norm), 3)
              << "  (HeteroMap within "
              << formatNumber((geomean(hetero_norm) /
                               geomean(ideal_norm) - 1.0) * 100.0, 1)
              << "% of ideal; paper: within 10%)\n";
    return 0;
}
