/**
 * @file
 * Graph-measurement substrate benchmark: serial vs parallel
 * measureGraph, cold vs cached (memoized) repeat measurement, and
 * the end-to-end online predictor overhead with and without a warm
 * stats cache. Companion to bench_predictor_overhead: that one times
 * inference alone; this one times the property-collection side that
 * used to dominate the online path for large inputs.
 *
 * Run: ./bench_graph_measurement
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/heteromap.hh"
#include "graph/compressed_csr.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

/** Median-of-reps wall time of fn(), in milliseconds. */
template <typename Fn>
double
timeMs(int reps, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(reps);
    Timer timer;
    for (int i = 0; i < reps; ++i) {
        timer.start();
        fn();
        samples.push_back(timer.elapsedMillis());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);

    struct Input {
        std::string name;
        Graph graph;
    };
    const Input inputs[] = {
        {"rmat-16 (social)", generateRmat(16, 16.0, 31)},
        {"uniform-200k", generateUniformRandom(200000, 1600000, 33)},
        {"road-512x256 (high dia)", generateRoadGrid(512, 256, 35)},
        {"dense-er-1k", generateDenseEr(1000, 0.5, 37)},
    };

    std::cout << "graph measurement substrate ("
              << ThreadPool::defaultThreadCount()
              << " hardware threads)\n\n";

    TextTable table({"input", "#V", "#E", "serial ms", "parallel ms",
                     "speedup", "cached ms", "cold/cached"});
    double worst_ratio = -1.0;
    for (const Input &input : inputs) {
        MeasureOptions serial;
        serial.threads = 1;
        MeasureOptions parallel; // threads = 0: shared pool

        const double serial_ms =
            timeMs(3, [&] { measureGraph(input.graph, serial); });
        const double parallel_ms =
            timeMs(3, [&] { measureGraph(input.graph, parallel); });

        // Cold vs cached through a private cache (the global one may
        // already know these graphs).
        GraphStatsCache cache(8);
        const double cold_ms =
            timeMs(1, [&] { cache.measure(input.graph); });
        const double cached_ms = timeMs(
            64, [&] { cache.measure(input.graph); });
        const double ratio = cold_ms / std::max(cached_ms, 1e-9);
        if (worst_ratio < 0.0 || ratio < worst_ratio)
            worst_ratio = ratio;

        GraphStats stats = cache.measure(input.graph);
        table.addRow({
            input.name,
            formatCount(stats.numVertices),
            formatCount(stats.numEdges),
            formatNumber(serial_ms, 3),
            formatNumber(parallel_ms, 3),
            formatNumber(serial_ms / std::max(parallel_ms, 1e-9), 2),
            formatNumber(cached_ms, 5),
            formatNumber(ratio, 0) + "x",
        });
    }
    table.print(std::cout);
    std::cout << "\nworst cold/cached ratio: "
              << formatNumber(worst_ratio, 0)
              << "x (acceptance floor: 100x)\n\n";

    // Degree/stats sweep in isolation (sweeps = 0 skips the BFS
    // probes): blocked (default 256-vertex blocks, four accumulator
    // lanes) vs degenerate block=1, which approximates the old
    // straight-line loop. Serial, so the delta is the kernel's alone.
    TextTable sweep_table({"input", "block=1 ms", "blocked ms",
                           "speedup"});
    for (const Input &input : inputs) {
        MeasureOptions scalarish;
        scalarish.sweeps = 0;
        scalarish.threads = 1;
        scalarish.statsBlock = 1;
        MeasureOptions blocked = scalarish;
        blocked.statsBlock = 0; // default blocking

        const double scalar_ms =
            timeMs(9, [&] { measureGraph(input.graph, scalarish); });
        const double blocked_ms =
            timeMs(9, [&] { measureGraph(input.graph, blocked); });
        sweep_table.addRow({
            input.name,
            formatNumber(scalar_ms, 4),
            formatNumber(blocked_ms, 4),
            formatNumber(scalar_ms / std::max(blocked_ms, 1e-9), 2),
        });
    }
    std::cout << "degree/stats sweep, blocked vs block=1 (serial, "
                 "sweeps=0):\n";
    sweep_table.print(std::cout);
    std::cout << "\n";

    // Delta-encoded compressed CSR: payload size vs the raw 4-byte
    // neighbor array, and the streaming (forEachNeighbor) scan rate
    // vs the raw CSR scan.
    TextTable csr_table({"input", "raw MB", "packed MB", "ratio",
                         "raw scan ms", "stream ms"});
    for (const Input &input : inputs) {
        const CompressedCsr packed =
            CompressedCsr::fromGraph(input.graph);
        const double raw_mb =
            static_cast<double>(input.graph.numEdges()) *
            sizeof(VertexId) / 1e6;
        const double packed_mb =
            static_cast<double>(packed.payloadBytes()) / 1e6;

        const double raw_ms = timeMs(5, [&] {
            uint64_t acc = 0;
            for (VertexId u : input.graph.rawNeighbors())
                acc += u;
            if (acc == 0x51c0ffee)
                std::cout << ""; // defeat dead-code elimination
        });
        const double stream_ms = timeMs(5, [&] {
            uint64_t acc = 0;
            const VertexId n = packed.numVertices();
            for (VertexId v = 0; v < n; ++v)
                packed.forEachNeighbor(
                    v, [&](VertexId u) { acc += u; });
            if (acc == 0x51c0ffee)
                std::cout << "";
        });
        csr_table.addRow({
            input.name,
            formatNumber(raw_mb, 2),
            formatNumber(packed_mb, 2),
            formatNumber(packed_mb / std::max(raw_mb, 1e-9), 2),
            formatNumber(raw_ms, 3),
            formatNumber(stream_ms, 3),
        });
    }
    std::cout << "delta-encoded compressed CSR (chunked-streaming "
                 "path):\n";
    csr_table.print(std::cout);
    std::cout << "\n";

    // End-to-end online path: HeteroMap::predict measures through the
    // global cache, so the first deployment of a graph pays the
    // sweeps and every repeat deployment only pays inference.
    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);
    auto workload = makeWorkload("PR");
    Graph online = generateRmat(15, 12.0, 41);

    Deployment cold = framework.predict(*workload, online, "rmat15");
    Deployment warm = framework.predict(*workload, online, "rmat15");
    std::cout << "online predict overhead (measurement + inference):\n"
              << "  cold graph: " << formatNumber(cold.overheadMs, 3)
              << " ms\n"
              << "  warm graph: " << formatNumber(warm.overheadMs, 3)
              << " ms (" << formatNumber(
                     cold.overheadMs /
                         std::max(warm.overheadMs, 1e-9), 0)
              << "x less framework overhead)\n";
    return 0;
}
