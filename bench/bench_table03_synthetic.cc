/**
 * @file
 * Table III reproduction: the synthetic training inputs (uniform
 * random + Kronecker families), scaled down, with measured
 * characteristics, plus a sample of the synthetic benchmark space
 * (Fig. 9) generated over them.
 */

#include <iostream>

#include "core/training.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/synthetic.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Table III: Synthetic Training Inputs (scaled; paper "
                 "used 16-65M vertices / 16-2B edges)\n\n";

    TextTable table({"Training graph", "#Vertices", "#Edges",
                     "Avg.Deg", "Max.Deg", "Size(KB)"});
    for (const auto &tg : defaultTrainingGraphs(2026)) {
        table.addRow({
            tg.name,
            formatCount(tg.stats.numVertices),
            formatCount(tg.stats.numEdges),
            formatNumber(tg.stats.avgDegree, 1),
            formatCount(tg.stats.maxDegree),
            formatCount(tg.stats.footprintBytes >> 10),
        });
    }
    table.print(std::cout);

    std::cout << "\nFig. 9: first synthetic benchmark B vectors "
                 "(phase corners, then mixed samples)\n\n";
    TextTable bvars({"Synthetic", "B1", "B2", "B3", "B4", "B5", "B6",
                     "B7", "B8", "B9", "B10", "B11", "B12", "B13"});
    auto samples = sampleSyntheticBVectors(10, 2026);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        std::vector<std::string> cells{"example-" + std::to_string(i)};
        for (double v : samples[i].asArray())
            cells.push_back(formatNumber(v, 1));
        bvars.addRow(cells);
    }
    bvars.print(std::cout);
    return 0;
}
