/**
 * @file
 * Google-benchmark microbenchmarks for predictor inference latency —
 * the real-time component of Table IV's "Overhead (ms)" column — plus
 * the deployment scaling step and a full model evaluation.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "core/heteromap.hh"
#include "core/training.hh"
#include "graph/generators.hh"
#include "model/decision_tree.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

/** Shared fixture state, built once. */
struct State {
    Oracle oracle;
    AcceleratorPair pair;
    BenchmarkCase bench;
    TrainingSet corpus;

    State()
        : pair(pinnedPair(primaryPair())),
          bench([] {
              setLogVerbose(false);
              auto workload = makeWorkload("PR");
              return makeCase(*workload, datasetByShortName("CO"));
          }())
    {
        // Small deterministic corpus for the trained learners.
        TrainingOptions options;
        options.syntheticBenchmarks = 8;
        options.syntheticIterations = 1;
        TrainingPipeline pipeline(pair, oracle, options);
        corpus = pipeline.run();
    }
};

State &
state()
{
    static State instance;
    return instance;
}

void
predictorBench(benchmark::State &bs, PredictorKind kind)
{
    auto predictor = makePredictor(kind);
    predictor->train(state().corpus);
    const FeatureVector &features = state().bench.features;
    for (auto _ : bs) {
        auto y = predictor->predict(features);
        benchmark::DoNotOptimize(y);
    }
}

} // namespace

BENCHMARK_CAPTURE(predictorBench, decision_tree,
                  PredictorKind::DecisionTree);
BENCHMARK_CAPTURE(predictorBench, linear_regression,
                  PredictorKind::LinearRegression);
BENCHMARK_CAPTURE(predictorBench, multi_regression,
                  PredictorKind::MultiRegression);
BENCHMARK_CAPTURE(predictorBench, adaptive_library,
                  PredictorKind::AdaptiveLibrary);
BENCHMARK_CAPTURE(predictorBench, deep_16, PredictorKind::Deep16);
BENCHMARK_CAPTURE(predictorBench, deep_32, PredictorKind::Deep32);
BENCHMARK_CAPTURE(predictorBench, deep_64, PredictorKind::Deep64);
BENCHMARK_CAPTURE(predictorBench, deep_128, PredictorKind::Deep128);

static void
BM_DeployScaling(benchmark::State &bs)
{
    DecisionTreeHeuristic tree;
    auto y = tree.predict(state().bench.features);
    for (auto _ : bs) {
        MConfig config = deployNormalized(y, state().pair);
        benchmark::DoNotOptimize(config);
    }
}
BENCHMARK(BM_DeployScaling);

static void
BM_PerfModelEvaluate(benchmark::State &bs)
{
    MConfig config;
    config.accelerator = AcceleratorKind::Multicore;
    config.cores = 61;
    config.threadsPerCore = 4;
    config.simdWidth = 8;
    for (auto _ : bs) {
        auto report =
            state().oracle.run(state().bench, state().pair, config);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_PerfModelEvaluate);

// Expanded BENCHMARK_MAIN so the shared --telemetry-out flag can be
// consumed before google-benchmark rejects unknown arguments.
int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
