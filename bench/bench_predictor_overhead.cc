/**
 * @file
 * Google-benchmark microbenchmarks for predictor inference latency —
 * the real-time component of Table IV's "Overhead (ms)" column — plus
 * the deployment scaling step and a full model evaluation.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "core/heteromap.hh"
#include "core/training.hh"
#include "graph/generators.hh"
#include "model/decision_tree.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

/** Shared fixture state, built once. */
struct State {
    Oracle oracle;
    AcceleratorPair pair;
    BenchmarkCase bench;
    TrainingSet corpus;

    State()
        : pair(pinnedPair(primaryPair())),
          bench([] {
              setLogVerbose(false);
              auto workload = makeWorkload("PR");
              return makeCase(*workload, datasetByShortName("CO"));
          }())
    {
        // Small deterministic corpus for the trained learners.
        TrainingOptions options;
        options.syntheticBenchmarks = 8;
        options.syntheticIterations = 1;
        TrainingPipeline pipeline(pair, oracle, options);
        corpus = pipeline.run();
    }
};

State &
state()
{
    static State instance;
    return instance;
}

void
predictorBench(benchmark::State &bs, PredictorKind kind)
{
    auto predictor = makePredictor(kind);
    predictor->train(state().corpus);
    const FeatureVector &features = state().bench.features;
    for (auto _ : bs) {
        auto y = predictor->predict(features);
        benchmark::DoNotOptimize(y);
    }
    bs.SetItemsProcessed(static_cast<int64_t>(bs.iterations()));
}

/** A random feature set so data-dependent branches genuinely
 *  mispredict (a cycled corpus is learnable by the branch predictor,
 *  which would flatter the branchy baselines). */
std::vector<FeatureVector>
variedFeatures(std::size_t n)
{
    Rng rng(71);
    std::vector<FeatureVector> out(n);
    for (FeatureVector &f : out) {
        auto flat = f.asArray();
        for (double &v : flat)
            v = rng.nextDouble();
        f = featureVectorFromArray(flat);
    }
    return out;
}

/**
 * One predictBatch() call per iteration; items/s is the per-sample
 * throughput to compare against the scalar predictorBench rows.
 * The scalar-loop baseline at the same batch size is batch x the
 * scalar row's time, so the batched-vs-loop speedup falls out of the
 * report without a separate loop benchmark.
 */
void
predictorBatchBench(benchmark::State &bs, PredictorKind kind,
                    std::size_t batch)
{
    auto predictor = makePredictor(kind);
    predictor->train(state().corpus);
    const std::vector<FeatureVector> features = variedFeatures(batch);
    std::vector<NormalizedMVector> out(batch);
    for (auto _ : bs) {
        predictor->predictBatch(
            std::span<const FeatureVector>(features),
            std::span<NormalizedMVector>(out));
        benchmark::DoNotOptimize(out.data());
    }
    bs.SetItemsProcessed(
        static_cast<int64_t>(bs.iterations() * batch));
}

/** Pointer-tree walk over a varied stream: the branchy baseline. */
void
treePointerBench(benchmark::State &bs)
{
    DecisionTreeHeuristic tree;
    const std::vector<FeatureVector> features = variedFeatures(1024);
    std::size_t i = 0;
    for (auto _ : bs) {
        auto y = tree.predict(features[i]);
        benchmark::DoNotOptimize(y);
        i = (i + 1) % features.size();
    }
    bs.SetItemsProcessed(static_cast<int64_t>(bs.iterations()));
}

/** Flattened predicated-descent walk over the same stream. */
void
treeFlatBench(benchmark::State &bs)
{
    DecisionTreeHeuristic tree;
    const std::vector<FeatureVector> features = variedFeatures(1024);
    std::size_t i = 0;
    for (auto _ : bs) {
        auto y = tree.predictFlat(features[i]);
        benchmark::DoNotOptimize(y);
        i = (i + 1) % features.size();
    }
    bs.SetItemsProcessed(static_cast<int64_t>(bs.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(predictorBench, decision_tree,
                  PredictorKind::DecisionTree);
BENCHMARK_CAPTURE(predictorBench, linear_regression,
                  PredictorKind::LinearRegression);
BENCHMARK_CAPTURE(predictorBench, multi_regression,
                  PredictorKind::MultiRegression);
BENCHMARK_CAPTURE(predictorBench, adaptive_library,
                  PredictorKind::AdaptiveLibrary);
BENCHMARK_CAPTURE(predictorBench, deep_16, PredictorKind::Deep16);
BENCHMARK_CAPTURE(predictorBench, deep_32, PredictorKind::Deep32);
BENCHMARK_CAPTURE(predictorBench, deep_64, PredictorKind::Deep64);
BENCHMARK_CAPTURE(predictorBench, deep_128, PredictorKind::Deep128);

// Batched inference: compare items/s against the matching scalar row
// above. Acceptance floor: >= 3x for the deep nets at batch >= 8.
BENCHMARK_CAPTURE(predictorBatchBench, decision_tree_b8,
                  PredictorKind::DecisionTree, 8);
BENCHMARK_CAPTURE(predictorBatchBench, decision_tree_b32,
                  PredictorKind::DecisionTree, 32);
BENCHMARK_CAPTURE(predictorBatchBench, deep_16_b8,
                  PredictorKind::Deep16, 8);
BENCHMARK_CAPTURE(predictorBatchBench, deep_16_b32,
                  PredictorKind::Deep16, 32);
BENCHMARK_CAPTURE(predictorBatchBench, deep_32_b8,
                  PredictorKind::Deep32, 8);
BENCHMARK_CAPTURE(predictorBatchBench, deep_32_b32,
                  PredictorKind::Deep32, 32);
BENCHMARK_CAPTURE(predictorBatchBench, deep_128_b8,
                  PredictorKind::Deep128, 8);
BENCHMARK_CAPTURE(predictorBatchBench, deep_128_b32,
                  PredictorKind::Deep128, 32);

// Flat (predicated array) vs pointer (nested-if) decision tree on an
// unpredictable input stream.
BENCHMARK(treePointerBench);
BENCHMARK(treeFlatBench);

static void
BM_DeployScaling(benchmark::State &bs)
{
    DecisionTreeHeuristic tree;
    auto y = tree.predict(state().bench.features);
    for (auto _ : bs) {
        MConfig config = deployNormalized(y, state().pair);
        benchmark::DoNotOptimize(config);
    }
}
BENCHMARK(BM_DeployScaling);

static void
BM_PerfModelEvaluate(benchmark::State &bs)
{
    MConfig config;
    config.accelerator = AcceleratorKind::Multicore;
    config.cores = 61;
    config.threadsPerCore = 4;
    config.simdWidth = 8;
    for (auto _ : bs) {
        auto report =
            state().oracle.run(state().bench, state().pair, config);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_PerfModelEvaluate);

// Expanded BENCHMARK_MAIN so the shared --telemetry-out flag can be
// consumed before google-benchmark rejects unknown arguments.
int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
