/**
 * @file
 * Fig. 16 reproduction: memory-size sensitivity. Sweeps the (GPU,
 * multicore) memory-size combinations each accelerator supports and
 * reports the geomean completion time of all benchmark-input
 * combinations, normalized to the worst (1 GB, 1 GB) corner. Expected
 * shape: GPU performance saturates at its 2-4 GB ceiling while the
 * multicore keeps improving up to its full memory — the Phi pulls
 * ahead of the GTX-750Ti and closes on the GTX-970 at full memory;
 * the 40-core CPU improves similarly.
 *
 * The memory-size slowdown is a per-case multiplier, so each side's
 * tuned configuration is found once and re-scored per memory point.
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

namespace {

void
sweep(const Oracle &oracle, const AcceleratorPair &base_pair,
      const std::vector<uint64_t> &mc_sizes)
{
    std::cout << "\n== " << base_pair.name() << " ==\n";

    // Tuned per-side configurations (invariant across memory sizes).
    std::vector<CaseBaselines> tuned;
    for (const auto &bench : evaluationCases())
        tuned.push_back(
            computeBaselines(bench, base_pair, oracle,
                             GridGranularity::Coarse));

    TextTable table({"(GPU GB, MC GB)", base_pair.gpu.name,
                     base_pair.multicore.name});
    const std::vector<uint64_t> gpu_sizes = {
        1, 2, base_pair.gpu.maxMemBytes >> 30};

    double norm = 0.0;
    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    for (uint64_t gpu_gb : gpu_sizes) {
        for (uint64_t mc_gb : mc_sizes) {
            AcceleratorPair pair = base_pair;
            pair.gpu.memBytes = std::min<uint64_t>(
                pair.gpu.maxMemBytes, gpu_gb << 30);
            pair.multicore.memBytes = std::min<uint64_t>(
                pair.multicore.maxMemBytes, mc_gb << 30);

            std::vector<double> gpu, multicore;
            const auto &cases = evaluationCases();
            for (std::size_t i = 0; i < cases.size(); ++i) {
                gpu.push_back(oracle.seconds(cases[i], pair,
                                             tuned[i].gpuBest));
                multicore.push_back(oracle.seconds(
                    cases[i], pair, tuned[i].multicoreBest));
            }
            labels.push_back("(" + std::to_string(gpu_gb) + ", " +
                             std::to_string(mc_gb) + ")");
            rows.push_back({geomean(gpu), geomean(multicore)});
            norm = std::max({norm, rows.back()[0], rows.back()[1]});
        }
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        table.addRow({labels[i], formatNumber(rows[i][0] / norm, 3),
                      formatNumber(rows[i][1] / norm, 3)});
    }
    table.print(std::cout);

    // Full-memory comparison (the paper's headline for this figure).
    double gpu_best = rows.back()[0];
    double mc_best = rows.back()[1];
    std::cout << "at full memory: multicore is "
              << formatNumber((gpu_best / mc_best - 1.0) * 100.0, 1)
              << "% better than the GPU\n";
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 16: geomean memory-size variations (normalized "
                 "to the worst corner; lower is better)\n";

    Oracle oracle;
    sweep(oracle, {gtx750TiSpec(), xeonPhi7120Spec()},
          {1, 2, 4, 8, 16});
    sweep(oracle, {gtx970Spec(), xeonPhi7120Spec()}, {1, 2, 4, 8, 16});
    sweep(oracle, {gtx750TiSpec(), xeon40CoreSpec()},
          {1, 2, 4, 16, 64});
    sweep(oracle, {gtx970Spec(), xeon40CoreSpec()}, {1, 2, 4, 16, 64});
    return 0;
}
