/**
 * @file
 * Serving load benchmark: drives the src/serve/ PredictionService
 * with closed-loop (fixed client count, submit -> wait -> repeat) or
 * open-loop (fixed arrival rate, no client backpressure) traffic and
 * reports throughput and the p50/p95/p99 request latency, plus the
 * micro-batching and stats-cache amortization counters that explain
 * them.
 *
 * Forensics ride along by default — the flight recorder is armed and
 * the published model carries a feature baseline so the drift
 * monitor scores live windows; --no-forensics disarms both, which is
 * how the recorder+drift overhead is measured (run both ways,
 * compare throughput).
 *
 * Run: ./bench_serving_load [--requests N] [--workers W]
 *                           [--clients C] [--queue CAP]
 *                           [--open RATE_RPS] [--reject]
 *                           [--no-forensics]
 *                           [--telemetry-out out.json]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "model/feature_baseline.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_service.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "workloads/registry.hh"

using namespace heteromap;
using namespace heteromap::serve;

namespace {

struct LoadOptions {
    std::size_t requests = 200;
    std::size_t workers = 2;
    std::size_t clients = 4;   //!< closed-loop client threads
    std::size_t queue = 0;     //!< 0 keeps the service default
    double openRateRps = 0.0;  //!< > 0 switches to open loop
    bool reject = false;
    bool forensics = true;     //!< flight recorder + drift baseline
};

LoadOptions
parseArgs(int argc, char **argv)
{
    LoadOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "bench_serving_load: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--requests")
            options.requests = std::strtoull(next(), nullptr, 10);
        else if (arg == "--workers")
            options.workers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--clients")
            options.clients = std::strtoull(next(), nullptr, 10);
        else if (arg == "--queue")
            options.queue = std::strtoull(next(), nullptr, 10);
        else if (arg == "--open")
            options.openRateRps = std::strtod(next(), nullptr);
        else if (arg == "--reject")
            options.reject = true;
        else if (arg == "--no-forensics")
            options.forensics = false;
        else {
            std::cerr << "bench_serving_load: unknown flag " << arg
                      << "\n";
            std::exit(2);
        }
    }
    options.requests = std::max<std::size_t>(1, options.requests);
    options.clients = std::max<std::size_t>(1, options.clients);
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    telemetry::TelemetryFileWriter telemetry_writer(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    const LoadOptions load = parseArgs(argc, argv);

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    ModelRegistry registry(pair, oracle);

    // A small catalogue of traffic: two workloads, three graphs, so
    // batching has both coalescible and distinct requests to chew on.
    std::vector<std::shared_ptr<const Workload>> workloads;
    workloads.emplace_back(makeWorkload("PR"));
    workloads.emplace_back(makeWorkload("BFS"));
    std::vector<std::shared_ptr<const Graph>> graphs = {
        std::make_shared<const Graph>(generateMesh(1024, 4, 1)),
        std::make_shared<const Graph>(
            generatePreferentialAttachment(1024, 4, 7)),
        std::make_shared<const Graph>(
            generateRoadGrid(32, 32, 3)),
    };
    const char *graph_names[] = {"mesh", "social", "road"};

    // With forensics on, the model ships a baseline over the bench's
    // own catalogue: live windows match it, so the drift monitor
    // scores every window (the cost under test) without alerting.
    std::shared_ptr<const FeatureBaseline> baseline;
    if (load.forensics) {
        forensics::armFlightRecorder();
        auto built = std::make_shared<FeatureBaseline>();
        for (const auto &workload : workloads) {
            for (std::size_t g = 0; g < graphs.size(); ++g) {
                const GraphStats stats =
                    globalStatsCache().measure(*graphs[g]);
                const FeatureVector features =
                    makeCase(*workload, *graphs[g], graph_names[g],
                             stats)
                        .features;
                // Weight each case to roughly a drift window's mass:
                // a 6-sample baseline against 64-sample windows
                // would report pure Laplace-smoothing noise as PSI
                // (real deployments train on hundreds of samples).
                for (int r = 0; r < 10; ++r)
                    built->add(features);
            }
        }
        baseline = std::move(built);
    }
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree),
                     baseline);

    auto requestAt = [&](std::size_t i) {
        ServeRequest request;
        request.workload = workloads[i % workloads.size()];
        request.graph = graphs[(i / 2) % graphs.size()];
        request.inputName = graph_names[(i / 2) % graphs.size()];
        return request;
    };

    ServiceOptions options;
    options.workers = load.workers;
    if (load.queue > 0)
        options.queueCapacity = load.queue;
    options.admission = load.reject ? AdmissionPolicy::Reject
                                    : AdmissionPolicy::Block;
    // Small drift windows so the monitor actually closes (and
    // scores) windows within a default-length run.
    options.drift.windowSize = 64;
    PredictionService service(registry, options);

    const uint64_t batches_before =
        telemetry::registry().counter("serve.batches").value();
    const telemetry::Histogram &infer_hist =
        telemetry::registry().histogram("serve.batch.infer_ms");
    const uint64_t infer_count_before = infer_hist.count();
    const double infer_sum_before = infer_hist.sum();

    // Local histogram (works in telemetry-OFF builds too); the
    // interpolated snapshot percentiles replace the old sorted-vector
    // quantile pass.
    telemetry::Histogram latency_hist;
    uint64_t ok = 0, shed = 0;
    auto harvest = [&](ServeResponse response) {
        if (response.status == ServeStatus::Ok) {
            ++ok;
            latency_hist.record(response.queueMs +
                                response.serviceMs);
        } else {
            ++shed;
        }
    };

    Timer wall;
    wall.start();
    if (load.openRateRps > 0.0) {
        // Open loop: arrivals at a fixed rate, independent of how
        // fast responses come back — queueing delay shows up in full.
        const auto interval =
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(1.0 /
                                              load.openRateRps));
        std::vector<std::future<ServeResponse>> futures;
        futures.reserve(load.requests);
        auto next_arrival = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < load.requests; ++i) {
            std::this_thread::sleep_until(next_arrival);
            next_arrival += interval;
            futures.push_back(service.submit(requestAt(i)));
        }
        for (auto &future : futures)
            harvest(future.get());
    } else {
        // Closed loop: each client keeps exactly one request in
        // flight.
        std::vector<std::thread> clients;
        std::vector<std::vector<ServeResponse>> collected(
            load.clients);
        for (std::size_t c = 0; c < load.clients; ++c) {
            clients.emplace_back([&, c] {
                for (std::size_t i = c; i < load.requests;
                     i += load.clients) {
                    collected[c].push_back(
                        service.submit(requestAt(i)).get());
                }
            });
        }
        for (auto &client : clients)
            client.join();
        for (auto &responses : collected)
            for (auto &response : responses)
                harvest(std::move(response));
    }
    const double wall_s = wall.elapsedSeconds();
    service.close();

    const uint64_t batches =
        telemetry::registry().counter("serve.batches").value() -
        batches_before;

    TextTable table({"metric", "value"});
    table.addRow({"mode", load.openRateRps > 0.0
                              ? "open @ " +
                                    formatNumber(load.openRateRps,
                                                 0) +
                                    " req/s"
                              : "closed x " +
                                    std::to_string(load.clients)});
    table.addRow({"admission", load.reject ? "reject" : "block"});
    table.addRow({"workers", std::to_string(service.workers())});
    table.addRow({"requests", std::to_string(load.requests)});
    table.addRow({"served ok", std::to_string(ok)});
    table.addRow({"shed", std::to_string(shed)});
    table.addRow(
        {"throughput (req/s)",
         formatNumber(static_cast<double>(ok) / wall_s, 1)});
    const telemetry::HistogramSnapshot latency =
        latency_hist.snapshot();
    table.addRow(
        {"p50 latency (ms)", formatNumber(latency.percentile(0.50), 3)});
    table.addRow(
        {"p95 latency (ms)", formatNumber(latency.percentile(0.95), 3)});
    table.addRow(
        {"p99 latency (ms)", formatNumber(latency.percentile(0.99), 3)});
    table.addRow({"batches", std::to_string(batches)});
    table.addRow(
        {"avg batch size",
         batches == 0 ? "-"
                      : formatNumber(static_cast<double>(ok) /
                                         static_cast<double>(batches),
                                     2)});
    table.addRow({"stats-cache hits",
                  std::to_string(service.statsHits())});
    table.addRow({"stats-cache misses",
                  std::to_string(service.statsMisses())});
    // Batched inference amortization: total time spent in the single
    // per-batch predictBatch pass, divided across the requests it
    // served. This is the per-request inference bill after batching.
    const uint64_t infer_batches =
        infer_hist.count() - infer_count_before;
    const double infer_ms = infer_hist.sum() - infer_sum_before;
    table.addRow({"inference batches", std::to_string(infer_batches)});
    table.addRow(
        {"batch-amortized inference (ms/req)",
         ok == 0 ? "-"
                 : formatNumber(infer_ms / static_cast<double>(ok),
                                5)});
    table.addRow({"forensics", load.forensics ? "armed" : "off"});
    if (load.forensics) {
        table.addRow({"audit records appended",
                      std::to_string(forensics::auditRecordsAppended())});
        table.addRow({"audit records dropped",
                      std::to_string(forensics::auditRecordsDropped())});
        const DriftScores drift = service.driftScores();
        table.addRow({"drift windows",
                      std::to_string(drift.windows)});
        table.addRow({"drift psi (last window)",
                      formatNumber(drift.psi, 4)});
    }
    table.print(std::cout);

    if (ok + shed != load.requests) {
        std::cerr << "bench_serving_load: lost a response\n";
        return 1;
    }
    return 0;
}
