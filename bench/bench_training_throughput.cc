/**
 * @file
 * Offline training sweep throughput: cases/sec of the labelling
 * pipeline (Sec. V, Fig. 8 step 1) as the work-stealing pool widens,
 * against the serial baseline. The sweep is the wall-clock bottleneck
 * on the way to a Table III-scale corpus, and the cases are
 * independent, so near-linear scaling is the expectation.
 */

#include <algorithm>
#include <iostream>
#include <sstream>

#include "core/training.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    Oracle oracle;

    TrainingOptions options;
    options.syntheticBenchmarks = 12;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Grid;

    // Default (Table III) corpus, shared by every configuration so
    // the graph generation cost is paid once, outside the timings.
    const std::vector<TrainingGraph> corpus =
        defaultTrainingGraphs(options.seed);
    const std::size_t cases = options.syntheticBenchmarks * corpus.size();

    std::cout << "Training sweep throughput: " << cases << " cases ("
              << options.syntheticBenchmarks << " B vectors x "
              << corpus.size() << " training graphs), grid tuner\n\n";

    TextTable table({"Threads", "Seconds", "Cases/sec", "Speedup",
                     "Identical"});

    double serial_seconds = 0.0;
    std::string serial_bytes;
    const std::size_t hw = ThreadPool::defaultThreadCount();
    std::vector<std::size_t> widths{1, 2, 4, 8};
    if (std::find(widths.begin(), widths.end(), hw) == widths.end())
        widths.push_back(hw);
    for (std::size_t threads : widths) {
        options.threads = threads;
        TrainingPipeline pipeline(primaryPair(), oracle, options);

        Timer timer;
        timer.start();
        TrainingSet corpus_set = pipeline.run(corpus);
        double seconds = timer.elapsedSeconds();

        std::ostringstream oss;
        pipeline.database().save(oss);
        if (threads == 1) {
            serial_seconds = seconds;
            serial_bytes = oss.str();
        }

        table.addRow({
            std::to_string(threads) + (threads == hw ? " (hw)" : ""),
            formatNumber(seconds, 2),
            formatNumber(static_cast<double>(corpus_set.size()) /
                             seconds, 1),
            formatNumber(serial_seconds / seconds, 2) + "x",
            oss.str() == serial_bytes ? "yes" : "NO",
        });
    }
    table.print(std::cout);

    std::cout << "\nParallel output is merged in deterministic case "
                 "order; 'Identical' compares the profiler database "
                 "bytes against the serial run.\n";
    return 0;
}
