/**
 * @file
 * Fig. 7 reproduction: the decision-tree heuristic's full flow for
 * SSSP-BF and SSSP-Delta on USA-Cal — discretized B/I inputs, the
 * selected accelerator, the M choices the Sec. IV equations resolve
 * to, and the selected-vs-optimal performance gap (the paper reports
 * ~15% left on the table by the linearized equations).
 */

#include <iostream>

#include "core/experiment.hh"
#include "model/decision_tree.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

void
flow(const Oracle &oracle, const AcceleratorPair &pair,
     const char *workload_name)
{
    auto workload = makeWorkload(workload_name);
    BenchmarkCase bench =
        makeCase(*workload, datasetByShortName("CA"));

    std::cout << "\n== " << bench.label() << " ==\n";
    std::cout << "B = " << bench.features.b.toString() << "\n";
    std::cout << "I = " << bench.features.i.toString()
              << "  Avg.Deg=" << bench.features.i.avgDegreeTerm()
              << "  Avg.Deg.Dia="
              << bench.features.i.avgDegreeDiameterTerm() << "\n";

    DecisionTreeHeuristic tree;
    NormalizedMVector y = tree.predict(bench.features);
    MConfig config = deployNormalized(y, pair);
    std::cout << "M1 selects: "
              << acceleratorKindName(tree.chooseAccelerator(
                     bench.features))
              << "\ndeployed M: " << config.toString() << "\n";

    double selected = oracle.seconds(bench, pair, config);
    CaseBaselines base = computeBaselines(bench, pair, oracle);
    std::cout << "selected performance: "
              << formatNumber(selected * 1e3, 4) << " ms\n"
              << "optimal (full M sweep): "
              << formatNumber(base.idealSeconds * 1e3, 4) << " ms ("
              << base.idealBest.toString() << ")\n"
              << "gap vs optimal: "
              << formatPercent(selected / base.idealSeconds - 1.0, 1)
              << "  (paper reports ~15%)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 7: decision-tree heuristic flow on USA-Cal\n";
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    flow(oracle, pair, "SSSP-BF");
    flow(oracle, pair, "SSSP-Delta");
    return 0;
}
