/**
 * @file
 * Table II reproduction: the accelerator configurations, plus the
 * Fig. 3 machine-choice (M) inventory exposed on each side.
 */

#include <iostream>

#include "arch/presets.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    std::cout << "Table II: Accelerator Configurations\n\n";

    TextTable table({"Parameter", "GTX-750Ti", "GTX-970",
                     "XeonPhi-7120P", "Xeon-40Core"});
    const AcceleratorSpec specs[] = {gtx750TiSpec(), gtx970Spec(),
                                     xeonPhi7120Spec(),
                                     xeon40CoreSpec()};
    auto row = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name};
        for (const auto &spec : specs)
            cells.push_back(getter(spec));
        table.addRow(cells);
    };

    row("Cores", [](const AcceleratorSpec &s) {
        return std::to_string(s.cores) +
               (s.kind == AcceleratorKind::Gpu ? " SMs" : "");
    });
    row("Threads", [](const AcceleratorSpec &s) {
        return s.kind == AcceleratorKind::Gpu
                   ? "Many (" + std::to_string(s.maxThreads()) + ")"
                   : std::to_string(s.maxThreads());
    });
    row("Cache Size", [](const AcceleratorSpec &s) {
        return std::to_string(s.cacheBytes >> 20) + " MB";
    });
    row("Coherence", [](const AcceleratorSpec &s) {
        return std::string(s.coherentCache ? "Yes" : "No");
    });
    row("Mem (GB)", [](const AcceleratorSpec &s) {
        return std::to_string(s.memBytes >> 30);
    });
    row("BW (GB/s)", [](const AcceleratorSpec &s) {
        return formatNumber(s.memBandwidthGBs, 0);
    });
    row("SP TFlops", [](const AcceleratorSpec &s) {
        return formatNumber(s.spTflops, 2);
    });
    row("DP TFlops", [](const AcceleratorSpec &s) {
        return formatNumber(s.dpTflops, 2);
    });
    row("Freq (GHz)", [](const AcceleratorSpec &s) {
        return formatNumber(s.freqGHz, 2);
    });
    row("TDP (W)", [](const AcceleratorSpec &s) {
        return formatNumber(s.tdpWatts, 0);
    });
    table.print(std::cout);

    std::cout << "\nFig. 3 machine choices (M variables)\n"
              << "  M1      accelerator select (GPU | multicore)\n"
              << "  M2-M3   multicore cores / threads-per-core\n"
              << "  M4      KMP blocktime (1..1000 ms)\n"
              << "  M5-M7   thread placement (core/thread ids, "
                 "offsets)\n"
              << "  M8      KMP affinity (pinned..movable)\n"
              << "  M9      OMP schedule (static|chunked|dynamic|"
                 "guided|auto)\n"
              << "  M10     #pragma simd width\n"
              << "  M11     OMP chunk size\n"
              << "  M12-M13 OMP nested / max active levels\n"
              << "  M14     GOMP spin count\n"
              << "  M15-M18 wait policy / proc bind / dynamic teams / "
                 "stack size\n"
              << "  M19-M20 GPU global / local threads\n";

    std::cout << "\nMulti-accelerator pairings (Sec. VI-A):\n";
    for (const auto &pair : allPairs())
        std::cout << "  " << pair.name() << "\n";
    return 0;
}
