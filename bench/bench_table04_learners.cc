/**
 * @file
 * Table IV reproduction: learning-model strategies compared on the
 * primary (GTX-750Ti, Xeon Phi 7120P) setup. For each learner:
 *
 *   SpeedUp  - geomean completion-time gain over the tuned GPU-only
 *              baseline across all benchmark-input combinations
 *              (the GPU is the better single-accelerator baseline);
 *   Accuracy - geomean of ideal/achieved performance (Sec. VI-C);
 *   Overhead - measured mean inference latency per deployment.
 *
 * Expected shape: the adaptive library and linear regression trail
 * badly; the decision tree is cheap but below the best deep model;
 * Deep.16 -> Deep.128 climbs; Deep.128 wins overall.
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/training.hh"
#include "model/cart.hh"
#include "model/table_lookup.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Table IV: Learning Model Strategies (primary pair, "
                 "speedup over the GTX-750Ti baseline)\n\n";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    const auto &cases = evaluationCases();

    // Tuned single-accelerator baselines + ideal, once per case.
    std::vector<CaseBaselines> baselines;
    baselines.reserve(cases.size());
    for (const auto &bench : cases)
        baselines.push_back(computeBaselines(bench, pair, oracle));

    // Offline corpus, once for all learners (Sec. V).
    TrainingOptions options;
    options.syntheticBenchmarks = 32;
    options.syntheticIterations = 1;
    TrainingPipeline pipeline(pair, oracle, options);
    TrainingSet corpus = pipeline.run();

    TextTable table(
        {"Learner", "SpeedUp (%)", "Accuracy (%)", "Overhead (ms)"});

    for (PredictorKind kind : allPredictorKinds()) {
        HeteroMap framework(pair, makePredictor(kind), oracle);
        framework.trainOffline(corpus);

        std::vector<double> vs_gpu;
        std::vector<double> accuracy;
        std::vector<double> overhead_ms;
        for (std::size_t i = 0; i < cases.size(); ++i) {
            Deployment deployment = framework.deploy(cases[i]);
            // Warmed repeat: the paper's overhead is steady-state
            // inference latency, not first-call cache effects.
            Timer timer;
            timer.start();
            for (int rep = 0; rep < 10; ++rep)
                framework.predictor().predict(cases[i].features);
            double infer_ms = timer.elapsedMillis() / 10.0;

            // Charge the real overhead at the case's nominal time
            // scale (see deployedSeconds).
            double total = deployment.report.seconds +
                           infer_ms * 1e-3 / cases[i].timeScale();
            vs_gpu.push_back(baselines[i].gpuSeconds / total);
            accuracy.push_back(
                accuracyVsIdeal(total, baselines[i].idealSeconds));
            overhead_ms.push_back(infer_ms);
        }
        table.addRow({
            framework.predictor().name(),
            formatNumber((geomean(vs_gpu) - 1.0) * 100.0, 1),
            formatNumber(geomean(accuracy) * 100.0, 1),
            formatNumber(mean(overhead_ms), 4),
        });
    }
    table.print(std::cout);

    // Extension learners beyond the paper's Table IV: the profiler
    // database used directly (kNN over the stored B,I->M tuples, the
    // Sec. V "indexed using B,I tuples" mode) and learned CART
    // trees/forests automating the Sec. IV decision-tree family.
    std::cout << "\nExtension learners (not in the paper's table):\n\n";
    TextTable extensions(
        {"Learner", "SpeedUp (%)", "Accuracy (%)", "Overhead (ms)"});
    std::vector<std::unique_ptr<Predictor>> extras;
    extras.push_back(std::make_unique<TableLookupPredictor>(3));
    extras.push_back(std::make_unique<CartTree>());
    extras.push_back(std::make_unique<CartForest>(16));
    for (auto &predictor : extras) {
        predictor->train(corpus);
        std::vector<double> vs_gpu;
        std::vector<double> accuracy;
        std::vector<double> overhead_ms;
        for (std::size_t i = 0; i < cases.size(); ++i) {
            Timer timer;
            timer.start();
            NormalizedMVector y;
            for (int rep = 0; rep < 10; ++rep)
                y = predictor->predict(cases[i].features);
            double infer_ms = timer.elapsedMillis() / 10.0;
            MConfig config = deployNormalized(y, pair);
            double total =
                oracle.seconds(cases[i], pair, config) +
                infer_ms * 1e-3 / cases[i].timeScale();
            vs_gpu.push_back(baselines[i].gpuSeconds / total);
            accuracy.push_back(
                accuracyVsIdeal(total, baselines[i].idealSeconds));
            overhead_ms.push_back(infer_ms);
        }
        extensions.addRow({
            predictor->name(),
            formatNumber((geomean(vs_gpu) - 1.0) * 100.0, 1),
            formatNumber(geomean(accuracy) * 100.0, 1),
            formatNumber(mean(overhead_ms), 4),
        });
    }
    extensions.print(std::cout);

    // Context rows: the single-accelerator and ideal references.
    std::vector<double> mc_vs_gpu;
    std::vector<double> ideal_vs_gpu;
    for (const auto &base : baselines) {
        mc_vs_gpu.push_back(base.gpuSeconds / base.multicoreSeconds);
        ideal_vs_gpu.push_back(base.gpuSeconds / base.idealSeconds);
    }
    std::cout << "\nReference points (no learner overhead):\n"
              << "  multicore-only vs GPU-only: "
              << formatNumber((geomean(mc_vs_gpu) - 1.0) * 100.0, 1)
              << "%\n"
              << "  ideal vs GPU-only:          "
              << formatNumber((geomean(ideal_vs_gpu) - 1.0) * 100.0, 1)
              << "%  (paper: 31% for the best learner)\n";
    return 0;
}
