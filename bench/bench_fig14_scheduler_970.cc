/**
 * @file
 * Fig. 14 reproduction: the Fig. 11 scheduler comparison with the
 * stronger GTX-970 replacing the GTX-750Ti (models re-learned for the
 * new pair). Expected shape: benchmark trends stay similar but the
 * optimal choices shift GPU-ward (e.g. TRI-LJ flips to the GPU);
 * HeteroMap beats GPU-only by a smaller margin (~14% in the paper)
 * and Phi-only by a much larger one.
 */

#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/telemetry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_out(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    setLogVerbose(false);
    std::cout << "Fig. 14: scheduler comparison, GTX-970 + Xeon Phi "
                 "(normalized to the GPU; higher is worse)\n\n";

    Oracle oracle;
    AcceleratorPair pair =
        pinnedPair({gtx970Spec(), xeonPhi7120Spec()});
    // Machine-learning models are re-learned for the changed
    // architecture (Sec. VII-D).
    HeteroMap framework =
        trainedHeteroMap(pair, oracle, PredictorKind::Deep128);

    TextTable table({"Combination", "GPU-only", "XeonPhi-only",
                     "HeteroMap", "Ideal"});
    std::vector<double> phi_norm, hetero_norm, ideal_norm;

    for (const auto &bench : evaluationCases()) {
        CaseBaselines base = computeBaselines(bench, pair, oracle);
        Deployment deployment = framework.deploy(bench);

        double phi = base.multicoreSeconds / base.gpuSeconds;
        double hetero =
            deployedSeconds(deployment, bench) / base.gpuSeconds;
        double ideal = base.idealSeconds / base.gpuSeconds;
        phi_norm.push_back(phi);
        hetero_norm.push_back(hetero);
        ideal_norm.push_back(ideal);
        table.addRow({bench.label(), "1.00", formatNumber(phi, 2),
                      formatNumber(hetero, 2),
                      formatNumber(ideal, 2)});
    }
    table.print(std::cout);

    std::cout << "\nGeomeans (normalized to GPU-only):\n"
              << "  XeonPhi-only: "
              << formatNumber(geomean(phi_norm), 3)
              << "\n  HeteroMap:    "
              << formatNumber(geomean(hetero_norm), 3) << "  -> "
              << formatNumber(
                     (1.0 / geomean(hetero_norm) - 1.0) * 100.0, 1)
              << "% better than GPU-only (paper: 14%), "
              << formatNumber((geomean(phi_norm) /
                               geomean(hetero_norm) - 1.0) * 100.0, 1)
              << "% better than Phi-only (paper: 3.8x)\n"
              << "  Ideal:        "
              << formatNumber(geomean(ideal_norm), 3) << "\n";
    return 0;
}
