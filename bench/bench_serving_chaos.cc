/**
 * @file
 * Serving chaos soak: replays mixed traffic (batched, supervised,
 * retried through RetryingClient) against a PredictionService while
 * a seeded ChaosPolicy injects worker stalls, batch crashes (one of
 * them lethal, exercising the watchdog restart), admission delays,
 * and supervised-lane hangs — and, mid-soak, a corrupted model load
 * that must roll back before a clean reload hot-swaps the epoch.
 *
 * Three phases: a clean baseline, the fault window, and a recovery
 * window after disarming. The soak *asserts* its invariants and
 * exits nonzero on any violation:
 *
 *   - zero broken promises: every submitted request gets a terminal
 *     response, whatever the chaos did;
 *   - bounded error rate: error responses <= crash fires x maxBatch
 *     (errors come only from injected batch crashes);
 *   - per-client monotone model epochs across the mid-soak
 *     corrupted-then-rolled-back-then-reloaded model swap;
 *   - the degradation ladder walks back to Normal and the recovery
 *     p99 lands within 2x the baseline (or +5 ms, whichever is
 *     looser — CI boxes are noisy).
 *
 * Forensics ride the soak (telemetry-ON builds): the flight
 * recorder is armed and every chaos crash / ladder escalation past
 * BypassSupervised writes a "<prefix>postmortem-<seq>.jsonl" dump,
 * each line of which must parse as JSON; a fourth phase replays
 * uniform control traffic and then swaps in a corpus the model
 * never trained on (a Kronecker / R-MAT graph plus a long-diameter
 * road grid), asserting the drift monitor's PSI crosses its alert
 * threshold for the shifted corpus and not for the control. A
 * --statusz-out snapshot closes the run.
 *
 * Run: ./bench_serving_chaos [--requests N] [--workers W]
 *                            [--clients C] [--seed S]
 *                            [--postmortem-prefix P]
 *                            [--statusz-out out.json]
 *                            [--telemetry-out out.json]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/fault_model.hh"
#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "model/feature_baseline.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_service.hh"
#include "serve/retrying_client.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "util/trace.hh"
#include "workloads/registry.hh"

using namespace heteromap;
using namespace heteromap::serve;

namespace {

struct SoakOptions {
    std::size_t requests = 150; //!< per phase
    std::size_t workers = 2;
    std::size_t clients = 3;
    uint64_t seed = 7;
    //! Postmortem dump prefix (the service appends
    //! "postmortem-<seq>.jsonl"); dumps stay on disk for CI upload.
    std::string postmortemPrefix = "bench_serving_chaos_";
    std::string statuszOut; //!< empty: no statusz snapshot file
};

SoakOptions
parseArgs(int argc, char **argv)
{
    SoakOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "bench_serving_chaos: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--requests")
            options.requests = std::strtoull(next(), nullptr, 10);
        else if (arg == "--workers")
            options.workers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--clients")
            options.clients = std::strtoull(next(), nullptr, 10);
        else if (arg == "--seed")
            options.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--postmortem-prefix")
            options.postmortemPrefix = next();
        else if (arg == "--statusz-out")
            options.statuszOut = next();
        else {
            std::cerr << "bench_serving_chaos: unknown flag " << arg
                      << "\n";
            std::exit(2);
        }
    }
    options.requests = std::max<std::size_t>(30, options.requests);
    options.clients = std::max<std::size_t>(1, options.clients);
    return options;
}

/** Aggregated outcome of one traffic phase. */
struct PhaseStats {
    uint64_t ok = 0;
    uint64_t errors = 0;
    uint64_t shed = 0;
    uint64_t closed = 0;
    uint64_t brokenPromises = 0;
    uint64_t epochViolations = 0;

    uint64_t
    responses() const
    {
        return ok + errors + shed + closed;
    }
};

int violations = 0;

void
check(bool condition, const std::string &what)
{
    if (condition) {
        std::cout << "  [ok] " << what << "\n";
    } else {
        std::cerr << "  [VIOLATION] " << what << "\n";
        ++violations;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    telemetry::TelemetryFileWriter telemetry_writer(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    const SoakOptions soak = parseArgs(argc, argv);

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    ModelRegistry registry(pair, oracle);

    forensics::armFlightRecorder();

    std::vector<std::shared_ptr<const Workload>> workloads;
    workloads.emplace_back(makeWorkload("PR"));
    workloads.emplace_back(makeWorkload("BFS"));
    const std::vector<std::shared_ptr<const Graph>> graphs = {
        std::make_shared<const Graph>(generateMesh(1024, 4, 1)),
        std::make_shared<const Graph>(
            generatePreferentialAttachment(1024, 4, 7)),
    };
    const std::vector<std::string> graph_names = {"mesh", "social"};

    // The published model carries a feature baseline over the soak's
    // own catalogue so the drift monitor scores live windows; the
    // mid-soak save/load round-trips it through the v3 envelope.
    // Each case is weighted to roughly a drift window's mass — a
    // 4-sample baseline against 64-sample windows would report pure
    // Laplace-smoothing noise as PSI.
    auto baseline_features = std::make_shared<FeatureBaseline>();
    for (const auto &workload : workloads) {
        for (std::size_t g = 0; g < graphs.size(); ++g) {
            const GraphStats stats =
                globalStatsCache().measure(*graphs[g]);
            const FeatureVector features =
                makeCase(*workload, *graphs[g], graph_names[g], stats)
                    .features;
            for (int r = 0; r < 10; ++r)
                baseline_features->add(features);
        }
    }
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree),
                     baseline_features);

    // Snapshot the model to disk: the mid-soak reload reads it back.
    const std::string model_path = "bench_serving_chaos_model.tmp";
    if (!registry.saveActive(model_path).ok()) {
        std::cerr << "bench_serving_chaos: saveActive failed\n";
        return 1;
    }

    auto chaos = std::make_shared<ChaosPolicy>(soak.seed);
    registry.setChaosPolicy(chaos);

    ServiceOptions options;
    options.workers = soak.workers;
    options.maxBatch = 4;
    options.chaos = chaos;
    options.watchdog.pollMs = 2.0;
    options.watchdog.stuckAfterMs = 200.0;
    options.watchdog.recoverAfterMs = 30.0;
    options.postmortemPrefix = soak.postmortemPrefix;
    // Small drift windows so the monitor closes (and scores) windows
    // within a default-length soak.
    options.drift.windowSize = 64;
    PredictionService service(registry, options);

    RetryOptions retry;
    retry.maxAttempts = 4;
    retry.initialBackoffMs = 0.5;
    retry.maxBackoffMs = 8.0;
    retry.breakerThreshold = 8;
    retry.breakerOpenMs = 20.0;
    retry.seed = soak.seed ^ 0xc11e47ULL;
    RetryingClient client(service, retry);

    // Closed-loop traffic: each client keeps one request in flight
    // and checks the monotone-epoch contract on its own stream.
    // Latencies go into the caller's histogram (lock-free record(),
    // so clients write it directly); the phase-4 drift scenario
    // swaps in its own graph corpus.
    auto runPhase = [&](std::size_t count,
                        telemetry::Histogram &latency,
                        const std::vector<std::shared_ptr<const Graph>>
                            &phase_graphs,
                        const std::vector<std::string> &phase_names) {
        PhaseStats stats;
        std::vector<std::thread> threads;
        std::vector<PhaseStats> per_client(soak.clients);
        for (std::size_t c = 0; c < soak.clients; ++c) {
            threads.emplace_back([&, c] {
                PhaseStats &mine = per_client[c];
                uint64_t last_epoch = 0;
                for (std::size_t i = c; i < count;
                     i += soak.clients) {
                    ServeRequest request;
                    request.workload =
                        workloads[i % workloads.size()];
                    request.graph =
                        phase_graphs[(i / 2) % phase_graphs.size()];
                    request.inputName =
                        phase_names[(i / 2) % phase_names.size()];
                    request.supervised = (i % 7 == 0);
                    try {
                        ClientResult result =
                            client.call(std::move(request));
                        const ServeResponse &response =
                            result.response;
                        switch (response.status) {
                          case ServeStatus::Ok:
                            ++mine.ok;
                            latency.record(response.queueMs +
                                           response.serviceMs);
                            if (response.modelEpoch < last_epoch)
                                ++mine.epochViolations;
                            last_epoch = response.modelEpoch;
                            break;
                          case ServeStatus::Error:
                            ++mine.errors;
                            break;
                          case ServeStatus::Shed:
                            ++mine.shed;
                            break;
                          case ServeStatus::Closed:
                            ++mine.closed;
                            break;
                        }
                    } catch (const std::exception &) {
                        // A future that never became ready (or blew
                        // up in get()) is exactly the "broken
                        // promise" the soak exists to rule out.
                        ++mine.brokenPromises;
                    }
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
        for (const PhaseStats &mine : per_client) {
            stats.ok += mine.ok;
            stats.errors += mine.errors;
            stats.shed += mine.shed;
            stats.closed += mine.closed;
            stats.brokenPromises += mine.brokenPromises;
            stats.epochViolations += mine.epochViolations;
        }
        return stats;
    };

    // Per-phase latency histograms (Histogram is non-copyable, so
    // they live here and runPhase records into them by reference).
    telemetry::Histogram baseline_hist, faulted_hist, recovery_hist;
    telemetry::Histogram control_hist, shifted_hist;

    /* ---------------- Phase 1: clean baseline ---------------- */
    std::cout << "phase 1: baseline (" << soak.requests
              << " requests)\n";
    const PhaseStats baseline =
        runPhase(soak.requests, baseline_hist, graphs, graph_names);
    const double baseline_p99 =
        baseline_hist.snapshot().percentile(0.99);

    /* ---------------- Phase 2: fault window ------------------ */
    std::cout << "phase 2: fault window (" << soak.requests
              << " requests, chaos armed)\n";
    {
        ChaosSpec stall;
        stall.point = ChaosPoint::WorkerStall;
        stall.probability = 0.25;
        stall.delayMs = 6.0;
        chaos->arm(stall);

        ChaosSpec crash;
        crash.point = ChaosPoint::WorkerCrashBatch;
        crash.probability = 0.08;
        chaos->arm(crash);

        // One guaranteed lethal crash early in the window: the
        // watchdog must restart the dead worker mid-soak.
        ChaosSpec lethal;
        lethal.point = ChaosPoint::WorkerCrashBatch;
        lethal.probability = 1.0;
        lethal.lethal = true;
        lethal.startVisit = 3;
        lethal.endVisit = 4;
        chaos->arm(lethal);

        ChaosSpec admission;
        admission.point = ChaosPoint::AdmissionDelay;
        admission.probability = 0.1;
        admission.delayMs = 1.5;
        chaos->arm(admission);

        ChaosSpec hang;
        hang.point = ChaosPoint::SupervisorHang;
        hang.probability = 0.5;
        hang.delayMs = 8.0;
        chaos->arm(hang);

        // And the persistence fault: the next loadFrom() sees one
        // flipped bit.
        ChaosSpec corrupt;
        corrupt.point = ChaosPoint::ModelLoadCorrupt;
        corrupt.probability = 1.0;
        corrupt.endVisit = 1;
        chaos->arm(corrupt);
    }

    const uint64_t epoch_before_swap = registry.epoch();
    PhaseStats faulted;
    {
        std::thread traffic([&] {
            faulted = runPhase(soak.requests, faulted_hist, graphs,
                               graph_names);
        });

        // Mid-soak model events, while the fault traffic runs: a
        // corrupted load that must roll back, then a clean reload
        // that must land as a monotone epoch bump.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        const bool corrupt_load_failed =
            !registry.loadFrom(model_path).ok();
        const bool clean_load_ok =
            registry.loadFrom(model_path).ok();
        traffic.join();

        check(corrupt_load_failed,
              "corrupted model load was detected and rolled back");
        check(clean_load_ok, "clean model reload hot-swapped");
    }
    chaos->disarm();

    /* ---------------- Phase 3: recovery ---------------------- */
    std::cout << "phase 3: recovery (" << soak.requests
              << " requests, chaos disarmed)\n";
    {
        // Let the ladder walk back before measuring.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (service.degradationLevel() !=
                   DegradationLevel::Normal &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    }
    const PhaseStats recovery =
        runPhase(soak.requests, recovery_hist, graphs, graph_names);
    const double recovery_p99 =
        recovery_hist.snapshot().percentile(0.99);

    /* ---------------- Phase 4: drift scenario ----------------- */
    // Control: one more round of the uniform training-corpus traffic
    // — the drift monitor must stay quiet. Shift: a corpus the
    // baseline never saw, a Kronecker (R-MAT) graph plus a
    // long-diameter road grid. At bench scale the paper's
    // literature-maxima normalization (graph/datasets.cc: 134M
    // vertices, 3M max degree) flattens the size and degree I-vars
    // of *any* toy graph to the same grid point, so the corpus swap
    // is carried by the diameter dimension: the 64x64 grid's
    // ~126-hop diameter lands at I4 = 0.3 where every training
    // graph sat at 0.0 — exactly the feature-space movement the
    // monitor exists to flag.
    std::cout << "phase 4: drift control + corpus shift (2 x "
              << soak.requests << " requests)\n";
    const PhaseStats control =
        runPhase(soak.requests, control_hist, graphs, graph_names);
    const DriftScores control_scores = service.driftScores();

    const std::vector<std::shared_ptr<const Graph>> shifted_graphs = {
        std::make_shared<const Graph>(
            generateRmat(12, 8.0, soak.seed ^ 0x5eedULL)),
        std::make_shared<const Graph>(
            generateRoadGrid(64, 64, soak.seed ^ 0xbeefULL)),
    };
    const std::vector<std::string> shifted_names = {"rmat",
                                                    "longgrid"};
    const PhaseStats shifted = runPhase(soak.requests, shifted_hist,
                                        shifted_graphs, shifted_names);
    const DriftScores shifted_scores = service.driftScores();

    service.close();
    std::remove(model_path.c_str());

    /* ---------------- Report + invariants -------------------- */
    const uint64_t crash_fires =
        chaos->fires(ChaosPoint::WorkerCrashBatch);
    TextTable table({"metric", "baseline", "faulted", "recovery"});
    auto row = [&](const char *name, uint64_t a, uint64_t b,
                   uint64_t c) {
        table.addRow({name, std::to_string(a), std::to_string(b),
                      std::to_string(c)});
    };
    row("ok", baseline.ok, faulted.ok, recovery.ok);
    row("errors", baseline.errors, faulted.errors, recovery.errors);
    row("shed", baseline.shed, faulted.shed, recovery.shed);
    table.addRow(
        {"p99 (ms)", formatNumber(baseline_p99, 3),
         formatNumber(faulted_hist.snapshot().percentile(0.99), 3),
         formatNumber(recovery_p99, 3)});
    table.print(std::cout);

    std::cout << "chaos fires:";
    for (std::size_t p = 0; p < kNumChaosPoints; ++p) {
        const auto point = static_cast<ChaosPoint>(p);
        std::cout << " " << chaosPointName(point) << "="
                  << chaos->fires(point);
    }
    std::cout << "\nworker restarts=" << service.workerRestarts()
              << " stalls=" << service.workerStalls()
              << " batch failures=" << service.batchFailures()
              << " fallback served=" << service.fallbackServed()
              << " model load failures=" << registry.loadFailures()
              << "\nflight records appended="
              << forensics::auditRecordsAppended()
              << " dropped=" << forensics::auditRecordsDropped()
              << " postmortems=" << service.postmortems()
              << "\ndrift: control psi="
              << formatNumber(control_scores.psi, 4)
              << " shifted psi=" << formatNumber(shifted_scores.psi, 4)
              << " windows=" << shifted_scores.windows
              << " alerts=" << shifted_scores.alerts << "\n";

    std::cout << "invariants:\n";
    const uint64_t total_requests = 5 * soak.requests;
    check(baseline.responses() + faulted.responses() +
                  recovery.responses() + control.responses() +
                  shifted.responses() ==
              total_requests,
          "every request got a terminal response");
    check(baseline.brokenPromises + faulted.brokenPromises +
                  recovery.brokenPromises + control.brokenPromises +
                  shifted.brokenPromises ==
              0,
          "zero broken promises");
    check(baseline.errors == 0 && recovery.errors == 0 &&
              control.errors == 0 && shifted.errors == 0,
          "errors confined to the fault window");
    check(faulted.errors <= crash_fires * options.maxBatch,
          "error rate bounded by crash fires x maxBatch");
    check(baseline.epochViolations + faulted.epochViolations +
                  recovery.epochViolations ==
              0,
          "per-client model epochs stayed monotone");
    check(registry.loadFailures() == 1,
          "exactly the corrupted load failed");
    check(registry.epoch() == epoch_before_swap + 1,
          "rollback kept the epoch; the clean reload bumped it once");
    check(crash_fires >= 1, "the crash fault actually fired");
    check(service.workerRestarts() >= 1,
          "the lethal crash exercised a watchdog restart");
    check(service.degradationLevel() == DegradationLevel::Normal,
          "degradation ladder recovered to Normal");
    check(recovery_p99 <=
              std::max(2.0 * baseline_p99, baseline_p99 + 5.0),
          "recovery p99 within 2x baseline (or +5 ms)");

    // Forensics invariants only bite in telemetry-ON builds: with
    // telemetry compiled out the recorder and drift monitor are
    // no-ops by design.
    if (telemetry::enabled()) {
        check(service.postmortems() >= 1,
              "the lethal chaos crash produced a postmortem dump");
        uint64_t postmortem_lines = 0;
        bool postmortem_parse_ok = true;
        for (uint64_t seq = 0; seq < service.postmortems(); ++seq) {
            const std::string path = soak.postmortemPrefix +
                                     "postmortem-" +
                                     std::to_string(seq) + ".jsonl";
            std::ifstream dump(path);
            if (!dump.is_open()) {
                std::cerr << "  missing postmortem dump: " << path
                          << "\n";
                postmortem_parse_ok = false;
                continue;
            }
            std::string line;
            while (std::getline(dump, line)) {
                if (line.empty())
                    continue;
                ++postmortem_lines;
                std::string error;
                if (!telemetry::validateJson(line, &error)) {
                    std::cerr << "  bad JSONL in " << path << ": "
                              << error << "\n";
                    postmortem_parse_ok = false;
                }
            }
        }
        check(postmortem_parse_ok && postmortem_lines > 0,
              "every postmortem dump line parses as JSON");
        check(control_scores.hasBaseline,
              "drift monitor armed with the published baseline");
        check(control_scores.windows > 0 &&
                  control_scores.psi < options.drift.psiAlert,
              "uniform control corpus stayed under the PSI alert "
              "threshold");
        check(shifted_scores.windows > control_scores.windows &&
                  shifted_scores.psi >= options.drift.psiAlert,
              "R-MAT corpus shift pushed PSI past the alert "
              "threshold");
        check(shifted_scores.alerts > control_scores.alerts,
              "the corpus shift raised a drift alert");
    }

    if (!soak.statuszOut.empty()) {
        std::ofstream out(soak.statuszOut,
                          std::ios::binary | std::ios::trunc);
        if (out.is_open()) {
            out << statuszJson(service.statusz()) << "\n";
            std::cout << "statusz snapshot written to "
                      << soak.statuszOut << "\n";
        } else {
            check(false, "statusz snapshot file is writable");
        }
    }

    if (violations > 0) {
        std::cerr << "bench_serving_chaos: " << violations
                  << " invariant violation(s)\n";
        return 1;
    }
    std::cout << "bench_serving_chaos: all invariants held\n";
    return 0;
}
