/**
 * @file
 * Tests for the synthetic graph generators, including the structural
 * regimes the Table I proxies rely on (diameter, degree skew,
 * density) and the dataset registry itself.
 */

#include <gtest/gtest.h>

#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "util/logging.hh"

namespace heteromap {
namespace {

TEST(GeneratorTest, UniformRandomRespectsSize)
{
    Graph g = generateUniformRandom(1000, 5000, 1);
    EXPECT_EQ(g.numVertices(), 1000u);
    // Symmetrized and deduplicated: between E and 2E arcs.
    EXPECT_GT(g.numEdges(), 5000u);
    EXPECT_LE(g.numEdges(), 10000u);
    EXPECT_TRUE(g.hasWeights());
}

TEST(GeneratorTest, UniformRandomDeterministicInSeed)
{
    Graph a = generateUniformRandom(100, 400, 7);
    Graph b = generateUniformRandom(100, 400, 7);
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
    Graph c = generateUniformRandom(100, 400, 8);
    EXPECT_NE(a.rawNeighbors(), c.rawNeighbors());
}

TEST(GeneratorTest, RmatIsSkewed)
{
    Graph g = generateRmat(12, 8.0, 2);
    GraphStats stats = measureGraph(g, 0);
    // Power-law-ish: max degree far above average.
    EXPECT_GT(static_cast<double>(stats.maxDegree),
              8.0 * stats.avgDegree);
}

TEST(GeneratorTest, RmatRejectsBadProbabilities)
{
    EXPECT_THROW(generateRmat(10, 8.0, 1, 0.6, 0.3, 0.3), PanicError);
}

TEST(GeneratorTest, RoadGridHasHighDiameterAndLowDegree)
{
    Graph g = generateRoadGrid(40, 30, 3);
    GraphStats stats = measureGraph(g);
    EXPECT_EQ(stats.numVertices, 1200u);
    EXPECT_LE(stats.maxDegree, 8u);
    EXPECT_GE(stats.diameter, 40u); // near width + height
    EXPECT_EQ(countComponents(g), 1u);
}

TEST(GeneratorTest, RandomGeometricIsLocal)
{
    Graph g = generateRandomGeometric(2000, 0.05, 4);
    GraphStats stats = measureGraph(g);
    // ~ n * pi * r^2 expected degree.
    EXPECT_GT(stats.avgDegree, 5.0);
    EXPECT_LT(stats.avgDegree, 35.0);
    EXPECT_GE(stats.diameter, 10u);
}

TEST(GeneratorTest, DenseErDensity)
{
    Graph g = generateDenseEr(100, 0.5, 5);
    // Expect about p * n * (n-1) arcs after symmetrization.
    double expected = 0.5 * 100.0 * 99.0;
    EXPECT_NEAR(static_cast<double>(g.numEdges()), expected,
                expected * 0.15);
}

TEST(GeneratorTest, PreferentialAttachmentIsSkewedAndConnected)
{
    Graph g = generatePreferentialAttachment(2000, 4, 6);
    GraphStats stats = measureGraph(g, 2);
    EXPECT_GT(static_cast<double>(stats.maxDegree),
              4.0 * stats.avgDegree);
    EXPECT_EQ(countComponents(g), 1u);
    EXPECT_LE(stats.diameter, 12u);
}

TEST(GeneratorTest, MeshIsNearRegularWithLowDiameter)
{
    Graph g = generateMesh(4096, 9, 7);
    GraphStats stats = measureGraph(g, 2);
    EXPECT_NEAR(stats.avgDegree, 9.0, 3.0);
    EXPECT_LE(stats.maxDegree, 32u);
    EXPECT_LE(stats.diameter, 16u);
    EXPECT_EQ(countComponents(g), 1u);
}

TEST(GeneratorTest, FixturesHaveExpectedShape)
{
    EXPECT_EQ(generatePath(10).numEdges(), 18u);
    EXPECT_EQ(generateCycle(10).numEdges(), 20u);
    EXPECT_EQ(generateStar(10).numEdges(), 18u);
    EXPECT_EQ(generateComplete(5).numEdges(), 20u);
}

TEST(DatasetTest, RegistryHasNineEntriesInPaperOrder)
{
    const auto &datasets = evaluationDatasets();
    ASSERT_EQ(datasets.size(), 9u);
    EXPECT_EQ(datasets[0].shortName(), "CA");
    EXPECT_EQ(datasets[3].shortName(), "Twtr");
    EXPECT_EQ(datasets[8].shortName(), "Kron");
}

TEST(DatasetTest, NominalStatsMatchTableOne)
{
    const Dataset &ca = datasetByShortName("CA");
    EXPECT_EQ(ca.nominal().numVertices, 1'900'000u);
    EXPECT_EQ(ca.nominal().numEdges, 4'700'000u);
    EXPECT_EQ(ca.nominal().maxDegree, 12u);
    EXPECT_EQ(ca.nominal().diameter, 850u);

    const Dataset &twtr = datasetByShortName("Twtr");
    EXPECT_EQ(twtr.nominal().maxDegree, 3'000'000u);
}

TEST(DatasetTest, UnknownShortNameIsFatal)
{
    EXPECT_THROW(datasetByShortName("nope"), FatalError);
}

TEST(DatasetTest, ProxyIsCachedAcrossCalls)
{
    const Dataset &co = datasetByShortName("CO");
    const Graph &first = co.proxy();
    const Graph &second = co.proxy();
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(first.numVertices(), 562u);
}

TEST(DatasetTest, ProxyFamiliesPreserveStructuralRegime)
{
    // Road proxy: high diameter, tiny degree.
    const auto &ca = datasetByShortName("CA").proxyStats();
    EXPECT_GE(ca.diameter, 100u);
    EXPECT_LE(ca.maxDegree, 10u);

    // Social proxy: heavy degree skew.
    const auto &twtr = datasetByShortName("Twtr").proxyStats();
    EXPECT_GT(static_cast<double>(twtr.maxDegree),
              10.0 * twtr.avgDegree);

    // Connectome proxy: dense.
    const auto &co = datasetByShortName("CO").proxyStats();
    EXPECT_GT(co.avgDegree, 100.0);

    // Geometric proxy: high diameter, moderate degree.
    const auto &rgg = datasetByShortName("Rgg").proxyStats();
    EXPECT_GE(rgg.diameter, 50u);
}

TEST(DatasetTest, LiteratureMaximaComeFromTableOne)
{
    LiteratureMaxima maxima = literatureMaxima();
    EXPECT_DOUBLE_EQ(maxima.maxDiameter, 2622.0);
    EXPECT_DOUBLE_EQ(maxima.maxDegree, 3e6);
}

} // namespace
} // namespace heteromap
