/**
 * @file
 * Tests for the parallel offline training sweep: the work-stealing
 * thread pool, byte-identical parallel/serial determinism, per-seed
 * default corpora, exact evaluation accounting via the objective
 * cache, and the annealing budget split.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/training.hh"
#include "graph/generators.hh"
#include "tuner/annealing.hh"
#include "tuner/objective_cache.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace heteromap {
namespace {

// ---------------------------------------------------------------- //
// Thread pool                                                       //
// ---------------------------------------------------------------- //

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 512;
    std::vector<std::atomic<int>> hits(kCount);
    ThreadPool pool(4);
    pool.parallelFor(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ExceptionsPropagateAndThePoolStaysUsable)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran] { ++ran; });
    pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 8);

    // A failed batch must not poison the next one.
    pool.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++ran;
            });
        // No wait(): the destructor joins only after the queues
        // are empty.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, WorkIsStolenAcrossWorkerQueues)
{
    // Tasks are submitted round-robin; one worker's tasks are slow,
    // so the others can only finish early by stealing. All tasks
    // completing before wait() returns is the observable guarantee.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 40; ++i)
        pool.submit([&ran, i] {
            if (i % 4 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            ++ran;
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::defaultThreadCount());
    EXPECT_GE(pool.threadCount(), 1u);
}

// ---------------------------------------------------------------- //
// Objective cache                                                   //
// ---------------------------------------------------------------- //

TEST(ObjectiveCacheTest, RepeatsAreServedFromTheMemo)
{
    std::size_t calls = 0;
    ObjectiveCache cache([&calls](const MConfig &c) {
        ++calls;
        return static_cast<double>(c.cores);
    });
    MConfig a;
    a.accelerator = AcceleratorKind::Multicore;
    a.cores = 8;
    MConfig b = a;
    b.cores = 16;

    EXPECT_DOUBLE_EQ(cache(a), 8.0);
    EXPECT_DOUBLE_EQ(cache(b), 16.0);
    EXPECT_DOUBLE_EQ(cache(a), 8.0);
    EXPECT_DOUBLE_EQ(cache(a), 8.0);
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(cache.invocations(), 2u);
    EXPECT_EQ(cache.hits(), 2u);
}

// ---------------------------------------------------------------- //
// Training pipeline                                                 //
// ---------------------------------------------------------------- //

class TrainingSweepTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }

    Oracle oracle_;

    /** Two small graphs: enough cases to exercise the fan-out. */
    std::vector<TrainingGraph>
    tinyCorpus() const
    {
        std::vector<TrainingGraph> graphs;
        for (auto [name, seed] :
             {std::pair{"tiny-a", 77}, std::pair{"tiny-b", 78}}) {
            Graph g = generateUniformRandom(
                256, 1024, static_cast<uint64_t>(seed));
            GraphStats stats = measureGraph(g);
            graphs.push_back({name, g, stats, stats});
        }
        return graphs;
    }

    static std::string
    databaseBytes(const ProfilerDatabase &db)
    {
        std::ostringstream oss;
        db.save(oss);
        return oss.str();
    }

    static void
    expectIdenticalRuns(TrainingPipeline &serial,
                        TrainingPipeline &parallel,
                        const std::vector<TrainingGraph> &graphs)
    {
        TrainingSet a = serial.run(graphs);
        TrainingSet b = parallel.run(graphs);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].x, b[i].x) << "sample " << i;
            EXPECT_EQ(a[i].y, b[i].y) << "sample " << i;
        }
        EXPECT_EQ(databaseBytes(serial.database()),
                  databaseBytes(parallel.database()));
        EXPECT_EQ(serial.evaluations(), parallel.evaluations());
    }
};

TEST_F(TrainingSweepTest, ParallelGridSweepIsByteIdenticalToSerial)
{
    TrainingOptions options;
    options.syntheticBenchmarks = 4;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Grid;

    TrainingOptions parallel_options = options;
    parallel_options.threads = 4;

    TrainingPipeline serial(primaryPair(), oracle_, options);
    TrainingPipeline parallel(primaryPair(), oracle_,
                              parallel_options);
    expectIdenticalRuns(serial, parallel, tinyCorpus());
}

TEST_F(TrainingSweepTest, ParallelAnnealSweepIsByteIdenticalToSerial)
{
    TrainingOptions options;
    options.syntheticBenchmarks = 3;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Anneal;
    options.searchIterations = 45;

    TrainingOptions parallel_options = options;
    parallel_options.threads = 3;

    TrainingPipeline serial(primaryPair(), oracle_, options);
    TrainingPipeline parallel(primaryPair(), oracle_,
                              parallel_options);
    expectIdenticalRuns(serial, parallel, tinyCorpus());
}

TEST_F(TrainingSweepTest, DifferentSeedsGetDifferentDefaultCorpora)
{
    // Regression: the default corpus used to be a function-local
    // static, so the second pipeline silently trained on graphs
    // generated from the first pipeline's seed.
    TrainingOptions options;
    options.syntheticBenchmarks = 1;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Random;
    options.searchIterations = 8;
    options.threads = 0; // hardware: also exercises the pool

    TrainingOptions other = options;
    options.seed = 101;
    other.seed = 202;

    TrainingPipeline first(primaryPair(), oracle_, options);
    TrainingPipeline second(primaryPair(), oracle_, other);
    TrainingSet corpus_a = first.run();
    TrainingSet corpus_b = second.run();
    ASSERT_EQ(corpus_a.size(), corpus_b.size());

    bool any_difference = false;
    for (std::size_t i = 0; i < corpus_a.size(); ++i)
        any_difference |= !(corpus_a[i].x == corpus_b[i].x);
    EXPECT_TRUE(any_difference)
        << "default corpora should depend on the pipeline seed";
}

TEST_F(TrainingSweepTest, GridEvaluationAccountingIsExact)
{
    TrainingOptions options;
    options.syntheticBenchmarks = 2;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Grid;
    options.threads = 2;

    auto graphs = tinyCorpus();
    TrainingPipeline pipeline(primaryPair(), oracle_, options);
    TrainingSet corpus = pipeline.run(graphs);

    // Both per-side passes cover the full grid once, the tie-break
    // pass is served by the memo, so each case costs exactly one
    // oracle call per candidate.
    const std::size_t grid_size =
        MSearchSpace(primaryPair(), options.granularity)
            .enumerate()
            .size();
    EXPECT_EQ(pipeline.evaluations(), corpus.size() * grid_size);
}

TEST_F(TrainingSweepTest, AnnealBudgetIsDividedAcrossRestarts)
{
    TrainingOptions options;
    options.syntheticBenchmarks = 2;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Anneal;
    options.searchIterations = 90;

    std::vector<TrainingGraph> graphs{tinyCorpus().front()};
    TrainingPipeline pipeline(primaryPair(), oracle_, options);
    TrainingSet corpus = pipeline.run(graphs);

    // Each case spends at most searchIterations + one seed draw per
    // restart; the old behaviour (restarts x searchIterations) would
    // blow well past this bound.
    const std::size_t restarts = AnnealOptions{}.restarts;
    EXPECT_LE(pipeline.evaluations(),
              corpus.size() * (options.searchIterations + restarts));
    EXPECT_GT(pipeline.evaluations(), 0u);
}

} // namespace
} // namespace heteromap
