/**
 * @file
 * Unit tests for the util layer: logging, RNG, statistics helpers,
 * and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/errors.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace heteromap {
namespace {

class SilenceLogs : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }
};

TEST(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(HM_FATAL("user error ", 42), FatalError);
}

TEST(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(HM_PANIC("bug"), PanicError);
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(HM_ASSERT(1 + 1 == 2, "fine"));
}

TEST(LoggingTest, AssertThrowsOnFalse)
{
    EXPECT_THROW(HM_ASSERT(false, "broken"), PanicError);
}

TEST(LoggingTest, MessageCarriesLocationAndText)
{
    try {
        HM_FATAL("distinctive-text");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("distinctive-text"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_util.cc"),
                  std::string::npos);
    }
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t x = rng.nextBounded(17);
        EXPECT_LT(x, 17u);
    }
}

TEST(RngTest, BoundedCoversRange)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(9);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t x = rng.nextRange(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        hit_lo |= (x == -3);
        hit_hi |= (x == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleIsInHalfOpenUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, DoubleMeanApproximatesHalf)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsAreSane)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.nextGaussian();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, DiscreteRespectsWeights)
{
    Rng rng(19);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.nextDiscrete(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, DiscreteRejectsAllZeroWeights)
{
    Rng rng(21);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_THROW(rng.nextDiscrete(weights), PanicError);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(23);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(RngTest, SplitStreamsAreIndependent)
{
    Rng parent(29);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 4);
}

TEST(StatsTest, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatsTest, GeomeanRejectsNonPositive)
{
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
}

TEST(StatsTest, StddevOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolates)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(StatsTest, MinMaxFatalOnEmpty)
{
    EXPECT_THROW(minOf({}), FatalError);
    EXPECT_THROW(maxOf({}), FatalError);
}

TEST(StatsTest, Discretize01SnapsToGrid)
{
    EXPECT_DOUBLE_EQ(discretize01(0.44), 0.4);
    EXPECT_DOUBLE_EQ(discretize01(0.45), 0.5);
    EXPECT_DOUBLE_EQ(discretize01(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(discretize01(2.0), 1.0);
    EXPECT_DOUBLE_EQ(discretize01(0.076), 0.1);
}

TEST(StatsTest, LogNormalizeEndpoints)
{
    EXPECT_DOUBLE_EQ(logNormalize(0.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(logNormalize(100.0, 100.0), 1.0);
    EXPECT_GT(logNormalize(10.0, 100.0), 10.0 / 100.0);
}

TEST(StatsTest, KahanSumIsAccurate)
{
    std::vector<double> xs(10000, 0.1);
    EXPECT_NEAR(kahanSum(xs), 1000.0, 1e-9);
}

TEST(StatsTest, RelDiffSymmetric)
{
    EXPECT_DOUBLE_EQ(relDiff(1.0, 2.0), relDiff(2.0, 1.0));
    EXPECT_DOUBLE_EQ(relDiff(3.0, 3.0), 0.0);
}

TEST(TableTest, PrintsAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::ostringstream oss;
    table.print(oss);
    std::string text = oss.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TableTest, RejectsArityMismatch)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(TableTest, CsvHasNoPadding)
{
    TextTable table({"a", "b"});
    table.addRow({"x", "y"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\nx,y\n");
}

TEST(TableTest, NumberFormatting)
{
    EXPECT_EQ(formatNumber(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.315, 1), "31.5%");
    EXPECT_EQ(formatCount(1234567), "1,234,567");
    EXPECT_EQ(formatCount(42), "42");
}

TEST(ResultTest, CarriesValueOrError)
{
    Result<int> good = 42;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.valueOr(7), 42);

    Result<int> bad =
        makeError(ErrorCode::Parse, 3, "malformed something");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::Parse);
    EXPECT_EQ(bad.error().line, 3u);
    EXPECT_EQ(bad.valueOr(7), 7);
    EXPECT_EQ(bad.error().toString(),
              "parse error (line 3): malformed something");
}

TEST(ResultTest, OrThrowBridgesToFatalError)
{
    EXPECT_EQ(Result<int>(5).orThrow(), 5);
    Result<int> bad = makeError(ErrorCode::Io, 0, "disk on fire");
    EXPECT_THROW(std::move(bad).orThrow(), FatalError);
}

TEST(ResultTest, RecoverableMacroTagsCallSite)
{
    setLogVerbose(false);
    Error err = HM_RECOVERABLE(ErrorCode::Unavailable, "gpu ", 1,
                               " offline");
    setLogVerbose(true);
    EXPECT_EQ(err.code, ErrorCode::Unavailable);
    EXPECT_EQ(err.message, "gpu 1 offline");
    EXPECT_EQ(err.line, 0u);
    EXPECT_STREQ(errorCodeName(ErrorCode::Exhausted), "exhausted");
}

TEST(TimerTest, MeasuresElapsedTime)
{
    Timer timer;
    timer.start();
    double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink += std::sqrt(static_cast<double>(i));
    EXPECT_GT(timer.elapsedMicros(), 0.0);
    EXPECT_GE(timer.elapsedMillis(), 0.0);
    EXPECT_GE(sink, 0.0);
}

TEST(TimerTest, LapsPartitionElapsedTimeExactly)
{
    // lapMillis() restarts from the same clock read it returns, so
    // consecutive laps tile the timeline with no gap or overlap —
    // the property the predict path relies on for its per-stage
    // overhead accounting.
    Timer total;
    total.start();
    Timer lapper;
    lapper.start();

    double sink = 0.0;
    double lap_sum = 0.0;
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 50000; ++i)
            sink += std::sqrt(static_cast<double>(i + lap));
        const double ms = lapper.lapMillis();
        EXPECT_GE(ms, 0.0);
        lap_sum += ms;
    }
    // The laps cover at least the interval they were measured over
    // (total was started first, so it bounds from above).
    EXPECT_GT(lap_sum, 0.0);
    EXPECT_LE(lap_sum, total.elapsedMillis());
    EXPECT_GE(sink, 0.0);
}

TEST(TimerTest, LapRestartsTheTimer)
{
    Timer timer;
    timer.start();
    double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink += std::sqrt(static_cast<double>(i));
    const double first = timer.lapMillis();
    const double second = timer.elapsedMillis();
    EXPECT_GT(first, 0.0);
    // The second reading restarted from the lap, not from start().
    EXPECT_LT(second, first + 1.0);
    EXPECT_GE(sink, 0.0);
}

TEST(LoggingTest, ScopedSinkCapturesRecords)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    {
        ScopedLogSink scoped([&](LogLevel level,
                                 const std::string &message) {
            captured.emplace_back(level, message);
        });
        warn("sink sees ", 42);
        inform("and this too");
    }
    // Restored after scope exit: this goes to stderr, not captured.
    setLogVerbose(false);
    inform("not captured");
    setLogVerbose(true);

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "sink sees 42");
    EXPECT_EQ(captured[1].first, LogLevel::Inform);
    EXPECT_EQ(captured[1].second, "and this too");
}

TEST(LoggingTest, ConcurrentWritersProduceIntactRecords)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    std::vector<std::string> records;
    {
        ScopedLogSink scoped(
            [&](LogLevel, const std::string &message) {
                // The sink runs under the logging mutex, so plain
                // vector access here is safe and each record arrives
                // whole, never interleaved with another thread's.
                records.push_back(message);
            });
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                for (int i = 0; i < kPerThread; ++i)
                    warn("thread ", t, " record ", i, " end");
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    ASSERT_EQ(records.size(),
              std::size_t(kThreads) * std::size_t(kPerThread));
    std::set<std::string> unique(records.begin(), records.end());
    EXPECT_EQ(unique.size(), records.size());
    for (const std::string &record : records) {
        EXPECT_EQ(record.compare(0, 7, "thread "), 0) << record;
        EXPECT_EQ(record.compare(record.size() - 4, 4, " end"), 0)
            << record;
    }
}

} // namespace
} // namespace heteromap
