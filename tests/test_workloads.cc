/**
 * @file
 * Correctness tests for the nine graph benchmarks against independent
 * reference implementations, plus profile-shape checks (the counters
 * the performance models consume must reflect each algorithm's
 * documented behaviour).
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"
#include "workloads/reference.hh"

namespace heteromap {
namespace {

/** Shared small test graphs. */
class WorkloadTest : public ::testing::Test
{
  protected:
    static Graph
    weightedGraph()
    {
        return generateUniformRandom(300, 1500, 5);
    }

    static Graph
    roadGraph()
    {
        return generateRoadGrid(20, 15, 6);
    }
};

TEST_F(WorkloadTest, SsspBfMatchesDijkstra)
{
    Graph g = weightedGraph();
    auto [out, profile] = makeWorkload("SSSP-BF")->runProfiled(g);
    auto ref = referenceDijkstra(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (out.vertexValues[v] >= kUnreachable) {
            EXPECT_GT(ref[v], INT64_MAX / 8) << "vertex " << v;
        } else {
            EXPECT_DOUBLE_EQ(out.vertexValues[v],
                             static_cast<double>(ref[v]))
                << "vertex " << v;
        }
    }
    EXPECT_GT(profile.iterations, 0u);
}

TEST_F(WorkloadTest, SsspDeltaMatchesDijkstra)
{
    Graph g = weightedGraph();
    auto [out, profile] = makeWorkload("SSSP-Delta")->runProfiled(g);
    auto ref = referenceDijkstra(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (out.vertexValues[v] >= kUnreachable) {
            EXPECT_GT(ref[v], INT64_MAX / 8);
        } else {
            EXPECT_DOUBLE_EQ(out.vertexValues[v],
                             static_cast<double>(ref[v]));
        }
    }
    // Delta-stepping must exercise its push-pop and reduction phases.
    EXPECT_NE(profile.findPhase("bucket-pop"), nullptr);
    EXPECT_NE(profile.findPhase("bucket-select"), nullptr);
}

TEST_F(WorkloadTest, SsspVariantsAgreeOnRoadNetwork)
{
    Graph g = roadGraph();
    auto bf = makeWorkload("SSSP-BF")->runProfiled(g).first;
    auto delta = makeWorkload("SSSP-Delta")->runProfiled(g).first;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(bf.vertexValues[v], delta.vertexValues[v]);
}

TEST_F(WorkloadTest, BfsMatchesReferenceHops)
{
    Graph g = weightedGraph();
    auto [out, profile] = makeWorkload("BFS")->runProfiled(g);
    auto ref = bfsHops(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (ref[v] == UINT32_MAX)
            EXPECT_GE(out.vertexValues[v], kUnreachable);
        else
            EXPECT_DOUBLE_EQ(out.vertexValues[v],
                             static_cast<double>(ref[v]));
    }
    EXPECT_NE(profile.findPhase("frontier"), nullptr);
    EXPECT_EQ(profile.findPhase("frontier")->kind,
              PhaseKind::ParetoDynamic);
}

TEST_F(WorkloadTest, DfsReachesExactlyTheComponent)
{
    Graph g = roadGraph();
    auto [out, profile] = makeWorkload("DFS")->runProfiled(g);
    auto ref = bfsHops(g, 0);
    uint64_t reachable = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        bool dfs_reached = out.vertexValues[v] < kUnreachable;
        bool bfs_reached = ref[v] != UINT32_MAX;
        EXPECT_EQ(dfs_reached, bfs_reached) << "vertex " << v;
        reachable += bfs_reached;
    }
    EXPECT_DOUBLE_EQ(out.scalar, static_cast<double>(reachable));
    EXPECT_EQ(profile.findPhase("stack-pop")->kind,
              PhaseKind::PushPop);
}

TEST_F(WorkloadTest, PageRankMatchesReference)
{
    Graph g = weightedGraph();
    auto out = makeWorkload("PR")->runProfiled(g).first;
    auto ref = referencePageRank(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(out.vertexValues[v], ref[v], 1e-9);
}

TEST_F(WorkloadTest, PageRankSumsToOne)
{
    Graph g = generatePreferentialAttachment(500, 3, 9);
    auto out = makeWorkload("PR")->runProfiled(g).first;
    double sum = 0.0;
    for (double r : out.vertexValues)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(WorkloadTest, PageRankDpAgreesWithPullVariant)
{
    Graph g = weightedGraph();
    auto pull = makeWorkload("PR")->runProfiled(g).first;
    auto push = makeWorkload("PR-DP")->runProfiled(g).first;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(pull.vertexValues[v], push.vertexValues[v], 1e-9);
}

TEST_F(WorkloadTest, PageRankDpHasFarMoreAtomics)
{
    Graph g = weightedGraph();
    auto pull = makeWorkload("PR")->runProfiled(g).second;
    auto push = makeWorkload("PR-DP")->runProfiled(g).second;
    EXPECT_GT(push.totalAtomics(), 5.0 * pull.totalAtomics());
}

TEST_F(WorkloadTest, TriangleCountMatchesBruteForce)
{
    Graph g = generateUniformRandom(60, 400, 11);
    auto out = makeWorkload("TRI")->runProfiled(g).first;
    EXPECT_DOUBLE_EQ(out.scalar,
                     static_cast<double>(referenceTriangles(g)));
}

TEST_F(WorkloadTest, TriangleCountOnKnownShapes)
{
    EXPECT_DOUBLE_EQ(
        makeWorkload("TRI")->runProfiled(generateComplete(5))
            .first.scalar,
        10.0); // C(5,3)
    EXPECT_DOUBLE_EQ(
        makeWorkload("TRI")->runProfiled(generateCycle(8))
            .first.scalar,
        0.0);
    EXPECT_DOUBLE_EQ(
        makeWorkload("TRI")->runProfiled(generateStar(6))
            .first.scalar,
        0.0);
}

TEST_F(WorkloadTest, CommunityDetectionFindsPlantedClusters)
{
    // Two dense cliques joined by one bridge edge.
    GraphBuilder builder(20);
    for (VertexId u = 0; u < 10; ++u)
        for (VertexId v = u + 1; v < 10; ++v)
            builder.addEdge(u, v, 4.0f);
    for (VertexId u = 10; u < 20; ++u)
        for (VertexId v = u + 1; v < 20; ++v)
            builder.addEdge(u, v, 4.0f);
    builder.addEdge(0, 10, 0.1f);
    Graph g = builder.symmetrize().build();

    auto out = makeWorkload("COMM")->runProfiled(g).first;
    std::set<double> left(out.vertexValues.begin(),
                          out.vertexValues.begin() + 10);
    std::set<double> right(out.vertexValues.begin() + 10,
                           out.vertexValues.end());
    EXPECT_EQ(left.size(), 1u);
    EXPECT_EQ(right.size(), 1u);
    EXPECT_NE(*left.begin(), *right.begin());
}

TEST_F(WorkloadTest, ConnectedComponentsMatchReference)
{
    GraphBuilder builder(50);
    // Three components: a path, a cycle, and isolated vertices.
    for (VertexId v = 0; v < 14; ++v)
        builder.addEdge(v, v + 1);
    for (VertexId v = 20; v < 30; ++v)
        builder.addEdge(v, v == 29 ? 20 : v + 1);
    Graph g = builder.symmetrize().build();

    auto out = makeWorkload("CONN")->runProfiled(g).first;
    auto ref = referenceComponents(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(out.vertexValues[v],
                         static_cast<double>(ref[v]));
    EXPECT_DOUBLE_EQ(out.scalar,
                     static_cast<double>(countComponents(g)));
}

TEST_F(WorkloadTest, ConnCompOnRandomGraphAgainstBfsLabels)
{
    Graph g = generateUniformRandom(400, 600, 13);
    auto out = makeWorkload("CONN")->runProfiled(g).first;
    auto ref = referenceComponents(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_DOUBLE_EQ(out.vertexValues[v],
                         static_cast<double>(ref[v]));
}

TEST_F(WorkloadTest, RegistryRoundTrip)
{
    EXPECT_EQ(workloadNames().size(), 9u);
    for (const auto &name : workloadNames())
        EXPECT_EQ(makeWorkload(name)->name(), name);
    EXPECT_THROW(makeWorkload("BOGUS"), FatalError);
}

TEST_F(WorkloadTest, RoadGraphNeedsManyMoreIterationsThanSocial)
{
    // The input-dependence that drives the whole paper: iteration
    // counts follow the graph diameter.
    Graph road = generateRoadGrid(40, 40, 14);
    Graph social = generatePreferentialAttachment(1600, 6, 14);
    auto road_prof = makeWorkload("SSSP-BF")->runProfiled(road).second;
    auto social_prof =
        makeWorkload("SSSP-BF")->runProfiled(social).second;
    EXPECT_GT(road_prof.iterations, 4 * social_prof.iterations);
}

TEST_F(WorkloadTest, ProfilesExposeDocumentedPhaseKinds)
{
    Graph g = weightedGraph();
    auto prof = makeWorkload("PR")->runProfiled(g).second;
    EXPECT_EQ(prof.findPhase("gather")->kind,
              PhaseKind::VertexDivision);
    EXPECT_EQ(prof.findPhase("error-reduce")->kind,
              PhaseKind::Reduction);
    EXPECT_GT(prof.findPhase("gather")->fpOps, 0.0);
    EXPECT_GT(prof.barriers, 0u);
}

TEST_F(WorkloadTest, FpHeavyWorkloadsMeasureFpHeavy)
{
    // Measured profiles must reflect the static B6 classification.
    Graph g = weightedGraph();
    auto pr = makeWorkload("PR")->runProfiled(g).second;
    auto bfs = makeWorkload("BFS")->runProfiled(g).second;
    auto fp_ops = [](const WorkloadProfile &prof) {
        double total = 0.0;
        for (const auto &phase : prof.phases)
            total += phase.fpOps;
        return total;
    };
    double pr_fp_share =
        pr.totalOps() > 0.0 ? fp_ops(pr) / pr.totalOps() : 0.0;
    double bfs_fp_share =
        bfs.totalOps() > 0.0 ? fp_ops(bfs) / bfs.totalOps() : 0.0;
    EXPECT_GT(pr_fp_share, 0.4);
    EXPECT_LT(bfs_fp_share, 0.05);
}

TEST_F(WorkloadTest, OutputsAreDeterministic)
{
    Graph g = weightedGraph();
    for (const auto &name : workloadNames()) {
        auto a = makeWorkload(name)->runProfiled(g).first;
        auto b = makeWorkload(name)->runProfiled(g).first;
        EXPECT_EQ(a.vertexValues, b.vertexValues) << name;
        EXPECT_DOUBLE_EQ(a.scalar, b.scalar) << name;
    }
}

} // namespace
} // namespace heteromap
