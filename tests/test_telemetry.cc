/**
 * @file
 * Tests for the telemetry layer: metric semantics (counters, gauges,
 * histograms), snapshot-vs-reset, exact totals under concurrent
 * increments, trace-span nesting and thread attribution in the
 * exported Chrome JSON, the trace-format validator, the instrumented
 * subsystems (predict stages, caches, thread pool, training sweep),
 * and the OFF-build no-op guarantee.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/heteromap.hh"
#include "core/training.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "graph/stats_cache.hh"
#include "tuner/objective_cache.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

uint64_t
counterValue(const telemetry::MetricsSnapshot &snap,
             const std::string &name)
{
    auto found = snap.counters.find(name);
    return found == snap.counters.end() ? 0 : found->second;
}

uint64_t
liveCounter(const std::string &name)
{
    return counterValue(telemetry::registry().snapshot(), name);
}

#if HETEROMAP_TELEMETRY

// ---------------------------------------------------------------- //
// Metric semantics                                                  //
// ---------------------------------------------------------------- //

TEST(Telemetry, CounterAddsAndResets)
{
    telemetry::Counter &c =
        telemetry::registry().counter("test.counter.basic");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(1);
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Telemetry, SameNameYieldsSameMetricObject)
{
    telemetry::Counter &a =
        telemetry::registry().counter("test.counter.same");
    telemetry::Counter &b =
        telemetry::registry().counter("test.counter.same");
    EXPECT_EQ(&a, &b);

    telemetry::Gauge &g1 =
        telemetry::registry().gauge("test.gauge.same");
    telemetry::Gauge &g2 =
        telemetry::registry().gauge("test.gauge.same");
    EXPECT_EQ(&g1, &g2);

    telemetry::Histogram &h1 =
        telemetry::registry().histogram("test.histogram.same");
    telemetry::Histogram &h2 =
        telemetry::registry().histogram("test.histogram.same");
    EXPECT_EQ(&h1, &h2);
}

TEST(Telemetry, GaugeKeepsLastValue)
{
    telemetry::Gauge &g =
        telemetry::registry().gauge("test.gauge.basic");
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Telemetry, HistogramRecordsCountSumMinMaxAndBuckets)
{
    telemetry::Histogram &h =
        telemetry::registry().histogram("test.histogram.basic");
    h.reset();
    h.record(0.25);
    h.record(4.0);
    h.record(7000.0); // beyond the last bound: overflow bucket

    telemetry::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_DOUBLE_EQ(snap.sum, 7004.25);
    EXPECT_DOUBLE_EQ(snap.min, 0.25);
    EXPECT_DOUBLE_EQ(snap.max, 7000.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 7004.25 / 3.0);

    uint64_t bucket_total = 0;
    for (uint64_t n : snap.buckets)
        bucket_total += n;
    EXPECT_EQ(bucket_total, snap.count);
    // The overflow bucket caught the out-of-range value.
    EXPECT_EQ(snap.buckets.back(), 1u);

    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Telemetry, BucketIndexRespectsBounds)
{
    const auto &bounds = telemetry::Histogram::bucketBoundsMs();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        // A value exactly on a bound lands at or before that bound's
        // bucket; anything above the last bound overflows.
        EXPECT_LE(telemetry::Histogram::bucketIndexMs(bounds[i]), i);
    }
    EXPECT_EQ(telemetry::Histogram::bucketIndexMs(
                  bounds.back() * 2.0),
              bounds.size());
}

TEST(Telemetry, SnapshotObservesWithoutClearingAndResetClears)
{
    telemetry::registry().counter("test.snapshot.counter").reset();
    HM_COUNTER_ADD("test.snapshot.counter", 7);
    HM_HISTOGRAM_RECORD_MS("test.snapshot.histogram", 1.5);

    telemetry::MetricsSnapshot first =
        telemetry::registry().snapshot();
    EXPECT_EQ(counterValue(first, "test.snapshot.counter"), 7u);

    // Snapshotting is an observation, not a drain.
    telemetry::MetricsSnapshot second =
        telemetry::registry().snapshot();
    EXPECT_EQ(counterValue(second, "test.snapshot.counter"), 7u);
    EXPECT_GE(second.histograms.at("test.snapshot.histogram").count,
              1u);

    telemetry::registry().reset();
    telemetry::MetricsSnapshot after =
        telemetry::registry().snapshot();
    EXPECT_EQ(counterValue(after, "test.snapshot.counter"), 0u);
    EXPECT_EQ(after.histograms.at("test.snapshot.histogram").count,
              0u);
}

TEST(Telemetry, EmittersIncludeEveryMetric)
{
    telemetry::registry().reset();
    HM_COUNTER_ADD("test.emit.counter", 3);
    HM_GAUGE_SET("test.emit.gauge", 2.5);
    HM_HISTOGRAM_RECORD_MS("test.emit.histogram", 0.75);

    telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
    for (const std::string &text :
         {snap.toText(), snap.toJson(), snap.toCsv()}) {
        EXPECT_NE(text.find("test.emit.counter"), std::string::npos);
        EXPECT_NE(text.find("test.emit.gauge"), std::string::npos);
        EXPECT_NE(text.find("test.emit.histogram"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------- //
// Concurrency: totals must be exact, not approximate                //
// ---------------------------------------------------------------- //

TEST(Telemetry, ConcurrentCounterIncrementsAreExact)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    telemetry::Counter &c =
        telemetry::registry().counter("test.concurrent.counter");
    c.reset();

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i)
                HM_COUNTER_INC("test.concurrent.counter");
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(c.value(),
              uint64_t(kThreads) * uint64_t(kPerThread));
}

TEST(Telemetry, ConcurrentHistogramRecordsAreExact)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    telemetry::Histogram &h =
        telemetry::registry().histogram("test.concurrent.histogram");
    h.reset();

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i)
                HM_HISTOGRAM_RECORD_MS("test.concurrent.histogram",
                                       2.0);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    telemetry::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, uint64_t(kThreads) * uint64_t(kPerThread));
    EXPECT_DOUBLE_EQ(snap.sum, 2.0 * kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(snap.min, 2.0);
    EXPECT_DOUBLE_EQ(snap.max, 2.0);
}

// ---------------------------------------------------------------- //
// Trace spans and Chrome-trace export                               //
// ---------------------------------------------------------------- //

TEST(Telemetry, SpanNestingAndThreadAttributionSurviveExport)
{
    telemetry::clearTrace();
    {
        HM_SPAN("outer");
        {
            HM_SPAN("inner");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        std::thread worker([] {
            HM_SPAN("worker-span");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        });
        worker.join();
    }

    const std::string json =
        telemetry::traceToChromeJson(telemetry::drainTrace());
    std::string error;
    std::vector<telemetry::ParsedTraceEvent> events =
        telemetry::parseChromeTrace(json, &error);
    ASSERT_FALSE(events.empty()) << error;

    const telemetry::ParsedTraceEvent *outer = nullptr;
    const telemetry::ParsedTraceEvent *inner = nullptr;
    const telemetry::ParsedTraceEvent *worker = nullptr;
    for (const auto &event : events) {
        EXPECT_EQ(event.ph, "X");
        EXPECT_TRUE(event.hasDur);
        if (event.name == "outer")
            outer = &event;
        else if (event.name == "inner")
            inner = &event;
        else if (event.name == "worker-span")
            worker = &event;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(worker, nullptr);

    // Nesting: the inner complete event sits inside the outer one on
    // the same thread track.
    EXPECT_EQ(inner->tid, outer->tid);
    EXPECT_GE(inner->ts, outer->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
    // Attribution: the worker thread got its own track.
    EXPECT_NE(worker->tid, outer->tid);
}

TEST(Telemetry, GeneratedTraceJsonValidates)
{
    telemetry::clearTrace();
    {
        HM_SPAN("validate-me");
    }
    std::string error;
    std::size_t num_events = 0;
    EXPECT_TRUE(telemetry::validateChromeTrace(
        telemetry::traceToChromeJson(telemetry::drainTrace()), &error,
        &num_events))
        << error;
    EXPECT_EQ(num_events, 1u);
}

TEST(Telemetry, CombinedTelemetryJsonValidates)
{
    telemetry::clearTrace();
    HM_COUNTER_INC("test.combined.counter");
    {
        HM_SPAN("combined");
    }
    std::string error;
    const std::string json = telemetry::combinedTelemetryJson();
    EXPECT_TRUE(telemetry::validateChromeTrace(json, &error))
        << error;
    // The metrics snapshot rides along in the same file.
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

TEST(Telemetry, ValidatorAcceptsBalancedDurationEvents)
{
    const char *json =
        R"([{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},)"
        R"({"name":"b","ph":"X","ts":2.0,"dur":1.0,"pid":1,"tid":1},)"
        R"({"name":"a","ph":"E","ts":5.0,"pid":1,"tid":1}])";
    std::string error;
    EXPECT_TRUE(telemetry::validateChromeTrace(json, &error)) << error;
}

TEST(Telemetry, ValidatorRejectsMalformedTraces)
{
    std::string error;
    // Not JSON at all.
    EXPECT_FALSE(telemetry::validateChromeTrace("not json", &error));
    // Event missing the required "name".
    EXPECT_FALSE(telemetry::validateChromeTrace(
        R"([{"ph":"X","ts":1.0,"dur":1.0,"pid":1,"tid":1}])",
        &error));
    // Complete event without a duration.
    EXPECT_FALSE(telemetry::validateChromeTrace(
        R"([{"name":"a","ph":"X","ts":1.0,"pid":1,"tid":1}])",
        &error));
    // Unbalanced begin/end on one track.
    EXPECT_FALSE(telemetry::validateChromeTrace(
        R"([{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1}])",
        &error));
    // End with no matching begin.
    EXPECT_FALSE(telemetry::validateChromeTrace(
        R"([{"name":"a","ph":"E","ts":1.0,"pid":1,"tid":1}])",
        &error));
    // Interleaved (non-LIFO) begin/end pairs on the same track.
    EXPECT_FALSE(telemetry::validateChromeTrace(
        R"([{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},)"
        R"({"name":"b","ph":"B","ts":2.0,"pid":1,"tid":1},)"
        R"({"name":"a","ph":"E","ts":3.0,"pid":1,"tid":1},)"
        R"({"name":"b","ph":"E","ts":4.0,"pid":1,"tid":1}])",
        &error));
}

TEST(Telemetry, RingBufferOverflowDropsOldestAndCounts)
{
    telemetry::clearTrace();
    telemetry::registry().counter("trace.dropped").reset();
    const std::size_t kOver = telemetry::kTraceRingCapacity + 100;
    for (std::size_t i = 0; i < kOver; ++i) {
        HM_SPAN("overflow");
    }
    std::vector<telemetry::TraceEvent> events =
        telemetry::drainTrace();
    EXPECT_EQ(events.size(), telemetry::kTraceRingCapacity);
    EXPECT_EQ(liveCounter("trace.dropped"), 100u);
}

// ---------------------------------------------------------------- //
// Instrumented subsystems                                           //
// ---------------------------------------------------------------- //

TEST(Telemetry, PredictStageHistogramsSumToOverheadMs)
{
    setLogVerbose(false);
    telemetry::registry().reset();

    Graph graph = generateRmat(10, 8.0, /*seed=*/7);
    auto workload = makeWorkload("PR");
    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);
    Deployment out = framework.predict(*workload, graph, "probe");
    setLogVerbose(true);

    telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
    double stage_sum_ms = 0.0;
    for (const char *stage :
         {"predict.stage.measure_ms", "predict.stage.featurize_ms",
          "predict.stage.infer_ms"}) {
        ASSERT_TRUE(snap.histograms.count(stage)) << stage;
        EXPECT_EQ(snap.histograms.at(stage).count, 1u) << stage;
        stage_sum_ms += snap.histograms.at(stage).sum;
    }
    ASSERT_GT(out.overheadMs, 0.0);
    EXPECT_NEAR(stage_sum_ms, out.overheadMs,
                out.overheadMs * 0.01);
    EXPECT_EQ(counterValue(snap, "predict.calls"), 1u);
}

TEST(Telemetry, StatsCacheAccessorsMatchRegistryCounters)
{
    Graph graph = generateUniformRandom(512, 2048, /*seed=*/11);
    globalStatsCache().measure(graph); // miss (or hit on rerun)
    globalStatsCache().measure(graph); // definitely a hit

    telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
    EXPECT_EQ(counterValue(snap, "stats_cache.hits"),
              globalStatsCache().hits());
    EXPECT_EQ(counterValue(snap, "stats_cache.misses"),
              globalStatsCache().misses());
    EXPECT_EQ(counterValue(snap, "stats_cache.evictions"),
              globalStatsCache().evictions());
    EXPECT_GE(globalStatsCache().hits(), 1u);
}

TEST(Telemetry, PrivateStatsCacheStaysOutOfTheRegistry)
{
    const uint64_t misses_before = liveCounter("stats_cache.misses");
    GraphStatsCache cache(4);
    Graph graph = generateUniformRandom(256, 1024, /*seed=*/13);
    cache.measure(graph);
    EXPECT_EQ(cache.misses(), 1u);
    // The unnamed cache counts through its own detached counters.
    EXPECT_EQ(liveCounter("stats_cache.misses"), misses_before);
}

TEST(Telemetry, ObjectiveCacheMirrorsIntoTheRegistry)
{
    const uint64_t evals_before =
        liveCounter("objective_cache.evaluations");
    const uint64_t hits_before = liveCounter("objective_cache.hits");

    ObjectiveCache cache([](const MConfig &config) {
        return double(config.cores);
    });
    MConfig a;
    a.cores = 4;
    MConfig b;
    b.cores = 8;
    cache(a);
    cache(b);
    cache(a); // memo hit
    cache(a); // memo hit
    EXPECT_EQ(cache.invocations(), 2u);
    EXPECT_EQ(cache.hits(), 2u);

    EXPECT_EQ(liveCounter("objective_cache.evaluations") -
                  evals_before,
              cache.invocations());
    EXPECT_EQ(liveCounter("objective_cache.hits") - hits_before,
              cache.hits());
}

TEST(Telemetry, ThreadPoolCountsTasksAndSteals)
{
    const uint64_t tasks_before = liveCounter("pool.tasks");
    const uint64_t steals_before = liveCounter("pool.steals");

    // Deterministic steal: tasks round-robin to the two workers as
    // t0 -> w0, t1 -> w1, t2 -> w0. t0 blocks until t2 runs, and t2
    // sits behind the blocked t0 on w0's deque, so whichever worker
    // is not stuck must steal to make progress.
    std::promise<void> unblock;
    std::shared_future<void> unblocked =
        unblock.get_future().share();
    {
        ThreadPool pool(2);
        pool.submit([unblocked] { unblocked.wait(); });
        pool.submit([] {});
        pool.submit([&unblock] { unblock.set_value(); });
        pool.wait();
    }

    EXPECT_EQ(liveCounter("pool.tasks") - tasks_before, 3u);
    EXPECT_GE(liveCounter("pool.steals") - steals_before, 1u);
}

TEST(Telemetry, TrainingSweepReportsThroughTheRegistry)
{
    setLogVerbose(false);
    const telemetry::MetricsSnapshot before =
        telemetry::registry().snapshot();

    std::vector<TrainingGraph> graphs;
    for (auto [name, seed] :
         {std::pair{"tel-a", 91}, std::pair{"tel-b", 92}}) {
        Graph g = generateUniformRandom(256, 1024,
                                        static_cast<uint64_t>(seed));
        GraphStats stats = measureGraph(g);
        graphs.push_back({name, g, stats, stats});
    }

    Oracle oracle;
    TrainingOptions options;
    options.syntheticBenchmarks = 4;
    options.syntheticIterations = 1;
    options.threads = 4;
    TrainingPipeline pipeline(primaryPair(), oracle, options);
    TrainingSet corpus = pipeline.run(graphs);
    setLogVerbose(true);
    ASSERT_FALSE(corpus.empty());

    const telemetry::MetricsSnapshot after =
        telemetry::registry().snapshot();
    const std::size_t cases =
        graphs.size() * options.syntheticBenchmarks;

    // The registry's process-wide objective-cache accounting must
    // agree exactly with the pipeline's own per-case tally.
    EXPECT_EQ(counterValue(after, "objective_cache.evaluations") -
                  counterValue(before, "objective_cache.evaluations"),
              pipeline.evaluations());
    EXPECT_EQ(counterValue(after, "train.runs") -
                  counterValue(before, "train.runs"),
              1u);
    EXPECT_EQ(counterValue(after, "train.cases") -
                  counterValue(before, "train.cases"),
              cases);
    // The sweep fanned its cases out over the instrumented pool.
    EXPECT_GE(counterValue(after, "pool.tasks") -
                  counterValue(before, "pool.tasks"),
              uint64_t(cases));
}

#else // !HETEROMAP_TELEMETRY

// ---------------------------------------------------------------- //
// OFF build: every call site must no-op                             //
// ---------------------------------------------------------------- //

TEST(Telemetry, OffBuildRecordsNothing)
{
    HM_COUNTER_INC("off.counter");
    HM_COUNTER_ADD("off.counter", 10);
    HM_GAUGE_SET("off.gauge", 1.0);
    HM_HISTOGRAM_RECORD_MS("off.histogram", 2.0);
    {
        HM_SPAN("off-span");
    }

    EXPECT_FALSE(telemetry::enabled());
    EXPECT_TRUE(telemetry::registry().snapshot().empty());
    EXPECT_TRUE(telemetry::drainTrace().empty());
    EXPECT_EQ(liveCounter("off.counter"), 0u);
}

TEST(Telemetry, OffBuildMetricTypesStillWork)
{
    // The types stay functional so cache accessors keep their
    // semantics in OFF builds; only the macros and the registry
    // snapshot go dark.
    GraphStatsCache cache(4);
    Graph graph = generateUniformRandom(256, 1024, /*seed=*/17);
    cache.measure(graph);
    cache.measure(graph);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(Telemetry, OffBuildPredictStillChargesOverhead)
{
    setLogVerbose(false);
    Graph graph = generateRmat(9, 8.0, /*seed=*/5);
    auto workload = makeWorkload("PR");
    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);
    Deployment out = framework.predict(*workload, graph, "probe");
    setLogVerbose(true);
    EXPECT_GT(out.overheadMs, 0.0);
    EXPECT_TRUE(telemetry::registry().snapshot().empty());
}

#endif // HETEROMAP_TELEMETRY

} // namespace
} // namespace heteromap
