/**
 * @file
 * Tests for the phase-level mapping extension.
 */

#include <gtest/gtest.h>

#include "core/phase_mapping.hh"
#include "graph/datasets.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

class PhaseMappingTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }

    Oracle oracle_;

    PhaseMappingResult
    mapCase(const char *workload, const char *input,
            double interconnect = 12.0)
    {
        auto w = makeWorkload(workload);
        BenchmarkCase bench = makeCase(*w, datasetByShortName(input));
        return evaluatePhaseMapping(bench, pinnedPair(primaryPair()),
                                    oracle_, interconnect);
    }
};

TEST_F(PhaseMappingTest, AssignsEveryPhase)
{
    PhaseMappingResult r = mapCase("PR", "CO");
    EXPECT_EQ(r.assignment.size(), 2u); // gather + error-reduce
    EXPECT_EQ(r.assignment[0].first, "gather");
    EXPECT_GT(r.wholeBenchmarkSeconds, 0.0);
    EXPECT_GT(r.freeTransferSeconds, 0.0);
}

TEST_F(PhaseMappingTest, FreeTransferNeverWorseThanSplitPlusEpsilon)
{
    // With free transfers, picking per-phase minima under the same
    // tuned configs can only help relative to evaluating the full
    // profile on the better single accelerator, up to the modelling
    // slack from splitting barrier shares.
    for (const char *w : {"PR", "SSSP-Delta", "COMM"}) {
        PhaseMappingResult r = mapCase(w, "LJ");
        EXPECT_LT(r.freeTransferSeconds,
                  r.wholeBenchmarkSeconds * 1.15)
            << w;
    }
}

TEST_F(PhaseMappingTest, TransfersOnlyChargedWhenAssignmentSplits)
{
    PhaseMappingResult r = mapCase("BFS", "CA");
    // Single-phase workload: no switches possible.
    EXPECT_EQ(r.switchesPerIteration, 0u);
    EXPECT_DOUBLE_EQ(r.freeTransferSeconds, r.withTransferSeconds);
}

TEST_F(PhaseMappingTest, SlowerInterconnectCostsMore)
{
    // Find a split case; PR tends to split its reduce phase.
    PhaseMappingResult fast = mapCase("PR", "FB", 12.0);
    PhaseMappingResult slow = mapCase("PR", "FB", 1.0);
    EXPECT_EQ(fast.switchesPerIteration, slow.switchesPerIteration);
    if (fast.switchesPerIteration > 0) {
        EXPECT_GT(slow.withTransferSeconds,
                  fast.withTransferSeconds);
    } else {
        EXPECT_DOUBLE_EQ(slow.withTransferSeconds,
                         fast.withTransferSeconds);
    }
}

TEST_F(PhaseMappingTest, RejectsNonPositiveInterconnect)
{
    EXPECT_THROW(mapCase("PR", "CO", 0.0), PanicError);
}

} // namespace
} // namespace heteromap
