/**
 * @file
 * Tests for the network serving tier (src/net/): wire-codec
 * round-trips and the malformed-frame fuzz tables, consistent-hash
 * router determinism and bounded key movement, token-bucket
 * admission with injected clocks, the shard-aware statusz roll-up,
 * and loopback end-to-end serving — echo under load, transport
 * errors feeding the RetryingClient breaker ladder, per-shard cache
 * affinity, and quota fairness. Every suite name contains "Net" so
 * `tools/check_tsan.sh -R Net` runs exactly this file under
 * ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "net/admission.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "net/shard_router.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "serve/model_registry.hh"
#include "serve/retrying_client.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace net {
namespace {

// --- Wire codec ------------------------------------------------------

WireRequest
sampleRequest()
{
    WireRequest request;
    request.clientId = 0xc11e47;
    request.supervised = true;
    request.priority = true;
    request.deadlineMs = 12.5;
    request.sweeps = 4;
    request.seed = 99;
    request.workload = "PR";
    request.graph = "mesh";
    return request;
}

WireResponse
sampleResponse()
{
    WireResponse response;
    response.status = 2; // Error
    response.shedReason = 1;
    response.degradationLevel = 3;
    response.servedByFallback = true;
    response.modelEpoch = 7;
    response.accelerator = 1;
    response.threads = 16;
    response.predictedSeconds = 0.125;
    response.overheadMs = 1.5;
    response.queueMs = 0.25;
    response.serviceMs = 2.0;
    response.batchSize = 3;
    response.hasError = true;
    response.errorCode = 4;
    response.errorMessage = "batch crashed";
    return response;
}

TEST(NetWire, RequestRoundTripsByteIdentically)
{
    std::string frame;
    encodeRequest(42, sampleRequest(), frame);
    ASSERT_GE(frame.size(), kHeaderBytes);

    auto header = decodeHeader(frame);
    ASSERT_TRUE(header.ok()) << header.error().toString();
    EXPECT_EQ(header.value().type, FrameType::PredictRequest);
    EXPECT_EQ(header.value().requestId, 42u);
    EXPECT_EQ(header.value().flags & kFlagSupervised,
              kFlagSupervised);
    EXPECT_EQ(header.value().flags & kFlagPriority, kFlagPriority);
    EXPECT_EQ(header.value().payloadLen,
              frame.size() - kHeaderBytes);

    auto decoded = decodeRequest(
        std::string_view(frame).substr(kHeaderBytes));
    ASSERT_TRUE(decoded.ok()) << decoded.error().toString();
    EXPECT_EQ(decoded.value().clientId, 0xc11e47u);
    EXPECT_DOUBLE_EQ(decoded.value().deadlineMs, 12.5);
    EXPECT_EQ(decoded.value().sweeps, 4u);
    EXPECT_EQ(decoded.value().seed, 99u);
    EXPECT_EQ(decoded.value().workload, "PR");
    EXPECT_EQ(decoded.value().graph, "mesh");

    // Re-encoding the decoded request (with the flag mirrors
    // restored from the header) reproduces the identical bytes.
    WireRequest again = decoded.value();
    again.supervised =
        (header.value().flags & kFlagSupervised) != 0;
    again.priority = (header.value().flags & kFlagPriority) != 0;
    std::string frame2;
    encodeRequest(42, again, frame2);
    EXPECT_EQ(frame, frame2);
}

TEST(NetWire, ResponseRoundTripsByteIdentically)
{
    std::string frame;
    encodeResponse(7, sampleResponse(), frame);
    auto header = decodeHeader(frame);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header.value().type, FrameType::PredictResponse);

    auto decoded = decodeResponse(
        std::string_view(frame).substr(kHeaderBytes));
    ASSERT_TRUE(decoded.ok()) << decoded.error().toString();
    EXPECT_EQ(decoded.value().modelEpoch, 7u);
    EXPECT_EQ(decoded.value().threads, 16u);
    EXPECT_TRUE(decoded.value().servedByFallback);
    EXPECT_TRUE(decoded.value().hasError);
    EXPECT_EQ(decoded.value().errorMessage, "batch crashed");
    EXPECT_DOUBLE_EQ(decoded.value().predictedSeconds, 0.125);

    std::string frame2;
    encodeResponse(7, decoded.value(), frame2);
    EXPECT_EQ(frame, frame2);
}

TEST(NetWire, ControlFramesRoundTrip)
{
    // Every remaining frame kind: encode, decode, byte-identical
    // re-encode.
    struct ControlCase {
        const char *name;
        void (*encode)(uint64_t, std::string &);
        FrameType type;
    };
    const ControlCase cases[] = {
        {"ping", encodePing, FrameType::Ping},
        {"pong", encodePong, FrameType::Pong},
        {"statusz", encodeStatusz, FrameType::Statusz},
    };
    for (const auto &control : cases) {
        std::string frame;
        control.encode(11, frame);
        EXPECT_EQ(frame.size(), kHeaderBytes) << control.name;
        auto header = decodeHeader(frame);
        ASSERT_TRUE(header.ok()) << control.name;
        EXPECT_EQ(header.value().type, control.type) << control.name;
        EXPECT_EQ(header.value().payloadLen, 0u) << control.name;
        std::string frame2;
        control.encode(11, frame2);
        EXPECT_EQ(frame, frame2) << control.name;
    }

    std::string frame;
    encodeStatuszResponse(3, "{\"ok\":true}", frame);
    auto header = decodeHeader(frame);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header.value().type, FrameType::StatuszResponse);
    auto json = decodeStatuszResponse(
        std::string_view(frame).substr(kHeaderBytes));
    ASSERT_TRUE(json.ok());
    EXPECT_EQ(json.value(), "{\"ok\":true}");
}

TEST(NetWire, MalformedHeaderTable)
{
    // Fuzz table over every malformed-header class; each must come
    // back as a recoverable error — never a crash, never success.
    std::string good;
    encodeRequest(1, sampleRequest(), good);

    struct HeaderCase {
        const char *name;
        std::size_t offset;
        char value;
        ErrorCode expect;
    };
    const HeaderCase cases[] = {
        {"bad magic", 0, 'X', ErrorCode::Parse},
        {"version skew", 4, 9, ErrorCode::Parse},
        {"unknown frame type", 5, 99, ErrorCode::Parse},
        {"zero frame type", 5, 0, ErrorCode::Parse},
    };
    for (const auto &fuzz : cases) {
        std::string frame = good;
        frame[fuzz.offset] = fuzz.value;
        auto header = decodeHeader(frame);
        ASSERT_FALSE(header.ok()) << fuzz.name;
        EXPECT_EQ(header.error().code, fuzz.expect) << fuzz.name;
    }

    // Oversized declared length: stamp payloadLen > the cap.
    std::string frame = good;
    const uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(frame.data() + 16, &huge, sizeof(huge));
    auto header = decodeHeader(frame);
    ASSERT_FALSE(header.ok());
    EXPECT_EQ(header.error().code, ErrorCode::OutOfRange);
}

TEST(NetWire, TruncatedAndOversizedPayloadTable)
{
    // Truncating the request payload at every byte boundary must be
    // a recoverable Parse error; so must trailing garbage (the
    // payload/declared-length mismatch class).
    std::string frame;
    encodeRequest(1, sampleRequest(), frame);
    const std::string_view payload =
        std::string_view(frame).substr(kHeaderBytes);

    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        auto decoded = decodeRequest(payload.substr(0, cut));
        ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
        EXPECT_EQ(decoded.error().code, ErrorCode::Parse)
            << "cut at " << cut;
    }
    std::string padded(payload);
    padded.push_back('\0');
    EXPECT_FALSE(decodeRequest(padded).ok());

    std::string response_frame;
    encodeResponse(2, sampleResponse(), response_frame);
    const std::string_view response_payload =
        std::string_view(response_frame).substr(kHeaderBytes);
    for (std::size_t cut = 0; cut < response_payload.size();
         cut += 3) {
        auto decoded = decodeResponse(response_payload.substr(0, cut));
        ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
    }
    std::string response_padded(response_payload);
    response_padded.append("xy");
    EXPECT_FALSE(decodeResponse(response_padded).ok());

    // A string whose declared length runs past the payload end.
    std::string lying(payload);
    lying[28] = static_cast<char>(0xff); // workload length low byte
    lying[29] = static_cast<char>(0xff); // and high byte
    EXPECT_FALSE(decodeRequest(lying).ok());

    EXPECT_FALSE(decodeStatuszResponse("").ok());
}

TEST(NetWire, OversizedStatuszDocumentIsCappedToAStub)
{
    // A fleet document over the frame cap must not encode a frame
    // whose declared length the peer's own decodeHeader rejects —
    // statusz would self-break exactly when the fleet is widest.
    // Oversized documents ship as a small valid-JSON stub instead.
    const std::string huge(kMaxPayloadBytes + 1, 'x');
    std::string frame;
    encodeStatuszResponse(9, huge, frame);

    auto header = decodeHeader(frame);
    ASSERT_TRUE(header.ok()) << header.error().toString();
    EXPECT_EQ(header.value().type, FrameType::StatuszResponse);
    EXPECT_LE(header.value().payloadLen, kMaxPayloadBytes);

    auto payload = decodeStatuszResponse(
        std::string_view(frame).substr(kHeaderBytes));
    ASSERT_TRUE(payload.ok());
    EXPECT_NE(payload.value().find("\"statusz_truncated\":true"),
              std::string_view::npos);
    EXPECT_NE(payload.value().find(std::to_string(huge.size())),
              std::string_view::npos);

    // At the cap exactly, the document still ships verbatim.
    const std::string at_cap(kMaxPayloadBytes, 'y');
    std::string cap_frame;
    encodeStatuszResponse(10, at_cap, cap_frame);
    auto cap_header = decodeHeader(cap_frame);
    ASSERT_TRUE(cap_header.ok());
    EXPECT_EQ(cap_header.value().payloadLen, kMaxPayloadBytes);
}

// --- Consistent-hash router -----------------------------------------

TEST(NetRouter, DeterministicAcrossInstances)
{
    ShardRouter a(4), b(4);
    for (uint64_t key = 0; key < 4096; ++key)
        ASSERT_EQ(a.route(mix64(key)), b.route(mix64(key)));
}

TEST(NetRouter, SameFingerprintSameShard)
{
    // Two Graph objects with identical structure fingerprint alike
    // and therefore route alike — the warm-cache guarantee.
    const Graph g1 = generateMesh(512, 4, 1);
    const Graph g2 = generateMesh(512, 4, 1);
    ASSERT_EQ(mixFingerprint(fingerprintGraph(g1)),
              mixFingerprint(fingerprintGraph(g2)));
    ShardRouter router(8);
    EXPECT_EQ(router.route(mixFingerprint(fingerprintGraph(g1))),
              router.route(mixFingerprint(fingerprintGraph(g2))));
}

TEST(NetRouter, KeysSpreadAcrossShards)
{
    ShardRouter router(4);
    std::vector<std::size_t> hits(4, 0);
    const std::size_t keys = 20000;
    for (uint64_t key = 0; key < keys; ++key)
        ++hits[router.route(mix64(key))];
    for (std::size_t shard = 0; shard < hits.size(); ++shard) {
        // Each shard owns 25% in expectation; 64 vnodes keep the
        // spread well within [10%, 45%].
        EXPECT_GT(hits[shard], keys / 10) << "shard " << shard;
        EXPECT_LT(hits[shard], keys * 45 / 100) << "shard " << shard;
    }
}

TEST(NetRouter, ShardCountChangeMovesBoundedFraction)
{
    // Growing N -> N+1 must move about 1/(N+1) of the keys; modulo
    // routing would move ~N/(N+1). Assert we stay far below that.
    const std::size_t keys = 20000;
    for (std::size_t shards = 2; shards <= 6; ++shards) {
        ShardRouter before(shards), after(shards + 1);
        std::size_t moved = 0;
        for (uint64_t key = 0; key < keys; ++key)
            if (before.route(mix64(key)) != after.route(mix64(key)))
                ++moved;
        const double fraction =
            static_cast<double>(moved) / static_cast<double>(keys);
        const double theoretical =
            1.0 / static_cast<double>(shards + 1);
        EXPECT_GT(fraction, 0.0) << shards;
        // Allow 2x the theoretical fraction for vnode variance —
        // still a factor >= 2.6 below modulo's N/(N+1) reshuffle.
        EXPECT_LT(fraction, 2.0 * theoretical)
            << shards << " -> " << shards + 1;
    }
}

// --- Admission -------------------------------------------------------

constexpr int64_t kSecondNs = 1'000'000'000;

TEST(NetAdmissionTest, BurstThenQuotaRejected)
{
    AdmissionOptions options;
    options.clientRatePerSec = 10.0;
    options.clientBurst = 5.0;
    NetAdmission admission(options);

    int64_t now = kSecondNs;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(admission.admit(1, Lane::Normal, now),
                  AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);

    // 100 ms refills exactly one token at 10 rps.
    now += kSecondNs / 10;
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);

    EXPECT_EQ(admission.accepted(Lane::Normal), 6u);
    EXPECT_EQ(admission.quotaRejected(Lane::Normal), 2u);
}

TEST(NetAdmissionTest, ClientsAreIsolated)
{
    AdmissionOptions options;
    options.clientRatePerSec = 1.0;
    options.clientBurst = 2.0;
    NetAdmission admission(options);

    int64_t now = kSecondNs;
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);
    // Client 2's bucket is untouched by client 1's exhaustion.
    EXPECT_EQ(admission.admit(2, Lane::Normal, now),
              AdmissionDecision::Admitted);
}

TEST(NetAdmissionTest, ExplicitQuotaOverridesDefault)
{
    AdmissionOptions options;
    options.clientBurst = 1.0;
    NetAdmission admission(options);
    admission.setClientQuota(7, 100.0, 10.0);

    int64_t now = kSecondNs;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(admission.admit(7, Lane::Normal, now),
                  AdmissionDecision::Admitted)
            << i;
    EXPECT_EQ(admission.admit(7, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);
    // Default clients still get the 1-token burst.
    EXPECT_EQ(admission.admit(8, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(8, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);
}

TEST(NetAdmissionTest, PriorityLaneBypassesNormalThrottle)
{
    AdmissionOptions options;
    options.clientRatePerSec = 1e6; // client quotas out of the way
    options.clientBurst = 1e6;
    options.normalLaneRatePerSec = 1.0;
    options.normalLaneBurst = 2.0;
    NetAdmission admission(options);

    int64_t now = kSecondNs;
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1, Lane::Normal, now),
              AdmissionDecision::LaneShed);
    // Priority traffic never draws from the normal-lane bucket.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(admission.admit(1, Lane::Priority, now),
                  AdmissionDecision::Admitted);
    EXPECT_EQ(admission.laneShed(Lane::Normal), 1u);
    EXPECT_EQ(admission.accepted(Lane::Priority), 50u);
}

TEST(NetAdmissionTest, ClientTableIsBoundedWithPinnedSurvivors)
{
    AdmissionOptions options;
    options.maxTrackedClients = 8;
    NetAdmission admission(options);
    admission.setClientQuota(1000, 5.0, 1.0);

    int64_t now = kSecondNs;
    // Exhaust the pinned client's 1-token burst.
    EXPECT_EQ(admission.admit(1000, Lane::Normal, now),
              AdmissionDecision::Admitted);
    EXPECT_EQ(admission.admit(1000, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);

    // Churn far more default clients than the table holds.
    for (uint64_t client = 0; client < 100; ++client)
        admission.admit(client, Lane::Normal, now);
    EXPECT_LE(admission.trackedClients(), 8u);

    // The pinned quota survived the LRU churn: still exhausted (an
    // evicted-and-recreated bucket would have a fresh burst).
    EXPECT_EQ(admission.admit(1000, Lane::Normal, now),
              AdmissionDecision::QuotaRejected);
}

TEST(NetAdmissionTest, ConcurrentInstancesAdmitIndependently)
{
    // Regression: the lane telemetry-counter caches were file-scope
    // and lazily filled under each instance's own mutex_, so two
    // admissions admitting concurrently in one process raced on the
    // shared pointer slots. They are per-instance now; running two
    // instances from two threads lets TSan vouch for it.
    AdmissionOptions options;
    options.clientRatePerSec = 0.0;
    options.clientBurst = 1000.0;
    NetAdmission first(options);
    NetAdmission second(options);

    auto hammer = [](NetAdmission &admission, uint64_t client) {
        for (int64_t i = 0; i < 500; ++i)
            admission.admit(client,
                            i % 2 ? Lane::Priority : Lane::Normal,
                            i);
    };
    std::thread one([&] { hammer(first, 1); });
    std::thread two([&] { hammer(second, 2); });
    one.join();
    two.join();

    EXPECT_EQ(first.accepted(Lane::Normal), 250u);
    EXPECT_EQ(first.accepted(Lane::Priority), 250u);
    EXPECT_EQ(second.accepted(Lane::Normal), 250u);
    EXPECT_EQ(second.accepted(Lane::Priority), 250u);
}

// --- Endpoints -------------------------------------------------------

TEST(NetSocket, EndpointParsing)
{
    auto tcp = parseEndpoint("tcp:127.0.0.1:7070");
    ASSERT_TRUE(tcp.ok());
    EXPECT_EQ(tcp.value().family, Endpoint::Family::Tcp);
    EXPECT_EQ(tcp.value().host, "127.0.0.1");
    EXPECT_EQ(tcp.value().port, 7070);

    auto implied = parseEndpoint("127.0.0.1:0");
    ASSERT_TRUE(implied.ok());
    EXPECT_EQ(implied.value().family, Endpoint::Family::Tcp);

    auto unix_ep = parseEndpoint("unix:/tmp/hm-test.sock");
    ASSERT_TRUE(unix_ep.ok());
    EXPECT_EQ(unix_ep.value().family, Endpoint::Family::Unix);
    EXPECT_EQ(unix_ep.value().path, "/tmp/hm-test.sock");

    EXPECT_FALSE(parseEndpoint("unix:").ok());
    EXPECT_FALSE(parseEndpoint("tcp:127.0.0.1:notaport").ok());
    EXPECT_FALSE(parseEndpoint("tcp:127.0.0.1:99999").ok());
    EXPECT_FALSE(parseEndpoint("justahost").ok());
}

// --- Statusz aggregation ---------------------------------------------

serve::ServiceStatus
shardStatus(const std::string &prefix, uint64_t completed,
            uint64_t hits, uint64_t misses)
{
    serve::ServiceStatus status;
    status.statsPrefix = prefix;
    status.completed = completed;
    status.statsHits = hits;
    status.statsMisses = misses;
    status.workers = 2;
    status.queueDepth = 1;
    status.queueCapacity = 10;
    return status;
}

TEST(NetStatusz, SharedPrefixCountsOnce)
{
    // Three shards all mirroring into "serve.stats_cache" read the
    // same process aggregate — the fleet roll-up must not triple it.
    std::vector<serve::ServiceStatus> shards = {
        shardStatus("serve.stats_cache", 10, 100, 20),
        shardStatus("serve.stats_cache", 20, 100, 20),
        shardStatus("serve.stats_cache", 30, 100, 20),
    };
    const auto fleet = serve::aggregateStatusz(shards);
    EXPECT_EQ(fleet.completed, 60u); // per-shard counters still sum
    EXPECT_EQ(fleet.statsHits, 100u);
    EXPECT_EQ(fleet.statsMisses, 20u);
    EXPECT_EQ(fleet.workers, 6u);
    EXPECT_EQ(fleet.queueCapacity, 30u);
}

TEST(NetStatusz, DistinctPrefixesSum)
{
    std::vector<serve::ServiceStatus> shards = {
        shardStatus("serve.shard0.stats_cache", 1, 40, 4),
        shardStatus("serve.shard1.stats_cache", 2, 50, 5),
        shardStatus("", 3, 60, 6), // detached: private counters
        shardStatus("", 4, 70, 7),
    };
    const auto fleet = serve::aggregateStatusz(shards);
    EXPECT_EQ(fleet.statsHits, 40u + 50u + 60u + 70u);
    EXPECT_EQ(fleet.statsMisses, 4u + 5u + 6u + 7u);
}

TEST(NetStatusz, FleetJsonCarriesShardBreakdown)
{
    std::vector<serve::ServiceStatus> shards = {
        shardStatus("serve.shard0.stats_cache", 5, 1, 1),
        shardStatus("serve.shard1.stats_cache", 6, 2, 2),
    };
    const std::string json = serve::fleetStatuszJson(shards);
    EXPECT_NE(json.find("\"type\":\"statusz\""), std::string::npos);
    EXPECT_NE(json.find("\"shard_count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"fleet\":"), std::string::npos);
    EXPECT_NE(json.find("\"shards\":["), std::string::npos);

    const std::string text = serve::fleetStatuszText(shards);
    EXPECT_NE(text.find("shard 0"), std::string::npos);
    EXPECT_NE(text.find("shard 1"), std::string::npos);
}

// --- Loopback end-to-end ---------------------------------------------

class NetLoopback : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogVerbose(false);
        oracle_ = std::make_unique<Oracle>();
        pair_ = pinnedPair(primaryPair());
        registry_ = std::make_unique<serve::ModelRegistry>(pair_,
                                                           *oracle_);
        registry_->publish(
            PredictorKind::DecisionTree,
            makePredictor(PredictorKind::DecisionTree));
    }

    /** Start a server on an ephemeral loopback port. */
    Endpoint
    startServer(ServerOptions options)
    {
        auto endpoint = parseEndpoint("tcp:127.0.0.1:0");
        options.endpoint = endpoint.value();
        server_ =
            std::make_unique<NetServer>(*registry_, options);
        server_->registerGraph("mesh",
                               std::make_shared<const Graph>(
                                   generateMesh(256, 4, 1)));
        server_->registerGraph(
            "social", std::make_shared<const Graph>(
                          generatePreferentialAttachment(256, 4, 7)));
        server_->registerGraph("road",
                               std::make_shared<const Graph>(
                                   generateRoadGrid(16, 16, 3)));
        auto bound = server_->start();
        EXPECT_TRUE(bound.ok()) << bound.error().toString();
        return bound.value();
    }

    serve::ServeRequest
    request(const char *workload, const char *graph_name)
    {
        serve::ServeRequest request;
        request.workload =
            std::shared_ptr<const Workload>(makeWorkload(workload));
        request.inputName = graph_name;
        return request;
    }

    Oracle *oraclePtr() { return oracle_.get(); }

    std::unique_ptr<Oracle> oracle_;
    AcceleratorPair pair_;
    std::unique_ptr<serve::ModelRegistry> registry_;
    std::unique_ptr<NetServer> server_;
};

TEST_F(NetLoopback, PingAndStatusz)
{
    const Endpoint endpoint = startServer(ServerOptions{});
    NetClient client(endpoint);
    EXPECT_TRUE(client.ping());
    auto statusz = client.statusz();
    ASSERT_TRUE(statusz.ok()) << statusz.error().toString();
    EXPECT_NE(statusz.value().find("\"shard_count\":2"),
              std::string::npos);
    server_->stop();
}

TEST_F(NetLoopback, ServesPredictionsOverTheWire)
{
    const Endpoint endpoint = startServer(ServerOptions{});
    NetClient client(endpoint);
    for (int i = 0; i < 8; ++i) {
        auto response =
            client.call(request(i % 2 ? "BFS" : "PR",
                                i % 2 ? "social" : "mesh"));
        ASSERT_EQ(response.status, serve::ServeStatus::Ok)
            << (response.error ? response.error->message : "");
        EXPECT_GT(response.modelEpoch, 0u);
        EXPECT_GT(response.deployment.config.activeThreads(), 0u);
    }
    EXPECT_EQ(client.transportErrors(), 0u);
    const ServerStats stats = server_->stats();
    EXPECT_EQ(stats.requestsSubmitted, 8u);
    EXPECT_EQ(stats.badFrames, 0u);
    server_->stop();
}

TEST_F(NetLoopback, ManyConcurrentClients)
{
    ServerOptions options;
    options.shards = 2;
    const Endpoint endpoint = startServer(options);

    constexpr int kClients = 8;
    constexpr int kPerClient = 6;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            NetClientOptions client_options;
            client_options.clientId = 100 + t;
            NetClient client(endpoint, client_options);
            const char *graphs[] = {"mesh", "social", "road"};
            for (int i = 0; i < kPerClient; ++i) {
                auto response = client.call(
                    request("PR", graphs[(t + i) % 3]));
                if (response.status == serve::ServeStatus::Ok)
                    ok.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(ok.load(), kClients * kPerClient);
    server_->stop();
}

TEST_F(NetLoopback, UnknownGraphIsTerminalError)
{
    const Endpoint endpoint = startServer(ServerOptions{});
    NetClient client(endpoint);
    auto response = client.call(request("PR", "no-such-graph"));
    EXPECT_EQ(response.status, serve::ServeStatus::Error);
    ASSERT_TRUE(response.error.has_value());
    EXPECT_EQ(response.error->code, ErrorCode::OutOfRange);
    // The connection survives a catalogue miss.
    EXPECT_TRUE(client.ping());
    server_->stop();
}

TEST_F(NetLoopback, MalformedPayloadGetsParseErrorFrameBack)
{
    const Endpoint endpoint = startServer(ServerOptions{});
    auto connected = connectTo(endpoint);
    ASSERT_TRUE(connected.ok());
    OwnedFd fd = std::move(connected).value();

    // A well-formed header whose payload is garbage: the server must
    // answer with a Parse error response and keep the connection.
    std::string good;
    encodeRequest(5, sampleRequest(), good);
    std::string frame = good.substr(0, kHeaderBytes);
    frame.append(good.size() - kHeaderBytes, '\xff');
    ASSERT_TRUE(sendAll(fd.get(), frame.data(), frame.size()).ok());

    char header_bytes[kHeaderBytes];
    ASSERT_TRUE(recvAll(fd.get(), header_bytes, kHeaderBytes).ok());
    auto header = decodeHeader(
        std::string_view(header_bytes, kHeaderBytes));
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header.value().type, FrameType::PredictResponse);
    EXPECT_EQ(header.value().requestId, 5u);
    std::string payload(header.value().payloadLen, '\0');
    ASSERT_TRUE(
        recvAll(fd.get(), payload.data(), payload.size()).ok());
    auto decoded = decodeResponse(payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().hasError);
    EXPECT_EQ(static_cast<ErrorCode>(decoded.value().errorCode),
              ErrorCode::Parse);
    server_->stop();
}

TEST_F(NetLoopback, BadMagicClosesConnection)
{
    const Endpoint endpoint = startServer(ServerOptions{});
    auto connected = connectTo(endpoint);
    ASSERT_TRUE(connected.ok());
    OwnedFd fd = std::move(connected).value();

    std::string junk(kHeaderBytes, 'Z');
    ASSERT_TRUE(sendAll(fd.get(), junk.data(), junk.size()).ok());
    // The server closes: the next read returns EOF (recoverable).
    char byte;
    EXPECT_FALSE(recvAll(fd.get(), &byte, 1).ok());
    EXPECT_GE(server_->stats().badFrames, 1u);
    server_->stop();
}

TEST_F(NetLoopback, SlowReaderDisconnectMidPipelineIsSafe)
{
    // Regression: a send failure or backlog overflow inside
    // dispatchFrame used to closeConnection() while parseFrames was
    // still holding the Connection& — a use-after-free (caught by
    // ASan) when a client pipelined requests and then stopped
    // reading. The close is deferred to the top of the loop now.
    ServerOptions options;
    options.maxWriteBacklogBytes = 4096;
    const Endpoint endpoint = startServer(options);
    auto connected = connectTo(endpoint);
    ASSERT_TRUE(connected.ok());
    OwnedFd fd = std::move(connected).value();
    // Shrink the receive window so the server's responses overrun
    // kernel buffering (and then the backlog bound) quickly.
    const int rcvbuf = 4096;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                 sizeof rcvbuf);

    // Pipeline statusz requests in big batches and never read a
    // byte back: each response is a sizeable JSON document, so once
    // the kernel's buffers fill (sndbuf autotunes up to ~4 MiB),
    // the write backlog overflows while later frames from the same
    // read buffer are still being dispatched. Keep feeding until
    // the server cuts the connection (our send then fails) so the
    // test is independent of the machine's buffer limits.
    std::string batch;
    for (uint64_t i = 0; i < 256; ++i)
        encodeStatusz(i, batch);
    for (int round = 0; round < 256; ++round) {
        if (!sendAll(fd.get(), batch.data(), batch.size()).ok())
            break;
        if (server_->stats().slowReaderDisconnects > 0)
            break;
    }

    for (int spin = 0;
         spin < 400 && server_->stats().slowReaderDisconnects == 0;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const ServerStats stats = server_->stats();
    EXPECT_GE(stats.slowReaderDisconnects, 1u);
    // framesSent counts only frames fully flushed to the socket:
    // the discarded backlog of a disconnected slow reader was never
    // sent (it used to be counted at queue time).
    EXPECT_LT(stats.framesSent, stats.framesReceived);
    server_->stop();
}

TEST_F(NetLoopback, RoutingKeepsPerShardCachesHot)
{
    ServerOptions options;
    options.shards = 3;
    options.shard.maxBatchDelayMs = 0.0;
    const Endpoint endpoint = startServer(options);
    // The "serve.shardK.stats_cache" registry counters are
    // process-global and earlier suites in this binary already fed
    // them; zero everything so the deltas below are this test's.
    telemetry::registry().reset();

    const char *graphs[] = {"mesh", "social", "road"};
    NetClient client(endpoint);
    for (int round = 0; round < 6; ++round)
        for (const char *graph_name : graphs)
            ASSERT_EQ(client.call(request("PR", graph_name)).status,
                      serve::ServeStatus::Ok);

    // Every graph hits one shard deterministically, so each shard's
    // cache sees at most one miss per distinct graph it owns and
    // the fleet-wide miss count stays at the distinct-graph count.
    uint64_t hits = 0, misses = 0;
    for (std::size_t shard = 0; shard < server_->shards(); ++shard) {
        const auto status = server_->shard(shard).statusz();
        hits += status.statsHits;
        misses += status.statsMisses;
    }
    EXPECT_LE(misses, 3u);
    EXPECT_GE(hits, 18u - 3u);
    server_->stop();
}

TEST_F(NetLoopback, QuotaLimitedClientShedsWhileOthersServe)
{
    ServerOptions options;
    options.admission.clientRatePerSec = 0.001; // effectively none
    options.admission.clientBurst = 3.0;
    const Endpoint endpoint = startServer(options);

    NetClientOptions limited;
    limited.clientId = 1;
    NetClient limited_client(endpoint, limited);
    int ok = 0, quota_shed = 0;
    for (int i = 0; i < 10; ++i) {
        auto response = limited_client.call(request("PR", "mesh"));
        if (response.status == serve::ServeStatus::Ok)
            ++ok;
        else if (response.status == serve::ServeStatus::Shed &&
                 response.shedReason ==
                     serve::ShedReason::QuotaExceeded)
            ++quota_shed;
    }
    EXPECT_EQ(ok, 3);
    EXPECT_EQ(quota_shed, 7);

    // A different client id has its own untouched bucket.
    NetClientOptions fresh;
    fresh.clientId = 2;
    NetClient fresh_client(endpoint, fresh);
    EXPECT_EQ(fresh_client.call(request("PR", "mesh")).status,
              serve::ServeStatus::Ok);

    EXPECT_EQ(server_->admission().quotaRejected(Lane::Normal), 7u);
    server_->stop();
}

TEST_F(NetLoopback, TransportErrorsWalkTheBreakerLadder)
{
    // Satellite: a reset connection must come back as a ServeError
    // (Unavailable) through NetClient, and consecutive transport
    // failures must trip the RetryingClient breaker — never throw.
    ServerOptions options;
    const Endpoint endpoint = startServer(options);

    NetClientOptions client_options;
    client_options.autoReconnect = true;
    NetClient backend(endpoint, client_options);
    serve::RetryOptions retry;
    retry.maxAttempts = 2;
    retry.initialBackoffMs = 0.0;
    retry.maxBackoffMs = 0.0;
    retry.breakerThreshold = 2;
    serve::RetryingClient client(backend, retry);
    client.setSleeper([](double) {});

    // Healthy path first.
    auto healthy = client.call(request("PR", "mesh"));
    ASSERT_EQ(healthy.response.status, serve::ServeStatus::Ok);

    // Kill the server: every subsequent attempt is a transport
    // error. ECONNREFUSED on reconnect keeps the error supply going.
    server_->stop();
    for (int i = 0; i < 2; ++i) {
        auto result = client.call(request("PR", "mesh"));
        EXPECT_EQ(result.response.status, serve::ServeStatus::Error);
        ASSERT_TRUE(result.response.error.has_value());
        EXPECT_EQ(result.response.error->code,
                  ErrorCode::Unavailable);
        EXPECT_EQ(result.attempts, 2u); // retried, then gave up
    }
    EXPECT_GT(backend.transportErrors(), 0u);
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Open);

    // With the breaker open the client fast-fails without touching
    // the dead endpoint.
    auto shed = client.call(request("PR", "mesh"));
    EXPECT_TRUE(shed.breakerFastFail);
    EXPECT_EQ(shed.response.shedReason,
              serve::ShedReason::CircuitOpen);
}

TEST_F(NetLoopback, UnixSocketServes)
{
    const std::string path = "/tmp/hm-test-net-" +
                             std::to_string(::getpid()) + ".sock";
    ServerOptions options;
    options.endpoint = parseEndpoint("unix:" + path).value();
    server_ = std::make_unique<NetServer>(*registry_, options);
    server_->registerGraph("mesh", std::make_shared<const Graph>(
                                       generateMesh(256, 4, 1)));
    auto bound = server_->start();
    ASSERT_TRUE(bound.ok()) << bound.error().toString();

    NetClient client(bound.value());
    EXPECT_TRUE(client.ping());
    EXPECT_EQ(client.call(request("PR", "mesh")).status,
              serve::ServeStatus::Ok);
    server_->stop();
    ::unlink(path.c_str());
}

TEST_F(NetLoopback, ShardForGraphMatchesRouter)
{
    ServerOptions options;
    options.shards = 4;
    startServer(options);
    const Graph mesh = generateMesh(256, 4, 1);
    const std::size_t shard = server_->shardForGraph(mesh);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard,
              server_->router().route(
                  mixFingerprint(fingerprintGraph(mesh))));
    server_->stop();
}

} // namespace
} // namespace net
} // namespace heteromap
