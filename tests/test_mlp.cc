/**
 * @file
 * Tests for the feed-forward deep-learning predictor (Fig. 10):
 * convergence on separable rules, determinism, the Deep.16..128
 * capacity ladder, and output sanity.
 */

#include <gtest/gtest.h>

#include "model/dataset.hh"
#include "model/mlp.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {
namespace {

/** Non-linear labelled corpus: XOR-ish accelerator rule. */
TrainingSet
xorCorpus(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    TrainingSet out;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVector x;
        x.b.b1 = rng.nextBool() ? 1.0 : 0.0;
        x.b.b10 = rng.nextBool() ? 1.0 : 0.0;
        x.i.i1 = rng.nextDouble();
        NormalizedMVector y;
        // XOR of parallelism and sharing decides the accelerator.
        y.m[0] = (x.b.b1 != x.b.b10) ? 1.0 : 0.0;
        y.m[1] = x.i.i1 * 0.8;
        out.push_back({x, y});
    }
    return out;
}

TEST(MlpTest, NameFollowsHiddenWidth)
{
    EXPECT_EQ(Mlp(16).name(), "Deep.16");
    EXPECT_EQ(Mlp(128).name(), "Deep.128");
    EXPECT_EQ(Mlp(128).hiddenWidth(), 128u);
}

TEST(MlpTest, UntrainedOutputsAreInRange)
{
    Mlp mlp(16);
    FeatureVector x;
    x.b.b1 = 0.7;
    auto y = mlp.predict(x);
    for (double v : y.m) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(MlpTest, LearnsXorRule)
{
    auto corpus = xorCorpus(400, 51);
    MlpOptions options;
    options.epochs = 150;
    Mlp mlp(32, options);
    mlp.train(corpus);
    EXPECT_LT(mlp.finalLoss(), 0.02);

    // Spot-check the four XOR corners on m[0].
    auto probe = [&](double b1, double b10) {
        FeatureVector x;
        x.b.b1 = b1;
        x.b.b10 = b10;
        return mlp.predict(x).m[0];
    };
    EXPECT_GT(probe(1.0, 0.0), 0.7);
    EXPECT_GT(probe(0.0, 1.0), 0.7);
    EXPECT_LT(probe(0.0, 0.0), 0.3);
    EXPECT_LT(probe(1.0, 1.0), 0.3);
}

TEST(MlpTest, TrainingReducesError)
{
    auto corpus = xorCorpus(300, 53);
    Mlp mlp(32);
    double before = meanSquaredError(mlp, corpus);
    mlp.train(corpus);
    double after = meanSquaredError(mlp, corpus);
    EXPECT_LT(after, before * 0.5);
}

TEST(MlpTest, DeterministicTraining)
{
    auto corpus = xorCorpus(200, 57);
    Mlp a(16);
    Mlp b(16);
    a.train(corpus);
    b.train(corpus);
    FeatureVector x;
    x.b.b1 = 0.4;
    x.b.b10 = 0.6;
    EXPECT_EQ(a.predict(x).m, b.predict(x).m);
}

TEST(MlpTest, CapacityLadderImprovesFit)
{
    // The paper's Deep.16 -> Deep.128 accuracy progression: larger
    // hidden layers fit the non-linear corpus at least as well.
    auto corpus = xorCorpus(500, 59);
    MlpOptions options;
    options.epochs = 60;
    Mlp small(4, options);
    Mlp large(64, options);
    small.train(corpus);
    large.train(corpus);
    EXPECT_LE(meanSquaredError(large, corpus),
              meanSquaredError(small, corpus) * 1.2);
}

TEST(MlpTest, TrainOnEmptyCorpusIsPanic)
{
    Mlp mlp(8);
    EXPECT_THROW(mlp.train({}), PanicError);
}

TEST(MlpTest, GeneralizesToHeldOutSamples)
{
    auto corpus = xorCorpus(600, 61);
    auto [train, valid] = splitTrainingSet(corpus, 0.7);
    MlpOptions options;
    options.epochs = 150;
    Mlp mlp(32, options);
    mlp.train(train);
    EXPECT_LT(meanSquaredError(mlp, valid), 0.03);
}

} // namespace
} // namespace heteromap
