/**
 * @file
 * Property-based suites (parameterized gtest): invariants that must
 * hold across sweeps of graphs, workloads, thread counts, and model
 * inputs rather than at hand-picked points.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/perf_model.hh"
#include "arch/presets.hh"
#include "core/oracle.hh"
#include "features/ivars.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "model/decision_tree.hh"
#include "model/predictor.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "workloads/reference.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

namespace heteromap {
namespace {

// ---------------------------------------------------------------
// Property: every workload's outputs are valid on every graph family.
// ---------------------------------------------------------------

struct WorkloadGraphParam {
    const char *workload;
    const char *family;
};

class WorkloadOnFamily
    : public ::testing::TestWithParam<WorkloadGraphParam>
{
  protected:
    static Graph
    familyGraph(const std::string &family)
    {
        if (family == "road")
            return generateRoadGrid(16, 12, 3);
        if (family == "social")
            return generateRmat(9, 6.0, 4);
        if (family == "dense")
            return generateDenseEr(80, 0.4, 5);
        if (family == "geometric")
            return generateRandomGeometric(400, 0.07, 6);
        if (family == "mesh")
            return generateMesh(256, 7, 7);
        HM_FATAL("unknown family");
    }
};

TEST_P(WorkloadOnFamily, OutputsWellFormedAndProfileNonTrivial)
{
    auto param = GetParam();
    Graph g = familyGraph(param.family);
    auto workload = makeWorkload(param.workload);
    auto [out, profile] = workload->runProfiled(g);

    ASSERT_EQ(out.vertexValues.size(), g.numVertices());
    for (double v : out.vertexValues) {
        EXPECT_FALSE(std::isnan(v));
        EXPECT_GE(v, 0.0);
    }
    EXPECT_GE(out.scalar, 0.0);

    EXPECT_FALSE(profile.phases.empty());
    EXPECT_GT(profile.totalWorkUnits(), 0.0);
    for (const auto &phase : profile.phases) {
        EXPECT_EQ(phase.bucketCost.size(), kNumBuckets);
        double bucket_sum = 0.0;
        for (double c : phase.bucketCost) {
            EXPECT_GE(c, 0.0);
            bucket_sum += c;
        }
        // Bucket histogram accounts for all recorded work units.
        EXPECT_NEAR(bucket_sum, phase.totalWorkUnits(), 1e-6);
        EXPECT_GE(phase.maxItemCost, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadOnFamily,
    ::testing::Values(
        WorkloadGraphParam{"SSSP-BF", "road"},
        WorkloadGraphParam{"SSSP-BF", "social"},
        WorkloadGraphParam{"SSSP-Delta", "road"},
        WorkloadGraphParam{"SSSP-Delta", "dense"},
        WorkloadGraphParam{"BFS", "geometric"},
        WorkloadGraphParam{"BFS", "social"},
        WorkloadGraphParam{"DFS", "road"},
        WorkloadGraphParam{"DFS", "mesh"},
        WorkloadGraphParam{"PR", "social"},
        WorkloadGraphParam{"PR", "dense"},
        WorkloadGraphParam{"PR-DP", "mesh"},
        WorkloadGraphParam{"PR-DP", "road"},
        WorkloadGraphParam{"TRI", "dense"},
        WorkloadGraphParam{"TRI", "geometric"},
        WorkloadGraphParam{"COMM", "social"},
        WorkloadGraphParam{"COMM", "mesh"},
        WorkloadGraphParam{"CONN", "road"},
        WorkloadGraphParam{"CONN", "geometric"}),
    [](const auto &info) {
        std::string name = info.param.workload;
        name += "_";
        name += info.param.family;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

// ---------------------------------------------------------------
// Property: SSSP equals Dijkstra on random weighted graphs.
// ---------------------------------------------------------------

class SsspRandomGraph : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SsspRandomGraph, BothVariantsMatchDijkstra)
{
    uint64_t seed = GetParam();
    Rng rng(seed);
    VertexId n = 50 + static_cast<VertexId>(rng.nextBounded(250));
    EdgeId e = n * (1 + rng.nextBounded(8));
    Graph g = generateUniformRandom(n, e, seed * 31 + 1);

    auto ref = referenceDijkstra(g, 0);
    auto bf = makeWorkload("SSSP-BF")->runProfiled(g).first;
    auto delta = makeWorkload("SSSP-Delta")->runProfiled(g).first;
    for (VertexId v = 0; v < n; ++v) {
        double expected = ref[v] > INT64_MAX / 8
                              ? kUnreachable
                              : static_cast<double>(ref[v]);
        EXPECT_DOUBLE_EQ(bf.vertexValues[v], expected)
            << "BF seed=" << seed << " v=" << v;
        EXPECT_DOUBLE_EQ(delta.vertexValues[v], expected)
            << "Delta seed=" << seed << " v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspRandomGraph,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------
// Property: the perf model is well-behaved over the config space.
// ---------------------------------------------------------------

class PerfModelProperty : public ::testing::TestWithParam<int>
{
  protected:
    static const BenchmarkCase &
    bench()
    {
        static const BenchmarkCase instance = [] {
            setLogVerbose(false);
            Graph g = generateRmat(10, 8.0, 17);
            GraphStats stats = measureGraph(g);
            auto w = makeWorkload("PR");
            return makeCase(*w, g, "rmat10", stats);
        }();
        return instance;
    }
};

TEST_P(PerfModelProperty, RandomConfigsProduceFiniteOrderedResults)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
    MSearchSpace space(primaryPair());
    Oracle oracle;

    for (int i = 0; i < 40; ++i) {
        MConfig config = space.randomConfig(rng);
        auto report = oracle.run(bench(), primaryPair(), config);
        EXPECT_TRUE(std::isfinite(report.seconds));
        EXPECT_GT(report.seconds, 0.0);
        EXPECT_TRUE(std::isfinite(report.joules));
        EXPECT_GT(report.joules, 0.0);
        EXPECT_GE(report.utilization, 0.0);
        EXPECT_LE(report.utilization, 1.0);
        EXPECT_GE(report.memoryChunks, 1u);
        // Energy identity: joules = watts * seconds.
        EXPECT_NEAR(report.joules, report.watts * report.seconds,
                    report.joules * 1e-9);
        // Phase breakdown adds up (with region/barrier terms and the
        // memory slowdown) to the total.
        double phase_sum =
            report.regionSeconds + report.barrierSeconds;
        for (const auto &p : report.phases)
            phase_sum += p.seconds();
        EXPECT_GE(report.seconds + 1e-15, phase_sum);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, PerfModelProperty,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------
// Property: normalized encode/decode is stable (deploy o normalize
// o deploy is idempotent) across random M vectors.
// ---------------------------------------------------------------

class EncodingProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EncodingProperty, DeployNormalizeDeployIsIdempotent)
{
    Rng rng(GetParam());
    AcceleratorPair pair = primaryPair();
    for (int i = 0; i < 50; ++i) {
        NormalizedMVector y;
        for (double &v : y.m)
            v = rng.nextDouble();
        MConfig once = deployNormalized(y, pair);
        MConfig twice =
            deployNormalized(normalizeConfig(once, pair), pair);
        EXPECT_EQ(once, twice);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------
// Property: I-variable extraction is monotone in each raw input.
// ---------------------------------------------------------------

TEST(IVarsMonotonicity, GrowingInputsNeverLowerScores)
{
    GraphStats base;
    base.numVertices = 1'000'000;
    base.numEdges = 10'000'000;
    base.maxDegree = 1'000;
    base.diameter = 100;

    IVariables prev = extractIVariables(base);
    for (double scale : {2.0, 8.0, 32.0, 128.0}) {
        GraphStats grown = base;
        grown.numVertices = static_cast<uint64_t>(
            static_cast<double>(base.numVertices) * scale);
        grown.numEdges = static_cast<uint64_t>(
            static_cast<double>(base.numEdges) * scale);
        grown.maxDegree = static_cast<uint64_t>(
            static_cast<double>(base.maxDegree) * scale);
        grown.diameter = static_cast<uint64_t>(
            static_cast<double>(base.diameter) * scale);
        IVariables next = extractIVariables(grown);
        EXPECT_GE(next.i1, prev.i1);
        EXPECT_GE(next.i2, prev.i2);
        EXPECT_GE(next.i3, prev.i3);
        EXPECT_GE(next.i4, prev.i4);
        prev = next;
    }
}

// ---------------------------------------------------------------
// Property: the decision tree is total and stable over random valid
// feature vectors.
// ---------------------------------------------------------------

class DecisionTreeProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DecisionTreeProperty, TotalAndDeterministic)
{
    Rng rng(GetParam() * 101 + 7);
    DecisionTreeHeuristic tree;
    for (int i = 0; i < 100; ++i) {
        FeatureVector f;
        auto bs = sampleSyntheticBVectors(1, rng.next());
        f.b = bs[0];
        f.i.i1 = discretize01(rng.nextDouble());
        f.i.i2 = discretize01(rng.nextDouble());
        f.i.i3 = discretize01(rng.nextDouble());
        f.i.i4 = discretize01(rng.nextDouble());

        auto y1 = tree.predict(f);
        auto y2 = tree.predict(f);
        EXPECT_EQ(y1.m, y2.m);
        for (double v : y1.m) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionTreeProperty,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace heteromap
