/**
 * @file
 * Tests for the extension predictors (table lookup / kNN, learned
 * CART trees and forests) and for trained-model serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "model/cart.hh"
#include "model/dataset.hh"
#include "model/linear_regression.hh"
#include "model/mlp.hh"
#include "model/poly_regression.hh"
#include "model/table_lookup.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {
namespace {

/** Step-function corpus: ideal territory for trees and kNN. */
TrainingSet
stepCorpus(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    TrainingSet out;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVector x;
        x.b.b1 = rng.nextDouble();
        x.b.b4 = rng.nextDouble();
        x.i.i4 = rng.nextDouble();
        NormalizedMVector y;
        // Crisp decision boundary + a dependent knob.
        y.m[0] = (x.b.b4 > 0.5 || x.i.i4 > 0.7) ? 1.0 : 0.0;
        y.m[1] = y.m[0] > 0.5 ? 0.9 : 0.2;
        out.push_back({x, y});
    }
    return out;
}

TEST(TableLookupTest, ExactHitReturnsStoredSolution)
{
    auto corpus = stepCorpus(50, 3);
    TableLookupPredictor table(3);
    table.train(corpus);
    EXPECT_EQ(table.size(), 50u);

    // Querying a training point returns its label verbatim.
    auto y = table.predict(corpus[7].x);
    EXPECT_EQ(y.m, corpus[7].y.m);
}

TEST(TableLookupTest, NearestNeighborGeneralizesStepFunction)
{
    auto corpus = stepCorpus(400, 5);
    TableLookupPredictor table(3);
    table.train(corpus);

    FeatureVector deep_multicore;
    deep_multicore.b.b4 = 0.95;
    deep_multicore.i.i4 = 0.95;
    EXPECT_GT(table.predict(deep_multicore).m[0], 0.6);

    FeatureVector deep_gpu;
    deep_gpu.b.b1 = 0.95;
    deep_gpu.b.b4 = 0.05;
    deep_gpu.i.i4 = 0.05;
    EXPECT_LT(table.predict(deep_gpu).m[0], 0.4);
}

TEST(TableLookupTest, PredictBeforeTrainIsPanic)
{
    TableLookupPredictor table;
    EXPECT_THROW(table.predict(FeatureVector{}), PanicError);
}

TEST(TableLookupTest, KOneIsPureNearest)
{
    auto corpus = stepCorpus(100, 7);
    TableLookupPredictor table(1);
    table.train(corpus);
    // Every prediction equals some stored label exactly.
    FeatureVector probe;
    probe.b.b1 = 0.33;
    probe.b.b4 = 0.66;
    auto y = table.predict(probe);
    bool matches_one = false;
    for (const auto &sample : corpus)
        matches_one |= (y.m == sample.y.m);
    EXPECT_TRUE(matches_one);
}

TEST(CartTest, LearnsStepFunctionExactly)
{
    auto corpus = stepCorpus(600, 11);
    CartTree tree;
    tree.train(corpus);
    EXPECT_GT(tree.nodeCount(), 3u);
    EXPECT_GT(tree.depth(), 1u);
    EXPECT_LT(meanSquaredError(tree, corpus), 0.002);
}

TEST(CartTest, DepthLimitIsRespected)
{
    auto corpus = stepCorpus(600, 13);
    CartOptions options;
    options.maxDepth = 2;
    CartTree tree(options);
    tree.train(corpus);
    EXPECT_LE(tree.depth(), 3u); // depth counts nodes, limit splits
}

TEST(CartTest, PureLeafStopsSplitting)
{
    // Constant targets: the tree must stay a single leaf.
    TrainingSet corpus;
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        FeatureVector x;
        x.b.b1 = rng.nextDouble();
        NormalizedMVector y;
        y.m[0] = 0.5;
        corpus.push_back({x, y});
    }
    CartTree tree;
    tree.train(corpus);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_NEAR(tree.predict(corpus[0].x).m[0], 0.5, 1e-12);
}

TEST(CartTest, PredictBeforeTrainIsPanic)
{
    CartTree tree;
    EXPECT_THROW(tree.predict(FeatureVector{}), PanicError);
}

TEST(CartForestTest, ForestAtLeastMatchesSingleTreeOnHeldOut)
{
    auto corpus = stepCorpus(800, 19);
    auto [train, valid] = splitTrainingSet(corpus, 0.75);

    CartTree tree;
    tree.train(train);
    CartForest forest(12);
    forest.train(train);
    EXPECT_LE(meanSquaredError(forest, valid),
              meanSquaredError(tree, valid) * 1.5);
    EXPECT_NE(forest.name().find("12 trees"), std::string::npos);
}

TEST(CartForestTest, DeterministicInSeed)
{
    auto corpus = stepCorpus(200, 23);
    CartForest a(4, {}, 99);
    CartForest b(4, {}, 99);
    a.train(corpus);
    b.train(corpus);
    FeatureVector probe;
    probe.b.b4 = 0.7;
    EXPECT_EQ(a.predict(probe).m, b.predict(probe).m);
}

TEST(SerializationTest, LinearRegressionRoundTrip)
{
    auto corpus = stepCorpus(300, 29);
    LinearRegression model;
    model.train(corpus);

    std::stringstream buffer;
    model.save(buffer);
    LinearRegression back = LinearRegression::load(buffer);
    for (const auto &sample : corpus) {
        auto a = model.predict(sample.x);
        auto b = back.predict(sample.x);
        for (std::size_t m = 0; m < kNumOutputs; ++m)
            EXPECT_DOUBLE_EQ(a.m[m], b.m[m]);
    }
}

TEST(SerializationTest, PolyRegressionRoundTrip)
{
    auto corpus = stepCorpus(300, 31);
    PolyRegression model(3, 0.1);
    model.train(corpus);

    std::stringstream buffer;
    model.save(buffer);
    PolyRegression back = PolyRegression::load(buffer);
    auto a = model.predict(corpus[0].x);
    auto b = back.predict(corpus[0].x);
    for (std::size_t m = 0; m < kNumOutputs; ++m)
        EXPECT_DOUBLE_EQ(a.m[m], b.m[m]);
}

TEST(SerializationTest, MlpRoundTrip)
{
    auto corpus = stepCorpus(200, 37);
    MlpOptions options;
    options.epochs = 20;
    Mlp model(16, options);
    model.train(corpus);

    std::stringstream buffer;
    model.save(buffer);
    Mlp back = Mlp::load(buffer);
    EXPECT_EQ(back.hiddenWidth(), 16u);
    for (int i = 0; i < 10; ++i) {
        auto a = model.predict(corpus[i].x);
        auto b = back.predict(corpus[i].x);
        for (std::size_t m = 0; m < kNumOutputs; ++m)
            EXPECT_NEAR(a.m[m], b.m[m], 1e-12);
    }
}

TEST(SerializationTest, CorruptStreamsAreFatal)
{
    std::stringstream garbage("not-a-model v9 17");
    EXPECT_THROW(LinearRegression::load(garbage), FatalError);
    std::stringstream truncated("mlp v1 16 3\n2 2 0.5");
    EXPECT_THROW(Mlp::load(truncated), FatalError);
    std::stringstream wrong_shape("linear-regression v1 0.001\n2 2 "
                                  "1 2 3 4\n");
    EXPECT_THROW(LinearRegression::load(wrong_shape), FatalError);
}

TEST(SerializationTest, MatrixRoundTripPreservesPrecision)
{
    Matrix m = Matrix::fromRows({{1.0 / 3.0, 2e-17}, {-5e16, 0.0}});
    std::stringstream buffer;
    saveMatrix(buffer, m);
    Matrix back = loadMatrix(buffer);
    ASSERT_EQ(back.rows(), 2u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(back.at(r, c), m.at(r, c));
}

} // namespace
} // namespace heteromap
