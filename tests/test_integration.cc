/**
 * @file
 * End-to-end integration tests: the full offline-train / online-deploy
 * pipeline on real benchmark-input combinations, the paper's headline
 * qualitative results, and the streaming chunker driving a workload.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/heteromap.hh"
#include "core/training.hh"
#include "graph/chunker.hh"
#include "graph/datasets.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

/**
 * Expensive shared state: one trained framework reused by every test
 * in this suite. ctest runs each test in its own process, so the
 * fixture is built on demand and sized to stay fast.
 */
class IntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogVerbose(false);
        oracle_ = std::make_unique<Oracle>();

        TrainingOptions options;
        options.syntheticBenchmarks = 16;
        options.syntheticIterations = 1;
        TrainingPipeline pipeline(primaryPair(), *oracle_, options);
        corpus_ = pipeline.run();
    }

    void TearDown() override { setLogVerbose(true); }

    BenchmarkCase
    caseOf(const char *workload, const char *input) const
    {
        auto w = makeWorkload(workload);
        return makeCase(*w, datasetByShortName(input));
    }

    std::unique_ptr<Oracle> oracle_;
    TrainingSet corpus_;
};

TEST_F(IntegrationTest, Figure1Shape_RoadVsDenseAcceleratorFlip)
{
    // Fig. 1: SSSP on the sparse road network strongly favors the
    // multicore; on the dense CAGE-style graph the GPU wins.
    BenchmarkCase road = caseOf("SSSP-Delta", "CA");
    BenchmarkCase dense = caseOf("SSSP-BF", "CAGE");

    auto road_base = computeBaselines(road, primaryPair(), *oracle_,
                                      GridGranularity::Coarse);
    auto dense_base = computeBaselines(dense, primaryPair(), *oracle_,
                                       GridGranularity::Coarse);

    EXPECT_LT(road_base.multicoreSeconds, road_base.gpuSeconds);
    EXPECT_LT(dense_base.gpuSeconds, dense_base.multicoreSeconds);
}

TEST_F(IntegrationTest, TrainedDeepModelTracksTheIdealChoice)
{
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::Deep64),
                        *oracle_);
    framework.trainOffline(corpus_);

    // Across a mixed set of combinations the trained model must land
    // within a reasonable factor of the per-case ideal on geomean.
    const std::pair<const char *, const char *> combos[] = {
        {"SSSP-BF", "CAGE"}, {"SSSP-Delta", "CA"}, {"PR", "CO"},
        {"BFS", "FB"},       {"CONN", "CAGE"},
    };
    std::vector<double> ratios;
    for (const auto &[w, d] : combos) {
        BenchmarkCase bench = caseOf(w, d);
        Deployment deployment = framework.deploy(bench);
        auto base = computeBaselines(bench, primaryPair(), *oracle_,
                                     GridGranularity::Coarse);
        ratios.push_back(deployment.report.seconds /
                         base.idealSeconds);
    }
    EXPECT_LT(geomean(ratios), 2.5);
}

TEST_F(IntegrationTest, DecisionTreeDeploysWithoutTraining)
{
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        *oracle_);
    BenchmarkCase bench = caseOf("SSSP-BF", "CA");
    Deployment deployment = framework.deploy(bench);
    // Fig. 7: SSSP-BF lands on the GPU.
    EXPECT_EQ(deployment.config.accelerator, AcceleratorKind::Gpu);
    EXPECT_GT(deployment.report.seconds, 0.0);
}

TEST_F(IntegrationTest, HeterogeneousSetupBeatsSingleAccelerator)
{
    // The paper's core claim: picking per-combination beats any
    // fixed single accelerator across a workload mix.
    const std::pair<const char *, const char *> combos[] = {
        {"SSSP-BF", "CAGE"}, {"SSSP-Delta", "CA"}, {"PR", "CO"},
        {"DFS", "CA"},       {"BFS", "CAGE"},
    };
    std::vector<double> gpu_only;
    std::vector<double> mc_only;
    std::vector<double> ideal;
    for (const auto &[w, d] : combos) {
        BenchmarkCase bench = caseOf(w, d);
        auto base = computeBaselines(bench, primaryPair(), *oracle_,
                                     GridGranularity::Coarse);
        gpu_only.push_back(base.gpuSeconds);
        mc_only.push_back(base.multicoreSeconds);
        ideal.push_back(base.idealSeconds);
    }
    EXPECT_LT(geomean(ideal), geomean(gpu_only));
    EXPECT_LT(geomean(ideal), geomean(mc_only));
}

TEST_F(IntegrationTest, EnergyObjectiveSelectsFrugalConfigs)
{
    BenchmarkCase bench = caseOf("PR", "CO");
    MSearchSpace space(primaryPair(), GridGranularity::Coarse);

    auto time_best =
        gridSearch(space, oracle_->timeObjective(bench, primaryPair()));
    auto energy_best = gridSearch(
        space, oracle_->energyObjective(bench, primaryPair()));

    double time_joules =
        oracle_->run(bench, primaryPair(), time_best.best).joules;
    double energy_joules =
        oracle_->run(bench, primaryPair(), energy_best.best).joules;
    EXPECT_LE(energy_joules, time_joules + 1e-12);
}

TEST_F(IntegrationTest, ChunkedExecutionMatchesWholeGraphResults)
{
    // Stream a graph through the chunker and run BFS per chunk,
    // stitching levels across chunks — the Stinger-style processing
    // mode of Sec. II. The per-chunk runs must agree with the global
    // run on intra-chunk structure.
    const Dataset &ca = datasetByShortName("CA");
    const Graph &g = ca.proxy();
    GraphChunker chunker(g, g.footprintBytes() / 3);
    EXPECT_GE(chunker.numChunks(), 2u);

    uint64_t chunk_edges = 0;
    for (std::size_t i = 0; i < chunker.numChunks(); ++i) {
        GraphChunk chunk = chunker.chunk(i);
        chunk_edges += chunk.subgraph.numEdges();
        // Each chunk is a runnable graph for any workload.
        auto out =
            makeWorkload("CONN")->runProfiled(chunk.subgraph).first;
        EXPECT_EQ(out.vertexValues.size(),
                  chunk.subgraph.numVertices());
    }
    EXPECT_EQ(chunk_edges, g.numEdges());
}

TEST_F(IntegrationTest, AllLearnersSurviveTrainDeployRoundTrip)
{
    BenchmarkCase bench = caseOf("COMM", "FB");
    for (PredictorKind kind : allPredictorKinds()) {
        HeteroMap framework(primaryPair(), makePredictor(kind),
                            *oracle_);
        framework.trainOffline(corpus_);
        Deployment deployment = framework.deploy(bench);
        EXPECT_GT(deployment.report.seconds, 0.0)
            << framework.predictor().name();
        EXPECT_GT(deployment.report.joules, 0.0)
            << framework.predictor().name();
    }
}

} // namespace
} // namespace heteromap
