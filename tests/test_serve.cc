/**
 * @file
 * Tests for the serving subsystem: the bounded admission-controlled
 * RequestQueue, the hot-swappable ModelRegistry, and the batching
 * PredictionService (queue semantics, batching equivalence, shed
 * accounting, zero drops under backpressure, concurrent hot-swap).
 * Every suite name contains "Serve" so `tools/check_tsan.sh -R Serve`
 * runs exactly this file under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_service.hh"
#include "serve/request_queue.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace serve {
namespace {

std::shared_ptr<const Workload>
sharedWorkload(const char *name)
{
    return std::shared_ptr<const Workload>(makeWorkload(name));
}

std::shared_ptr<const Graph>
sharedGraph(Graph graph)
{
    return std::make_shared<const Graph>(std::move(graph));
}

ServeRequest
makeRequest(std::shared_ptr<const Workload> workload,
            std::shared_ptr<const Graph> graph, const char *input)
{
    ServeRequest request;
    request.workload = std::move(workload);
    request.graph = std::move(graph);
    request.inputName = input;
    return request;
}

PendingRequest
makePending(const std::shared_ptr<const Workload> &workload,
            const std::shared_ptr<const Graph> &graph, uint64_t id)
{
    PendingRequest pending;
    pending.request = makeRequest(workload, graph, "queued");
    pending.id = id;
    pending.key = makeBatchKey(pending.request);
    pending.enqueued = std::chrono::steady_clock::now();
    return pending;
}

/* ------------------------------------------------------------------ */
/* RequestQueue                                                       */
/* ------------------------------------------------------------------ */

class ServeQueueTest : public ::testing::Test
{
  protected:
    std::shared_ptr<const Workload> workload_ = sharedWorkload("PR");
    std::shared_ptr<const Graph> mesh_ =
        sharedGraph(generateMesh(128, 4, 1));
    std::shared_ptr<const Graph> star_ =
        sharedGraph(generateStar(64));
};

TEST_F(ServeQueueTest, PopsInFifoOrder)
{
    RequestQueue queue(8);
    for (uint64_t id = 1; id <= 3; ++id) {
        PendingRequest pending = makePending(workload_, mesh_, id);
        EXPECT_EQ(queue.push(pending, AdmissionPolicy::Reject),
                  RequestQueue::PushResult::Admitted);
    }
    EXPECT_EQ(queue.size(), 3u);

    PendingRequest out;
    for (uint64_t id = 1; id <= 3; ++id) {
        ASSERT_TRUE(queue.pop(out));
        EXPECT_EQ(out.id, id);
    }
    EXPECT_EQ(queue.size(), 0u);
}

TEST_F(ServeQueueTest, RejectPolicyShedsWhenFull)
{
    RequestQueue queue(2);
    PendingRequest a = makePending(workload_, mesh_, 1);
    PendingRequest b = makePending(workload_, mesh_, 2);
    PendingRequest c = makePending(workload_, mesh_, 3);
    EXPECT_EQ(queue.push(a, AdmissionPolicy::Reject),
              RequestQueue::PushResult::Admitted);
    EXPECT_EQ(queue.push(b, AdmissionPolicy::Reject),
              RequestQueue::PushResult::Admitted);
    EXPECT_EQ(queue.push(c, AdmissionPolicy::Reject),
              RequestQueue::PushResult::Full);
    // Rejected requests are NOT consumed: the caller still owns the
    // promise and can respond Shed.
    EXPECT_EQ(c.id, 3u);
    c.promise.set_value(ServeResponse{});
}

TEST_F(ServeQueueTest, BlockPolicyWaitsForSpace)
{
    RequestQueue queue(1);
    PendingRequest first = makePending(workload_, mesh_, 1);
    ASSERT_EQ(queue.push(first, AdmissionPolicy::Block),
              RequestQueue::PushResult::Admitted);

    std::atomic<bool> admitted{false};
    std::thread pusher([&] {
        PendingRequest second = makePending(workload_, mesh_, 2);
        EXPECT_EQ(queue.push(second, AdmissionPolicy::Block),
                  RequestQueue::PushResult::Admitted);
        admitted.store(true);
    });

    // The pusher stays blocked until a pop makes room.
    PendingRequest out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.id, 1u);
    pusher.join();
    EXPECT_TRUE(admitted.load());
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.id, 2u);
}

TEST_F(ServeQueueTest, CloseWakesBlockedPushers)
{
    RequestQueue queue(1);
    PendingRequest first = makePending(workload_, mesh_, 1);
    ASSERT_EQ(queue.push(first, AdmissionPolicy::Block),
              RequestQueue::PushResult::Admitted);

    std::thread pusher([&] {
        PendingRequest second = makePending(workload_, mesh_, 2);
        EXPECT_EQ(queue.push(second, AdmissionPolicy::Block),
                  RequestQueue::PushResult::Closed);
    });
    // Give the pusher a moment to block, then close under it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    pusher.join();

    // Already-admitted work still drains after close.
    PendingRequest out;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out.id, 1u);
    EXPECT_FALSE(queue.pop(out));
}

TEST_F(ServeQueueTest, PopMatchingExtractsOnlyTheKey)
{
    RequestQueue queue(8);
    // Interleave two fingerprints: mesh at ids 1/3/5, star at 2/4.
    for (uint64_t id = 1; id <= 5; ++id) {
        PendingRequest pending = makePending(
            workload_, (id % 2 == 1) ? mesh_ : star_, id);
        ASSERT_EQ(queue.push(pending, AdmissionPolicy::Reject),
                  RequestQueue::PushResult::Admitted);
    }

    const BatchKey mesh_key =
        makeBatchKey(makeRequest(workload_, mesh_, "queued"));
    std::vector<PendingRequest> batch;
    const std::size_t n = queue.popMatchingUntil(
        mesh_key, 8, std::chrono::steady_clock::now(), batch);
    EXPECT_EQ(n, 3u);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 1u);
    EXPECT_EQ(batch[1].id, 3u);
    EXPECT_EQ(batch[2].id, 5u);

    // The non-matching requests kept their order.
    PendingRequest out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.id, 2u);
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.id, 4u);
}

TEST_F(ServeQueueTest, PopMatchingHonoursMaxCount)
{
    RequestQueue queue(8);
    for (uint64_t id = 1; id <= 4; ++id) {
        PendingRequest pending = makePending(workload_, mesh_, id);
        ASSERT_EQ(queue.push(pending, AdmissionPolicy::Reject),
                  RequestQueue::PushResult::Admitted);
    }
    const BatchKey key =
        makeBatchKey(makeRequest(workload_, mesh_, "queued"));
    std::vector<PendingRequest> batch;
    EXPECT_EQ(queue.popMatchingUntil(
                  key, 2, std::chrono::steady_clock::now(), batch),
              2u);
    EXPECT_EQ(queue.size(), 2u);
}

TEST_F(ServeQueueTest, CloseRacingPopMatchingReleasesTheWaiter)
{
    // A batch gatherer lingering for more matches must observe
    // close() promptly and return what it has — close racing the
    // in-flight popMatchingUntil must not strand it until the full
    // linger deadline, and whatever it extracted is still valid.
    for (int round = 0; round < 20; ++round) {
        RequestQueue queue(8);
        PendingRequest first = makePending(workload_, mesh_, 1);
        ASSERT_EQ(queue.push(first, AdmissionPolicy::Reject),
                  RequestQueue::PushResult::Admitted);

        std::vector<PendingRequest> batch;
        std::thread gatherer([&] {
            const BatchKey key =
                makeBatchKey(makeRequest(workload_, mesh_, "queued"));
            // Far deadline: only close() can release this early.
            queue.popMatchingUntil(
                key, 8,
                std::chrono::steady_clock::now() +
                    std::chrono::seconds(30),
                batch);
        });
        std::thread closer([&] { queue.close(); });
        gatherer.join();
        closer.join();

        // The single queued request was extracted exactly once —
        // by the gatherer or still poppable — never both, never
        // neither.
        PendingRequest out;
        const bool popped = queue.pop(out);
        EXPECT_EQ(batch.size() + (popped ? 1 : 0), 1u);
        EXPECT_FALSE(queue.pop(out));
    }
}

TEST_F(ServeQueueTest, CloseReleasesEveryBlockedPusher)
{
    // Several pushers blocked on a full queue all observe Closed;
    // none is silently consumed and every promise stays with its
    // caller, usable exactly once.
    RequestQueue queue(1);
    PendingRequest head = makePending(workload_, mesh_, 1);
    ASSERT_EQ(queue.push(head, AdmissionPolicy::Block),
              RequestQueue::PushResult::Admitted);

    constexpr int kPushers = 4;
    std::atomic<int> closed_seen{0};
    std::vector<std::thread> pushers;
    pushers.reserve(kPushers);
    for (int p = 0; p < kPushers; ++p) {
        pushers.emplace_back([&, p] {
            PendingRequest pending =
                makePending(workload_, mesh_, 10 + p);
            const auto outcome =
                queue.push(pending, AdmissionPolicy::Block);
            EXPECT_EQ(outcome, RequestQueue::PushResult::Closed);
            closed_seen.fetch_add(1);
            // The caller keeps the promise: fulfilling it here must
            // not throw (it was never consumed by the queue).
            ServeResponse response;
            response.status = ServeStatus::Closed;
            pending.promise.set_value(std::move(response));
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    for (auto &pusher : pushers)
        pusher.join();

    EXPECT_EQ(closed_seen.load(), kPushers);
    PendingRequest out;
    EXPECT_TRUE(queue.pop(out)); // the admitted head still drains
    EXPECT_EQ(out.id, 1u);
    EXPECT_FALSE(queue.pop(out));
}

/* ------------------------------------------------------------------ */
/* ModelRegistry                                                      */
/* ------------------------------------------------------------------ */

class ServeRegistryTest : public ::testing::Test
{
  protected:
    Oracle oracle_;
    AcceleratorPair pair_ = pinnedPair(primaryPair());
};

TEST_F(ServeRegistryTest, EmptyBeforeFirstPublish)
{
    ModelRegistry registry(pair_, oracle_);
    EXPECT_EQ(registry.current(), nullptr);
    EXPECT_EQ(registry.epoch(), 0u);
}

TEST_F(ServeRegistryTest, PublishBumpsEpochMonotonically)
{
    ModelRegistry registry(pair_, oracle_);
    EXPECT_EQ(registry.publish(
                  PredictorKind::DecisionTree,
                  makePredictor(PredictorKind::DecisionTree)),
              1u);
    EXPECT_EQ(registry.publish(
                  PredictorKind::DecisionTree,
                  makePredictor(PredictorKind::DecisionTree)),
              2u);
    auto snapshot = registry.current();
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(snapshot->epoch, 2u);
    EXPECT_EQ(snapshot->kind, PredictorKind::DecisionTree);
    EXPECT_NE(snapshot->framework, nullptr);
}

TEST_F(ServeRegistryTest, LoadHotSwapsFromAStream)
{
    ModelRegistry registry(pair_, oracle_);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));

    std::ostringstream out;
    auto tree = makePredictor(PredictorKind::DecisionTree);
    savePredictor(*tree, PredictorKind::DecisionTree, out);
    std::istringstream in(out.str());
    Result<uint64_t> epoch =
        registry.load(PredictorKind::DecisionTree, in);
    ASSERT_TRUE(epoch.ok()) << epoch.error().toString();
    EXPECT_EQ(epoch.value(), 2u);
    EXPECT_EQ(registry.current()->predictorName, tree->name());
}

TEST_F(ServeRegistryTest, CorruptStreamRollsBackToLastGood)
{
    ModelRegistry registry(pair_, oracle_);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));
    const auto before = registry.current();

    std::ostringstream out;
    auto tree = makePredictor(PredictorKind::DecisionTree);
    savePredictor(*tree, PredictorKind::DecisionTree, out);
    std::string text = out.str();
    text[text.size() - 1] ^= 0x04; // flip one payload bit

    std::istringstream in(text);
    Result<uint64_t> epoch =
        registry.load(PredictorKind::DecisionTree, in);
    ASSERT_FALSE(epoch.ok());
    EXPECT_EQ(registry.loadFailures(), 1u);
    // Implicit rollback: the active snapshot and epoch never moved.
    EXPECT_EQ(registry.current(), before);
    EXPECT_EQ(registry.epoch(), 1u);
}

TEST_F(ServeRegistryTest, SaveActiveLoadFromRoundTripsAtomically)
{
    const std::string path =
        testing::TempDir() + "hm_registry_model.bin";
    std::remove(path.c_str());

    ModelRegistry registry(pair_, oracle_);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));
    Result<uint64_t> saved = registry.saveActive(path);
    ASSERT_TRUE(saved.ok()) << saved.error().toString();
    EXPECT_EQ(saved.value(), 1u);

    // A fresh registry restores the model (and its kind) from disk.
    ModelRegistry other(pair_, oracle_);
    other.publish(PredictorKind::LinearRegression,
                  makePredictor(PredictorKind::LinearRegression));
    Result<uint64_t> loaded = other.loadFrom(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value(), 2u);
    EXPECT_EQ(other.current()->kind, PredictorKind::DecisionTree);

    // No temp-file debris survives the rename.
    std::ifstream tmp_probe(path + ".tmp");
    EXPECT_FALSE(tmp_probe.is_open());
    std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, SaveActiveWithoutAModelIsRecoverable)
{
    ModelRegistry registry(pair_, oracle_);
    Result<uint64_t> saved =
        registry.saveActive(testing::TempDir() + "hm_never.bin");
    ASSERT_FALSE(saved.ok());
    EXPECT_EQ(saved.error().code, ErrorCode::Unavailable);
}

TEST_F(ServeRegistryTest, ChaosCorruptedFileLoadRollsBack)
{
    const std::string path =
        testing::TempDir() + "hm_registry_chaos.bin";
    ModelRegistry registry(pair_, oracle_);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));
    ASSERT_TRUE(registry.saveActive(path).ok());

    auto chaos = std::make_shared<ChaosPolicy>(11);
    ChaosSpec spec;
    spec.point = ChaosPoint::ModelLoadCorrupt;
    spec.probability = 1.0;
    spec.endVisit = 1; // corrupt exactly the first load
    chaos->arm(spec);
    registry.setChaosPolicy(chaos);

    Result<uint64_t> first = registry.loadFrom(path);
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(registry.loadFailures(), 1u);
    EXPECT_EQ(registry.epoch(), 1u); // rollback kept the epoch

    // The window has passed; the same file now loads cleanly and
    // the epoch resumes its monotone climb.
    Result<uint64_t> second = registry.loadFrom(path);
    ASSERT_TRUE(second.ok()) << second.error().toString();
    EXPECT_EQ(second.value(), 2u);
    EXPECT_EQ(chaos->fires(ChaosPoint::ModelLoadCorrupt), 1u);
    std::remove(path.c_str());
}

TEST_F(ServeRegistryTest, SnapshotPinsTheModelAcrossAPublish)
{
    ModelRegistry registry(pair_, oracle_);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));
    auto pinned = registry.current();
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));
    // The reader's snapshot is untouched by the swap.
    EXPECT_EQ(pinned->epoch, 1u);
    EXPECT_NE(pinned->framework, nullptr);
    EXPECT_EQ(registry.current()->epoch, 2u);
}

TEST_F(ServeRegistryTest, ConcurrentPublishAndReadIsSafe)
{
    ModelRegistry registry(pair_, oracle_);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        uint64_t last = 0;
        while (!stop.load()) {
            auto snapshot = registry.current();
            ASSERT_NE(snapshot, nullptr);
            // Never torn: the bundle is consistent and the epoch
            // only moves forward.
            ASSERT_NE(snapshot->framework, nullptr);
            ASSERT_GE(snapshot->epoch, last);
            last = snapshot->epoch;
        }
    });
    for (int i = 0; i < 50; ++i) {
        registry.publish(PredictorKind::DecisionTree,
                         makePredictor(PredictorKind::DecisionTree));
    }
    stop.store(true);
    reader.join();
    EXPECT_EQ(registry.epoch(), 51u);
}

/* ------------------------------------------------------------------ */
/* PredictionService                                                  */
/* ------------------------------------------------------------------ */

class ServeServiceTest : public ::testing::Test
{
  protected:
    ServeServiceTest()
    {
        setLogVerbose(false);
        registry_.publish(PredictorKind::DecisionTree,
                          makePredictor(PredictorKind::DecisionTree));
    }

    Oracle oracle_;
    AcceleratorPair pair_ = pinnedPair(primaryPair());
    ModelRegistry registry_{pair_, oracle_};

    std::shared_ptr<const Workload> pagerank_ = sharedWorkload("PR");
    std::shared_ptr<const Workload> bfs_ = sharedWorkload("BFS");
    std::shared_ptr<const Graph> mesh_ =
        sharedGraph(generateMesh(256, 4, 1));
    std::shared_ptr<const Graph> star_ =
        sharedGraph(generateStar(128));
};

TEST_F(ServeServiceTest, ServesConcurrentRequestsToCompletion)
{
    ServiceOptions options;
    options.workers = 2;
    PredictionService service(registry_, options);
    EXPECT_EQ(service.workers(), 2u);

    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 8; ++i) {
        futures.push_back(service.submit(makeRequest(
            pagerank_, (i % 2 == 0) ? mesh_ : star_, "mesh")));
    }
    for (auto &future : futures) {
        ServeResponse response = future.get();
        EXPECT_EQ(response.status, ServeStatus::Ok);
        EXPECT_EQ(response.modelEpoch, 1u);
        EXPECT_GE(response.batchSize, 1u);
    }
    service.close();
    EXPECT_EQ(service.submitted(), 8u);
    EXPECT_EQ(service.completed(), 8u);
    EXPECT_EQ(service.shed(), 0u);
}

TEST_F(ServeServiceTest, BatchedResponsesMatchUnbatched)
{
    // Unbatched reference: every request measured + featurized +
    // inferred on its own.
    std::vector<ServeResponse> reference;
    {
        ServiceOptions options;
        options.workers = 1;
        options.maxBatch = 1;
        PredictionService service(registry_, options);
        for (const auto &workload : {pagerank_, bfs_}) {
            for (const auto &graph : {mesh_, star_}) {
                reference.push_back(
                    service
                        .submit(makeRequest(workload, graph, "g"))
                        .get());
            }
        }
    }

    // Batched run over the same requests.
    std::vector<ServeResponse> batched;
    {
        ServiceOptions options;
        options.workers = 1;
        options.maxBatch = 8;
        options.maxBatchDelayMs = 50.0;
        PredictionService service(registry_, options);
        std::vector<std::future<ServeResponse>> futures;
        for (const auto &workload : {pagerank_, bfs_})
            for (const auto &graph : {mesh_, star_})
                futures.push_back(
                    service.submit(makeRequest(workload, graph, "g")));
        for (auto &future : futures)
            batched.push_back(future.get());
    }

    ASSERT_EQ(reference.size(), batched.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const ServeResponse &a = reference[i];
        const ServeResponse &b = batched[i];
        EXPECT_EQ(a.status, ServeStatus::Ok);
        EXPECT_EQ(b.status, ServeStatus::Ok);
        // Byte-identical prediction and modelled execution: batching
        // is an amortization, never an approximation.
        EXPECT_EQ(a.deployment.config, b.deployment.config);
        EXPECT_EQ(0, std::memcmp(a.deployment.predicted.m.data(),
                                 b.deployment.predicted.m.data(),
                                 sizeof(double) *
                                     a.deployment.predicted.m.size()));
        EXPECT_EQ(a.deployment.report.seconds,
                  b.deployment.report.seconds);
        EXPECT_EQ(a.deployment.report.joules,
                  b.deployment.report.joules);
    }
}

TEST_F(ServeServiceTest, BlockModeNeverDropsARequest)
{
    ServiceOptions options;
    options.workers = 2;
    options.queueCapacity = 2; // force backpressure
    options.admission = AdmissionPolicy::Block;
    PredictionService service(registry_, options);

    constexpr int kThreads = 3;
    constexpr int kPerThread = 6;
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                ServeResponse response =
                    service
                        .submit(makeRequest(
                            pagerank_, (t + i) % 2 ? mesh_ : star_,
                            "g"))
                        .get();
                if (response.status == ServeStatus::Ok)
                    ok.fetch_add(1);
            }
        });
    }
    for (auto &client : clients)
        client.join();
    service.close();

    EXPECT_EQ(ok.load(), kThreads * kPerThread);
    EXPECT_EQ(service.submitted(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(service.completed(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(service.shed(), 0u);
}

TEST_F(ServeServiceTest, RejectModeAccountsShedsExactly)
{
    const uint64_t counter_before =
        telemetry::registry().counter("serve.shed").value();

    ServiceOptions options;
    options.workers = 1;
    options.queueCapacity = 1;
    options.maxBatch = 1;
    options.admission = AdmissionPolicy::Reject;
    PredictionService service(registry_, options);

    constexpr int kBurst = 32;
    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < kBurst; ++i)
        futures.push_back(
            service.submit(makeRequest(pagerank_, mesh_, "g")));

    uint64_t ok = 0, shed = 0;
    for (auto &future : futures) {
        ServeResponse response = future.get();
        if (response.status == ServeStatus::Ok) {
            ++ok;
        } else {
            ASSERT_EQ(response.status, ServeStatus::Shed);
            EXPECT_EQ(response.shedReason, ShedReason::QueueFull);
            ++shed;
        }
    }
    service.close();

    // The burst outruns a single worker whose service time is a
    // real measurement + featurize: some requests must shed.
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(ok + shed, static_cast<uint64_t>(kBurst));
    EXPECT_EQ(service.shed(), shed);
    EXPECT_EQ(service.completed(), ok);
    EXPECT_EQ(service.submitted(), static_cast<uint64_t>(kBurst));
    // serve.shed accounts every shed request exactly.
    EXPECT_EQ(telemetry::registry().counter("serve.shed").value() -
                  counter_before,
              shed);
}

TEST_F(ServeServiceTest, ExpiredDeadlineIsShedAtDequeue)
{
    ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1;
    PredictionService service(registry_, options);

    // Four un-deadlined requests keep the single worker busy for
    // several real measurements...
    std::vector<std::future<ServeResponse>> head;
    for (int i = 0; i < 4; ++i)
        head.push_back(
            service.submit(makeRequest(pagerank_, mesh_, "g")));

    // ...so this one, parked behind them with a microscopic budget,
    // has long expired when a worker finally reaches it.
    ServeRequest hurried = makeRequest(bfs_, star_, "g");
    hurried.deadlineMs = 0.001;
    ServeResponse response = service.submit(hurried).get();
    EXPECT_EQ(response.status, ServeStatus::Shed);
    EXPECT_EQ(response.shedReason, ShedReason::DeadlineExpired);

    for (auto &future : head)
        EXPECT_EQ(future.get().status, ServeStatus::Ok);
    service.close();
    EXPECT_EQ(service.shed(), 1u);
    EXPECT_EQ(service.completed(), 4u);
}

TEST_F(ServeServiceTest, HotSwapLandsMidTrafficWithoutDrops)
{
    ServiceOptions options;
    options.workers = 2;
    PredictionService service(registry_, options);

    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(
            service.submit(makeRequest(pagerank_, mesh_, "g")));

    // Swap while traffic is in flight, then prove the new epoch is
    // what later requests observe.
    registry_.publish(PredictorKind::DecisionTree,
                      makePredictor(PredictorKind::DecisionTree));
    service.drain();
    ServeResponse after =
        service.submit(makeRequest(pagerank_, star_, "g")).get();
    EXPECT_EQ(after.status, ServeStatus::Ok);
    EXPECT_EQ(after.modelEpoch, 2u);

    for (auto &future : futures) {
        ServeResponse response = future.get();
        EXPECT_EQ(response.status, ServeStatus::Ok);
        EXPECT_GE(response.modelEpoch, 1u);
        EXPECT_LE(response.modelEpoch, 2u);
    }
    service.close();
    EXPECT_EQ(service.shed(), 0u);
    EXPECT_EQ(service.completed(), 7u);
}

TEST_F(ServeServiceTest, ConcurrentHotSwapIsTornFree)
{
    ServiceOptions options;
    options.workers = 2;
    PredictionService service(registry_, options);

    std::thread publisher([&] {
        for (int i = 0; i < 10; ++i) {
            registry_.publish(
                PredictorKind::DecisionTree,
                makePredictor(PredictorKind::DecisionTree));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });

    for (int i = 0; i < 12; ++i) {
        ServeResponse response =
            service
                .submit(makeRequest(pagerank_,
                                    i % 2 ? mesh_ : star_, "g"))
                .get();
        ASSERT_EQ(response.status, ServeStatus::Ok);
        ASSERT_GE(response.modelEpoch, 1u);
        ASSERT_LE(response.modelEpoch, 11u);
    }
    publisher.join();
    service.close();
    EXPECT_EQ(registry_.epoch(), 11u);
    EXPECT_EQ(service.shed(), 0u);
}

TEST_F(ServeServiceTest, SupervisedLaneAttachesTheOutcome)
{
    PredictionService service(registry_);
    ServeRequest request = makeRequest(pagerank_, mesh_, "g");
    request.supervised = true;
    ServeResponse response = service.submit(request).get();
    EXPECT_EQ(response.status, ServeStatus::Ok);
    ASSERT_TRUE(response.outcome.has_value());
    EXPECT_TRUE(response.outcome->completed);
    // No faults injected: the initial attempt passes the check.
    EXPECT_TRUE(response.outcome->withinTolerance);
}

TEST_F(ServeServiceTest, StatsShardsAggregateIntoOneCounter)
{
    const uint64_t hits_before =
        telemetry::registry()
            .counter("serve.stats_cache.hits")
            .value();
    const uint64_t misses_before =
        telemetry::registry()
            .counter("serve.stats_cache.misses")
            .value();

    ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1; // one measurement per request
    options.statsShards = 2;
    PredictionService service(registry_, options);

    // Two distinct graphs -> two cold misses; every repeat is a hit,
    // whichever shard the fingerprint lands on.
    for (int i = 0; i < 6; ++i)
        service.submit(makeRequest(pagerank_, mesh_, "g")).get();
    for (int i = 0; i < 2; ++i)
        service.submit(makeRequest(pagerank_, star_, "g")).get();
    service.close();

    EXPECT_EQ(service.statsMisses() - misses_before, 2u);
    EXPECT_EQ(service.statsHits() - hits_before, 6u);
    // The accessors read the same shared registry counters the
    // prefix wired up — the accounting a private, prefix-less cache
    // would have dropped.
    EXPECT_EQ(service.statsHits(),
              telemetry::registry()
                  .counter("serve.stats_cache.hits")
                  .value());
}

TEST_F(ServeServiceTest, CloseIsIdempotentAndRefusesLateWork)
{
    PredictionService service(registry_);
    ServeResponse warm =
        service.submit(makeRequest(pagerank_, mesh_, "g")).get();
    EXPECT_EQ(warm.status, ServeStatus::Ok);

    service.close();
    service.close(); // idempotent

    ServeResponse late =
        service.submit(makeRequest(pagerank_, mesh_, "g")).get();
    EXPECT_EQ(late.status, ServeStatus::Closed);
    EXPECT_EQ(service.completed(), 1u);
    EXPECT_EQ(service.shed(), 0u);
}

TEST_F(ServeServiceTest, WorkerExceptionFailsOnlyItsBatch)
{
    // Regression: an exception during measure/featurize/infer used
    // to escape the worker loop, killing the worker silently and
    // leaving its batch's futures broken. It must fail exactly that
    // batch — structured error, worker alive, gauge intact.
    auto chaos = std::make_shared<ChaosPolicy>(3);
    ChaosSpec spec;
    spec.point = ChaosPoint::WorkerStall;
    spec.probability = 1.0;
    spec.endVisit = 1; // the first batch only
    chaos->arm(spec);
    chaos->setHook(ChaosPoint::WorkerStall, [](const ChaosAction &) {
        throw std::runtime_error("featurize blew up");
    });

    ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1;
    options.chaos = chaos;
    options.watchdog.enabled = false; // isolate the exception path
    PredictionService service(registry_, options);

    ServeResponse failed =
        service.submit(makeRequest(pagerank_, mesh_, "g")).get();
    EXPECT_EQ(failed.status, ServeStatus::Error);
    ASSERT_TRUE(failed.error.has_value());
    EXPECT_NE(failed.error->message.find("featurize blew up"),
              std::string::npos);
    EXPECT_NE(failed.error->toString().find("unavailable"),
              std::string::npos);

    // The worker survived and serves the next request normally.
    ServeResponse ok =
        service.submit(makeRequest(pagerank_, mesh_, "g")).get();
    EXPECT_EQ(ok.status, ServeStatus::Ok);
    service.close();

    EXPECT_EQ(service.errorResponses(), 1u);
    EXPECT_EQ(service.batchFailures(), 1u);
    EXPECT_EQ(service.completed(), 1u);
    // The failed batch was popped like any other: the depth gauge
    // drains back to zero instead of leaking the crashed request.
    EXPECT_EQ(
        telemetry::registry().gauge("serve.queue_depth").value(),
        0.0);
}

TEST_F(ServeServiceTest, WorkerExceptionFailsWholeBatchPromises)
{
    // A batch of several coalesced requests crashes mid-serve: every
    // member gets a ready Error future — no promise is broken and
    // none is consumed twice.
    auto chaos = std::make_shared<ChaosPolicy>(5);
    ChaosSpec spec;
    spec.point = ChaosPoint::WorkerCrashBatch;
    spec.probability = 1.0;
    spec.endVisit = 1;
    chaos->arm(spec);

    ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 8;
    options.maxBatchDelayMs = 50.0;
    options.chaos = chaos;
    options.watchdog.enabled = false;
    PredictionService service(registry_, options);

    std::vector<std::future<ServeResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(
            service.submit(makeRequest(pagerank_, mesh_, "g")));

    std::size_t errors = 0, oks = 0;
    for (auto &future : futures) {
        ServeResponse response = future.get();
        if (response.status == ServeStatus::Error) {
            ASSERT_TRUE(response.error.has_value());
            ++errors;
        } else {
            EXPECT_EQ(response.status, ServeStatus::Ok);
            ++oks;
        }
    }
    service.close();
    // At least the first-popped batch crashed; everything submitted
    // got a terminal answer.
    EXPECT_GE(errors, 1u);
    EXPECT_EQ(errors + oks, 4u);
    EXPECT_EQ(service.errorResponses(), errors);
}

} // namespace
} // namespace serve
} // namespace heteromap
