/**
 * @file
 * Tests for the search space and the three tuners (grid, random,
 * annealing) on analytic objectives with known minima, plus tuning of
 * a real profiled case through the oracle.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/oracle.hh"
#include "graph/datasets.hh"
#include "tuner/annealing.hh"
#include "tuner/grid_search.hh"
#include "tuner/random_search.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

class TunerTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }

    MSearchSpace
    space(GridGranularity g = GridGranularity::Coarse) const
    {
        return MSearchSpace(primaryPair(), g);
    }

    /** Analytic objective: prefers the multicore at ~32 cores. */
    static double
    bowl(const MConfig &c)
    {
        if (c.accelerator == AcceleratorKind::Gpu)
            return 100.0 + static_cast<double>(c.gpuGlobalThreads);
        double d = static_cast<double>(c.cores) - 32.0;
        return 1.0 + d * d;
    }
};

TEST_F(TunerTest, EnumerateCoversBothAccelerators)
{
    auto candidates = space().enumerate();
    EXPECT_GT(candidates.size(), 100u);
    bool has_gpu = false;
    bool has_mc = false;
    for (const auto &c : candidates) {
        has_gpu |= c.accelerator == AcceleratorKind::Gpu;
        has_mc |= c.accelerator == AcceleratorKind::Multicore;
        // All candidates respect hardware bounds.
        EXPECT_LE(c.cores, primaryPair().multicore.cores);
        EXPECT_LE(c.gpuLocalThreads, primaryPair().gpu.maxLocalThreads);
        EXPECT_GE(c.cores, 1u);
    }
    EXPECT_TRUE(has_gpu);
    EXPECT_TRUE(has_mc);
}

TEST_F(TunerTest, FineGridIsDenserThanCoarse)
{
    EXPECT_GT(space(GridGranularity::Fine).enumerate().size(),
              2 * space(GridGranularity::Coarse).enumerate().size());
}

TEST_F(TunerTest, GridSearchFindsTheBowlMinimum)
{
    auto result = gridSearch(space(GridGranularity::Fine), bowl);
    EXPECT_EQ(result.best.accelerator, AcceleratorKind::Multicore);
    EXPECT_NEAR(result.best.cores, 32.0, 12.0);
    EXPECT_GT(result.evaluations, 0u);
}

TEST_F(TunerTest, RandomSearchApproachesTheMinimum)
{
    auto result = randomSearch(space(), bowl, 800, 3);
    EXPECT_EQ(result.best.accelerator, AcceleratorKind::Multicore);
    EXPECT_LT(result.bestScore, 100.0);
    EXPECT_EQ(result.evaluations, 800u);
}

TEST_F(TunerTest, AnnealingBeatsOrMatchesRandomAtSameBudget)
{
    AnnealOptions options;
    options.iterations = 250;
    options.restarts = 2;
    auto annealed = simulatedAnnealing(space(), bowl, options);
    auto random = randomSearch(space(), bowl,
                               annealed.evaluations, 5);
    EXPECT_LE(annealed.bestScore, random.bestScore * 1.5);
    EXPECT_EQ(annealed.best.accelerator, AcceleratorKind::Multicore);
}

TEST_F(TunerTest, RandomConfigsAreValid)
{
    Rng rng(7);
    auto s = space();
    for (int i = 0; i < 500; ++i) {
        MConfig c = s.randomConfig(rng);
        if (c.accelerator == AcceleratorKind::Gpu) {
            EXPECT_GE(c.gpuGlobalThreads, 1u);
            EXPECT_LE(c.gpuGlobalThreads,
                      primaryPair().gpu.maxGlobalThreads);
        } else {
            EXPECT_GE(c.cores, 1u);
            EXPECT_LE(c.cores, primaryPair().multicore.cores);
            EXPECT_LE(c.threadsPerCore,
                      primaryPair().multicore.threadsPerCore);
        }
    }
}

TEST_F(TunerTest, NeighborsStayValidAndEventuallyCrossSides)
{
    Rng rng(9);
    auto s = space();
    MConfig current = s.randomConfig(rng);
    bool crossed = false;
    for (int i = 0; i < 400; ++i) {
        MConfig next = s.neighbor(current, rng);
        if (next.accelerator != current.accelerator)
            crossed = true;
        current = next;
        EXPECT_GE(current.cores, 1u);
        EXPECT_GE(current.gpuGlobalThreads, 1u);
    }
    EXPECT_TRUE(crossed);
}

TEST_F(TunerTest, TuningARealCaseBeatsADefaultConfig)
{
    Oracle oracle;
    auto workload = makeWorkload("PR");
    BenchmarkCase bench =
        makeCase(*workload, datasetByShortName("CO"));

    auto objective = oracle.timeObjective(bench, primaryPair());
    auto tuned = gridSearch(space(), objective);

    MConfig naive;
    naive.accelerator = AcceleratorKind::Multicore;
    naive.cores = 1;
    naive.threadsPerCore = 1;
    EXPECT_LT(tuned.bestScore, objective(naive));

    // Energy tuning optimizes a different objective and never does
    // worse on energy than the time-tuned choice.
    auto energy_obj = oracle.energyObjective(bench, primaryPair());
    auto energy_tuned = gridSearch(space(), energy_obj);
    EXPECT_LE(energy_tuned.bestScore,
              energy_obj(tuned.best) + 1e-12);
}

} // namespace
} // namespace heteromap
