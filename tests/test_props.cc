/**
 * @file
 * Unit tests for the parallel graph-measurement substrate: flat
 * frontiers, direction-optimized BFS, the thread-count determinism
 * contract of measureGraph, and the memoized GraphStats cache.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "graph/builder.hh"
#include "graph/frontier.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "graph/stats_cache.hh"
#include "util/thread_pool.hh"

namespace heteromap {
namespace {

/** Byte-level GraphStats equality (the determinism contract). */
::testing::AssertionResult
statsBitEqual(const GraphStats &a, const GraphStats &b)
{
    static_assert(sizeof(GraphStats) == 7 * sizeof(uint64_t),
                  "GraphStats gained padding or fields; revisit memcmp");
    if (std::memcmp(&a, &b, sizeof(GraphStats)) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << "stats differ: " << a.toString() << " vs " << b.toString()
        << " (stddev " << a.degreeStddev << " vs " << b.degreeStddev
        << ")";
}

/** A graph with two path components plus isolated vertices. */
Graph
disconnectedGraph()
{
    GraphBuilder builder(64);
    for (VertexId v = 0; v < 9; ++v)
        builder.addEdge(v, v + 1);
    for (VertexId v = 20; v < 29; ++v)
        builder.addEdge(v, v + 1);
    return builder.symmetrize().build();
}

/** A directed (asymmetric) chain: 0 -> 1 -> ... -> n-1. */
Graph
directedChain(VertexId n)
{
    GraphBuilder builder(n);
    for (VertexId v = 0; v + 1 < n; ++v)
        builder.addEdge(v, v + 1);
    return builder.build();
}

// ---------------------------------------------------------------
// Determinism: byte-identical GraphStats for any thread count.
// ---------------------------------------------------------------

class PropsMeasureDeterminism
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PropsMeasureDeterminism, UniformKroneckerAndDisconnected)
{
    // Sized so the degree sweep and mid-BFS levels clear the
    // kParallelGrain threshold and genuinely fan out.
    const Graph graphs[] = {
        generateUniformRandom(20000, 120000, 7),
        generateRmat(15, 8.0, 9),
        disconnectedGraph(),
        directedChain(600),
    };
    for (const Graph &g : graphs) {
        MeasureOptions serial;
        serial.threads = 1;
        MeasureOptions fanned;
        fanned.threads = GetParam();
        EXPECT_TRUE(statsBitEqual(measureGraph(g, serial),
                                  measureGraph(g, fanned)));
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PropsMeasureDeterminism,
                         ::testing::Values(1, 2, 8));

TEST(PropsMeasureDeterminism, SharedPoolMatchesSerial)
{
    Graph g = generateRmat(11, 10.0, 3);
    MeasureOptions serial;
    serial.threads = 1;
    MeasureOptions shared; // threads = 0: shared pool
    EXPECT_TRUE(statsBitEqual(measureGraph(g, serial),
                              measureGraph(g, shared)));
}

TEST(PropsMeasureDeterminism, MatchesLegacyOverload)
{
    Graph g = generateUniformRandom(2000, 16000, 5);
    MeasureOptions options;
    options.sweeps = 4;
    options.seed = 1;
    EXPECT_TRUE(statsBitEqual(measureGraph(g), measureGraph(g, options)));
}

// ---------------------------------------------------------------
// Flat BFS: hop correctness, bottom-up levels, farthest tracking.
// ---------------------------------------------------------------

TEST(PropsFlatBfs, BottomUpHopsMatchTopDown)
{
    // Dense enough that the direction switch actually fires.
    const Graph graphs[] = {
        generateDenseEr(500, 0.3, 11),
        generateRmat(10, 16.0, 13),
    };
    ThreadPool pool(2);
    for (const Graph &g : graphs) {
        ASSERT_TRUE(hasSymmetricAdjacency(g));
        for (VertexId source : {VertexId{0}, g.numVertices() / 2}) {
            auto expected = bfsHops(g, source); // serial, top-down

            std::vector<uint32_t> hops(g.numVertices(), UINT32_MAX);
            FrontierScratch scratch;
            scratch.prepare(g.numVertices());
            scratch.clearVisited();
            BfsOptions options;
            options.allowBottomUp = true;
            options.pool = &pool;
            flatBfs(g, source, scratch, hops.data(), options);
            EXPECT_EQ(hops, expected);
        }
    }
}

TEST(PropsFlatBfs, FarthestIsMinIdOfDeepestLevel)
{
    // Star of paths: 0 joined to four arms; two arms tie for the
    // deepest level, and the min-id tip must win.
    GraphBuilder builder(10);
    builder.addEdge(0, 1); // arm A: 1
    builder.addEdge(0, 2); // arm B: 2 - 3
    builder.addEdge(2, 3);
    builder.addEdge(0, 4); // arm C: 4 - 5 - 6
    builder.addEdge(4, 5);
    builder.addEdge(5, 6);
    builder.addEdge(0, 7); // arm D: 7 - 8 - 9
    builder.addEdge(7, 8);
    builder.addEdge(8, 9);
    Graph g = builder.symmetrize().build();

    FrontierScratch scratch;
    scratch.prepare(g.numVertices());
    scratch.clearVisited();
    BfsResult result = flatBfs(g, 0, scratch, nullptr);
    EXPECT_EQ(result.depth, 3u);
    EXPECT_EQ(result.farthest, 6u); // deepest level {6, 9}: min wins
    EXPECT_EQ(result.reached, 10u);

    scratch.clearVisited();
    BfsResult from_three = flatBfs(g, 3, scratch, nullptr);
    EXPECT_EQ(from_three.depth, 5u);
    EXPECT_EQ(from_three.farthest, 6u); // hop-5 level {6, 9}
}

TEST(PropsFlatBfs, IsolatedSourceReachesOnlyItself)
{
    Graph g = disconnectedGraph();
    FrontierScratch scratch;
    scratch.prepare(g.numVertices());
    scratch.clearVisited();
    BfsResult result = flatBfs(g, 60, scratch, nullptr);
    EXPECT_EQ(result.depth, 0u);
    EXPECT_EQ(result.farthest, 60u);
    EXPECT_EQ(result.reached, 1u);
}

TEST(PropsFlatBfs, VisitedBitmapPersistsAcrossRuns)
{
    Graph g = disconnectedGraph();
    FrontierScratch scratch;
    scratch.prepare(g.numVertices());
    scratch.clearVisited();
    flatBfs(g, 0, scratch, nullptr);
    EXPECT_TRUE(scratch.isVisited(9));
    EXPECT_FALSE(scratch.isVisited(20));
    // Without clearVisited, the next flood claims only its component.
    BfsResult second = flatBfs(g, 20, scratch, nullptr);
    EXPECT_EQ(second.reached, 10u);
}

TEST(PropsSymmetry, DetectsSymmetricAndDirectedAdjacency)
{
    EXPECT_TRUE(hasSymmetricAdjacency(generateCycle(16)));
    EXPECT_TRUE(hasSymmetricAdjacency(disconnectedGraph()));
    EXPECT_FALSE(hasSymmetricAdjacency(directedChain(8)));
    EXPECT_TRUE(hasSymmetricAdjacency(Graph{}));

    ThreadPool pool(2);
    Graph big = generateRmat(12, 8.0, 21);
    EXPECT_EQ(hasSymmetricAdjacency(big, &pool),
              hasSymmetricAdjacency(big));
}

TEST(PropsRegression, ComponentAndDiameterSemanticsUnchanged)
{
    EXPECT_EQ(countComponents(disconnectedGraph()), 46u); // 2 + 44
    EXPECT_EQ(approximateDiameter(generatePath(33), 4, 1), 32u);
    EXPECT_EQ(approximateDiameter(generateComplete(8), 4, 1), 1u);
    // Directed chain: hops follow out-arcs only, as before.
    auto hops = bfsHops(directedChain(5), 2);
    EXPECT_EQ(hops[4], 2u);
    EXPECT_EQ(hops[0], UINT32_MAX);
}

// ---------------------------------------------------------------
// Blocked stats sweep: byte-identical for any thread count AND any
// blocking factor (exact integer partials, one FP finalization).
// ---------------------------------------------------------------

TEST(PropsBlockedSweep, BlockingFactorNeverChangesStats)
{
    const Graph graphs[] = {
        generateUniformRandom(20000, 120000, 7),
        generateRmat(13, 8.0, 9),
        disconnectedGraph(),
        directedChain(600),
    };
    const std::size_t thread_counts[] = {1, 2, 8};
    const std::size_t blocks[] = {0, 1, 7, 64, 1000000};
    for (const Graph &g : graphs) {
        MeasureOptions reference;
        reference.threads = 1;
        const GraphStats expected = measureGraph(g, reference);
        for (std::size_t threads : thread_counts) {
            for (std::size_t block : blocks) {
                MeasureOptions options;
                options.threads = threads;
                options.statsBlock = block;
                EXPECT_TRUE(statsBitEqual(measureGraph(g, options),
                                          expected))
                    << "threads=" << threads << " block=" << block;
            }
        }
    }
}

TEST(PropsBlockedSweep, UniformDegreeStddevIsExactlyZero)
{
    // The integer variance expansion must cancel exactly on uniform
    // degrees, not just approximately.
    for (std::size_t block : {std::size_t{0}, std::size_t{3}}) {
        MeasureOptions options;
        options.statsBlock = block;
        EXPECT_DOUBLE_EQ(
            measureGraph(generateCycle(4096), options).degreeStddev,
            0.0);
    }
}

// ---------------------------------------------------------------
// Model-driven traversal selection: the plan steers only the
// schedule; outputs are identical to any fixed-threshold run.
// ---------------------------------------------------------------

TEST(PropsTraversalPlan, PolicyMatchesGraphShape)
{
    // Road-like sparse graph: bottom-up ruled out entirely.
    TraversalPlan road = planTraversal(1000, 1200, 1.2, 0.4);
    EXPECT_FALSE(road.useBottomUp);

    // Skewed power-law graph: eager switch, bitmap frontiers.
    TraversalPlan rmat = planTraversal(8192, 65536, 8.0, 24.0);
    EXPECT_TRUE(rmat.useBottomUp);
    EXPECT_TRUE(rmat.bitmapFrontier);
    EXPECT_NE(rmat.bottomUpEdgeDivisor, kBottomUpEdgeDivisor);

    // Moderate uniform graph: stock Beamer thresholds.
    TraversalPlan uniform = planTraversal(10000, 60000, 6.0, 0.5);
    EXPECT_TRUE(uniform.useBottomUp);
    EXPECT_FALSE(uniform.bitmapFrontier);
    EXPECT_EQ(uniform.bottomUpEdgeDivisor, kBottomUpEdgeDivisor);

    // Degenerate graphs never claim bottom-up.
    EXPECT_FALSE(planTraversal(1, 0, 0.0, 0.0).useBottomUp);
}

TEST(PropsTraversalPlan, PlanDrivenBfsMatchesFixedThresholds)
{
    const Graph graphs[] = {
        generateRmat(12, 8.0, 31),   // skewed: plan goes bitmap
        generateDenseEr(500, 0.3, 11),
        generatePath(4000),          // plan disables bottom-up
    };
    ThreadPool pool(2);
    for (const Graph &g : graphs) {
        const GraphStats stats = measureGraph(g, 0, 1);
        const TraversalPlan plan =
            planTraversal(stats.numVertices, stats.numEdges,
                          stats.avgDegree, stats.degreeStddev);
        const bool symmetric = hasSymmetricAdjacency(g);

        BfsOptions fixed; // stock thresholds, array frontiers
        fixed.allowBottomUp = symmetric;
        BfsOptions planned;
        planned.allowBottomUp = symmetric && plan.useBottomUp;
        planned.bottomUpEdgeDivisor = plan.bottomUpEdgeDivisor;
        planned.topDownSizeDivisor = plan.topDownSizeDivisor;
        planned.bitmapFrontier = plan.bitmapFrontier;
        planned.pool = &pool;

        for (VertexId source : {VertexId{0}, g.numVertices() / 2}) {
            std::vector<uint32_t> expected_hops(g.numVertices(),
                                                UINT32_MAX);
            std::vector<uint32_t> hops(g.numVertices(), UINT32_MAX);
            FrontierScratch scratch;
            scratch.prepare(g.numVertices());

            scratch.clearVisited();
            BfsResult expected = flatBfs(g, source, scratch,
                                         expected_hops.data(), fixed);
            scratch.clearVisited();
            BfsResult got =
                flatBfs(g, source, scratch, hops.data(), planned);

            EXPECT_EQ(got.depth, expected.depth);
            EXPECT_EQ(got.farthest, expected.farthest);
            EXPECT_EQ(got.reached, expected.reached);
            EXPECT_EQ(hops, expected_hops);
        }
    }
}

TEST(PropsFlatBfs, BitmapFrontierMatchesArrayFrontier)
{
    // Force bitmap mode on its own (independent of the plan) against
    // the stock array path, including the narrow->wide->narrow
    // transition in and out of bit form.
    Graph g = generateRmat(11, 16.0, 41);
    ASSERT_TRUE(hasSymmetricAdjacency(g));
    BfsOptions array_opts;
    array_opts.allowBottomUp = true;
    BfsOptions bitmap_opts = array_opts;
    bitmap_opts.bitmapFrontier = true;

    std::vector<uint32_t> a(g.numVertices(), UINT32_MAX);
    std::vector<uint32_t> b(g.numVertices(), UINT32_MAX);
    FrontierScratch scratch;
    scratch.prepare(g.numVertices());
    scratch.clearVisited();
    BfsResult ra = flatBfs(g, 0, scratch, a.data(), array_opts);
    scratch.clearVisited();
    BfsResult rb = flatBfs(g, 0, scratch, b.data(), bitmap_opts);
    EXPECT_EQ(ra.depth, rb.depth);
    EXPECT_EQ(ra.farthest, rb.farthest);
    EXPECT_EQ(ra.reached, rb.reached);
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------
// Fingerprints and the memo cache.
// ---------------------------------------------------------------

TEST(PropsFingerprint, SameCountsDifferentStructureDiffer)
{
    // Path and star on 4 vertices: identical V and arc counts.
    GraphBuilder path_builder(4);
    path_builder.addEdge(0, 1);
    path_builder.addEdge(1, 2);
    path_builder.addEdge(2, 3);
    Graph path = path_builder.symmetrize().build();

    GraphBuilder star_builder(4);
    star_builder.addEdge(0, 1);
    star_builder.addEdge(0, 2);
    star_builder.addEdge(0, 3);
    Graph star = star_builder.symmetrize().build();

    ASSERT_EQ(path.numVertices(), star.numVertices());
    ASSERT_EQ(path.numEdges(), star.numEdges());
    EXPECT_FALSE(fingerprintGraph(path) == fingerprintGraph(star));
}

TEST(PropsFingerprint, SingleEdgeChangeChangesFingerprint)
{
    Graph base = generateUniformRandom(200, 800, 3);
    GraphBuilder builder(base.numVertices());
    for (VertexId v = 0; v < base.numVertices(); ++v)
        for (VertexId u : base.neighbors(v))
            builder.addEdge(v, u);
    // Redirect one arc; counts stay identical.
    Graph tweaked = [&] {
        GraphBuilder other(base.numVertices());
        bool flipped = false;
        for (VertexId v = 0; v < base.numVertices(); ++v) {
            for (VertexId u : base.neighbors(v)) {
                VertexId target = u;
                if (!flipped) {
                    target = (u + 1) % base.numVertices();
                    flipped = true;
                }
                other.addEdge(v, target);
            }
        }
        return other.build();
    }();
    ASSERT_EQ(base.numEdges(), tweaked.numEdges());
    EXPECT_FALSE(fingerprintGraph(base) == fingerprintGraph(tweaked));
}

TEST(PropsFingerprint, ContentBasedAcrossCopies)
{
    Graph g = generateRmat(8, 6.0, 17);
    Graph copy = g;
    EXPECT_TRUE(fingerprintGraph(g) == fingerprintGraph(copy));
}

TEST(PropsStatsCache, HitMissAndValueCorrectness)
{
    GraphStatsCache cache(8);
    Graph g = generateUniformRandom(1000, 6000, 5);

    GraphStats cold = cache.measure(g);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_TRUE(statsBitEqual(cold, measureGraph(g)));

    GraphStats warm = cache.measure(g);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_TRUE(statsBitEqual(cold, warm));

    // A structural copy hits: the key is content, not identity.
    Graph copy = g;
    cache.measure(copy);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(PropsStatsCache, CollisionSafetyServesEachGraphItsOwnStats)
{
    GraphStatsCache cache(8);
    Graph path = generatePath(4);
    GraphBuilder star_builder(4);
    star_builder.addEdge(0, 1);
    star_builder.addEdge(0, 2);
    star_builder.addEdge(0, 3);
    Graph star = star_builder.symmetrize().build();
    ASSERT_EQ(path.numVertices(), star.numVertices());
    ASSERT_EQ(path.numEdges(), star.numEdges());

    EXPECT_EQ(cache.measure(path).maxDegree, 2u);
    EXPECT_EQ(cache.measure(star).maxDegree, 3u);
    EXPECT_EQ(cache.measure(path).diameter, 3u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(PropsStatsCache, MeasurementParametersArePartOfTheKey)
{
    GraphStatsCache cache(8);
    Graph g = generateCycle(64);
    MeasureOptions with_sweeps;
    MeasureOptions no_sweeps;
    no_sweeps.sweeps = 0;

    EXPECT_EQ(cache.measure(g, with_sweeps).diameter, 32u);
    EXPECT_EQ(cache.measure(g, no_sweeps).diameter, 0u);
    EXPECT_EQ(cache.misses(), 2u);

    MeasureOptions other_seed;
    other_seed.seed = 99;
    cache.measure(g, other_seed);
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(PropsStatsCache, LruEvictionAtCapacity)
{
    GraphStatsCache cache(2);
    Graph g1 = generateCycle(10);
    Graph g2 = generateCycle(12);
    Graph g3 = generateCycle(14);

    cache.measure(g1);
    cache.measure(g2);
    EXPECT_EQ(cache.evictions(), 0u);
    cache.measure(g1); // refresh g1: g2 becomes LRU
    cache.measure(g3); // evicts g2
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.size(), 2u);

    EXPECT_TRUE(cache.peek(g1).has_value());
    EXPECT_FALSE(cache.peek(g2).has_value());
    EXPECT_TRUE(cache.peek(g3).has_value());

    cache.measure(g2); // miss again after eviction
    EXPECT_EQ(cache.misses(), 4u);
}

TEST(PropsStatsCache, ConcurrentMissesConverge)
{
    GraphStatsCache cache(8);
    Graph g = generateRmat(10, 8.0, 29);
    const GraphStats expected = measureGraph(g);

    // Collect in workers, assert on the main thread.
    std::vector<GraphStats> results(8);
    ThreadPool pool(4);
    pool.parallelFor(8, [&](std::size_t i) {
        MeasureOptions serial_inner;
        serial_inner.threads = 1; // no nested pools inside workers
        results[i] = cache.measure(g, serial_inner);
    });
    for (const GraphStats &stats : results)
        EXPECT_TRUE(statsBitEqual(stats, expected));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits() + cache.misses(), 8u);
}

TEST(PropsStatsCache, GlobalCacheIsWiredAndMemoizes)
{
    GraphStatsCache &cache = globalStatsCache();
    Graph g = generateUniformRandom(500, 3000, 23);
    const uint64_t hits_before = cache.hits();
    GraphStats first = cache.measure(g);
    GraphStats second = cache.measure(g);
    EXPECT_TRUE(statsBitEqual(first, second));
    EXPECT_GE(cache.hits(), hits_before + 1);
}

} // namespace
} // namespace heteromap
