/**
 * @file
 * Unit tests for the CSR graph, builder, properties, and I/O.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hh"
#include "graph/chunker.hh"
#include "graph/compressed_csr.hh"
#include "graph/generators.hh"
#include "graph/graph.hh"
#include "graph/io.hh"
#include "graph/props.hh"
#include "util/logging.hh"

namespace heteromap {
namespace {

TEST(GraphTest, EmptyGraph)
{
    Graph g;
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(GraphTest, BuilderProducesSortedCsr)
{
    GraphBuilder builder(4);
    builder.addEdge(0, 3);
    builder.addEdge(0, 1);
    builder.addEdge(2, 0);
    Graph g = builder.build();

    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    ASSERT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.neighbors(0)[0], 1u);
    EXPECT_EQ(g.neighbors(0)[1], 3u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST(GraphTest, BuilderRejectsOutOfRangeEndpoints)
{
    GraphBuilder builder(2);
    EXPECT_THROW(builder.addEdge(0, 2), PanicError);
    EXPECT_THROW(builder.addEdge(5, 0), PanicError);
}

TEST(GraphTest, SymmetrizeAddsReverseArcs)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1);
    Graph g = builder.symmetrize().build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(GraphTest, DedupDropsParallelArcs)
{
    GraphBuilder builder(2);
    builder.addEdge(0, 1, 5.0f);
    builder.addEdge(0, 1, 9.0f);
    Graph g = builder.dedup().build();
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_FLOAT_EQ(g.edgeWeight(0), 5.0f);
}

TEST(GraphTest, DropSelfLoops)
{
    GraphBuilder builder(2);
    builder.addEdge(0, 0);
    builder.addEdge(0, 1);
    Graph g = builder.dropSelfLoops().build();
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphTest, RandomWeightsAreSymmetricAndInRange)
{
    GraphBuilder builder(4);
    builder.addEdge(0, 1);
    builder.addEdge(2, 3);
    Graph g =
        builder.symmetrize().randomWeights(99, 1.0f, 8.0f).build();
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        EXPECT_GE(g.edgeWeight(e), 1.0f);
        EXPECT_LT(g.edgeWeight(e), 8.0f);
    }
    // Both arcs of an undirected edge share a weight.
    EXPECT_FLOAT_EQ(g.edgeWeights(0)[0], g.edgeWeights(1)[0]);
}

TEST(GraphTest, UnweightedBuildDefaultsToOne)
{
    GraphBuilder builder(2);
    builder.addEdge(0, 1);
    Graph g = builder.build(/*weighted=*/false);
    EXPECT_FALSE(g.hasWeights());
    EXPECT_FLOAT_EQ(g.edgeWeight(0), 1.0f);
    EXPECT_TRUE(g.edgeWeights(0).empty());
}

TEST(GraphTest, DegreeStatistics)
{
    Graph g = generateStar(5);
    EXPECT_EQ(g.maxDegree(), 4u);
    EXPECT_DOUBLE_EQ(g.avgDegree(), 8.0 / 5.0);
    EXPECT_GT(g.footprintBytes(), 0u);
}

TEST(PropsTest, BfsHopsOnPath)
{
    Graph g = generatePath(5);
    auto hops = bfsHops(g, 0);
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_EQ(hops[v], v);
}

TEST(PropsTest, BfsUnreachableMarked)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1);
    Graph g = builder.symmetrize().build();
    auto hops = bfsHops(g, 0);
    EXPECT_EQ(hops[2], UINT32_MAX);
}

TEST(PropsTest, DiameterExactOnPath)
{
    Graph g = generatePath(33);
    EXPECT_EQ(approximateDiameter(g, 4, 1), 32u);
}

TEST(PropsTest, DiameterOfCompleteGraphIsOne)
{
    Graph g = generateComplete(8);
    EXPECT_EQ(approximateDiameter(g, 4, 1), 1u);
}

TEST(PropsTest, MeasureGraphFillsAllFields)
{
    Graph g = generateCycle(10);
    GraphStats stats = measureGraph(g);
    EXPECT_EQ(stats.numVertices, 10u);
    EXPECT_EQ(stats.numEdges, 20u);
    EXPECT_EQ(stats.maxDegree, 2u);
    EXPECT_DOUBLE_EQ(stats.avgDegree, 2.0);
    EXPECT_EQ(stats.diameter, 5u);
    EXPECT_DOUBLE_EQ(stats.degreeStddev, 0.0);
    EXPECT_FALSE(stats.toString().empty());
}

TEST(PropsTest, ComponentCount)
{
    GraphBuilder builder(6);
    builder.addEdge(0, 1);
    builder.addEdge(2, 3);
    Graph g = builder.symmetrize().build();
    EXPECT_EQ(countComponents(g), 4u); // {0,1}, {2,3}, {4}, {5}
}

TEST(IoTest, RoundTripPreservesStructureAndWeights)
{
    Graph g = generateUniformRandom(50, 200, 3);
    std::stringstream buffer;
    writeEdgeList(g, buffer);
    Graph back = readEdgeList(buffer);

    ASSERT_EQ(back.numVertices(), g.numVertices());
    ASSERT_EQ(back.numEdges(), g.numEdges());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto a = g.neighbors(v);
        auto b = back.neighbors(v);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i], b[i]);
            EXPECT_NEAR(g.edgeWeights(v)[i], back.edgeWeights(v)[i],
                        1e-4);
        }
    }
}

TEST(IoTest, RejectsMissingHeader)
{
    std::stringstream buffer("0 1 1.0\n");
    EXPECT_THROW(readEdgeList(buffer), FatalError);
}

TEST(IoTest, RejectsOutOfRangeVertex)
{
    std::stringstream buffer("vertices 2\n0 7 1.0\n");
    EXPECT_THROW(readEdgeList(buffer), FatalError);
}

TEST(IoTest, SkipsCommentsAndBlankLines)
{
    std::stringstream buffer(
        "# comment\n\nvertices 2\n# another\n0 1 2.5\n");
    Graph g = readEdgeList(buffer);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_FLOAT_EQ(g.edgeWeight(0), 2.5f);
}

TEST(IoTest, MissingWeightDefaultsToOne)
{
    std::stringstream buffer("vertices 2\n0 1\n");
    Graph g = readEdgeList(buffer);
    EXPECT_FLOAT_EQ(g.edgeWeight(0), 1.0f);
}

TEST(IoTest, ToleratesCrlfLineEndings)
{
    std::stringstream buffer("vertices 2\r\n0 1 2.5\r\n");
    Graph g = readEdgeList(buffer);
    EXPECT_EQ(g.numVertices(), 2u);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_FLOAT_EQ(g.edgeWeight(0), 2.5f);
}

TEST(IoTest, RecoverableOutOfRangeCarriesLineNumber)
{
    std::stringstream buffer("vertices 2\n0 1 1.0\n0 7 1.0\n");
    Result<Graph> result = tryReadEdgeList(buffer);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::OutOfRange);
    EXPECT_EQ(result.error().line, 3u);
}

TEST(IoTest, RejectsNegativeVertexIds)
{
    std::stringstream buffer("vertices 4\n-1 2 1.0\n");
    Result<Graph> result = tryReadEdgeList(buffer);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::OutOfRange);
    EXPECT_EQ(result.error().line, 2u);
}

TEST(IoTest, RejectsNegativeWeights)
{
    std::stringstream buffer("vertices 2\n0 1 -3.5\n");
    Result<Graph> result = tryReadEdgeList(buffer);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::OutOfRange);
    EXPECT_EQ(result.error().line, 2u);
    // The throwing wrapper maps the same failure to FatalError.
    std::stringstream again("vertices 2\n0 1 -3.5\n");
    EXPECT_THROW(readEdgeList(again), FatalError);
}

TEST(IoTest, MissingFileIsARecoverableIoError)
{
    Result<Graph> result =
        tryLoadEdgeListFile("/nonexistent/heteromap-no-such-file");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::Io);
}

// ---------------------------------------------------------------
// Delta-encoded compressed CSR (the chunked-streaming format).
// ---------------------------------------------------------------

TEST(CompressedCsrTest, RoundTripsExactCsrArrays)
{
    const Graph graphs[] = {
        Graph{},
        generateCycle(257),
        generateRmat(10, 8.0, 17),
        generateUniformRandom(2000, 12000, 5), // weighted
    };
    for (const Graph &g : graphs) {
        CompressedCsr c = CompressedCsr::fromGraph(g);
        EXPECT_EQ(c.numVertices(), g.numVertices());
        EXPECT_EQ(c.numEdges(), g.numEdges());
        Graph back = c.decompress();
        EXPECT_EQ(back.offsets(), g.offsets());
        EXPECT_EQ(back.rawNeighbors(), g.rawNeighbors());
        EXPECT_EQ(back.hasWeights(), g.hasWeights());
        for (EdgeId e = 0; e < g.numEdges(); ++e)
            ASSERT_EQ(back.edgeWeight(e), g.edgeWeight(e));
    }
}

TEST(CompressedCsrTest, StreamsNeighborsWithoutDecompressing)
{
    Graph g = generateRmat(9, 6.0, 23);
    CompressedCsr c = CompressedCsr::fromGraph(g);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(c.degree(v), g.degree(v));
        std::vector<VertexId> streamed;
        c.forEachNeighbor(v, [&](VertexId u) {
            streamed.push_back(u);
        });
        const auto expected = g.neighbors(v);
        ASSERT_EQ(streamed.size(), expected.size());
        for (std::size_t i = 0; i < streamed.size(); ++i)
            ASSERT_EQ(streamed[i], expected[i]);
    }
}

TEST(CompressedCsrTest, LocalEdgesCompressBelowRawWidth)
{
    // A cycle's neighbors sit next to their source: each should
    // encode in one or two bytes against the raw 4-byte VertexId.
    Graph g = generateCycle(10000);
    CompressedCsr c = CompressedCsr::fromGraph(g);
    EXPECT_LT(c.payloadBytes(),
              g.numEdges() * sizeof(VertexId) / 2);
    EXPECT_GT(c.payloadBytes(), 0u);
}

TEST(CompressedCsrTest, ChunkerCompressedChunkMatchesChunk)
{
    Graph g = generateUniformRandom(4000, 24000, 11);
    GraphChunker chunker(g, 64 * 1024);
    ASSERT_GT(chunker.numChunks(), 1u);
    for (std::size_t i = 0; i < chunker.numChunks(); ++i) {
        GraphChunk raw = chunker.chunk(i);
        GraphChunker::CompressedChunk packed =
            chunker.compressedChunk(i);
        EXPECT_EQ(packed.firstVertex, raw.firstVertex);
        EXPECT_EQ(packed.haloBegin, raw.haloBegin);
        EXPECT_EQ(packed.localToGlobal, raw.localToGlobal);
        Graph back = packed.subgraph.decompress();
        EXPECT_EQ(back.offsets(), raw.subgraph.offsets());
        EXPECT_EQ(back.rawNeighbors(), raw.subgraph.rawNeighbors());
    }
}

} // namespace
} // namespace heteromap
