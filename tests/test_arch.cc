/**
 * @file
 * Tests for the architecture models: specs/presets, MConfig, cache,
 * memory, sync, energy, memory-size, and the composed PerfModel's
 * qualitative behaviours (the ones the paper's results rest on).
 */

#include <gtest/gtest.h>

#include "arch/perf_model.hh"
#include "arch/presets.hh"
#include "core/oracle.hh"
#include "exec/executor.hh"
#include "graph/datasets.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

TEST(PresetTest, TableTwoHeadlineNumbers)
{
    AcceleratorSpec gpu = gtx750TiSpec();
    EXPECT_EQ(gpu.kind, AcceleratorKind::Gpu);
    EXPECT_EQ(gpu.cacheBytes, 2ULL << 20);
    EXPECT_FALSE(gpu.coherentCache);
    EXPECT_DOUBLE_EQ(gpu.memBandwidthGBs, 86.0);
    EXPECT_DOUBLE_EQ(gpu.spTflops, 1.3);
    EXPECT_DOUBLE_EQ(gpu.dpTflops, 0.04);

    AcceleratorSpec phi = xeonPhi7120Spec();
    EXPECT_EQ(phi.kind, AcceleratorKind::Multicore);
    EXPECT_EQ(phi.cores, 61u);
    EXPECT_EQ(phi.threadsPerCore, 4u);
    EXPECT_EQ(phi.maxThreads(), 244u);
    EXPECT_TRUE(phi.coherentCache);
    EXPECT_EQ(phi.cacheBytes, 32ULL << 20);
    EXPECT_DOUBLE_EQ(phi.memBandwidthGBs, 352.0);
    EXPECT_DOUBLE_EQ(phi.dpTflops, 1.2);

    AcceleratorSpec gtx970 = gtx970Spec();
    EXPECT_DOUBLE_EQ(gtx970.spTflops, 3.5);
    EXPECT_EQ(gtx970.memBytes, 4ULL << 30);

    AcceleratorSpec cpu = xeon40CoreSpec();
    EXPECT_EQ(cpu.cores, 40u);
    EXPECT_DOUBLE_EQ(cpu.freqGHz, 2.3);
}

TEST(PresetTest, AllPairsCoverTheFourCombinations)
{
    auto pairs = allPairs();
    ASSERT_EQ(pairs.size(), 4u);
    EXPECT_EQ(primaryPair().name(), "GTX-750Ti + XeonPhi-7120P");
}

TEST(PresetTest, OpsPerSecondBlendsPrecision)
{
    AcceleratorSpec phi = xeonPhi7120Spec();
    // FP-heavy workloads approach the blended TFLOP rating.
    EXPECT_GT(phi.opsPerSecond(1.0), phi.opsPerSecond(0.0));
    AcceleratorSpec gpu = gtx750TiSpec();
    // The Phi's DP advantage shows in the FP mix.
    EXPECT_GT(phi.opsPerSecond(1.0), gpu.opsPerSecond(1.0));
}

TEST(MConfigTest, ActiveThreadsFollowsAccelerator)
{
    MConfig c;
    c.accelerator = AcceleratorKind::Gpu;
    c.gpuGlobalThreads = 4096;
    EXPECT_EQ(c.activeThreads(), 4096u);
    c.accelerator = AcceleratorKind::Multicore;
    c.cores = 8;
    c.threadsPerCore = 3;
    EXPECT_EQ(c.activeThreads(), 24u);
}

TEST(MConfigTest, ChoiceVectorZeroesInactiveSide)
{
    MConfig gpu;
    gpu.accelerator = AcceleratorKind::Gpu;
    gpu.gpuGlobalThreads = 1024;
    gpu.cores = 32; // set but inactive
    auto vec = gpu.choiceVector();
    EXPECT_EQ(vec[0], 0);
    EXPECT_EQ(vec[3], 0); // cores slot zeroed for GPU configs
    EXPECT_GT(vec[1], 0);
}

/** Shared fixture: profiled PageRank and SSSP-Delta cases. */
class PerfModelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogVerbose(false);
        auto pr = makeWorkload("PR");
        auto delta = makeWorkload("SSSP-Delta");
        auto bf = makeWorkload("SSSP-BF");
        const Dataset &co = datasetByShortName("CO");
        const Dataset &ca = datasetByShortName("CA");

        prCo_ = new BenchmarkCase(makeCase(*pr, co));
        deltaCa_ = new BenchmarkCase(makeCase(*delta, ca));
        bfCo_ = new BenchmarkCase(makeCase(*bf, co));
    }

    static void
    TearDownTestSuite()
    {
        delete prCo_;
        delete deltaCa_;
        delete bfCo_;
        setLogVerbose(true);
    }

    static RunInput
    inputFor(const BenchmarkCase &bench)
    {
        RunInput in;
        in.profile = &bench.profile;
        in.shapeStats = bench.shapeStats;
        in.scaleStats = bench.scaleStats;
        return in;
    }

    static MConfig
    gpuConfig(unsigned global, unsigned local)
    {
        MConfig c;
        c.accelerator = AcceleratorKind::Gpu;
        c.gpuGlobalThreads = global;
        c.gpuLocalThreads = local;
        return c;
    }

    static MConfig
    multicoreConfig(unsigned cores, unsigned tpc, unsigned simd = 8)
    {
        MConfig c;
        c.accelerator = AcceleratorKind::Multicore;
        c.cores = cores;
        c.threadsPerCore = tpc;
        c.simdWidth = simd;
        return c;
    }

    static BenchmarkCase *prCo_;
    static BenchmarkCase *deltaCa_;
    static BenchmarkCase *bfCo_;
    PerfModel model_;
};

BenchmarkCase *PerfModelTest::prCo_ = nullptr;
BenchmarkCase *PerfModelTest::deltaCa_ = nullptr;
BenchmarkCase *PerfModelTest::bfCo_ = nullptr;

TEST_F(PerfModelTest, ProducesPositiveTimeAndEnergy)
{
    auto report = model_.evaluate(inputFor(*prCo_), xeonPhi7120Spec(),
                                  multicoreConfig(61, 4));
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_GT(report.joules, 0.0);
    EXPECT_GE(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
    EXPECT_FALSE(report.toString().empty());
}

TEST_F(PerfModelTest, KindMismatchIsPanic)
{
    EXPECT_THROW(model_.evaluate(inputFor(*prCo_), gtx750TiSpec(),
                                 multicoreConfig(8, 2)),
                 PanicError);
}

TEST_F(PerfModelTest, MoreGpuThreadsHelpUntilSaturation)
{
    double t16 = model_.evaluate(inputFor(*bfCo_), gtx750TiSpec(),
                                 gpuConfig(16, 64)).seconds;
    double t1024 = model_.evaluate(inputFor(*bfCo_), gtx750TiSpec(),
                                   gpuConfig(1024, 64)).seconds;
    EXPECT_LT(t1024, t16);
}

TEST_F(PerfModelTest, CoreSweepShowsSpeedupThenOverheadUShape)
{
    // Scaling from 1 to a moderate core count helps; past the sweet
    // spot, barrier wake-ups and contention on the tiny CO graph eat
    // the gains (the intra-accelerator trade-off Fig. 1 motivates).
    double t1 = model_.evaluate(inputFor(*prCo_), xeonPhi7120Spec(),
                                multicoreConfig(1, 4)).seconds;
    double t8 = model_.evaluate(inputFor(*prCo_), xeonPhi7120Spec(),
                                multicoreConfig(8, 4)).seconds;
    EXPECT_LT(t8, t1);
}

TEST_F(PerfModelTest, HighDiameterGraphStarvesGpu)
{
    // SSSP-Delta on the road network: the paper's Fig. 1 multicore
    // win, orders of magnitude in the extreme. Use each side's best
    // thread settings.
    double gpu = model_.evaluate(inputFor(*deltaCa_), gtx750TiSpec(),
                                 gpuConfig(10240, 128)).seconds;
    double phi = model_.evaluate(inputFor(*deltaCa_), xeonPhi7120Spec(),
                                 multicoreConfig(61, 4)).seconds;
    EXPECT_LT(phi, gpu);
}

TEST_F(PerfModelTest, MemorySizePenaltyKicksInForLargeGraphs)
{
    // Twitter's nominal footprint far exceeds 2 GB: the streamed-
    // chunk count must exceed 1 and shrink with more memory.
    auto delta = makeWorkload("PR");
    BenchmarkCase twtr =
        makeCase(*delta, datasetByShortName("Twtr"));

    AcceleratorSpec small_mem = xeonPhi7120Spec();
    small_mem.memBytes = 2ULL << 30;
    AcceleratorSpec big_mem = xeonPhi7120Spec();
    big_mem.memBytes = 16ULL << 30;

    auto small_report = model_.evaluate(inputFor(twtr), small_mem,
                                        multicoreConfig(61, 4));
    auto big_report = model_.evaluate(inputFor(twtr), big_mem,
                                      multicoreConfig(61, 4));
    EXPECT_GT(small_report.memoryChunks, big_report.memoryChunks);
    EXPECT_GT(small_report.seconds, big_report.seconds);
}

TEST_F(PerfModelTest, CoherentCacheHelpsSharedRwTraffic)
{
    AcceleratorSpec coherent = xeonPhi7120Spec();
    AcceleratorSpec incoherent = xeonPhi7120Spec();
    incoherent.coherentCache = false;

    CacheModel cache;
    const PhaseProfile &phase = prCo_->profile.phases.front();
    auto hit_coherent =
        cache.estimate(coherent, phase, prCo_->scaleStats, 61);
    auto hit_incoherent =
        cache.estimate(incoherent, phase, prCo_->scaleStats, 61);
    EXPECT_LE(hit_coherent.missRate, hit_incoherent.missRate);
}

TEST_F(PerfModelTest, ThrashingGrowsMissRateWithThreads)
{
    CacheModel cache;
    const PhaseProfile &phase = prCo_->profile.phases.front();
    auto few = cache.estimate(gtx750TiSpec(), phase,
                              prCo_->scaleStats, 32);
    auto many = cache.estimate(gtx750TiSpec(), phase,
                               prCo_->scaleStats, 8192);
    EXPECT_GE(many.missRate, few.missRate);
}

TEST_F(PerfModelTest, ChipUtilizationGrowsWithOccupancy)
{
    // Fig. 13's metric is chip-wide: 32 resident threads leave most
    // of the GPU idle regardless of how busy they are.
    auto low = model_.evaluate(inputFor(*bfCo_), gtx750TiSpec(),
                               gpuConfig(32, 32));
    auto high = model_.evaluate(inputFor(*bfCo_), gtx750TiSpec(),
                                gpuConfig(8192, 128));
    EXPECT_GT(high.utilization, low.utilization);
}

TEST(EnergyModelTest, EnergyScalesWithPowerRating)
{
    EnergyModel energy;
    MConfig phi_cfg;
    phi_cfg.accelerator = AcceleratorKind::Multicore;
    phi_cfg.cores = 61;
    phi_cfg.threadsPerCore = 4;

    double phi_watts =
        energy.averageWatts(xeonPhi7120Spec(), phi_cfg, 0.8);
    MConfig gpu_cfg;
    gpu_cfg.accelerator = AcceleratorKind::Gpu;
    gpu_cfg.gpuGlobalThreads = 8192;
    double gpu_watts =
        energy.averageWatts(gtx750TiSpec(), gpu_cfg, 0.8);
    // The Phi's 300 W rating dwarfs the 750Ti's 60 W.
    EXPECT_GT(phi_watts, 2.0 * gpu_watts);
}

TEST(EnergyModelTest, SpinningCostsPowerWhenStalled)
{
    EnergyModel energy;
    MConfig cfg;
    cfg.accelerator = AcceleratorKind::Multicore;
    cfg.cores = 61;
    cfg.activeWaitPolicy = false;
    double passive =
        energy.averageWatts(xeonPhi7120Spec(), cfg, 0.2);
    cfg.activeWaitPolicy = true;
    double active = energy.averageWatts(xeonPhi7120Spec(), cfg, 0.2);
    EXPECT_GT(active, passive);
}

TEST(MemorySizeModelTest, FitWithinMemoryHasNoPenalty)
{
    MemorySizeModel model;
    GraphStats small;
    small.numVertices = 1000;
    small.numEdges = 10000;
    auto effect = model.effect(small, 1ULL << 30, 10);
    EXPECT_EQ(effect.chunks, 1u);
    EXPECT_DOUBLE_EQ(effect.slowdown, 1.0);
}

TEST(MemorySizeModelTest, PenaltyGrowsWithChunksAndIterations)
{
    MemorySizeModel model;
    GraphStats big;
    big.numVertices = 42'000'000;
    big.numEdges = 1'500'000'000;

    auto two_gb = model.effect(big, 2ULL << 30, 20);
    auto eight_gb = model.effect(big, 8ULL << 30, 20);
    EXPECT_GT(two_gb.chunks, eight_gb.chunks);
    EXPECT_GT(two_gb.slowdown, eight_gb.slowdown);

    auto fewer_iters = model.effect(big, 2ULL << 30, 1);
    EXPECT_GT(two_gb.slowdown, fewer_iters.slowdown);
}

TEST(SyncModelTest, DynamicSchedulingRelievesContention)
{
    SyncModel sync;
    PhaseProfile phase;
    phase.name = "p";
    phase.atomics = 1e6;
    phase.sharedWriteBytes = 8e6;
    phase.workItems = 100000;

    MConfig stat;
    stat.accelerator = AcceleratorKind::Multicore;
    stat.schedule = SchedulePolicy::Static;
    MConfig dyn = stat;
    dyn.schedule = SchedulePolicy::Dynamic;
    dyn.chunkSize = 64;

    auto spec = xeonPhi7120Spec();
    auto t_static = sync.phaseCost(spec, stat, phase, 244);
    auto t_dynamic = sync.phaseCost(spec, dyn, phase, 244);
    EXPECT_LT(t_dynamic.atomicSeconds, t_static.atomicSeconds);
}

TEST(SyncModelTest, ShortBlocktimePaysWakeupsUnderImbalance)
{
    SyncModel sync;
    auto spec = xeonPhi7120Spec();
    MConfig impatient;
    impatient.accelerator = AcceleratorKind::Multicore;
    impatient.blocktimeMs = 1.0;
    MConfig patient = impatient;
    patient.blocktimeMs = 500.0;

    double short_bt = sync.barrierCost(spec, impatient, 244, 0.8);
    double long_bt = sync.barrierCost(spec, patient, 244, 0.8);
    EXPECT_GT(short_bt, long_bt);

    // With balanced arrivals the choice barely matters.
    double balanced_short = sync.barrierCost(spec, impatient, 244, 0.0);
    double balanced_long = sync.barrierCost(spec, patient, 244, 0.0);
    EXPECT_NEAR(balanced_short, balanced_long, 1e-7);
}

TEST(SyncModelTest, PlacementMismatchCostsMore)
{
    SyncModel sync;
    GraphStats road;
    road.avgDegree = 2.5;
    road.degreeStddev = 0.5;
    road.diameter = 900; // ideal spread ~ loose

    MConfig loose;
    loose.accelerator = AcceleratorKind::Multicore;
    loose.placementSpread = 1.0;
    MConfig compact = loose;
    compact.placementSpread = 0.0;

    EXPECT_LT(sync.placementFactor(loose, road, 0.2),
              sync.placementFactor(compact, road, 0.2));
}

TEST(SyncModelTest, GpuIgnoresPlacement)
{
    SyncModel sync;
    GraphStats stats;
    MConfig gpu;
    gpu.accelerator = AcceleratorKind::Gpu;
    gpu.placementSpread = 1.0;
    EXPECT_DOUBLE_EQ(sync.placementFactor(gpu, stats, 0.9), 1.0);
}

} // namespace
} // namespace heteromap
