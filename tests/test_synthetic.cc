/**
 * @file
 * Tests for the synthetic benchmark generator (Fig. 9): generated
 * kernels must honor their B vectors in the measured profile, and the
 * sampler must cover the phase space.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hh"
#include "graph/props.hh"
#include "workloads/synthetic.hh"

namespace heteromap {
namespace {

class SyntheticTest : public ::testing::Test
{
  protected:
    static Graph
    graph()
    {
        return generateUniformRandom(500, 3000, 21);
    }
};

TEST_F(SyntheticTest, PhaseMixIsRenormalized)
{
    BVariables b;
    b.b1 = 2.0;
    b.b4 = 2.0;
    SyntheticWorkload workload(b, 1);
    EXPECT_NEAR(workload.bVariables().phaseSum(), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(workload.bVariables().b1, 0.5);
}

TEST_F(SyntheticTest, EmptyPhaseMixDefaultsToVertexDivision)
{
    BVariables b; // all zeros
    SyntheticWorkload workload(b, 2);
    EXPECT_DOUBLE_EQ(workload.bVariables().b1, 1.0);
}

TEST_F(SyntheticTest, GeneratedPhasesMatchPhaseMix)
{
    BVariables b;
    b.b1 = 0.5;
    b.b4 = 0.3;
    b.b5 = 0.2;
    SyntheticWorkload workload(b, 3);
    auto profile = workload.runProfiled(graph()).second;

    EXPECT_NE(profile.findPhase("syn-vertex"), nullptr);
    EXPECT_NE(profile.findPhase("syn-push-pop"), nullptr);
    EXPECT_NE(profile.findPhase("syn-reduce"), nullptr);
    EXPECT_EQ(profile.findPhase("syn-pareto"), nullptr);

    // Work items are proportional to the phase shares.
    auto items = [&](const char *name) {
        return static_cast<double>(profile.findPhase(name)->workItems);
    };
    EXPECT_NEAR(items("syn-vertex") / items("syn-push-pop"),
                0.5 / 0.3, 0.1);
}

TEST_F(SyntheticTest, FpShareTracksB6)
{
    BVariables lo;
    lo.b1 = 1.0;
    lo.b6 = 0.0;
    BVariables hi = lo;
    hi.b6 = 1.0;

    Graph g = graph();
    auto lo_prof = SyntheticWorkload(lo, 4).runProfiled(g).second;
    auto hi_prof = SyntheticWorkload(hi, 4).runProfiled(g).second;

    auto fp_share = [](const WorkloadProfile &prof) {
        double fp = 0.0;
        for (const auto &phase : prof.phases)
            fp += phase.fpOps;
        return fp / prof.totalOps();
    };
    EXPECT_LT(fp_share(lo_prof), 0.05);
    EXPECT_GT(fp_share(hi_prof), 0.4);
}

TEST_F(SyntheticTest, IndirectShareTracksB8)
{
    BVariables direct;
    direct.b1 = 1.0;
    direct.b7 = 1.0;
    BVariables indirect = direct;
    indirect.b7 = 0.0;
    indirect.b8 = 1.0;

    Graph g = graph();
    auto d = SyntheticWorkload(direct, 5).runProfiled(g).second;
    auto i = SyntheticWorkload(indirect, 5).runProfiled(g).second;

    auto indirect_share = [](const WorkloadProfile &prof) {
        double ind = 0.0;
        double all = 0.0;
        for (const auto &phase : prof.phases) {
            ind += phase.indirectAccesses;
            all += phase.totalAccesses();
        }
        return ind / all;
    };
    EXPECT_GT(indirect_share(i), 3.0 * indirect_share(d));
}

TEST_F(SyntheticTest, AtomicsTrackB12)
{
    BVariables calm;
    calm.b1 = 1.0;
    BVariables contended = calm;
    contended.b12 = 0.9;

    Graph g = graph();
    auto c = SyntheticWorkload(calm, 6).runProfiled(g).second;
    auto h = SyntheticWorkload(contended, 6).runProfiled(g).second;
    EXPECT_GT(h.totalAtomics(), 5.0 * (c.totalAtomics() + 1.0));
}

TEST_F(SyntheticTest, BarriersTrackB13)
{
    BVariables few;
    few.b1 = 1.0;
    few.b13 = 0.0;
    BVariables many = few;
    many.b13 = 0.5; // five extra barriers per iteration

    Graph g = graph();
    auto f = SyntheticWorkload(few, 7, 2).runProfiled(g).second;
    auto m = SyntheticWorkload(many, 7, 2).runProfiled(g).second;
    EXPECT_EQ(m.barriers - f.barriers, 2u * 5u);
}

TEST_F(SyntheticTest, DeterministicForSameSeed)
{
    BVariables b;
    b.b1 = 0.6;
    b.b5 = 0.4;
    b.b6 = 0.5;
    b.b12 = 0.3;
    Graph g = graph();
    auto a = SyntheticWorkload(b, 8).runProfiled(g).first;
    auto c = SyntheticWorkload(b, 8).runProfiled(g).first;
    EXPECT_EQ(a.vertexValues, c.vertexValues);
    EXPECT_DOUBLE_EQ(a.scalar, c.scalar);
}

TEST_F(SyntheticTest, SamplerProducesRequestedCountOnGrid)
{
    auto vectors = sampleSyntheticBVectors(40, 99);
    ASSERT_EQ(vectors.size(), 40u);
    for (const auto &b : vectors) {
        EXPECT_TRUE(b.validate().empty());
        EXPECT_NEAR(b.phaseSum(), 1.0, 1e-9);
    }
}

TEST_F(SyntheticTest, SamplerStartsWithPurePhaseCorners)
{
    auto vectors = sampleSyntheticBVectors(5, 1);
    EXPECT_DOUBLE_EQ(vectors[0].b1, 1.0);
    EXPECT_DOUBLE_EQ(vectors[1].b2, 1.0);
    EXPECT_DOUBLE_EQ(vectors[2].b3, 1.0);
    EXPECT_DOUBLE_EQ(vectors[3].b4, 1.0);
    EXPECT_DOUBLE_EQ(vectors[4].b5, 1.0);
}

TEST_F(SyntheticTest, SamplerCoversDiversePhaseKinds)
{
    auto vectors = sampleSyntheticBVectors(60, 2);
    std::set<int> dominant;
    for (const auto &b : vectors) {
        double phases[] = {b.b1, b.b2, b.b3, b.b4, b.b5};
        int best = 0;
        for (int i = 1; i < 5; ++i)
            if (phases[i] > phases[best])
                best = i;
        dominant.insert(best);
    }
    EXPECT_EQ(dominant.size(), 5u);
}

} // namespace
} // namespace heteromap
