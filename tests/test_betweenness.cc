/**
 * @file
 * Tests for the betweenness-centrality extension workload against
 * closed-form values on canonical graphs.
 */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "graph/props.hh"
#include "workloads/betweenness.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

TEST(BetweennessTest, PathGraphClosedForm)
{
    // Undirected path of n vertices, Brandes over all sources counts
    // ordered pairs: BC(i) = 2 * i * (n - 1 - i).
    const VertexId n = 9;
    Graph g = generatePath(n);
    BetweennessCentrality exact(/*samples=*/0);
    auto out = exact.runProfiled(g).first;
    for (VertexId v = 0; v < n; ++v) {
        double expected =
            2.0 * static_cast<double>(v) *
            static_cast<double>(n - 1 - v);
        EXPECT_NEAR(out.vertexValues[v], expected, 1e-9)
            << "vertex " << v;
    }
}

TEST(BetweennessTest, StarCenterDominates)
{
    // Star with n-1 leaves: center BC = (n-1)(n-2), leaves 0.
    const VertexId n = 12;
    Graph g = generateStar(n);
    BetweennessCentrality exact(0);
    auto out = exact.runProfiled(g).first;
    EXPECT_NEAR(out.vertexValues[0],
                static_cast<double>((n - 1) * (n - 2)), 1e-9);
    for (VertexId v = 1; v < n; ++v)
        EXPECT_NEAR(out.vertexValues[v], 0.0, 1e-9);
}

TEST(BetweennessTest, CycleIsSymmetric)
{
    Graph g = generateCycle(10);
    BetweennessCentrality exact(0);
    auto out = exact.runProfiled(g).first;
    for (VertexId v = 1; v < 10; ++v)
        EXPECT_NEAR(out.vertexValues[v], out.vertexValues[0], 1e-9);
    EXPECT_GT(out.vertexValues[0], 0.0);
}

TEST(BetweennessTest, CompleteGraphHasZeroCentrality)
{
    // Every pair is adjacent: no shortest path passes through a
    // third vertex.
    Graph g = generateComplete(8);
    BetweennessCentrality exact(0);
    auto out = exact.runProfiled(g).first;
    for (double c : out.vertexValues)
        EXPECT_NEAR(c, 0.0, 1e-9);
}

TEST(BetweennessTest, SampledRunIsDeterministicAndBounded)
{
    Graph g = generateRmat(9, 6.0, 7);
    BetweennessCentrality sampled(8);
    auto a = sampled.runProfiled(g).first;
    auto b = sampled.runProfiled(g).first;
    EXPECT_EQ(a.vertexValues, b.vertexValues);
    for (double c : a.vertexValues)
        EXPECT_GE(c, 0.0);
}

TEST(BetweennessTest, ProfileShowsBothWaveKinds)
{
    Graph g = generatePath(20);
    auto profile =
        BetweennessCentrality(4).runProfiled(g).second;
    ASSERT_NE(profile.findPhase("bc-forward"), nullptr);
    ASSERT_NE(profile.findPhase("bc-backward"), nullptr);
    EXPECT_EQ(profile.findPhase("bc-forward")->kind,
              PhaseKind::ParetoDynamic);
    EXPECT_EQ(profile.findPhase("bc-backward")->kind,
              PhaseKind::Pareto);
    EXPECT_GT(profile.findPhase("bc-backward")->fpOps, 0.0);
    EXPECT_GT(profile.findPhase("bc-forward")->atomics, 0.0);
}

TEST(BetweennessTest, AvailableViaRegistryButNotInPaperList)
{
    auto workload = makeWorkload("BC");
    EXPECT_EQ(workload->name(), "BC");
    for (const auto &name : workloadNames())
        EXPECT_NE(name, "BC");
    EXPECT_NEAR(workload->bVariables().phaseSum(), 1.0, 1e-9);
}

} // namespace
} // namespace heteromap
