/**
 * @file
 * Regression tests pinning the paper-shape results the calibrated
 * model reproduces (EXPERIMENTS.md). Each assertion uses a decisive
 * margin from the winner matrix so ordinary refactoring noise cannot
 * flip it; if one of these fails, the hardware model's calibration
 * has materially changed and EXPERIMENTS.md must be revisited.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

/** Tuned GPU/multicore ratio for one combination (>1 = GPU wins). */
class PaperShapes : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { setLogVerbose(false); }
    static void TearDownTestSuite() { setLogVerbose(true); }

    static double
    phiOverGpu(const char *workload, const char *input,
               AcceleratorPair pair = pinnedPair(primaryPair()))
    {
        Oracle oracle;
        auto w = makeWorkload(workload);
        BenchmarkCase bench = makeCase(*w, datasetByShortName(input));
        CaseBaselines base = computeBaselines(
            bench, pair, oracle, GridGranularity::Coarse);
        return base.multicoreSeconds / base.gpuSeconds;
    }
};

TEST_F(PaperShapes, GpuWinsSsspBfOnSocialGraphs)
{
    // Fig. 11: SSSP-BF is the canonical GPU-biased benchmark.
    EXPECT_GT(phiOverGpu("SSSP-BF", "LJ"), 1.2);
    EXPECT_GT(phiOverGpu("SSSP-BF", "Twtr"), 1.2);
    EXPECT_GT(phiOverGpu("SSSP-BF", "Frnd"), 1.2);
}

TEST_F(PaperShapes, MulticoreWinsSsspDeltaOnMostInputs)
{
    // Fig. 11: Delta-stepping's push-pop/reduction mix favors the Phi.
    EXPECT_LT(phiOverGpu("SSSP-Delta", "CA"), 0.85);
    EXPECT_LT(phiOverGpu("SSSP-Delta", "FB"), 0.85);
    EXPECT_LT(phiOverGpu("SSSP-Delta", "LJ"), 0.9);
}

TEST_F(PaperShapes, SsspDeltaFriendsterExceptionGoesGpu)
{
    // Sec. VII-B: "notable exceptions ... Frnd ... perform better on
    // the GPU because they are large and require more threads".
    EXPECT_GT(phiOverGpu("SSSP-Delta", "Frnd"), 1.1);
}

TEST_F(PaperShapes, MulticoreWinsFpBenchmarks)
{
    // Sec. VII-B: PR, PR-DP require FP capabilities -> Xeon Phi.
    EXPECT_LT(phiOverGpu("PR", "LJ"), 0.85);
    EXPECT_LT(phiOverGpu("PR-DP", "LJ"), 0.85);
    EXPECT_LT(phiOverGpu("PR-DP", "CO"), 0.5);
}

TEST_F(PaperShapes, DenseConnectomeFavorsTheMulticoreCache)
{
    // CO fits the Phi's 32 MB cache, never the GPU's 2 MB.
    EXPECT_LT(phiOverGpu("TRI", "CO"), 1.0);
    EXPECT_LT(phiOverGpu("COMM", "CO"), 0.85);
    EXPECT_LT(phiOverGpu("DFS", "CO"), 0.85);
}

TEST_F(PaperShapes, LargeGraphExceptionsShiftTriAndCommToGpu)
{
    EXPECT_GT(phiOverGpu("TRI", "Frnd"), 1.2);
    EXPECT_GT(phiOverGpu("COMM", "Frnd"), 1.2);
}

TEST_F(PaperShapes, StrongerGpuAmplifiesGpuWins)
{
    // Fig. 14: TRI-LJ flips to the GTX-970.
    AcceleratorPair strong =
        pinnedPair({gtx970Spec(), xeonPhi7120Spec()});
    EXPECT_GT(phiOverGpu("TRI", "LJ", strong), 1.5);
    // And SSSP-BF's margin grows.
    EXPECT_GT(phiOverGpu("SSSP-BF", "LJ", strong),
              phiOverGpu("SSSP-BF", "LJ"));
}

TEST_F(PaperShapes, IdealBeatsBothSingleAcceleratorsOnGeomean)
{
    // The headline: selection across accelerators beats either alone
    // by a wide margin (paper: 31% over GPU-only on the primary pair).
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    std::vector<double> gpu_ratio, mc_ratio;
    const std::pair<const char *, const char *> combos[] = {
        {"SSSP-BF", "LJ"},  {"SSSP-Delta", "CA"}, {"PR", "CO"},
        {"TRI", "Frnd"},    {"COMM", "FB"},       {"CONN", "CAGE"},
        {"BFS", "Frnd"},    {"PR-DP", "Twtr"},
    };
    for (const auto &[w, d] : combos) {
        auto workload = makeWorkload(w);
        BenchmarkCase bench =
            makeCase(*workload, datasetByShortName(d));
        CaseBaselines base = computeBaselines(
            bench, pair, oracle, GridGranularity::Coarse);
        gpu_ratio.push_back(base.gpuSeconds / base.idealSeconds);
        mc_ratio.push_back(base.multicoreSeconds / base.idealSeconds);
    }
    EXPECT_GT(geomean(gpu_ratio), 1.15);
    EXPECT_GT(geomean(mc_ratio), 1.10);
}

} // namespace
} // namespace heteromap
