/**
 * @file
 * Equivalence tests for the batched inference path: for every
 * predictor kind, predictBatch(N) must be byte-identical to N
 * independent predict() calls at every batch size, and the flattened
 * decision tree must agree with the pointer tree across a dense
 * (B, I) grid including threshold-straddling values.
 */

#include <gtest/gtest.h>

#include "core/heteromap.hh"
#include "core/oracle.hh"
#include "graph/datasets.hh"
#include "model/decision_tree.hh"
#include "model/mlp.hh"
#include "util/rng.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

/** Random but deterministic feature vector with threshold-straddling
 *  coordinates (values land on both sides of 0.5 and exactly on it). */
FeatureVector
randomFeatures(Rng &rng)
{
    auto knob = [&rng] {
        // A fifth of the draws pin interesting boundary values.
        switch (rng.nextBounded(10)) {
          case 0: return 0.0;
          case 1: return 0.5;
          default: return rng.nextDouble();
        }
    };
    FeatureVector f;
    f.b.b1 = knob();  f.b.b2 = knob();  f.b.b3 = knob();
    f.b.b4 = knob();  f.b.b5 = knob();  f.b.b6 = knob();
    f.b.b7 = knob();  f.b.b8 = knob();  f.b.b9 = knob();
    f.b.b10 = knob(); f.b.b11 = knob(); f.b.b12 = knob();
    f.b.b13 = knob();
    f.i.i1 = knob();  f.i.i2 = knob();
    f.i.i3 = knob();  f.i.i4 = knob();
    return f;
}

/** Small labelled corpus so the learned kinds have fitted weights. */
TrainingSet
corpus(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    TrainingSet out;
    out.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        TrainingSample sample;
        sample.x = randomFeatures(rng);
        for (double &m : sample.y.m)
            m = rng.nextDouble();
        out.push_back(sample);
    }
    return out;
}

TEST(BatchInferenceTest, EveryKindMatchesScalarPredictByteForByte)
{
    const TrainingSet train = corpus(96, 11);
    Rng rng(23);
    for (PredictorKind kind : allPredictorKinds()) {
        auto predictor = makePredictor(kind);
        predictor->train(train);

        for (std::size_t batch : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}, std::size_t{33}}) {
            std::vector<FeatureVector> features(batch);
            for (FeatureVector &f : features)
                f = randomFeatures(rng);

            const std::vector<NormalizedMVector> got =
                predictor->predictBatch(features);
            ASSERT_EQ(got.size(), batch);
            for (std::size_t i = 0; i < batch; ++i) {
                EXPECT_EQ(got[i], predictor->predict(features[i]))
                    << predictor->name() << " batch=" << batch
                    << " sample=" << i;
            }
        }
    }
}

TEST(BatchInferenceTest, MlpBatchIsIdenticalAcrossBatchSizes)
{
    // The same sample must produce bit-equal outputs whether it rides
    // in a batch of 1 or 64 — the k-sequential kernel guarantee.
    Mlp mlp(32);
    mlp.train(corpus(64, 31));
    Rng rng(37);
    std::vector<FeatureVector> features(64);
    for (FeatureVector &f : features)
        f = randomFeatures(rng);

    const auto wide = mlp.predictBatch(features);
    for (std::size_t i = 0; i < features.size(); ++i) {
        const auto solo = mlp.predictBatch(
            std::span<const FeatureVector>(&features[i], 1));
        EXPECT_EQ(wide[i], solo[0]) << "sample " << i;
    }
}

TEST(BatchInferenceTest, FlatTreeMatchesPointerTreeOnDenseGrid)
{
    // Dense grid over the features the M1 tree actually branches on,
    // pinning values below, exactly at, and above the threshold, plus
    // the b6 > 0 and b11 <= 0.1 special-cased boundaries.
    const double grid[] = {0.0, 0.1, 0.5, 0.500000001, 1.0};
    for (double threshold : {0.5, 0.35}) {
        DecisionTreeHeuristic tree(threshold);
        for (double b1 : grid)
        for (double b4 : grid)
        for (double b5 : grid)
        for (double b6 : {0.0, 0.05, 0.7})
        for (double b10 : grid)
        for (double b11 : {0.0, 0.1, 0.11, 0.6})
        for (double i1 : {0.2, 0.7}) {
            FeatureVector f;
            f.b.b1 = b1;
            f.b.b2 = 1.0 - b1;
            f.b.b3 = b1 * 0.5;
            f.b.b4 = b4;
            f.b.b5 = b5;
            f.b.b6 = b6;
            f.b.b8 = 1.0 - b4;
            f.b.b10 = b10;
            f.b.b11 = b11;
            f.b.b12 = 1.0 - b10;
            f.b.b13 = b5;
            f.i.i1 = i1;
            f.i.i2 = 0.3;
            f.i.i3 = 0.6;
            f.i.i4 = 0.4;
            ASSERT_EQ(tree.chooseAcceleratorFlat(f),
                      tree.chooseAccelerator(f))
                << "b1=" << b1 << " b4=" << b4 << " b5=" << b5
                << " b6=" << b6 << " b10=" << b10 << " b11=" << b11
                << " i1=" << i1 << " t=" << threshold;
            ASSERT_EQ(tree.predictFlat(f), tree.predict(f));
        }
    }
}

TEST(BatchInferenceTest, FlatTreeMatchesPointerTreeOnRandomSweep)
{
    DecisionTreeHeuristic tree;
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const FeatureVector f = randomFeatures(rng);
        ASSERT_EQ(tree.chooseAcceleratorFlat(f),
                  tree.chooseAccelerator(f));
        ASSERT_EQ(tree.predictFlat(f), tree.predict(f));
    }
}

TEST(BatchInferenceTest, BaseClassLoopFallbackMatchesScalar)
{
    // A predictor that does not override predictBatch still honors
    // the contract through the base-class loop.
    class Constant : public Predictor
    {
      public:
        std::string name() const override { return "constant"; }
        void train(const TrainingSet &) override {}
        NormalizedMVector
        predict(const FeatureVector &f) const override
        {
            NormalizedMVector y;
            y.m[0] = f.b.b1;
            return y;
        }
    };
    Constant c;
    Rng rng(43);
    std::vector<FeatureVector> features(5);
    for (FeatureVector &f : features)
        f = randomFeatures(rng);
    const auto out = c.predictBatch(features);
    ASSERT_EQ(out.size(), features.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], c.predict(features[i]));
}

TEST(BatchInferenceTest, DeployBatchMatchesScalarDeploy)
{
    // The serving path's deployBatch must produce the same configs
    // and reports as one deploy() per case; only overheadMs differs
    // (amortized timing).
    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::Deep16), oracle);
    framework.trainOffline(corpus(48, 53));

    std::vector<BenchmarkCase> benches;
    for (const char *workload :
         {"PR", "BFS", "TRI", "SSSP-BF", "CONN", "COMM"}) {
        benches.push_back(makeCase(*makeWorkload(workload),
                                   datasetByShortName("CO")));
    }

    const auto batched = framework.deployBatch(benches);
    ASSERT_EQ(batched.size(), benches.size());
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const Deployment solo = framework.deploy(benches[i]);
        EXPECT_EQ(batched[i].predicted, solo.predicted);
        EXPECT_EQ(batched[i].config.accelerator,
                  solo.config.accelerator);
        EXPECT_EQ(batched[i].config.cores, solo.config.cores);
        EXPECT_EQ(batched[i].report.seconds, solo.report.seconds);
    }
}

} // namespace
} // namespace heteromap
