/**
 * @file
 * Tests for the Stinger-substitute graph chunker.
 */

#include <gtest/gtest.h>

#include "graph/chunker.hh"
#include "graph/generators.hh"
#include "util/logging.hh"

namespace heteromap {
namespace {

TEST(ChunkerTest, SingleChunkWhenBudgetIsLarge)
{
    Graph g = generateCycle(100);
    GraphChunker chunker(g, 1ULL << 30);
    EXPECT_EQ(chunker.numChunks(), 1u);
    GraphChunk chunk = chunker.chunk(0);
    EXPECT_EQ(chunk.firstVertex, 0u);
    EXPECT_EQ(chunk.subgraph.numVertices(), 100u);
    EXPECT_EQ(chunk.subgraph.numEdges(), g.numEdges());
    EXPECT_EQ(chunk.haloBegin, 100u);
}

TEST(ChunkerTest, SplitsUnderTightBudget)
{
    Graph g = generateUniformRandom(500, 2000, 1);
    GraphChunker chunker(g, 16 * 1024);
    EXPECT_GT(chunker.numChunks(), 1u);

    // Boundaries cover the whole vertex range monotonically.
    const auto &bounds = chunker.boundaries();
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), g.numVertices());
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(ChunkerTest, ChunksPreserveAllEdges)
{
    Graph g = generateUniformRandom(300, 1200, 2);
    GraphChunker chunker(g, 8 * 1024);

    EdgeId total = 0;
    for (std::size_t i = 0; i < chunker.numChunks(); ++i)
        total += chunker.chunk(i).subgraph.numEdges();
    EXPECT_EQ(total, g.numEdges());
}

TEST(ChunkerTest, LocalToGlobalMappingIsConsistent)
{
    Graph g = generateUniformRandom(200, 800, 3);
    GraphChunker chunker(g, 8 * 1024);

    for (std::size_t i = 0; i < chunker.numChunks(); ++i) {
        GraphChunk chunk = chunker.chunk(i);
        const Graph &sub = chunk.subgraph;

        // Interior vertices map back to the contiguous range.
        for (VertexId local = 0; local < chunk.haloBegin; ++local) {
            EXPECT_EQ(chunk.localToGlobal[local],
                      chunk.firstVertex + local);
        }

        // Every chunk edge corresponds to a global edge.
        for (VertexId local = 0; local < chunk.haloBegin; ++local) {
            VertexId global_src = chunk.localToGlobal[local];
            auto global_nbrs = g.neighbors(global_src);
            auto local_nbrs = sub.neighbors(local);
            ASSERT_EQ(local_nbrs.size(), global_nbrs.size());
            for (std::size_t e = 0; e < local_nbrs.size(); ++e) {
                VertexId mapped =
                    chunk.localToGlobal[local_nbrs[e]];
                // Adjacency may be reordered by halo remapping; check
                // membership instead of position.
                bool found = false;
                for (VertexId u : global_nbrs)
                    found |= (u == mapped);
                EXPECT_TRUE(found)
                    << "edge " << global_src << "->" << mapped
                    << " not in the original graph";
            }
        }

        // Halo vertices have no outgoing edges in the chunk.
        for (VertexId local = chunk.haloBegin;
             local < sub.numVertices(); ++local) {
            EXPECT_EQ(sub.degree(local), 0u);
        }
    }
}

TEST(ChunkerTest, FatalWhenOneVertexExceedsBudget)
{
    Graph g = generateStar(1000); // hub with degree 999
    EXPECT_THROW(GraphChunker(g, 1024), FatalError);
}

TEST(ChunkerTest, RejectsZeroBudget)
{
    Graph g = generateCycle(10);
    EXPECT_THROW(GraphChunker(g, 0), PanicError);
}

TEST(ChunkerTest, ChunkIndexOutOfRangeIsFatal)
{
    Graph g = generateCycle(10);
    GraphChunker chunker(g, 1ULL << 20);
    EXPECT_THROW(chunker.chunk(5), PanicError);
}

} // namespace
} // namespace heteromap
