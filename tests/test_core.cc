/**
 * @file
 * Tests for the core framework: oracle case construction, the
 * profiler database, the training pipeline, and the HeteroMap
 * runtime's deployment path.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/database.hh"
#include "core/experiment.hh"
#include "core/heteromap.hh"
#include "core/oracle.hh"
#include "core/training.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

class CoreTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }

    Oracle oracle_;

    BenchmarkCase
    smallCase(const char *workload = "PR", const char *input = "CO")
    {
        auto w = makeWorkload(workload);
        return makeCase(*w, datasetByShortName(input));
    }
};

TEST_F(CoreTest, MakeCaseBundlesEverything)
{
    BenchmarkCase bench = smallCase();
    EXPECT_EQ(bench.workloadName, "PR");
    EXPECT_EQ(bench.inputName, "CO");
    EXPECT_EQ(bench.label(), "PR-CO");
    EXPECT_FALSE(bench.profile.phases.empty());
    EXPECT_GT(bench.output.vertexValues.size(), 0u);
    // I features come from the nominal (Table I) stats.
    EXPECT_EQ(bench.scaleStats.numVertices, 562u);
    EXPECT_GT(bench.features.b.b6, 0.5); // PR is FP-heavy
}

TEST_F(CoreTest, OracleScoresBothSides)
{
    BenchmarkCase bench = smallCase();
    MConfig gpu;
    gpu.accelerator = AcceleratorKind::Gpu;
    gpu.gpuGlobalThreads = 4096;
    gpu.gpuLocalThreads = 128;
    MConfig mc;
    mc.accelerator = AcceleratorKind::Multicore;
    mc.cores = 32;
    mc.threadsPerCore = 4;

    EXPECT_GT(oracle_.seconds(bench, primaryPair(), gpu), 0.0);
    EXPECT_GT(oracle_.seconds(bench, primaryPair(), mc), 0.0);
    EXPECT_GT(oracle_.run(bench, primaryPair(), mc).joules, 0.0);
}

TEST_F(CoreTest, DatabaseInsertLookupNearest)
{
    ProfilerDatabase db;
    EXPECT_TRUE(db.empty());

    FeatureVector a;
    a.b.b1 = 0.5;
    a.i.i1 = 0.3;
    NormalizedMVector ya;
    ya.m[0] = 1.0;
    db.insert(a, ya);

    FeatureVector b;
    b.b.b4 = 0.9;
    NormalizedMVector yb;
    yb.m[0] = 0.0;
    db.insert(b, yb);

    EXPECT_EQ(db.size(), 2u);
    auto hit = db.lookup(a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->m[0], 1.0);

    // A nearby query misses exactly but resolves by distance.
    FeatureVector near_a = a;
    near_a.i.i1 = 0.4;
    EXPECT_FALSE(db.lookup(near_a).has_value());
    EXPECT_DOUBLE_EQ(db.nearest(near_a).m[0], 1.0);
}

TEST_F(CoreTest, DatabaseDiscretizesKeys)
{
    ProfilerDatabase db;
    FeatureVector a;
    a.b.b1 = 0.5001; // same 0.1 grid cell as 0.52
    NormalizedMVector y;
    y.m[5] = 0.7;
    db.insert(a, y);

    FeatureVector b;
    b.b.b1 = 0.52;
    auto hit = db.lookup(b);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->m[5], 0.7);
}

TEST_F(CoreTest, DatabaseRoundTripsThroughText)
{
    ProfilerDatabase db;
    FeatureVector a;
    a.b.b7 = 0.8;
    a.i.i4 = 0.8;
    NormalizedMVector y;
    y.m[0] = 1.0;
    y.m[19] = 0.4;
    db.insert(a, y);

    std::stringstream buffer;
    db.save(buffer);
    ProfilerDatabase back = ProfilerDatabase::load(buffer);
    EXPECT_EQ(back.size(), 1u);
    auto hit = back.lookup(a);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->m[19], 0.4);
}

TEST_F(CoreTest, DatabaseLoadRejectsGarbage)
{
    std::stringstream buffer("0.1 0.2 nonsense\n");
    EXPECT_THROW(ProfilerDatabase::load(buffer), FatalError);
}

TEST_F(CoreTest, EmptyDatabaseNearestIsFatal)
{
    ProfilerDatabase db;
    EXPECT_THROW(db.nearest(FeatureVector{}), FatalError);
}

TEST_F(CoreTest, TrainingPipelineProducesLabelledCorpus)
{
    TrainingOptions options;
    options.syntheticBenchmarks = 6;
    options.syntheticIterations = 1;
    options.tuner = TunerKind::Anneal;
    options.searchIterations = 40;

    // A single small training graph keeps this test quick.
    std::vector<TrainingGraph> graphs;
    Graph g = generateUniformRandom(512, 2048, 77);
    GraphStats stats = measureGraph(g);
    graphs.push_back({"tiny", g, stats, stats});

    TrainingPipeline pipeline(primaryPair(), oracle_, options);
    TrainingSet corpus = pipeline.run(graphs);

    EXPECT_EQ(corpus.size(), 6u);
    EXPECT_EQ(pipeline.database().size(), corpus.size());
    EXPECT_GT(pipeline.evaluations(), 0u);
    for (const auto &sample : corpus) {
        for (double v : sample.y.m) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST_F(CoreTest, MakePredictorCoversAllKinds)
{
    EXPECT_EQ(allPredictorKinds().size(), 8u);
    for (PredictorKind kind : allPredictorKinds()) {
        auto predictor = makePredictor(kind);
        ASSERT_NE(predictor, nullptr);
        EXPECT_FALSE(predictor->name().empty());
    }
    EXPECT_EQ(makePredictor(PredictorKind::Deep128)->name(),
              "Deep.128");
}

TEST_F(CoreTest, HeteroMapDeploysAndChargesOverhead)
{
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle_);
    BenchmarkCase bench = smallCase();
    Deployment deployment = framework.deploy(bench);

    EXPECT_GT(deployment.report.seconds, 0.0);
    EXPECT_GE(deployment.overheadMs, 0.0);
    EXPECT_GT(deployment.totalSeconds(), deployment.report.seconds);
    // Deployed config matches the predicted accelerator choice.
    EXPECT_EQ(deployment.config.accelerator,
              deployment.predicted.m[0] < 0.5
                  ? AcceleratorKind::Gpu
                  : AcceleratorKind::Multicore);
}

TEST_F(CoreTest, TrainedHeteroMapBeatsWorstSingleAccelerator)
{
    TrainingOptions options;
    options.syntheticBenchmarks = 10;
    options.syntheticIterations = 1;
    TrainingPipeline pipeline(primaryPair(), oracle_, options);
    TrainingSet corpus = pipeline.run();

    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::Deep32), oracle_);
    framework.trainOffline(corpus);

    BenchmarkCase bench = smallCase("SSSP-Delta", "CA");
    Deployment deployment = framework.deploy(bench);
    CaseBaselines baselines = computeBaselines(
        bench, primaryPair(), oracle_, GridGranularity::Coarse);

    double worst =
        std::max(baselines.gpuSeconds, baselines.multicoreSeconds);
    EXPECT_LT(deployment.report.seconds, worst * 1.05);
}

TEST_F(CoreTest, BaselinesOrderedSensibly)
{
    BenchmarkCase bench = smallCase("SSSP-Delta", "CA");
    CaseBaselines baselines = computeBaselines(
        bench, primaryPair(), oracle_, GridGranularity::Coarse);

    EXPECT_GT(baselines.gpuSeconds, 0.0);
    EXPECT_GT(baselines.multicoreSeconds, 0.0);
    EXPECT_LE(baselines.idealSeconds,
              std::min(baselines.gpuSeconds,
                       baselines.multicoreSeconds) + 1e-15);
    EXPECT_EQ(baselines.gpuBest.accelerator, AcceleratorKind::Gpu);
    EXPECT_EQ(baselines.multicoreBest.accelerator,
              AcceleratorKind::Multicore);

    // Accuracy metric semantics.
    EXPECT_DOUBLE_EQ(
        accuracyVsIdeal(baselines.idealSeconds,
                        baselines.idealSeconds), 1.0);
    EXPECT_NEAR(accuracyVsIdeal(2.0 * baselines.idealSeconds,
                                baselines.idealSeconds), 0.5, 1e-12);
}

} // namespace
} // namespace heteromap
