/**
 * @file
 * Edge-case and failure-injection tests: degenerate graphs through
 * every workload, hostile model inputs, and boundary configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/perf_model.hh"
#include "arch/presets.hh"
#include "core/oracle.hh"
#include "graph/builder.hh"
#include "graph/chunker.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

/** Degenerate graphs every workload must survive. */
class DegenerateGraph
    : public ::testing::TestWithParam<const char *>
{
  protected:
    static Graph
    single()
    {
        return GraphBuilder(1).build();
    }

    static Graph
    isolatedPair()
    {
        return GraphBuilder(2).build();
    }

    static Graph
    singleEdge()
    {
        GraphBuilder b(2);
        b.addEdge(0, 1, 3.0f);
        return b.symmetrize().build();
    }

    static Graph
    hubAndIslands()
    {
        // A star plus unreachable vertices.
        GraphBuilder b(10);
        for (VertexId v = 1; v < 6; ++v)
            b.addEdge(0, v);
        return b.symmetrize().build();
    }
};

TEST_P(DegenerateGraph, AllWorkloadsSurvive)
{
    auto workload = makeWorkload(GetParam());
    for (const Graph &g :
         {single(), isolatedPair(), singleEdge(), hubAndIslands()}) {
        auto [out, profile] = workload->runProfiled(g);
        ASSERT_EQ(out.vertexValues.size(), g.numVertices());
        for (double v : out.vertexValues)
            EXPECT_FALSE(std::isnan(v));
        EXPECT_GE(out.scalar, 0.0);
        // Source vertex is always resolved by traversal workloads.
        if (std::string(GetParam()) != "TRI") {
            EXPECT_LT(out.vertexValues[0], kUnreachable);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DegenerateGraph,
                         ::testing::Values("SSSP-BF", "SSSP-Delta",
                                           "BFS", "DFS", "PR", "PR-DP",
                                           "TRI", "COMM", "CONN"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

TEST(EdgeCaseTest, SsspOnSingleVertexIsZero)
{
    Graph g = GraphBuilder(1).build();
    auto out = makeWorkload("SSSP-BF")->runProfiled(g).first;
    EXPECT_DOUBLE_EQ(out.vertexValues[0], 0.0);
    EXPECT_DOUBLE_EQ(out.scalar, 1.0);
}

TEST(EdgeCaseTest, ConnOnIsolatedVerticesGivesSelfLabels)
{
    Graph g = GraphBuilder(4).build();
    auto out = makeWorkload("CONN")->runProfiled(g).first;
    for (VertexId v = 0; v < 4; ++v)
        EXPECT_DOUBLE_EQ(out.vertexValues[v], static_cast<double>(v));
    EXPECT_DOUBLE_EQ(out.scalar, 4.0);
}

TEST(EdgeCaseTest, PageRankOnIsolatedVerticesIsUniform)
{
    Graph g = GraphBuilder(5).build();
    auto out = makeWorkload("PR")->runProfiled(g).first;
    for (double r : out.vertexValues)
        EXPECT_NEAR(r, (1.0 - 0.85) / 5.0, 1e-12);
}

TEST(EdgeCaseTest, PerfModelHandlesEmptyProfile)
{
    WorkloadProfile empty;
    RunInput input;
    input.profile = &empty;
    input.shapeStats.numVertices = 1;
    input.shapeStats.numEdges = 0;
    input.scaleStats = input.shapeStats;

    PerfModel model;
    MConfig config;
    config.accelerator = AcceleratorKind::Multicore;
    auto report = model.evaluate(input, xeonPhi7120Spec(), config);
    EXPECT_GE(report.seconds, 0.0);
    EXPECT_TRUE(std::isfinite(report.seconds));
    EXPECT_TRUE(std::isfinite(report.joules));
}

TEST(EdgeCaseTest, PerfModelNullProfileIsPanic)
{
    RunInput input;
    PerfModel model;
    MConfig config;
    config.accelerator = AcceleratorKind::Gpu;
    EXPECT_THROW(model.evaluate(input, gtx750TiSpec(), config),
                 PanicError);
}

TEST(EdgeCaseTest, ExtremeConfigsStayFinite)
{
    setLogVerbose(false);
    Graph g = generateUniformRandom(128, 512, 3);
    auto workload = makeWorkload("PR");
    BenchmarkCase bench =
        makeCase(*workload, g, "tiny", measureGraph(g));
    Oracle oracle;

    // Absurd but type-valid configurations.
    MConfig huge;
    huge.accelerator = AcceleratorKind::Multicore;
    huge.cores = 100000;
    huge.threadsPerCore = 1000;
    huge.simdWidth = 10000;
    huge.chunkSize = 1000000;
    huge.blocktimeMs = 1e9;
    EXPECT_TRUE(std::isfinite(
        oracle.seconds(bench, primaryPair(), huge)));

    MConfig tiny;
    tiny.accelerator = AcceleratorKind::Gpu;
    tiny.gpuGlobalThreads = 1;
    tiny.gpuLocalThreads = 1;
    EXPECT_TRUE(std::isfinite(
        oracle.seconds(bench, primaryPair(), tiny)));
    setLogVerbose(true);
}

TEST(EdgeCaseTest, ChunkerPreservesWeightsThroughHaloRemap)
{
    Graph g = generateUniformRandom(200, 800, 9);
    GraphChunker chunker(g, g.footprintBytes() / 3);
    ASSERT_GE(chunker.numChunks(), 2u);

    GraphChunk chunk = chunker.chunk(0);
    const Graph &sub = chunk.subgraph;
    for (VertexId local = 0; local < chunk.haloBegin; ++local) {
        VertexId global_src = chunk.localToGlobal[local];
        auto local_w = sub.edgeWeights(local);
        auto local_n = sub.neighbors(local);
        for (std::size_t e = 0; e < local_n.size(); ++e) {
            VertexId global_dst = chunk.localToGlobal[local_n[e]];
            // Find the matching global edge weight.
            auto gn = g.neighbors(global_src);
            auto gw = g.edgeWeights(global_src);
            bool found = false;
            for (std::size_t k = 0; k < gn.size(); ++k) {
                if (gn[k] == global_dst &&
                    std::fabs(gw[k] - local_w[e]) < 1e-6) {
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found);
        }
    }
}

TEST(EdgeCaseTest, StrongerGpuIsNeverSlowerAtSameConfig)
{
    setLogVerbose(false);
    Oracle oracle;
    auto workload = makeWorkload("SSSP-BF");
    BenchmarkCase bench =
        makeCase(*workload, datasetByShortName("CAGE"));

    MConfig config;
    config.accelerator = AcceleratorKind::Gpu;
    config.gpuGlobalThreads = 4096;
    config.gpuLocalThreads = 128;

    AcceleratorPair weak = {gtx750TiSpec(), xeonPhi7120Spec()};
    AcceleratorPair strong = {gtx970Spec(), xeonPhi7120Spec()};
    EXPECT_LE(oracle.seconds(bench, strong, config),
              oracle.seconds(bench, weak, config));
    setLogVerbose(true);
}

TEST(EdgeCaseTest, WorkloadNamesRejectEmptyAndCase)
{
    EXPECT_THROW(makeWorkload(""), FatalError);
    EXPECT_THROW(makeWorkload("pr"), FatalError); // case-sensitive
}

} // namespace
} // namespace heteromap
