/**
 * @file
 * Tests for the linear algebra layer, the normalized M encoding, the
 * regression predictors, the adaptive-library baseline, and the
 * Section IV decision-tree heuristic (including the paper's worked
 * Fig. 7 example).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "core/heteromap.hh"
#include "features/ivars.hh"
#include "graph/datasets.hh"
#include "model/adaptive_library.hh"
#include "model/dataset.hh"
#include "model/decision_tree.hh"
#include "model/linear_regression.hh"
#include "model/matrix.hh"
#include "model/poly_regression.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

TEST(MatrixTest, MultiplyAndTranspose)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);

    Matrix t = a.transpose();
    EXPECT_DOUBLE_EQ(t.at(0, 1), 3.0);
}

TEST(MatrixTest, ShapeMismatchIsPanic)
{
    Matrix a(2, 3);
    Matrix b(2, 3);
    EXPECT_THROW(a.multiply(b), PanicError);
    EXPECT_THROW(a.at(5, 0), PanicError);
}

TEST(MatrixTest, ApplyMatchesMultiply)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    auto y = a.apply({1.0, 0.0, -1.0});
    EXPECT_DOUBLE_EQ(y[0], -2.0);
    EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, CholeskySolvesSpdSystem)
{
    // A = M^T M + I is SPD for any M.
    Matrix m = Matrix::fromRows({{2, 1}, {1, 3}, {0, 1}});
    Matrix a = m.transpose().multiply(m);
    Matrix x_true = Matrix::fromRows({{1.0}, {-2.0}});
    Matrix b = a.multiply(x_true);
    Matrix x = choleskySolve(a, b, 0.0);
    EXPECT_NEAR(x.at(0, 0), 1.0, 1e-9);
    EXPECT_NEAR(x.at(1, 0), -2.0, 1e-9);
}

TEST(MatrixTest, CholeskyRejectsIndefinite)
{
    Matrix a = Matrix::fromRows({{0, 0}, {0, 0}});
    Matrix b(2, 1);
    EXPECT_THROW(choleskySolve(a, b, 0.0), FatalError);
    // A ridge rescues it.
    EXPECT_NO_THROW(choleskySolve(a, b, 1e-3));
}

TEST(MatrixTest, IdentityAndNorm)
{
    Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i.frobeniusNorm(), std::sqrt(3.0));
    Matrix doubled = i.scaled(2.0).add(i);
    EXPECT_DOUBLE_EQ(doubled.at(1, 1), 3.0);
}

TEST(EncodingTest, DeployNormalizeRoundTrip)
{
    AcceleratorPair pair = primaryPair();
    NormalizedMVector y;
    y.m[0] = 1.0; // multicore
    y.m[1] = 0.5;
    y.m[2] = 1.0;
    y.m[8] = 0.75; // dynamic
    y.m[9] = 0.5;

    MConfig config = deployNormalized(y, pair);
    EXPECT_EQ(config.accelerator, AcceleratorKind::Multicore);
    EXPECT_EQ(config.cores, 31u); // round(0.5 * 61)
    EXPECT_EQ(config.threadsPerCore, 4u);
    EXPECT_EQ(config.schedule, SchedulePolicy::Dynamic);
    EXPECT_EQ(config.simdWidth, 8u);

    NormalizedMVector back = normalizeConfig(config, pair);
    EXPECT_NEAR(back.m[1], 0.5, 0.02);
    EXPECT_DOUBLE_EQ(back.m[0], 1.0);
    EXPECT_DOUBLE_EQ(back.m[8], 0.75);
}

TEST(EncodingTest, MinimumFloorsApplied)
{
    AcceleratorPair pair = primaryPair();
    NormalizedMVector zeros; // all 0 -> GPU with k floors
    MConfig config = deployNormalized(zeros, pair);
    EXPECT_EQ(config.accelerator, AcceleratorKind::Gpu);
    EXPECT_GE(config.gpuGlobalThreads, 1u); // k = 1 thread
    EXPECT_GE(config.gpuLocalThreads, 1u);
    EXPECT_GE(config.cores, 1u); // k = 1 core
}

TEST(EncodingTest, CeilingAppliedAboveMaxima)
{
    AcceleratorPair pair = primaryPair();
    NormalizedMVector ones;
    for (double &v : ones.m)
        v = 1.0;
    MConfig config = deployNormalized(ones, pair);
    EXPECT_EQ(config.cores, pair.multicore.cores);
    EXPECT_EQ(config.gpuGlobalThreads, pair.gpu.maxGlobalThreads);
    EXPECT_EQ(config.gpuLocalThreads, pair.gpu.maxLocalThreads);
}

/** Synthetic linear-ish corpus for regression sanity checks. */
TrainingSet
linearCorpus(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    TrainingSet out;
    for (std::size_t i = 0; i < n; ++i) {
        FeatureVector x;
        x.b.b1 = rng.nextDouble();
        x.b.b6 = rng.nextDouble();
        x.b.b10 = rng.nextDouble();
        x.i.i1 = rng.nextDouble();
        NormalizedMVector y;
        // A linear rule the models should recover.
        y.m[0] = 0.3 * x.b.b1 + 0.5 * x.b.b6;
        y.m[1] = 0.5 * x.i.i1 + 0.4 * x.b.b10;
        y.m[18] = 0.5 * x.b.b1 + 0.2;
        out.push_back({x, y});
    }
    return out;
}

TEST(LinearRegressionTest, RecoversLinearRule)
{
    auto corpus = linearCorpus(400, 31);
    LinearRegression model;
    model.train(corpus);
    EXPECT_LT(meanSquaredError(model, corpus), 1e-6);
    EXPECT_EQ(model.name(), "Linear Regression");
}

TEST(LinearRegressionTest, PredictBeforeTrainIsPanic)
{
    LinearRegression model;
    FeatureVector x;
    EXPECT_THROW(model.predict(x), PanicError);
}

TEST(PolyRegressionTest, FitsNonlinearRuleBetterThanLinear)
{
    Rng rng(37);
    TrainingSet corpus;
    for (int i = 0; i < 600; ++i) {
        FeatureVector x;
        x.b.b1 = rng.nextDouble();
        x.i.i1 = rng.nextDouble();
        NormalizedMVector y;
        // Strongly non-linear target.
        y.m[0] = x.b.b1 * x.b.b1 * x.i.i1;
        corpus.push_back({x, y});
    }
    LinearRegression linear;
    linear.train(corpus);
    PolyRegression poly(3);
    poly.train(corpus);
    EXPECT_LT(meanSquaredError(poly, corpus),
              0.5 * meanSquaredError(linear, corpus));
}

TEST(PolyRegressionTest, ExpansionSizeFormula)
{
    PolyRegression poly(7);
    EXPECT_EQ(poly.expandedSize(), 1u + 17u * 7u + 17u * 16u / 2u);
    FeatureVector x;
    EXPECT_EQ(poly.expand(x).size(), poly.expandedSize());
}

TEST(PolyRegressionTest, SeventhOrderIsDefaultPaperModel)
{
    PolyRegression poly;
    EXPECT_NE(poly.name().find("order 7"), std::string::npos);
}

TEST(AdaptiveLibraryTest, UsesOnlyDataMovementFeatures)
{
    auto corpus = linearCorpus(300, 41);
    AdaptiveLibrary model;
    model.train(corpus);

    // Changing a feature outside {b1, b9, b10, b11} cannot change the
    // prediction (the Rinnegan-style model is blind to it).
    FeatureVector a;
    a.b.b1 = 0.5;
    FeatureVector b = a;
    b.b.b6 = 0.9;
    b.i.i4 = 1.0;
    EXPECT_EQ(model.predict(a).m, model.predict(b).m);

    // But it does respond to data movement inputs.
    FeatureVector c = a;
    c.b.b10 = 0.9;
    EXPECT_NE(model.predict(a).m, model.predict(c).m);
}

TEST(DatasetHelpersTest, SplitAndShuffle)
{
    auto corpus = linearCorpus(100, 43);
    auto [train, valid] = splitTrainingSet(corpus, 0.8);
    EXPECT_EQ(train.size(), 80u);
    EXPECT_EQ(valid.size(), 20u);

    auto shuffled = corpus;
    shuffleTrainingSet(shuffled, 7);
    EXPECT_EQ(shuffled.size(), corpus.size());
    bool any_moved = false;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        any_moved |= !(shuffled[i].x == corpus[i].x);
    EXPECT_TRUE(any_moved);

    Matrix x = featureMatrix(corpus);
    Matrix y = targetMatrix(corpus);
    EXPECT_EQ(x.rows(), 100u);
    EXPECT_EQ(x.cols(), kNumFeatures);
    EXPECT_EQ(y.cols(), kNumOutputs);
}

class DecisionTreeTest : public ::testing::Test
{
  protected:
    DecisionTreeHeuristic tree_;

    static FeatureVector
    featuresFor(const char *workload, const char *input)
    {
        FeatureVector f;
        f.b = makeWorkload(workload)->bVariables();
        f.i = extractIVariables(datasetByShortName(input));
        return f;
    }
};

TEST_F(DecisionTreeTest, Figure7WorkedExample)
{
    // Fig. 7: SSSP-BF on USA-Cal -> GPU with M19 = 0.1, M20 = 1;
    // SSSP-Delta on USA-Cal -> multicore with M2 ~ 7 cores, M3 = max,
    // M5-7 = 0.9 (very loose placement).
    FeatureVector bf = featuresFor("SSSP-BF", "CA");
    EXPECT_EQ(tree_.chooseAccelerator(bf), AcceleratorKind::Gpu);
    auto y_bf = tree_.predict(bf);
    EXPECT_DOUBLE_EQ(y_bf.m[18], 0.1); // M19 from I1
    EXPECT_DOUBLE_EQ(y_bf.m[19], 1.0); // M20 from Avg.Deg

    FeatureVector delta = featuresFor("SSSP-Delta", "CA");
    EXPECT_EQ(tree_.chooseAccelerator(delta),
              AcceleratorKind::Multicore);
    auto y_delta = tree_.predict(delta);
    EXPECT_DOUBLE_EQ(y_delta.m[4], 0.9); // M5-7 loose placement

    MConfig deployed = deployNormalized(y_delta, primaryPair());
    EXPECT_NEAR(deployed.cores, 7.0, 1.0);        // "7 cores"
    EXPECT_EQ(deployed.threadsPerCore, 4u);       // "maximum 4"
}

TEST_F(DecisionTreeTest, ParallelWorkloadsChooseGpu)
{
    for (const char *w : {"SSSP-BF", "BFS"}) {
        FeatureVector f = featuresFor(w, "CAGE");
        EXPECT_EQ(tree_.chooseAccelerator(f), AcceleratorKind::Gpu)
            << w;
    }
}

TEST_F(DecisionTreeTest, PushPopAndFpWorkloadsChooseMulticore)
{
    EXPECT_EQ(tree_.chooseAccelerator(featuresFor("DFS", "CO")),
              AcceleratorKind::Multicore);
    EXPECT_EQ(tree_.chooseAccelerator(featuresFor("SSSP-Delta", "LJ")),
              AcceleratorKind::Multicore);
    // Large graphs with FP run on the multicore (Sec. IV).
    EXPECT_EQ(tree_.chooseAccelerator(featuresFor("PR", "Frnd")),
              AcceleratorKind::Multicore);
}

TEST_F(DecisionTreeTest, TrainIsANoOp)
{
    FeatureVector f = featuresFor("PR", "LJ");
    auto before = tree_.predict(f);
    tree_.train({});
    auto after = tree_.predict(f);
    EXPECT_EQ(before.m, after.m);
}

TEST_F(DecisionTreeTest, AllOutputsNormalized)
{
    for (const auto &workload : workloadNames()) {
        for (const auto &dataset : evaluationDatasets()) {
            FeatureVector f;
            f.b = makeWorkload(workload)->bVariables();
            f.i = extractIVariables(dataset);
            auto y = tree_.predict(f);
            for (double v : y.m) {
                EXPECT_GE(v, 0.0);
                EXPECT_LE(v, 1.0);
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Uniform model serialization (core/heteromap.hh factory)            */
/* ------------------------------------------------------------------ */

class SerializationTest : public ::testing::Test
{
  protected:
    /** ~24 samples: every workload x two inputs, random-ish labels. */
    static TrainingSet
    corpus()
    {
        Rng rng(7);
        TrainingSet samples;
        for (const auto &workload : workloadNames()) {
            for (const char *input : {"CA", "LJ"}) {
                TrainingSample sample;
                sample.x.b = makeWorkload(workload)->bVariables();
                sample.x.i =
                    extractIVariables(datasetByShortName(input));
                for (double &v : sample.y.m)
                    v = rng.nextDouble();
                samples.push_back(std::move(sample));
            }
        }
        return samples;
    }

    /** Every kind the factory knows, including the non-Table-IV one. */
    static std::vector<PredictorKind>
    allSerializableKinds()
    {
        std::vector<PredictorKind> kinds = allPredictorKinds();
        kinds.push_back(PredictorKind::TableLookup);
        return kinds;
    }
};

TEST_F(SerializationTest, RoundTripIsByteIdenticalForEveryKind)
{
    const TrainingSet samples = corpus();
    for (PredictorKind kind : allSerializableKinds()) {
        SCOPED_TRACE(predictorKindName(kind));
        std::unique_ptr<Predictor> original = makePredictor(kind);
        original->train(samples);

        std::ostringstream out;
        savePredictor(*original, kind, out);
        std::istringstream in(out.str());
        Result<std::unique_ptr<Predictor>> loaded =
            loadPredictor(kind, in);
        ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
        std::unique_ptr<Predictor> restored =
            std::move(loaded).value();
        ASSERT_NE(restored, nullptr);
        EXPECT_EQ(restored->name(), original->name());

        for (const TrainingSample &sample : samples) {
            NormalizedMVector a = original->predict(sample.x);
            NormalizedMVector b = restored->predict(sample.x);
            // Byte-identical, not just close: setprecision(17) must
            // round-trip every double exactly.
            EXPECT_EQ(0, std::memcmp(a.m.data(), b.m.data(),
                                     sizeof(double) * a.m.size()));
        }
    }
}

TEST_F(SerializationTest, SelfDescribingLoadRestoresEveryKind)
{
    const TrainingSet samples = corpus();
    for (PredictorKind kind : allSerializableKinds()) {
        SCOPED_TRACE(predictorKindName(kind));
        auto original = makePredictor(kind);
        original->train(samples);
        std::ostringstream out;
        savePredictor(*original, kind, out);
        std::istringstream in(out.str());
        Result<LoadedPredictor> loaded = loadAnyPredictor(in);
        ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
        LoadedPredictor restored = std::move(loaded).value();
        EXPECT_EQ(restored.kind, kind);
        EXPECT_EQ(restored.predictor->name(), original->name());
    }
}

TEST_F(SerializationTest, LoadedPredictorCanKeepTraining)
{
    // A loaded model is a full Predictor, not a frozen artifact.
    const TrainingSet samples = corpus();
    auto original = makePredictor(PredictorKind::LinearRegression);
    original->train(samples);
    std::ostringstream out;
    savePredictor(*original, PredictorKind::LinearRegression, out);
    std::istringstream in(out.str());
    auto loaded =
        loadPredictor(PredictorKind::LinearRegression, in);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    auto restored = std::move(loaded).value();
    restored->train(samples); // refit on the same corpus
    NormalizedMVector a = original->predict(samples.front().x);
    NormalizedMVector b = restored->predict(samples.front().x);
    for (std::size_t k = 0; k < a.m.size(); ++k)
        EXPECT_NEAR(a.m[k], b.m[k], 1e-9);
}

TEST_F(SerializationTest, KindMismatchOnLoadIsRecoverable)
{
    auto tree = makePredictor(PredictorKind::DecisionTree);
    std::ostringstream out;
    savePredictor(*tree, PredictorKind::DecisionTree, out);
    std::istringstream in(out.str());
    Result<std::unique_ptr<Predictor>> loaded =
        loadPredictor(PredictorKind::LinearRegression, in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Parse);
}

TEST_F(SerializationTest, MlpWidthMismatchOnLoadIsRecoverable)
{
    // A Deep.16 stream declares "deep-16" in its envelope, so loading
    // it as Deep.32 is caught at the header — before the payload's
    // own width check would have fired.
    auto deep16 = makePredictor(PredictorKind::Deep16);
    std::ostringstream out;
    savePredictor(*deep16, PredictorKind::Deep16, out);
    std::istringstream in(out.str());
    Result<std::unique_ptr<Predictor>> loaded =
        loadPredictor(PredictorKind::Deep32, in);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Parse);
}

TEST_F(SerializationTest, SaveUnderWrongKindIsFatal)
{
    // Saving is a programming error contract, not an input-data one:
    // the caller names the concrete class it holds.
    auto tree = makePredictor(PredictorKind::DecisionTree);
    std::ostringstream out;
    EXPECT_THROW(
        savePredictor(*tree, PredictorKind::AdaptiveLibrary, out),
        FatalError);
}

TEST_F(SerializationTest, TruncatedStreamIsRecoverableForEveryKind)
{
    const TrainingSet samples = corpus();
    for (PredictorKind kind : allSerializableKinds()) {
        SCOPED_TRACE(predictorKindName(kind));
        auto predictor = makePredictor(kind);
        predictor->train(samples);
        std::ostringstream out;
        savePredictor(*predictor, kind, out);
        const std::string text = out.str();
        // Cut at several depths: inside the envelope header, right
        // after it, and mid-payload.
        for (std::size_t cut :
             {std::size_t(4), text.size() / 4, text.size() / 2,
              text.size() - 1}) {
            SCOPED_TRACE(cut);
            std::istringstream in(text.substr(0, cut));
            Result<std::unique_ptr<Predictor>> loaded =
                loadPredictor(kind, in);
            ASSERT_FALSE(loaded.ok());
        }
    }
}

TEST_F(SerializationTest, BitFlipIsDetectedForEveryKind)
{
    const TrainingSet samples = corpus();
    Rng rng(0xb17f11b);
    for (PredictorKind kind : allSerializableKinds()) {
        SCOPED_TRACE(predictorKindName(kind));
        auto predictor = makePredictor(kind);
        predictor->train(samples);
        std::ostringstream out;
        savePredictor(*predictor, kind, out);
        const std::string text = out.str();

        // Flip one bit somewhere in the payload (past the header
        // line, so the checksum — not the header parse — catches it)
        // at a few seeded positions.
        const std::size_t payload_start = text.find('\n') + 1;
        ASSERT_LT(payload_start, text.size());
        for (int trial = 0; trial < 4; ++trial) {
            std::string corrupt = text;
            const std::size_t pos =
                payload_start +
                rng.nextBounded(text.size() - payload_start);
            corrupt[pos] = static_cast<char>(
                corrupt[pos] ^ (1u << rng.nextBounded(8)));
            std::istringstream in(corrupt);
            Result<std::unique_ptr<Predictor>> loaded =
                loadPredictor(kind, in);
            ASSERT_FALSE(loaded.ok())
                << "flipped bit at offset " << pos
                << " went undetected";
        }
    }
}

TEST_F(SerializationTest, GarbageStreamIsRecoverable)
{
    for (const char *garbage :
         {"", "not a model", "heteromap-model v1 deep-16 3 0\nabc",
          "heteromap-model v2 no-such-kind 3 0000000000000000\nabc"}) {
        SCOPED_TRACE(garbage);
        std::istringstream in(garbage);
        Result<LoadedPredictor> loaded = loadAnyPredictor(in);
        ASSERT_FALSE(loaded.ok());
    }
}

} // namespace
} // namespace heteromap
