/**
 * @file
 * Tests for the feature layer, anchored on the I-variable values the
 * paper quotes in Fig. 4 and the SSSP-BF B discretization of Fig. 6.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "features/feature_vector.hh"
#include "features/ivars.hh"
#include "graph/datasets.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

TEST(IVarsTest, UsaCalMatchesPaperAnchors)
{
    // Fig. 4 / Sec. III-B: USA-Cal = [0.1, 0.1, 0.0, 0.8].
    IVariables i = extractIVariables(datasetByShortName("CA"));
    EXPECT_DOUBLE_EQ(i.i1, 0.1);
    EXPECT_DOUBLE_EQ(i.i2, 0.1);
    EXPECT_DOUBLE_EQ(i.i3, 0.0);
    EXPECT_DOUBLE_EQ(i.i4, 0.8);
}

TEST(IVarsTest, FriendsterSizeAnchors)
{
    // Sec. III-B: I1, I2 = 0.8 for Friendster.
    IVariables i = extractIVariables(datasetByShortName("Frnd"));
    EXPECT_DOUBLE_EQ(i.i1, 0.8);
    EXPECT_NEAR(i.i2, 0.8, 0.21); // linear ratio lands at 0.8-1.0
    EXPECT_DOUBLE_EQ(i.i4, 0.0);  // low diameter
}

TEST(IVarsTest, TwitterHasMaximalDegree)
{
    IVariables i = extractIVariables(datasetByShortName("Twtr"));
    EXPECT_DOUBLE_EQ(i.i3, 1.0);
    EXPECT_DOUBLE_EQ(i.i4, 0.0);
}

TEST(IVarsTest, RggHasMaximalDiameter)
{
    IVariables i = extractIVariables(datasetByShortName("Rgg"));
    EXPECT_DOUBLE_EQ(i.i4, 1.0);
}

TEST(IVarsTest, KronHasMaximalVertexCount)
{
    IVariables i = extractIVariables(datasetByShortName("Kron"));
    EXPECT_DOUBLE_EQ(i.i1, 1.0);
}

TEST(IVarsTest, LowDiameterGraphsGetZeroI4)
{
    for (const char *name : {"FB", "LJ", "Twtr", "Frnd", "CO", "CAGE",
                             "Kron"}) {
        IVariables i = extractIVariables(datasetByShortName(name));
        EXPECT_DOUBLE_EQ(i.i4, 0.0) << name;
    }
}

TEST(IVarsTest, AllValuesOnGrid)
{
    for (const auto &dataset : evaluationDatasets()) {
        IVariables i = extractIVariables(dataset);
        for (double v : i.asArray()) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
            EXPECT_NEAR(v * 10.0, std::round(v * 10.0), 1e-9);
        }
    }
}

TEST(IVarsTest, DecadeScoreShape)
{
    EXPECT_DOUBLE_EQ(decadeScore(100.0, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(decadeScore(1.0, 100.0), 0.0);
    EXPECT_NEAR(decadeScore(10.0, 100.0), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(decadeScore(0.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(decadeScore(1000.0, 100.0), 1.0); // clamped
}

TEST(IVarsTest, LinearFloorScoreShape)
{
    EXPECT_DOUBLE_EQ(linearFloorScore(0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(linearFloorScore(0.001, 10.0), 0.1); // floor
    EXPECT_DOUBLE_EQ(linearFloorScore(5.0, 10.0), 0.5);
    EXPECT_DOUBLE_EQ(linearFloorScore(20.0, 10.0), 1.0); // clamped
}

TEST(IVarsTest, AvgDegreeTermMatchesPaperExample)
{
    // Sec. IV worked example: CA resolves to Avg.Deg = 1, M5-7 = 0.9.
    IVariables ca = extractIVariables(datasetByShortName("CA"));
    EXPECT_DOUBLE_EQ(ca.avgDegreeTerm(), 1.0);
    EXPECT_DOUBLE_EQ(ca.avgDegreeDiameterTerm(), 0.9);
}

TEST(BVarsTest, SsspBfMatchesFigureSix)
{
    auto workload = makeWorkload("SSSP-BF");
    BVariables b = workload->bVariables();
    EXPECT_DOUBLE_EQ(b.b1, 1.0);
    EXPECT_DOUBLE_EQ(b.b2, 0.0);
    EXPECT_DOUBLE_EQ(b.b6, 0.0);
    EXPECT_DOUBLE_EQ(b.b7, 0.8);
    EXPECT_DOUBLE_EQ(b.b8, 0.0);
    EXPECT_DOUBLE_EQ(b.b9, 0.5);
    EXPECT_DOUBLE_EQ(b.b10, 0.5);
    EXPECT_DOUBLE_EQ(b.b11, 0.2);
    EXPECT_DOUBLE_EQ(b.b12, 0.2);
    EXPECT_DOUBLE_EQ(b.b13, 0.2);
}

TEST(BVarsTest, PhaseMixSumsToOneForAllBenchmarks)
{
    for (const auto &workload : allWorkloads()) {
        BVariables b = workload->bVariables();
        EXPECT_NEAR(b.phaseSum(), 1.0, 1e-9) << workload->name();
        EXPECT_TRUE(b.validate().empty()) << workload->name();
    }
}

TEST(BVarsTest, FigureFiveCheckmarks)
{
    // Spot-check the Fig. 5 pattern: BFS is pure pareto-division,
    // DFS is pure push-pop, DFS/CONN have indirect accesses, all
    // benchmarks have read-write shared data.
    EXPECT_DOUBLE_EQ(makeWorkload("BFS")->bVariables().b3, 1.0);
    EXPECT_DOUBLE_EQ(makeWorkload("DFS")->bVariables().b4, 1.0);
    EXPECT_GT(makeWorkload("DFS")->bVariables().b8, 0.0);
    EXPECT_GT(makeWorkload("CONN")->bVariables().b8, 0.0);
    for (const auto &workload : allWorkloads())
        EXPECT_GT(workload->bVariables().b10, 0.0)
            << workload->name();
    // FP benchmarks: PR, PR-DP, COMM.
    EXPECT_GT(makeWorkload("PR")->bVariables().b6, 0.5);
    EXPECT_GT(makeWorkload("PR-DP")->bVariables().b6, 0.5);
    EXPECT_GT(makeWorkload("COMM")->bVariables().b6, 0.5);
}

TEST(FeatureVectorTest, FlattenRoundTrips)
{
    FeatureVector fv;
    fv.b.b1 = 0.3;
    fv.b.b13 = 0.7;
    fv.i.i1 = 0.5;
    fv.i.i4 = 0.9;

    auto flat = fv.asArray();
    EXPECT_EQ(flat.size(), kNumFeatures);
    EXPECT_DOUBLE_EQ(flat[0], 0.3);
    EXPECT_DOUBLE_EQ(flat[12], 0.7);
    EXPECT_DOUBLE_EQ(flat[13], 0.5);
    EXPECT_DOUBLE_EQ(flat[16], 0.9);

    FeatureVector back = featureVectorFromArray(flat);
    EXPECT_EQ(back, fv);
}

TEST(FeatureVectorTest, VectorFormMatchesArrayForm)
{
    FeatureVector fv;
    fv.b.b5 = 0.4;
    auto vec = fv.asVector();
    auto arr = fv.asArray();
    ASSERT_EQ(vec.size(), arr.size());
    for (std::size_t i = 0; i < vec.size(); ++i)
        EXPECT_DOUBLE_EQ(vec[i], arr[i]);
}

} // namespace
} // namespace heteromap
