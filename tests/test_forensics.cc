/**
 * @file
 * Tests for the forensics layer: the deterministic QuantileSketch
 * and FeatureBaseline, the v3 model envelope that carries the
 * baseline, the lock-free flight recorder's exact drop accounting
 * under concurrency, the DriftMonitor's window/alert behavior, the
 * SloTracker's window and error-budget math, and the statusz
 * renderers. Every suite name starts with "Forensics" so
 * `tools/check_tsan.sh` (-R ...Forensics) runs exactly this file
 * under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "model/feature_baseline.hh"
#include "serve/drift_monitor.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_service.hh"
#include "serve/slo_tracker.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/sketch.hh"
#include "util/telemetry.hh"
#include "util/trace.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

using telemetry::QuantileSketch;

FeatureVector
featureAt(double i4, double i1 = 0.0)
{
    FeatureVector features;
    features.i.i1 = i1;
    features.i.i4 = i4;
    return features;
}

/* ------------------------- sketches -------------------------- */

TEST(ForensicsSketchTest, DeterministicAcrossInsertionOrders)
{
    std::vector<double> values;
    for (int i = 0; i < 200; ++i)
        values.push_back((i % 11) / 10.0);

    QuantileSketch forward;
    for (double v : values)
        forward.insert(v);

    std::mt19937 rng(42);
    std::shuffle(values.begin(), values.end(), rng);
    QuantileSketch shuffled;
    for (double v : values)
        shuffled.insert(v);

    EXPECT_EQ(forward, shuffled);
    EXPECT_EQ(forward.toString(), shuffled.toString());
}

TEST(ForensicsSketchTest, SplitAndMergeMatchesSequential)
{
    QuantileSketch sequential;
    std::vector<QuantileSketch> shards(4);
    for (int i = 0; i < 400; ++i) {
        const double v = (i % 17) / 16.0;
        sequential.insert(v);
        shards[i % shards.size()].insert(v);
    }
    QuantileSketch merged;
    for (const QuantileSketch &shard : shards)
        merged.merge(shard);
    EXPECT_EQ(sequential, merged);
    EXPECT_EQ(sequential.toString(), merged.toString());
}

TEST(ForensicsSketchTest, SaveLoadRoundTripsByteIdentically)
{
    QuantileSketch sketch;
    for (int i = 0; i < 100; ++i)
        sketch.insert((i % 7) / 6.0);

    std::stringstream stream;
    sketch.save(stream);
    QuantileSketch restored;
    ASSERT_TRUE(QuantileSketch::load(stream, &restored));
    EXPECT_EQ(sketch, restored);
    EXPECT_EQ(sketch.toString(), restored.toString());
}

TEST(ForensicsSketchTest, LoadRejectsGarbage)
{
    std::stringstream stream("not a sketch at all\n");
    QuantileSketch out;
    EXPECT_FALSE(QuantileSketch::load(stream, &out));
}

TEST(ForensicsSketchTest, InsertClampsIntoRangeAndTracksExtrema)
{
    // Out-of-range values clamp to the sketch bounds before both
    // binning and extrema tracking, so the extrema stay inside
    // [lo, hi] and serialization stays canonical.
    QuantileSketch sketch;
    sketch.insert(-3.0);
    sketch.insert(0.5);
    sketch.insert(7.0);
    EXPECT_EQ(sketch.count(), 3u);
    EXPECT_DOUBLE_EQ(sketch.observedMin(), 0.0);
    EXPECT_DOUBLE_EQ(sketch.observedMax(), 1.0);
}

TEST(ForensicsSketchTest, PsiSeparatesMatchedFromDisjointMass)
{
    QuantileSketch baseline, matched, disjoint;
    for (int i = 0; i < 64; ++i) {
        baseline.insert(0.1);
        baseline.insert(0.9);
        matched.insert(0.1);
        matched.insert(0.9);
        disjoint.insert(0.5);
    }
    EXPECT_LT(matched.psiAgainst(baseline), 0.05);
    EXPECT_GT(disjoint.psiAgainst(baseline), 0.25);
    EXPECT_GE(disjoint.ksAgainst(baseline), 0.4);
    EXPECT_LE(disjoint.ksAgainst(baseline), 1.0);
    EXPECT_LT(matched.ksAgainst(baseline), 0.05);
}

/* --------------------- feature baselines --------------------- */

TEST(ForensicsBaselineTest, SaveLoadRoundTrips)
{
    FeatureBaseline baseline;
    for (int r = 0; r < 10; ++r) {
        baseline.add(featureAt(0.0));
        baseline.add(featureAt(0.3, 0.1));
    }

    std::stringstream stream;
    baseline.save(stream);
    FeatureBaseline restored;
    ASSERT_TRUE(FeatureBaseline::load(stream, &restored));
    for (std::size_t d = 0; d < FeatureBaseline::kDims; ++d)
        EXPECT_EQ(baseline.dims[d], restored.dims[d]) << "dim " << d;
}

TEST(ForensicsBaselineTest, EnvelopeV3CarriesTheBaseline)
{
    auto predictor = makePredictor(PredictorKind::DecisionTree);
    FeatureBaseline baseline;
    for (int r = 0; r < 12; ++r)
        baseline.add(featureAt(0.2));

    std::stringstream stream;
    savePredictor(*predictor, PredictorKind::DecisionTree, stream,
                  &baseline);
    EXPECT_EQ(stream.str().rfind("heteromap-model v3", 0), 0u);

    auto loaded = loadAnyPredictor(stream);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().kind, PredictorKind::DecisionTree);
    ASSERT_NE(loaded.value().baseline, nullptr);
    for (std::size_t d = 0; d < FeatureBaseline::kDims; ++d)
        EXPECT_EQ(loaded.value().baseline->dims[d], baseline.dims[d]);

    const FeatureVector probe = featureAt(0.2);
    EXPECT_EQ(loaded.value().predictor->predict(probe).m,
              predictor->predict(probe).m);
}

TEST(ForensicsBaselineTest, NullBaselineEmitsByteIdenticalV2)
{
    auto predictor = makePredictor(PredictorKind::DecisionTree);
    std::stringstream v2, v3_null;
    savePredictor(*predictor, PredictorKind::DecisionTree, v2);
    savePredictor(*predictor, PredictorKind::DecisionTree, v3_null,
                  nullptr);
    EXPECT_EQ(v2.str(), v3_null.str());
    EXPECT_EQ(v2.str().rfind("heteromap-model v2", 0), 0u);

    auto loaded = loadAnyPredictor(v2);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().baseline, nullptr);
}

TEST(ForensicsBaselineTest, CorruptedBaselineTrailerIsRecoverable)
{
    auto predictor = makePredictor(PredictorKind::DecisionTree);
    FeatureBaseline baseline;
    baseline.add(featureAt(0.4));

    std::stringstream stream;
    savePredictor(*predictor, PredictorKind::DecisionTree, stream,
                  &baseline);
    std::string bytes = stream.str();
    // Flip a byte near the end: that's inside the baseline body,
    // whose independent checksum must catch it.
    bytes[bytes.size() - 3] ^= 0x20;
    std::stringstream corrupted(bytes);
    auto loaded = loadAnyPredictor(corrupted);
    EXPECT_FALSE(loaded.ok());
}

/* --------------------- histogram percentiles ------------------ */

TEST(ForensicsPercentileTest, SingleValueDistributionIsExact)
{
    telemetry::Histogram histogram;
    for (int i = 0; i < 100; ++i)
        histogram.record(5.0);
    const telemetry::HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_DOUBLE_EQ(snapshot.percentile(0.50), 5.0);
    EXPECT_DOUBLE_EQ(snapshot.percentile(0.99), 5.0);
}

TEST(ForensicsPercentileTest, BimodalSplitInterpolates)
{
    telemetry::Histogram histogram;
    for (int i = 0; i < 50; ++i) {
        histogram.record(1.0);
        histogram.record(100.0);
    }
    const telemetry::HistogramSnapshot snapshot = histogram.snapshot();
    EXPECT_LE(snapshot.percentile(0.25), 2.0);
    EXPECT_GE(snapshot.percentile(0.95), 50.0);
    EXPECT_LE(snapshot.percentile(0.50), snapshot.percentile(0.95));
    EXPECT_NEAR(snapshot.fractionBelow(10.0), 0.5, 0.01);
}

TEST(ForensicsPercentileTest, EmptySnapshotIsVacuouslyCompliant)
{
    const telemetry::HistogramSnapshot snapshot =
        telemetry::Histogram().snapshot();
    EXPECT_DOUBLE_EQ(snapshot.percentile(0.99), 0.0);
    EXPECT_DOUBLE_EQ(snapshot.fractionBelow(1.0), 1.0);
}

/* ------------------------ drift monitor ----------------------- */

TEST(ForensicsDriftTest, InertWithoutBaseline)
{
    serve::DriftMonitor monitor;
    for (int i = 0; i < 600; ++i)
        monitor.observe(featureAt(0.5));
    const serve::DriftScores scores = monitor.scores();
    EXPECT_FALSE(scores.hasBaseline);
    EXPECT_EQ(scores.windows, 0u);
}

TEST(ForensicsDriftTest, MatchingTrafficStaysQuiet)
{
    auto baseline = std::make_shared<FeatureBaseline>();
    for (int r = 0; r < 10; ++r) {
        baseline->add(featureAt(0.0));
        baseline->add(featureAt(0.3));
    }

    serve::DriftOptions options;
    options.windowSize = 16;
    serve::DriftMonitor monitor(options);
    monitor.setBaseline(baseline);
    for (int i = 0; i < 16; ++i)
        monitor.observe(featureAt(i % 2 == 0 ? 0.0 : 0.3));

    const serve::DriftScores scores = monitor.scores();
    EXPECT_TRUE(scores.hasBaseline);
    EXPECT_EQ(scores.windows, 1u);
    EXPECT_EQ(scores.alerts, 0u);
    EXPECT_LT(scores.psi, options.psiAlert);
}

TEST(ForensicsDriftTest, ShiftedTrafficAlertsAndReportsWorstDim)
{
    auto baseline = std::make_shared<FeatureBaseline>();
    for (int r = 0; r < 20; ++r)
        baseline->add(featureAt(0.0));

    serve::DriftOptions options;
    options.windowSize = 16;
    uint64_t callbacks = 0;
    serve::DriftScores seen;
    options.onAlert = [&](const serve::DriftScores &scores) {
        ++callbacks;
        seen = scores;
    };
    serve::DriftMonitor monitor(options);
    monitor.setBaseline(baseline);
    for (int i = 0; i < 16; ++i)
        monitor.observe(featureAt(0.8)); // i4 moved 0.0 -> 0.8

    const serve::DriftScores scores = monitor.scores();
    EXPECT_EQ(scores.windows, 1u);
    EXPECT_EQ(scores.alerts, 1u);
    EXPECT_GE(scores.psi, options.psiAlert);
    EXPECT_EQ(scores.worstDim, kNumFeatures - 1); // i4 is the last dim
    EXPECT_EQ(callbacks, 1u);
    EXPECT_GE(seen.psi, options.psiAlert);
}

TEST(ForensicsDriftTest, BaselineSwapResetsThePartialWindow)
{
    auto first = std::make_shared<FeatureBaseline>();
    auto second = std::make_shared<FeatureBaseline>();
    for (int r = 0; r < 10; ++r) {
        first->add(featureAt(0.0));
        second->add(featureAt(0.0));
    }

    serve::DriftOptions options;
    options.windowSize = 16;
    serve::DriftMonitor monitor(options);
    monitor.setBaseline(first);
    for (int i = 0; i < 8; ++i)
        monitor.observe(featureAt(0.0));
    monitor.setBaseline(first); // same pointer: no reset
    monitor.setBaseline(second); // new baseline: partial window drops
    for (int i = 0; i < 15; ++i)
        monitor.observe(featureAt(0.0));
    EXPECT_EQ(monitor.scores().windows, 0u);
    monitor.observe(featureAt(0.0));
    EXPECT_EQ(monitor.scores().windows, 1u);
}

TEST(ForensicsDriftTest, OutcomeRateRollsOverItsWindow)
{
    serve::DriftOptions options;
    options.outcomeWindow = 8;
    serve::DriftMonitor monitor(options);
    for (int i = 0; i < 2; ++i)
        monitor.observeOutcome(false);
    for (int i = 0; i < 6; ++i)
        monitor.observeOutcome(true);
    EXPECT_NEAR(monitor.scores().mispredictRate, 0.25, 1e-9);
    for (int i = 0; i < 8; ++i)
        monitor.observeOutcome(true);
    EXPECT_NEAR(monitor.scores().mispredictRate, 0.0, 1e-9);
}

/* ------------------------- SLO tracker ------------------------ */

TEST(ForensicsSloTest, DefaultObjectivesApplyWhenUnset)
{
    serve::SloTracker tracker;
    const serve::SloStatus status = tracker.status();
    ASSERT_EQ(status.objectives.size(),
              serve::makeDefaultSlos().size());
    EXPECT_EQ(status.objectives[0].name, "fast");
    EXPECT_EQ(status.objectives[1].name, "tail");
}

TEST(ForensicsSloTest, WindowMathAndErrorBudget)
{
    serve::SloOptions options;
    options.objectives = {{"t", 10.0, 0.5}};
    serve::SloTracker tracker(options);

    // Window 1: 80 good, 20 bad -> goodFraction 0.8, no breach,
    // burn rate 0.2/0.5 = 0.4, budget 1 - 20/(0.5*100) = 0.6.
    for (int i = 0; i < 80; ++i)
        tracker.record(1.0);
    for (int i = 0; i < 20; ++i)
        tracker.record(100.0);
    ASSERT_TRUE(tracker.maybeHarvest(true));
    serve::SloStatus status = tracker.status();
    ASSERT_EQ(status.objectives.size(), 1u);
    EXPECT_NEAR(status.objectives[0].goodFraction, 0.8, 0.01);
    EXPECT_NEAR(status.objectives[0].burnRate, 0.4, 0.05);
    EXPECT_EQ(status.objectives[0].breaches, 0u);
    EXPECT_NEAR(status.objectives[0].budgetRemaining, 0.6, 0.05);

    // Window 2: 20 good, 80 bad -> breach; cumulative bad mass
    // exhausts the allowance (100 bad vs 0.5 * 200 allowed).
    for (int i = 0; i < 20; ++i)
        tracker.record(1.0);
    for (int i = 0; i < 80; ++i)
        tracker.record(100.0);
    ASSERT_TRUE(tracker.maybeHarvest(true));
    status = tracker.status();
    EXPECT_NEAR(status.objectives[0].goodFraction, 0.2, 0.01);
    EXPECT_NEAR(status.objectives[0].burnRate, 1.6, 0.1);
    EXPECT_EQ(status.objectives[0].breaches, 1u);
    EXPECT_NEAR(status.objectives[0].budgetRemaining, 0.0, 0.05);

    EXPECT_EQ(status.requests, 200u);
    EXPECT_EQ(status.windows, 2u);
    EXPECT_GT(status.p99Ms, status.p50Ms);
}

TEST(ForensicsSloTest, IdleWindowIsVacuouslyCompliant)
{
    serve::SloOptions options;
    options.objectives = {{"t", 10.0, 0.99}};
    serve::SloTracker tracker(options);
    ASSERT_TRUE(tracker.maybeHarvest(true));
    const serve::SloStatus status = tracker.status();
    EXPECT_DOUBLE_EQ(status.objectives[0].goodFraction, 1.0);
    EXPECT_EQ(status.objectives[0].breaches, 0u);
    EXPECT_DOUBLE_EQ(status.objectives[0].budgetRemaining, 1.0);
}

/* ---------------------- audit record JSON --------------------- */

TEST(ForensicsAuditJsonTest, RecordSerializesToValidJson)
{
    forensics::AuditRecord record;
    record.requestId = 42;
    record.modelEpoch = 3;
    record.setModelKind("Decision \"Tree\"");
    record.setWorkload("PR\\BFS");
    record.setAccelerator("gpu");
    record.treeLeaf = 7;
    record.treePredicateMask = 0x15;
    record.supervised = true;
    record.hasOutcome = true;
    const std::string json = forensics::auditRecordToJson(record);
    std::string error;
    EXPECT_TRUE(telemetry::validateJson(json, &error)) << error;
    EXPECT_NE(json.find("\"request_id\":42"), std::string::npos);
}

#if HETEROMAP_TELEMETRY

/* ----------------------- flight recorder ---------------------- */

TEST(ForensicsFlightRecorderTest, DisarmedAppendIsANoOp)
{
    forensics::disarmFlightRecorder();
    forensics::drainAuditRecords();
    forensics::AuditRecord record;
    record.requestId = 1;
    forensics::appendAuditRecord(record);
    EXPECT_TRUE(forensics::drainAuditRecords().empty());
}

TEST(ForensicsFlightRecorderTest, DropOldestKeepsTheNewestRecords)
{
    forensics::armFlightRecorder(8);
    for (uint64_t i = 0; i < 20; ++i) {
        forensics::AuditRecord record;
        record.requestId = i;
        record.timestampNs = i;
        forensics::appendAuditRecord(record);
    }
    EXPECT_EQ(forensics::auditRecordsAppended(), 20u);
    EXPECT_EQ(forensics::auditRecordsDropped(), 12u);
    const std::vector<forensics::AuditRecord> drained =
        forensics::drainAuditRecords();
    ASSERT_EQ(drained.size(), 8u);
    for (std::size_t i = 0; i < drained.size(); ++i)
        EXPECT_EQ(drained[i].requestId, 12u + i);
    forensics::disarmFlightRecorder();
}

TEST(ForensicsFlightRecorderTest, RearmResetsAccounting)
{
    forensics::armFlightRecorder(8);
    forensics::AuditRecord record;
    forensics::appendAuditRecord(record);
    EXPECT_EQ(forensics::auditRecordsAppended(), 1u);
    forensics::armFlightRecorder(8);
    EXPECT_EQ(forensics::auditRecordsAppended(), 0u);
    EXPECT_EQ(forensics::auditRecordsDropped(), 0u);
    EXPECT_TRUE(forensics::drainAuditRecords().empty());
    forensics::disarmFlightRecorder();
}

TEST(ForensicsFlightRecorderTest, ExactAccountingUnderConcurrency)
{
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 1000;
    constexpr std::size_t kRing = 64; // force overflow drops

    forensics::armFlightRecorder(kRing);
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> drained_concurrently{0};
    std::thread drainer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            drained_concurrently.fetch_add(
                forensics::drainAuditRecords().size(),
                std::memory_order_relaxed);
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                forensics::AuditRecord record;
                record.requestId = t * kPerThread + i;
                record.timestampNs = record.requestId;
                forensics::appendAuditRecord(record);
            }
        });
    }
    for (auto &writer : writers)
        writer.join();
    stop.store(true, std::memory_order_release);
    drainer.join();

    const uint64_t remaining = forensics::drainAuditRecords().size();
    EXPECT_EQ(forensics::auditRecordsAppended(),
              kThreads * kPerThread);
    // Exact conservation: every append is either drained or counted
    // as an overflow drop — nothing lost, nothing double-counted.
    EXPECT_EQ(drained_concurrently.load() + remaining +
                  forensics::auditRecordsDropped(),
              forensics::auditRecordsAppended());
    forensics::disarmFlightRecorder();
}

TEST(ForensicsFlightRecorderTest, DumpWritesBuildStampedJsonl)
{
    forensics::armFlightRecorder(64);
    for (uint64_t i = 0; i < 5; ++i) {
        forensics::AuditRecord record;
        record.requestId = i;
        record.timestampNs = i;
        forensics::appendAuditRecord(record);
    }
    const std::string path = "test_forensics_dump.tmp.jsonl";
    ASSERT_TRUE(forensics::dumpFlightRecorderToFile(path, "unit-test"));

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t lines = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        std::string error;
        EXPECT_TRUE(telemetry::validateJson(line, &error))
            << line << ": " << error;
        if (line.find("\"type\":\"flight-recorder\"") !=
            std::string::npos) {
            saw_header = true;
            EXPECT_NE(line.find("\"reason\":\"unit-test\""),
                      std::string::npos);
            EXPECT_NE(line.find("\"build\""), std::string::npos);
        }
    }
    in.close();
    std::remove(path.c_str());
    EXPECT_TRUE(saw_header);
    EXPECT_EQ(lines, 6u); // header + 5 records
    forensics::disarmFlightRecorder();
}

/* -------------------------- statusz --------------------------- */

TEST(ForensicsStatuszTest, ServiceSnapshotRendersValidJson)
{
    setLogVerbose(false);
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    serve::ModelRegistry registry(pair, oracle);
    auto baseline = std::make_shared<FeatureBaseline>();
    for (int r = 0; r < 10; ++r)
        baseline->add(featureAt(0.0));
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree),
                     baseline);

    serve::ServiceOptions options;
    options.workers = 1;
    serve::PredictionService service(registry, options);

    auto workload = std::shared_ptr<const Workload>(makeWorkload("PR"));
    auto graph =
        std::make_shared<const Graph>(generateMesh(256, 4, 1));
    std::vector<std::future<serve::ServeResponse>> futures;
    for (int i = 0; i < 8; ++i) {
        serve::ServeRequest request;
        request.workload = workload;
        request.graph = graph;
        request.inputName = "mesh";
        futures.push_back(service.submit(std::move(request)));
    }
    for (auto &future : futures)
        EXPECT_EQ(future.get().status, serve::ServeStatus::Ok);
    service.close();

    const serve::ServiceStatus status = service.statusz();
    EXPECT_EQ(status.completed, 8u);
    EXPECT_TRUE(status.hasBaseline);

    const std::string json = serve::statuszJson(status);
    std::string error;
    EXPECT_TRUE(telemetry::validateJson(json, &error)) << error;
    EXPECT_NE(json.find("\"type\":\"statusz\""), std::string::npos);

    const std::string text = serve::statuszText(status);
    EXPECT_NE(text.find("model:"), std::string::npos);
    EXPECT_NE(text.find("slo."), std::string::npos);
}

#else // !HETEROMAP_TELEMETRY: every forensics entry point no-ops.

TEST(ForensicsFlightRecorderTest, OffBuildIsInert)
{
    forensics::armFlightRecorder();
    EXPECT_FALSE(forensics::flightRecorderArmed());
    forensics::AuditRecord record;
    record.requestId = 1;
    forensics::appendAuditRecord(record);
    EXPECT_EQ(forensics::auditRecordsAppended(), 0u);
    EXPECT_EQ(forensics::auditRecordsDropped(), 0u);
    EXPECT_TRUE(forensics::drainAuditRecords().empty());
}

#endif // HETEROMAP_TELEMETRY

} // namespace
} // namespace heteromap
