/**
 * @file
 * Tests for the shared experiment harness and the file-level I/O
 * helpers that the benches and examples rely on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/experiment.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

class ExperimentTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }
};

TEST_F(ExperimentTest, PinnedPairUsesSmallestMemoryByDefault)
{
    AcceleratorPair pair = pinnedPair(primaryPair());
    // 750Ti has 2 GB, Phi 16 GB -> both pinned to 2 GB.
    EXPECT_EQ(pair.gpu.memBytes, 2ULL << 30);
    EXPECT_EQ(pair.multicore.memBytes, 2ULL << 30);
}

TEST_F(ExperimentTest, PinnedPairRespectsExplicitSizeAndCaps)
{
    AcceleratorPair pair = pinnedPair(primaryPair(), 8ULL << 30);
    // The GPU cannot exceed its own maximum (4 GB).
    EXPECT_EQ(pair.gpu.memBytes, 4ULL << 30);
    EXPECT_EQ(pair.multicore.memBytes, 8ULL << 30);
}

TEST_F(ExperimentTest, GridSearchSideOnlyVisitsRequestedSide)
{
    MSearchSpace space(primaryPair());
    auto count_gpu = [](const MConfig &c) {
        return c.accelerator == AcceleratorKind::Gpu ? 1.0 : 1e9;
    };
    TuneResult gpu = gridSearchSide(space, count_gpu,
                                    AcceleratorKind::Gpu);
    EXPECT_EQ(gpu.best.accelerator, AcceleratorKind::Gpu);
    EXPECT_DOUBLE_EQ(gpu.bestScore, 1.0);

    TuneResult mc = gridSearchSide(space, count_gpu,
                                   AcceleratorKind::Multicore);
    EXPECT_EQ(mc.best.accelerator, AcceleratorKind::Multicore);
    EXPECT_DOUBLE_EQ(mc.bestScore, 1e9);
}

TEST_F(ExperimentTest, TrainedHeteroMapIsDeployable)
{
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    HeteroMap framework =
        trainedHeteroMap(pair, oracle, PredictorKind::Deep16,
                         /*synthetic_benchmarks=*/4);
    auto workload = makeWorkload("BFS");
    BenchmarkCase bench =
        makeCase(*workload, datasetByShortName("CO"));
    Deployment deployment = framework.deploy(bench);
    EXPECT_GT(deployment.report.seconds, 0.0);
    EXPECT_EQ(framework.predictor().name(), "Deep.16");
}

TEST_F(ExperimentTest, AccuracyMetricBounds)
{
    EXPECT_DOUBLE_EQ(accuracyVsIdeal(0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(accuracyVsIdeal(1.0, 1.0), 1.0);
    // Faster-than-ideal (shouldn't happen, but clamp) stays <= 1.
    EXPECT_DOUBLE_EQ(accuracyVsIdeal(0.5, 1.0), 1.0);
}

TEST_F(ExperimentTest, EdgeListFileRoundTrip)
{
    Graph g = generateUniformRandom(40, 120, 17);
    const std::string path = "test_io_roundtrip.edges";
    saveEdgeListFile(g, path);
    Graph back = loadEdgeListFile(path);
    EXPECT_EQ(back.numVertices(), g.numVertices());
    EXPECT_EQ(back.numEdges(), g.numEdges());
    std::remove(path.c_str());
}

TEST_F(ExperimentTest, LoadMissingFileIsFatal)
{
    EXPECT_THROW(loadEdgeListFile("/nonexistent/path/graph.edges"),
                 FatalError);
}

TEST_F(ExperimentTest, OracleParamsChangeScores)
{
    auto workload = makeWorkload("PR");
    BenchmarkCase bench =
        makeCase(*workload, datasetByShortName("CO"));
    AcceleratorPair pair = pinnedPair(primaryPair());

    MConfig config;
    config.accelerator = AcceleratorKind::Gpu;
    config.gpuGlobalThreads = 2048;
    config.gpuLocalThreads = 128;

    Oracle stock;
    PerfModelParams harsh;
    harsh.gpuDivergenceCoef = 5.0;
    Oracle divergent(harsh);
    EXPECT_GT(divergent.seconds(bench, pair, config),
              stock.seconds(bench, pair, config));
}

} // namespace
} // namespace heteromap
