/**
 * @file
 * Tests for the instrumented executor and the schedule model.
 */

#include <gtest/gtest.h>

#include "exec/executor.hh"
#include "util/logging.hh"

namespace heteromap {
namespace {

TEST(ExecutorTest, AccumulatesCounters)
{
    Executor exec;
    exec.parallelFor("phase", PhaseKind::VertexDivision, 10,
                     [](uint64_t, ItemCost &cost) {
                         cost.intOps += 2;
                         cost.fpOps += 1;
                         cost.atomics += 1;
                         cost.sharedReadBytes += 4;
                     });
    const auto &profile = exec.profile();
    ASSERT_EQ(profile.phases.size(), 1u);
    const auto &phase = profile.phases[0];
    EXPECT_EQ(phase.workItems, 10u);
    EXPECT_EQ(phase.invocations, 1u);
    EXPECT_DOUBLE_EQ(phase.intOps, 20.0);
    EXPECT_DOUBLE_EQ(phase.fpOps, 10.0);
    EXPECT_DOUBLE_EQ(phase.atomics, 10.0);
    EXPECT_DOUBLE_EQ(phase.sharedReadBytes, 40.0);
}

TEST(ExecutorTest, RepeatedPhasesMergeByName)
{
    Executor exec;
    for (int i = 0; i < 3; ++i) {
        exec.parallelFor("loop", PhaseKind::Pareto, 5,
                         [](uint64_t, ItemCost &cost) {
                             cost.intOps += 1;
                         });
        exec.barrier();
        exec.endIteration();
    }
    const auto &profile = exec.profile();
    ASSERT_EQ(profile.phases.size(), 1u);
    EXPECT_EQ(profile.phases[0].invocations, 3u);
    EXPECT_EQ(profile.phases[0].workItems, 15u);
    EXPECT_EQ(profile.barriers, 3u);
    EXPECT_EQ(profile.iterations, 3u);
}

TEST(ExecutorTest, PhaseKindConflictIsPanic)
{
    Executor exec;
    exec.parallelFor("p", PhaseKind::Pareto, 1,
                     [](uint64_t, ItemCost &) {});
    EXPECT_THROW(exec.parallelFor("p", PhaseKind::Reduction, 1,
                                  [](uint64_t, ItemCost &) {}),
                 PanicError);
}

TEST(ExecutorTest, BucketsCaptureSkew)
{
    Executor exec;
    // All heavy work in the first half of the index space.
    exec.parallelFor("skew", PhaseKind::VertexDivision, 1000,
                     [](uint64_t idx, ItemCost &cost) {
                         cost.intOps += (idx < 500) ? 10.0 : 1.0;
                     });
    const auto &phase = exec.profile().phases[0];
    double first_half = 0.0;
    double second_half = 0.0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
        if (b < kNumBuckets / 2)
            first_half += phase.bucketCost[b];
        else
            second_half += phase.bucketCost[b];
    }
    EXPECT_GT(first_half, 5.0 * second_half);
    EXPECT_DOUBLE_EQ(phase.maxItemCost, 10.0);
}

TEST(ExecutorTest, TakeProfileResets)
{
    Executor exec;
    exec.parallelFor("p", PhaseKind::Pareto, 1,
                     [](uint64_t, ItemCost &) {});
    WorkloadProfile taken = exec.takeProfile();
    EXPECT_EQ(taken.phases.size(), 1u);
    EXPECT_TRUE(exec.profile().phases.empty());
}

TEST(ExecutorTest, ZeroItemInvocationCountsButAddsNoWork)
{
    Executor exec;
    exec.parallelFor("p", PhaseKind::Pareto, 0,
                     [](uint64_t, ItemCost &) { FAIL(); });
    EXPECT_EQ(exec.profile().phases[0].invocations, 1u);
    EXPECT_EQ(exec.profile().phases[0].workItems, 0u);
}

TEST(ProfileTest, MergeCombinesCounters)
{
    PhaseProfile a;
    a.name = "x";
    a.intOps = 5.0;
    a.maxItemCost = 2.0;
    a.bucketCost = {1.0, 2.0};
    PhaseProfile b = a;
    b.intOps = 7.0;
    b.maxItemCost = 9.0;
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.intOps, 12.0);
    EXPECT_DOUBLE_EQ(a.maxItemCost, 9.0);
    EXPECT_DOUBLE_EQ(a.bucketCost[0], 2.0);
}

TEST(ProfileTest, MergeRejectsMismatchedNames)
{
    PhaseProfile a;
    a.name = "x";
    PhaseProfile b;
    b.name = "y";
    EXPECT_THROW(a.merge(b), PanicError);
}

TEST(ProfileTest, ItemCostWeighting)
{
    ItemCost cost;
    cost.intOps = 1.0;
    cost.indirectAccesses = 1.0;
    cost.atomics = 1.0;
    // Indirect counts double, atomics four-fold.
    EXPECT_DOUBLE_EQ(cost.workUnits(), 1.0 + 2.0 + 4.0);
}

class ScheduleModelTest : public ::testing::Test
{
  protected:
    /** Uniform histogram of @p n buckets with unit cost. */
    static std::vector<double>
    uniform(std::size_t n)
    {
        return std::vector<double>(n, 1.0);
    }
};

TEST_F(ScheduleModelTest, UniformWorkIsBalanced)
{
    ScheduleModel model(uniform(512));
    EXPECT_NEAR(model.spanFactor(4, SchedulePolicy::Static), 1.0, 1e-9);
    EXPECT_NEAR(model.spanFactor(4, SchedulePolicy::Dynamic), 1.0,
                1e-9);
    EXPECT_DOUBLE_EQ(model.totalCost(), 512.0);
}

TEST_F(ScheduleModelTest, SkewHurtsStaticMoreThanDynamic)
{
    std::vector<double> buckets(512, 1.0);
    for (std::size_t i = 0; i < 64; ++i)
        buckets[i] = 20.0; // heavy head
    ScheduleModel model(buckets);
    double stat = model.spanFactor(8, SchedulePolicy::Static);
    double dyn = model.spanFactor(8, SchedulePolicy::Dynamic);
    EXPECT_GT(stat, 1.5);
    EXPECT_LT(dyn, stat);
}

TEST_F(ScheduleModelTest, GuidedBetweenStaticAndDynamic)
{
    std::vector<double> buckets(512, 1.0);
    for (std::size_t i = 0; i < 64; ++i)
        buckets[i] = 20.0;
    ScheduleModel model(buckets);
    double stat = model.spanFactor(8, SchedulePolicy::Static);
    double dyn = model.spanFactor(8, SchedulePolicy::Dynamic);
    double guided = model.spanFactor(8, SchedulePolicy::Guided);
    EXPECT_GE(guided, dyn - 1e-9);
    EXPECT_LE(guided, stat + 1e-9);
}

TEST_F(ScheduleModelTest, SingleThreadHasUnitSpan)
{
    std::vector<double> buckets = {5.0, 1.0, 1.0, 1.0};
    ScheduleModel model(buckets);
    for (auto policy : {SchedulePolicy::Static, SchedulePolicy::Dynamic,
                        SchedulePolicy::Guided, SchedulePolicy::Auto}) {
        EXPECT_NEAR(model.spanFactor(1, policy), 1.0, 1e-9);
    }
}

TEST_F(ScheduleModelTest, MaxItemCostBoundsSpan)
{
    // One item dominates: no amount of threads can beat its cost.
    std::vector<double> buckets(512, 1.0);
    ScheduleModel model(buckets, 1.0, /*max_item_cost=*/256.0);
    // Ideal span with 512 threads would be 1.0; the hot item forces
    // a span factor of 256.
    EXPECT_NEAR(model.spanFactor(512, SchedulePolicy::Static), 256.0,
                1e-9);
}

TEST_F(ScheduleModelTest, MoreThreadsNeverIncreaseSpan)
{
    std::vector<double> buckets(512, 0.0);
    for (std::size_t i = 0; i < 512; ++i)
        buckets[i] = (i * 7) % 13 + 1.0;
    ScheduleModel model(buckets);
    double prev_span = 1e300;
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
        double factor =
            model.spanFactor(threads, SchedulePolicy::Dynamic);
        double span = factor * model.totalCost() / threads;
        EXPECT_LE(span, prev_span + 1e-9);
        prev_span = span;
    }
}

TEST_F(ScheduleModelTest, SpanFactorRequiresThreads)
{
    ScheduleModel model(uniform(8));
    EXPECT_THROW(model.spanFactor(0, SchedulePolicy::Static),
                 PanicError);
}

TEST_F(ScheduleModelTest, ChunkCountScalesWithPolicy)
{
    ScheduleModel model(uniform(512), /*chunk_buckets=*/8.0);
    EXPECT_DOUBLE_EQ(model.chunkCount(4, SchedulePolicy::Static), 4.0);
    EXPECT_DOUBLE_EQ(model.chunkCount(4, SchedulePolicy::Dynamic),
                     64.0);
    EXPECT_GT(model.chunkCount(4, SchedulePolicy::Guided), 4.0);
}

TEST(SchedulePolicyTest, NamesAreStable)
{
    EXPECT_STREQ(schedulePolicyName(SchedulePolicy::Static), "static");
    EXPECT_STREQ(schedulePolicyName(SchedulePolicy::Dynamic),
                 "dynamic");
}

} // namespace
} // namespace heteromap
