/**
 * @file
 * Tests for the serving fault-tolerance layer: CRC64 checksums, the
 * ChaosPolicy injector (arch/fault_model.hh), the PredictionService
 * watchdog + degradation ladder, and the RetryingClient breaker.
 * Every suite name starts with "Chaos" so `tools/check_tsan.sh -R
 * "Serve|Chaos"` runs this file under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arch/fault_model.hh"
#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_service.hh"
#include "serve/retrying_client.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

/* ------------------------------------------------------------------ */
/* CRC64 checksums                                                    */
/* ------------------------------------------------------------------ */

TEST(ChaosChecksumTest, MatchesTheXzCheckVector)
{
    // The canonical CRC-64/XZ check value for "123456789".
    EXPECT_EQ(crc64("123456789"), 0x995dc9bbdf1939faULL);
    EXPECT_EQ(crc64(""), 0u);
}

TEST(ChaosChecksumTest, IncrementalEqualsOneShot)
{
    const std::string text = "heteromap model payload, split";
    Crc64 crc;
    crc.update(text.substr(0, 7));
    crc.update(text.substr(7, 11));
    crc.update(text.substr(18));
    EXPECT_EQ(crc.value(), crc64(text));

    crc.reset();
    crc.update(text);
    EXPECT_EQ(crc.value(), crc64(text));
}

TEST(ChaosChecksumTest, SingleBitFlipChangesTheChecksum)
{
    std::string text(256, '\0');
    for (std::size_t i = 0; i < text.size(); ++i)
        text[i] = static_cast<char>(i * 37 + 11);
    const uint64_t clean = crc64(text);
    for (std::size_t byte : {std::size_t(0), text.size() / 2,
                             text.size() - 1}) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::string corrupt = text;
            corrupt[byte] =
                static_cast<char>(corrupt[byte] ^ (1u << bit));
            EXPECT_NE(crc64(corrupt), clean)
                << "byte " << byte << " bit " << bit;
        }
    }
}

TEST(ChaosChecksumTest, HexRoundTripsAndRejectsGarbage)
{
    const uint64_t value = crc64("round-trip me");
    const std::string hex = checksumToHex(value);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t parsed = 0;
    ASSERT_TRUE(checksumFromHex(hex, parsed));
    EXPECT_EQ(parsed, value);

    for (const char *bad :
         {"", "123", "123456789abcdefg", "0123456789abcdef0"}) {
        uint64_t sink = 0;
        EXPECT_FALSE(checksumFromHex(bad, sink)) << bad;
    }
}

/* ------------------------------------------------------------------ */
/* ChaosPolicy                                                        */
/* ------------------------------------------------------------------ */

TEST(ChaosPolicyTest, InertPolicyNeverFiresOrCounts)
{
    ChaosPolicy policy(42);
    EXPECT_FALSE(policy.armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(
            policy.visit(ChaosPoint::WorkerStall).has_value());
    // The inert fast path skips even the visit accounting.
    EXPECT_EQ(policy.visits(ChaosPoint::WorkerStall), 0u);
    EXPECT_EQ(policy.totalFires(), 0u);
}

TEST(ChaosPolicyTest, DisarmReturnsToInert)
{
    ChaosPolicy policy(42);
    ChaosSpec spec;
    spec.point = ChaosPoint::AdmissionDelay;
    policy.arm(spec);
    EXPECT_TRUE(policy.armed());
    EXPECT_TRUE(policy.visit(ChaosPoint::AdmissionDelay).has_value());
    policy.disarm();
    EXPECT_FALSE(policy.armed());
    EXPECT_FALSE(
        policy.visit(ChaosPoint::AdmissionDelay).has_value());
}

TEST(ChaosPolicyTest, VisitWindowBoundsAreExclusiveAtTheEnd)
{
    ChaosPolicy policy(1);
    ChaosSpec spec;
    spec.point = ChaosPoint::WorkerCrashBatch;
    spec.probability = 1.0;
    spec.startVisit = 2;
    spec.endVisit = 4;
    policy.arm(spec);

    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(
            policy.visit(ChaosPoint::WorkerCrashBatch).has_value());
    EXPECT_EQ(fired,
              (std::vector<bool>{false, false, true, true, false,
                                 false}));
    EXPECT_EQ(policy.visits(ChaosPoint::WorkerCrashBatch), 6u);
    EXPECT_EQ(policy.fires(ChaosPoint::WorkerCrashBatch), 2u);
}

TEST(ChaosPolicyTest, SameSeedReplaysTheSameSchedule)
{
    auto run = [](uint64_t seed) {
        ChaosPolicy policy(seed);
        ChaosSpec spec;
        spec.point = ChaosPoint::WorkerStall;
        spec.probability = 0.4;
        policy.arm(spec);
        std::vector<bool> fired;
        for (int i = 0; i < 200; ++i)
            fired.push_back(
                policy.visit(ChaosPoint::WorkerStall).has_value());
        return fired;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8)); // astronomically unlikely to collide
}

TEST(ChaosPolicyTest, ConcurrentSpecsComposeTheirAction)
{
    ChaosPolicy policy(1);
    ChaosSpec slow;
    slow.point = ChaosPoint::WorkerCrashBatch;
    slow.delayMs = 9.0;
    ChaosSpec deadly;
    deadly.point = ChaosPoint::WorkerCrashBatch;
    deadly.delayMs = 5.0;
    deadly.lethal = true;
    policy.arm(slow);
    policy.arm(deadly);

    auto action = policy.visit(ChaosPoint::WorkerCrashBatch);
    ASSERT_TRUE(action.has_value());
    EXPECT_EQ(action->delayMs, 9.0); // max of the fired delays
    EXPECT_TRUE(action->lethal);     // OR of the fired lethalities
}

TEST(ChaosPolicyTest, HooksRunOnFireAndMayThrow)
{
    ChaosPolicy policy(1);
    ChaosSpec spec;
    spec.point = ChaosPoint::SupervisorHang;
    spec.delayMs = 3.0;
    policy.arm(spec);

    std::atomic<int> ran{0};
    policy.setHook(ChaosPoint::SupervisorHang,
                   [&](const ChaosAction &action) {
                       EXPECT_EQ(action.delayMs, 3.0);
                       ran.fetch_add(1);
                   });
    EXPECT_TRUE(policy.visit(ChaosPoint::SupervisorHang).has_value());
    EXPECT_EQ(ran.load(), 1);

    policy.setHook(ChaosPoint::SupervisorHang,
                   [](const ChaosAction &) {
                       throw std::runtime_error("spliced failure");
                   });
    EXPECT_THROW(policy.visit(ChaosPoint::SupervisorHang),
                 std::runtime_error);
}

TEST(ChaosPolicyTest, RandomScheduleIsSeededAndNeverLethal)
{
    auto sweep = [](uint64_t seed) {
        auto policy = ChaosPolicy::random(seed, 6, 50, 2.0);
        EXPECT_TRUE(policy->armed());
        std::vector<double> delays;
        for (int i = 0; i < 50; ++i) {
            for (std::size_t p = 0; p < kNumChaosPoints; ++p) {
                auto action =
                    policy->visit(static_cast<ChaosPoint>(p));
                if (action.has_value()) {
                    EXPECT_FALSE(action->lethal);
                    EXPECT_LE(action->delayMs, 2.0);
                    delays.push_back(action->delayMs);
                }
            }
        }
        return delays;
    };
    EXPECT_EQ(sweep(99), sweep(99));
}

/* ------------------------------------------------------------------ */
/* Watchdog + degradation ladder (service level)                      */
/* ------------------------------------------------------------------ */

class ChaosServiceTest : public ::testing::Test
{
  protected:
    ChaosServiceTest()
    {
        setLogVerbose(false);
        registry_.publish(PredictorKind::DecisionTree,
                          makePredictor(PredictorKind::DecisionTree));
    }

    serve::ServeRequest
    request(bool supervised = false)
    {
        serve::ServeRequest req;
        req.workload = workload_;
        req.graph = graph_;
        req.inputName = "g";
        req.supervised = supervised;
        return req;
    }

    Oracle oracle_;
    AcceleratorPair pair_ = pinnedPair(primaryPair());
    serve::ModelRegistry registry_{pair_, oracle_};
    std::shared_ptr<const Workload> workload_{makeWorkload("PR")};
    std::shared_ptr<const Graph> graph_ =
        std::make_shared<const Graph>(generateMesh(128, 4, 1));
};

TEST_F(ChaosServiceTest, LethalCrashIsRestartedByTheWatchdog)
{
    auto chaos = std::make_shared<ChaosPolicy>(17);
    ChaosSpec crash;
    crash.point = ChaosPoint::WorkerCrashBatch;
    crash.probability = 1.0;
    crash.lethal = true;
    crash.endVisit = 1; // kill the worker on its first batch only
    chaos->arm(crash);

    serve::ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1;
    options.chaos = chaos;
    options.watchdog.pollMs = 1.0;
    serve::PredictionService service(registry_, options);

    // First request: the batch fails with a structured error and
    // the sole worker dies.
    serve::ServeResponse first = service.submit(request()).get();
    EXPECT_EQ(first.status, serve::ServeStatus::Error);
    ASSERT_TRUE(first.error.has_value());

    // Second request: only a restarted worker can answer it.
    serve::ServeResponse second = service.submit(request()).get();
    EXPECT_EQ(second.status, serve::ServeStatus::Ok);
    service.close();
    EXPECT_GE(service.workerRestarts(), 1u);
    EXPECT_EQ(service.batchFailures(), 1u);
}

TEST_F(ChaosServiceTest, StallIsDetectedAndLadderRecovers)
{
    auto chaos = std::make_shared<ChaosPolicy>(23);
    ChaosSpec stall;
    stall.point = ChaosPoint::WorkerStall;
    stall.probability = 1.0;
    stall.delayMs = 120.0;
    stall.endVisit = 1;
    chaos->arm(stall);

    serve::ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1;
    options.chaos = chaos;
    options.watchdog.pollMs = 2.0;
    options.watchdog.stuckAfterMs = 25.0;
    options.watchdog.recoverAfterMs = 40.0;
    serve::PredictionService service(registry_, options);

    // The stalled batch is still served after the injected sleep.
    serve::ServeResponse stalled = service.submit(request()).get();
    EXPECT_EQ(stalled.status, serve::ServeStatus::Ok);
    EXPECT_GE(service.workerStalls(), 1u);
    EXPECT_GE(static_cast<int>(service.degradationLevel()), 1);

    // A fault-free quiet period walks the ladder back to Normal.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (service.degradationLevel() !=
               serve::DegradationLevel::Normal &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(service.degradationLevel(),
              serve::DegradationLevel::Normal);

    serve::ServeResponse after = service.submit(request()).get();
    EXPECT_EQ(after.status, serve::ServeStatus::Ok);
    EXPECT_EQ(after.degradationLevel, 0);
    service.close();
}

TEST_F(ChaosServiceTest, RepeatedFaultsEscalateToFallbackServing)
{
    auto chaos = std::make_shared<ChaosPolicy>(31);
    ChaosSpec crash;
    crash.point = ChaosPoint::WorkerCrashBatch;
    crash.probability = 1.0;
    crash.endVisit = 3; // exactly three failed batches
    chaos->arm(crash);

    serve::ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1;
    options.chaos = chaos;
    options.watchdog.enabled = false; // freeze the ladder: no recovery
    serve::PredictionService service(registry_, options);

    for (int i = 0; i < 3; ++i) {
        serve::ServeResponse failed =
            service.submit(request()).get();
        EXPECT_EQ(failed.status, serve::ServeStatus::Error);
    }
    EXPECT_EQ(service.degradationLevel(),
              serve::DegradationLevel::FallbackHeuristic);

    // Level 3: the built-in heuristic answers, stamped with the
    // active snapshot's epoch so the monotone contract holds.
    serve::ServeResponse fallback = service.submit(request()).get();
    EXPECT_EQ(fallback.status, serve::ServeStatus::Ok);
    EXPECT_TRUE(fallback.servedByFallback);
    EXPECT_EQ(fallback.degradationLevel, 3);
    EXPECT_EQ(fallback.modelEpoch, registry_.epoch());
    EXPECT_GE(service.fallbackServed(), 1u);

    // Level >= 2: a supervised request is served without its lane.
    serve::ServeResponse bypassed =
        service.submit(request(/*supervised=*/true)).get();
    EXPECT_EQ(bypassed.status, serve::ServeStatus::Ok);
    EXPECT_FALSE(bypassed.outcome.has_value());
    service.close();
}

/* ------------------------------------------------------------------ */
/* RetryingClient                                                     */
/* ------------------------------------------------------------------ */

class ChaosClientTest : public ChaosServiceTest
{
  protected:
    /** Service whose first @p failures batches crash. */
    serve::ServiceOptions
    crashingOptions(uint64_t failures)
    {
        auto chaos = std::make_shared<ChaosPolicy>(13);
        ChaosSpec crash;
        crash.point = ChaosPoint::WorkerCrashBatch;
        crash.probability = 1.0;
        crash.endVisit = failures;
        chaos->arm(crash);

        serve::ServiceOptions options;
        options.workers = 1;
        options.maxBatch = 1;
        options.chaos = chaos;
        options.watchdog.enabled = false;
        return options;
    }
};

TEST_F(ChaosClientTest, RetriesUntilTheServiceHeals)
{
    serve::PredictionService service(registry_,
                                     crashingOptions(1));
    serve::RetryOptions retry;
    retry.maxAttempts = 3;
    serve::RetryingClient client(service, retry);
    std::vector<double> sleeps;
    client.setSleeper([&](double ms) { sleeps.push_back(ms); });

    serve::ClientResult result = client.call(request());
    EXPECT_EQ(result.response.status, serve::ServeStatus::Ok);
    EXPECT_EQ(result.attempts, 2u);
    ASSERT_EQ(sleeps.size(), 1u);
    EXPECT_EQ(result.totalBackoffMs, sleeps.front());
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Closed);
    service.close();
}

TEST_F(ChaosClientTest, BackoffSequenceIsSeededDeterministic)
{
    auto capture = [&](uint64_t seed) {
        serve::PredictionService service(
            registry_, crashingOptions(ChaosSpec::kForeverVisits));
        serve::RetryOptions retry;
        retry.maxAttempts = 4;
        retry.initialBackoffMs = 2.0;
        retry.backoffMultiplier = 3.0;
        retry.maxBackoffMs = 10.0;
        retry.seed = seed;
        serve::RetryingClient client(service, retry);
        std::vector<double> sleeps;
        client.setSleeper([&](double ms) { sleeps.push_back(ms); });
        serve::ClientResult result = client.call(request());
        EXPECT_EQ(result.response.status, serve::ServeStatus::Error);
        EXPECT_EQ(result.attempts, 4u);
        service.close();
        return sleeps;
    };

    const std::vector<double> a = capture(5);
    const std::vector<double> b = capture(5);
    const std::vector<double> c = capture(6);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b); // same seed, same jittered sequence
    EXPECT_NE(a, c);
    // Exponential envelope with 20% jitter around 2, 6, 10(capped).
    EXPECT_GE(a[0], 2.0 * 0.8);
    EXPECT_LE(a[0], 2.0 * 1.2);
    EXPECT_GE(a[1], 6.0 * 0.8);
    EXPECT_LE(a[1], 6.0 * 1.2);
    EXPECT_GE(a[2], 10.0 * 0.8);
    EXPECT_LE(a[2], 10.0 * 1.2);
}

TEST_F(ChaosClientTest, BreakerOpensAfterThresholdAndFastFails)
{
    serve::PredictionService service(
        registry_, crashingOptions(ChaosSpec::kForeverVisits));
    serve::RetryOptions retry;
    retry.maxAttempts = 1;
    retry.breakerThreshold = 2;
    retry.breakerOpenMs = 60000.0; // stay open for the whole test
    serve::RetryingClient client(service, retry);
    client.setSleeper([](double) {});

    EXPECT_EQ(client.call(request()).response.status,
              serve::ServeStatus::Error);
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Closed);
    EXPECT_EQ(client.call(request()).response.status,
              serve::ServeStatus::Error);
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Open);
    EXPECT_EQ(client.laneFailureStreak(serve::ClientLane::Fast), 2u);

    // Open: shed client-side, zero service traffic.
    const uint64_t submitted_before = service.submitted();
    serve::ClientResult shed = client.call(request());
    EXPECT_TRUE(shed.breakerFastFail);
    EXPECT_EQ(shed.attempts, 0u);
    EXPECT_EQ(shed.response.status, serve::ServeStatus::Shed);
    EXPECT_EQ(shed.response.shedReason,
              serve::ShedReason::CircuitOpen);
    EXPECT_EQ(service.submitted(), submitted_before);

    // The supervised lane is untouched by the fast lane's breaker.
    EXPECT_EQ(client.laneState(serve::ClientLane::Supervised),
              serve::CircuitState::Closed);
    service.close();
}

TEST_F(ChaosClientTest, HalfOpenProbeClosesOrReopensTheBreaker)
{
    auto chaos = std::make_shared<ChaosPolicy>(13);
    ChaosSpec crash;
    crash.point = ChaosPoint::WorkerCrashBatch;
    crash.probability = 1.0;
    crash.endVisit = 2; // two crashed batches, then healthy
    chaos->arm(crash);

    serve::ServiceOptions options;
    options.workers = 1;
    options.maxBatch = 1;
    options.chaos = chaos;
    options.watchdog.enabled = false;
    serve::PredictionService service(registry_, options);

    serve::RetryOptions retry;
    retry.maxAttempts = 1;
    retry.breakerThreshold = 1;
    retry.breakerOpenMs = 0.0; // cooldown elapses immediately
    serve::RetryingClient client(service, retry);
    client.setSleeper([](double) {});

    // Failure 1 trips the breaker straight to Open.
    EXPECT_EQ(client.call(request()).response.status,
              serve::ServeStatus::Error);
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Open);

    // Cooldown elapsed: the next call probes Half-Open, fails
    // (second crashed batch), and the breaker re-opens.
    serve::ClientResult probe = client.call(request());
    EXPECT_EQ(probe.response.status, serve::ServeStatus::Error);
    EXPECT_FALSE(probe.breakerFastFail);
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Open);

    // The service is healthy now: the next probe succeeds and
    // closes the breaker.
    serve::ClientResult healed = client.call(request());
    EXPECT_EQ(healed.response.status, serve::ServeStatus::Ok);
    EXPECT_EQ(client.laneState(serve::ClientLane::Fast),
              serve::CircuitState::Closed);
    EXPECT_EQ(client.laneFailureStreak(serve::ClientLane::Fast), 0u);
    service.close();
}

TEST_F(ChaosClientTest, ClosedServiceIsTerminalNotRetried)
{
    serve::PredictionService service(registry_,
                                     crashingOptions(0));
    service.close();
    serve::RetryOptions retry;
    retry.maxAttempts = 5;
    serve::RetryingClient client(service, retry);
    std::vector<double> sleeps;
    client.setSleeper([&](double ms) { sleeps.push_back(ms); });

    serve::ClientResult result = client.call(request());
    EXPECT_EQ(result.response.status, serve::ServeStatus::Closed);
    EXPECT_EQ(result.attempts, 1u); // no retries against a shutdown
    EXPECT_TRUE(sleeps.empty());
}

} // namespace
} // namespace heteromap
