/**
 * @file
 * Tests for the fault-injection layer and the supervised deployment
 * loop: per-kind fault effects, activation windows, the thermal ramp,
 * deterministic seeded schedules, mispredict detection, the full
 * degradation ladder (mask -> switch accelerator -> shrink config ->
 * retry-with-backoff), retry exhaustion, and deterministic replay.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "arch/fault_model.hh"
#include "core/experiment.hh"
#include "core/oracle.hh"
#include "core/supervisor.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace {

class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogVerbose(false); }
    void TearDown() override { setLogVerbose(true); }

    Oracle oracle_;

    BenchmarkCase
    smallCase() const
    {
        auto workload = makeWorkload("PR");
        return makeCase(*workload, datasetByShortName("CO"));
    }

    HeteroMap
    framework() const
    {
        return HeteroMap(pinnedPair(primaryPair()),
                         makePredictor(PredictorKind::DecisionTree),
                         oracle_);
    }

    /** A one-phase report with known components. */
    static ExecutionReport
    syntheticReport()
    {
        ExecutionReport report;
        PhaseBreakdown pb;
        pb.name = "phase";
        pb.computeSeconds = 1.0;
        pb.bandwidthSeconds = 0.5;
        pb.latencySeconds = 0.2;
        pb.atomicSeconds = 0.1;
        pb.scheduleSeconds = 0.1;
        report.phases.push_back(pb);
        report.regionSeconds = 0.1;
        report.barrierSeconds = 0.1;
        // max(1.0, 0.5) + 0.2 + 0.1 + 0.1 = 1.4, plus crossings.
        report.seconds = 1.6;
        report.watts = 10.0;
        report.joules = report.watts * report.seconds;
        return report;
    }

    static FaultSpec
    stallBoth(AcceleratorKind side, double stall_seconds,
              double end_seconds = FaultSpec::kForeverSeconds)
    {
        FaultSpec spec;
        spec.kind = FaultKind::TransientStall;
        spec.target = side;
        spec.stallSeconds = stall_seconds;
        spec.endSeconds = end_seconds;
        return spec;
    }
};

TEST_F(FaultTest, SpecWindowsGateActivation)
{
    FaultSpec spec;
    spec.startDeployment = 2;
    spec.endDeployment = 5;
    spec.startSeconds = 1.0;
    spec.endSeconds = 10.0;

    EXPECT_FALSE(spec.activeAt({1, 5.0}));  // before deployment window
    EXPECT_FALSE(spec.activeAt({5, 5.0}));  // past deployment window
    EXPECT_FALSE(spec.activeAt({3, 0.5}));  // before time window
    EXPECT_FALSE(spec.activeAt({3, 10.0})); // past time window
    EXPECT_TRUE(spec.activeAt({2, 1.0}));
    EXPECT_TRUE(spec.activeAt({4, 9.9}));
}

TEST_F(FaultTest, EffectsCompose)
{
    FaultEffect a;
    a.frequencyScale = 0.5;
    a.stallSeconds = 1.0;
    FaultEffect b;
    b.bandwidthScale = 0.5;
    b.stallSeconds = 2.0;
    b.unavailable = true;

    a.compose(b);
    EXPECT_TRUE(a.unavailable);
    EXPECT_DOUBLE_EQ(a.frequencyScale, 0.5);
    EXPECT_DOUBLE_EQ(a.bandwidthScale, 0.5);
    EXPECT_DOUBLE_EQ(a.stallSeconds, 3.0);
    EXPECT_FALSE(a.healthy());
    EXPECT_TRUE(FaultEffect{}.healthy());
}

TEST_F(FaultTest, ThermalThrottleRampsToFullSeverity)
{
    FaultSchedule schedule;
    FaultSpec spec;
    spec.kind = FaultKind::ThermalThrottle;
    spec.target = AcceleratorKind::Gpu;
    spec.startDeployment = 4;
    spec.severity = 0.6;
    spec.rampDeployments = 3;
    schedule.add(spec);

    EXPECT_DOUBLE_EQ(
        schedule.effectAt(AcceleratorKind::Gpu, {3, 0.0}).frequencyScale,
        1.0);
    double prev = 1.0;
    for (uint64_t d = 4; d < 7; ++d) {
        double scale = schedule.effectAt(AcceleratorKind::Gpu, {d, 0.0})
                           .frequencyScale;
        EXPECT_LT(scale, prev);
        prev = scale;
    }
    // Fully ramped at start + ramp - 1 and steady afterwards.
    EXPECT_NEAR(prev, 0.4, 1e-12);
    EXPECT_NEAR(
        schedule.effectAt(AcceleratorKind::Gpu, {20, 0.0}).frequencyScale,
        0.4, 1e-12);
    // The multicore is untouched.
    EXPECT_TRUE(schedule.effectAt(AcceleratorKind::Multicore, {20, 0.0})
                    .healthy());
}

TEST_F(FaultTest, ThrottlePerturbStretchesCoreClockedComponents)
{
    FaultSchedule schedule;
    FaultSpec spec;
    spec.kind = FaultKind::ThermalThrottle;
    spec.target = AcceleratorKind::Gpu;
    spec.severity = 0.5;
    schedule.add(spec);
    FaultInjector injector(schedule);

    ExecutionReport report = syntheticReport();
    FaultEffect effect =
        injector.perturb(report, AcceleratorKind::Gpu, {0, 0.0});
    EXPECT_DOUBLE_EQ(effect.frequencyScale, 0.5);
    const PhaseBreakdown &pb = report.phases[0];
    EXPECT_DOUBLE_EQ(pb.computeSeconds, 2.0);
    EXPECT_DOUBLE_EQ(pb.atomicSeconds, 0.2);
    EXPECT_DOUBLE_EQ(pb.scheduleSeconds, 0.2);
    EXPECT_DOUBLE_EQ(pb.bandwidthSeconds, 0.5); // bandwidth untouched
    EXPECT_DOUBLE_EQ(pb.latencySeconds, 0.2);   // DRAM latency untouched
    // New total: 0.2 + 0.2 + (2.0 + 0.2 + 0.2 + 0.2) = 3.0.
    EXPECT_NEAR(report.seconds, 3.0, 1e-12);
    EXPECT_NEAR(report.joules, 30.0, 1e-12);
}

TEST_F(FaultTest, BandwidthAndStallPerturbations)
{
    FaultSchedule schedule;
    FaultSpec bw;
    bw.kind = FaultKind::BandwidthDegrade;
    bw.target = AcceleratorKind::Multicore;
    bw.severity = 0.75;
    schedule.add(bw);
    schedule.add(stallBoth(AcceleratorKind::Multicore, 2.5));
    FaultInjector injector(schedule);

    ExecutionReport report = syntheticReport();
    injector.perturb(report, AcceleratorKind::Multicore, {0, 0.0});
    // Bandwidth 0.5 -> 2.0 now dominates compute in the overlap rule:
    // 0.1 + 0.1 + (max(1.0, 2.0) + 0.2 + 0.1 + 0.1) = 2.6, + stall.
    EXPECT_DOUBLE_EQ(report.phases[0].bandwidthSeconds, 2.0);
    EXPECT_NEAR(report.seconds, 2.6 + 2.5, 1e-12);

    // A healthy side's report is untouched.
    ExecutionReport clean = syntheticReport();
    FaultEffect none =
        injector.perturb(clean, AcceleratorKind::Gpu, {0, 0.0});
    EXPECT_TRUE(none.healthy());
    EXPECT_DOUBLE_EQ(clean.seconds, 1.6);
}

TEST_F(FaultTest, UnavailabilityGatesTheSide)
{
    FaultSchedule schedule;
    FaultSpec spec;
    spec.kind = FaultKind::AcceleratorUnavailable;
    spec.target = AcceleratorKind::Gpu;
    spec.startDeployment = 1;
    spec.endDeployment = 3;
    schedule.add(spec);

    EXPECT_TRUE(schedule.available(AcceleratorKind::Gpu, {0, 0.0}));
    EXPECT_FALSE(schedule.available(AcceleratorKind::Gpu, {1, 0.0}));
    EXPECT_FALSE(schedule.available(AcceleratorKind::Gpu, {2, 0.0}));
    EXPECT_TRUE(schedule.available(AcceleratorKind::Gpu, {3, 0.0}));
    EXPECT_TRUE(schedule.available(AcceleratorKind::Multicore, {2, 0.0}));
}

TEST_F(FaultTest, RandomSchedulesReplayBySeed)
{
    FaultSchedule a = FaultSchedule::random(42, 5, 100);
    FaultSchedule b = FaultSchedule::random(42, 5, 100);
    FaultSchedule c = FaultSchedule::random(43, 5, 100);

    ASSERT_EQ(a.size(), 5u);
    ASSERT_EQ(b.size(), 5u);
    bool differs_from_c = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.faults()[i].toString(), b.faults()[i].toString());
        if (a.faults()[i].toString() != c.faults()[i].toString())
            differs_from_c = true;
    }
    EXPECT_TRUE(differs_from_c);
}

TEST_F(FaultTest, HealthySupervisorAcceptsFirstAttempt)
{
    BenchmarkCase bench = smallCase();
    HeteroMap hm = framework();
    Supervisor supervisor(hm);

    Deployment plain = hm.deploy(bench);
    DeploymentOutcome outcome = supervisor.deploy(bench);

    EXPECT_TRUE(outcome.completed);
    EXPECT_TRUE(outcome.withinTolerance);
    ASSERT_EQ(outcome.attempts.size(), 1u);
    EXPECT_EQ(outcome.attempts[0].action, FallbackAction::Initial);
    EXPECT_TRUE(outcome.fallbackPath.empty());
    EXPECT_EQ(outcome.faultsSeen, 0u);
    EXPECT_DOUBLE_EQ(outcome.deployment.report.seconds,
                     plain.report.seconds);
    EXPECT_EQ(outcome.deployment.config, plain.config);
    EXPECT_EQ(supervisor.deploymentsRun(), 1u);
}

TEST_F(FaultTest, OutageMidRunFallsBackEveryDeployment)
{
    BenchmarkCase bench = smallCase();
    HeteroMap hm = framework();
    const AcceleratorKind predicted_side =
        hm.deploy(bench).config.accelerator;
    const AcceleratorKind other =
        predicted_side == AcceleratorKind::Gpu
            ? AcceleratorKind::Multicore
            : AcceleratorKind::Gpu;

    // The predicted accelerator disappears for deployments [2, 6).
    FaultSchedule schedule;
    FaultSpec outage;
    outage.kind = FaultKind::AcceleratorUnavailable;
    outage.target = predicted_side;
    outage.startDeployment = 2;
    outage.endDeployment = 6;
    schedule.add(outage);

    Supervisor supervisor(hm, FaultInjector(schedule));
    for (uint64_t d = 0; d < 8; ++d) {
        DeploymentOutcome outcome;
        ASSERT_NO_THROW(outcome = supervisor.deploy(bench))
            << "deployment " << d;
        EXPECT_TRUE(outcome.completed) << "deployment " << d;
        if (d >= 2 && d < 6) {
            // The initial attempt could not run; MaskPredict moved the
            // deployment to the healthy accelerator.
            EXPECT_FALSE(outcome.attempts[0].ran);
            ASSERT_GE(outcome.attempts.size(), 2u);
            EXPECT_EQ(outcome.fallbackPath.front(),
                      FallbackAction::MaskPredict);
            EXPECT_EQ(outcome.deployment.config.accelerator, other);
        } else {
            EXPECT_EQ(outcome.attempts.size(), 1u);
            EXPECT_TRUE(outcome.fallbackPath.empty());
            EXPECT_EQ(outcome.deployment.config.accelerator,
                      predicted_side);
        }
    }
}

TEST_F(FaultTest, PersistentFaultWalksFullLadderAndExhausts)
{
    BenchmarkCase bench = smallCase();
    HeteroMap hm = framework();

    // Unexpirable stalls on both sides: every attempt mispredicts.
    FaultSchedule schedule;
    schedule.add(stallBoth(AcceleratorKind::Gpu, 1e6));
    schedule.add(stallBoth(AcceleratorKind::Multicore, 1e6));

    SupervisorOptions options;
    options.maxAttempts = 6;
    options.backoffBaseMs = 2.0;
    options.backoffFactor = 3.0;
    Supervisor supervisor(hm, FaultInjector(schedule), options);
    DeploymentOutcome outcome = supervisor.deploy(bench);

    // Full degradation ladder, in order, then bounded retries.
    ASSERT_EQ(outcome.attempts.size(), 6u);
    EXPECT_EQ(outcome.attempts[0].action, FallbackAction::Initial);
    EXPECT_EQ(outcome.attempts[1].action, FallbackAction::MaskPredict);
    EXPECT_EQ(outcome.attempts[2].action,
              FallbackAction::SwitchAccelerator);
    EXPECT_EQ(outcome.attempts[3].action, FallbackAction::ShrinkConfig);
    EXPECT_EQ(outcome.attempts[4].action, FallbackAction::RetryBackoff);
    EXPECT_EQ(outcome.attempts[5].action, FallbackAction::RetryBackoff);

    for (const auto &attempt : outcome.attempts) {
        EXPECT_TRUE(attempt.ran);
        EXPECT_TRUE(attempt.mispredict);
        EXPECT_FALSE(attempt.faults.empty());
    }

    // ShrinkConfig actually shrank the intra-accelerator choices.
    EXPECT_LT(outcome.attempts[3].config.activeThreads(),
              outcome.attempts[2].config.activeThreads());

    // Exponential backoff between retries.
    EXPECT_DOUBLE_EQ(outcome.attempts[4].backoffMs, 2.0);
    EXPECT_DOUBLE_EQ(outcome.attempts[5].backoffMs, 6.0);
    EXPECT_DOUBLE_EQ(outcome.totalBackoffMs, 8.0);

    // Exhaustion degrades to best-effort instead of panicking.
    EXPECT_TRUE(outcome.completed);
    EXPECT_FALSE(outcome.withinTolerance);
    EXPECT_EQ(outcome.failure.code, ErrorCode::Exhausted);
    EXPECT_GT(outcome.deployment.report.seconds, 1e6);
}

TEST_F(FaultTest, TransientStallExpiresDuringBackoffRetries)
{
    BenchmarkCase bench = smallCase();
    HeteroMap hm = framework();
    const double healthy = hm.deploy(bench).report.seconds;
    // The scenario below assumes proxy-scale modelled times; if the
    // model ever drifts to seconds-scale this guard fails loudly.
    ASSERT_LT(healthy, 0.5);

    // A 5-second stall on both sides that expires by modelled time
    // while the supervisor is still walking the ladder: attempts 0-3
    // each pay ~5s, so the window closes before the first retry.
    const double stall = 5.0;
    const double expiry = 18.0;
    FaultSchedule schedule;
    schedule.add(stallBoth(AcceleratorKind::Gpu, stall, expiry));
    schedule.add(stallBoth(AcceleratorKind::Multicore, stall, expiry));

    Supervisor supervisor(hm, FaultInjector(schedule));
    DeploymentOutcome outcome = supervisor.deploy(bench);

    EXPECT_TRUE(outcome.completed);
    EXPECT_TRUE(outcome.withinTolerance);
    ASSERT_EQ(outcome.attempts.size(), 5u);
    EXPECT_EQ(outcome.attempts.back().action,
              FallbackAction::RetryBackoff);
    EXPECT_GT(outcome.attempts.back().backoffMs, 0.0);
    EXPECT_FALSE(outcome.attempts.back().mispredict);
    // The four earlier rungs all saw the stall.
    for (std::size_t i = 0; i + 1 < outcome.attempts.size(); ++i) {
        EXPECT_TRUE(outcome.attempts[i].mispredict);
        EXPECT_GT(outcome.attempts[i].observedSeconds, stall);
    }
    // Ladder order is preserved on the way down.
    ASSERT_EQ(outcome.fallbackPath.size(), 4u);
    EXPECT_EQ(outcome.fallbackPath[0], FallbackAction::MaskPredict);
    EXPECT_EQ(outcome.fallbackPath[1],
              FallbackAction::SwitchAccelerator);
    EXPECT_EQ(outcome.fallbackPath[2], FallbackAction::ShrinkConfig);
    EXPECT_EQ(outcome.fallbackPath[3], FallbackAction::RetryBackoff);
}

TEST_F(FaultTest, SupervisedRunsReplayDeterministically)
{
    BenchmarkCase bench = smallCase();
    HeteroMap hm = framework();
    FaultSchedule schedule = FaultSchedule::random(7, 6, 20);

    auto run = [&]() {
        std::vector<std::string> trace;
        Supervisor supervisor(hm, FaultInjector(schedule));
        for (int d = 0; d < 10; ++d) {
            DeploymentOutcome outcome = supervisor.deploy(bench);
            std::ostringstream oss;
            oss << outcome.deploymentIndex << "|" << outcome.completed
                << "|" << outcome.faultsSeen;
            for (const auto &a : outcome.attempts) {
                oss << "|" << fallbackActionName(a.action) << ":"
                    << a.ran << ":" << a.observedSeconds;
            }
            trace.push_back(oss.str());
        }
        return trace;
    };

    EXPECT_EQ(run(), run());
}

TEST_F(FaultTest, BothSidesDownIsARecoverableFailure)
{
    BenchmarkCase bench = smallCase();
    HeteroMap hm = framework();

    FaultSchedule schedule;
    for (AcceleratorKind side :
         {AcceleratorKind::Gpu, AcceleratorKind::Multicore}) {
        FaultSpec outage;
        outage.kind = FaultKind::AcceleratorUnavailable;
        outage.target = side;
        schedule.add(outage);
    }

    SupervisorOptions options;
    options.maxAttempts = 3;
    Supervisor supervisor(hm, FaultInjector(schedule), options);
    DeploymentOutcome outcome;
    ASSERT_NO_THROW(outcome = supervisor.deploy(bench));
    EXPECT_FALSE(outcome.completed);
    EXPECT_EQ(outcome.failure.code, ErrorCode::Unavailable);
    for (const auto &attempt : outcome.attempts)
        EXPECT_FALSE(attempt.ran);
    EXPECT_FALSE(outcome.toString().empty());
}

} // namespace
} // namespace heteromap
