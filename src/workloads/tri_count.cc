/**
 * @file
 * Triangle counting implementation. For every edge (v, u) with v < u,
 * the smaller adjacency list is binary-searched against the larger
 * for common neighbors w > u, counting each triangle exactly once.
 */

#include "workloads/tri_count.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
TriangleCount::bVariables() const
{
    BVariables b;
    b.b1 = 0.7;  // per-vertex intersection work
    b.b5 = 0.3;  // global count reduction
    b.b6 = 0.0;
    b.b7 = 0.5;
    b.b8 = 0.4;  // binary-search probes are data-dependent
    b.b9 = 0.8;  // the graph itself dominates traffic
    b.b10 = 0.2; // per-vertex counters + global count
    b.b12 = 0.2;
    b.b13 = 0.1;
    return b;
}

WorkloadOutput
TriangleCount::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "triangle counting requires a non-empty graph");

    std::vector<double> per_vertex(n, 0.0);
    uint64_t total = 0;

    exec.parallelFor(
        "intersect", PhaseKind::VertexDivision, n,
        [&](uint64_t idx, ItemCost &cost) {
            auto v = static_cast<VertexId>(idx);
            auto nv = graph.neighbors(v);
            cost.intOps += 2;
            cost.directAccesses += 1;
            uint64_t found = 0;
            for (VertexId u : nv) {
                cost.intOps += 1;
                cost.directAccesses += 1;
                cost.sharedReadBytes += 4;
                if (u <= v)
                    continue; // orient edges upward
                auto nu = graph.neighbors(u);
                // Probe the smaller list against the larger.
                auto small = nv.size() <= nu.size() ? nv : nu;
                auto large = nv.size() <= nu.size() ? nu : nv;
                for (VertexId w : small) {
                    cost.intOps += 1;
                    cost.sharedReadBytes += 4;
                    cost.directAccesses += 1;
                    if (w <= u)
                        continue; // close each triangle once
                    bool hit = std::binary_search(
                        large.begin(), large.end(), w);
                    // log2-deep dependent probes; the upper levels of
                    // the search tree stay cache-resident, only the
                    // leaf-side probes go to memory.
                    double probes = std::max(
                        1.0, std::log2(static_cast<double>(
                                 large.size()) + 1.0));
                    cost.indirectAccesses += std::min(probes, 2.0);
                    cost.localBytes +=
                        4.0 * std::max(0.0, probes - 2.0);
                    cost.sharedReadBytes += 4.0 * std::min(probes, 2.0);
                    cost.intOps += probes;
                    if (hit)
                        ++found;
                }
            }
            per_vertex[v] = static_cast<double>(found);
            total += found; // atomic reduction
            cost.atomics += 1;
            cost.sharedWriteBytes += 16;
            cost.localBytes += 8;
        });
    exec.barrier();

    // Aggregate per-vertex counts into the exact global total.
    exec.parallelFor(
        "count-reduce", PhaseKind::Reduction, n,
        [&](uint64_t idx, ItemCost &cost) {
            (void)idx;
            cost.intOps += 1;
            cost.directAccesses += 1;
            cost.sharedReadBytes += 8;
            cost.atomics += 1;
        });
    exec.barrier();
    exec.endIteration();

    WorkloadOutput out;
    out.vertexValues = std::move(per_vertex);
    out.scalar = static_cast<double>(total);
    return out;
}

} // namespace heteromap
