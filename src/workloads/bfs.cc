/**
 * @file
 * BFS implementation.
 */

#include "workloads/bfs.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
Bfs::bVariables() const
{
    BVariables b;
    b.b3 = 1.0;  // single dynamically growing pareto phase
    b.b6 = 0.0;
    b.b7 = 0.8;  // level array via loop indexes
    b.b8 = 0.0;
    b.b9 = 0.5;  // read-only graph
    b.b10 = 0.4; // level array + next frontier
    b.b11 = 0.1;
    b.b12 = 0.2; // visited-claim updates
    b.b13 = 0.1; // one barrier per level
    return b;
}

WorkloadOutput
Bfs::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "BFS requires a non-empty graph");
    const VertexId src = std::min<VertexId>(source_, n - 1);

    std::vector<uint32_t> level(n, UINT32_MAX);
    level[src] = 0;
    std::vector<VertexId> frontier{src};
    uint32_t depth = 0;

    while (!frontier.empty()) {
        std::vector<VertexId> next;
        ++depth;
        exec.parallelFor(
            "frontier", PhaseKind::ParetoDynamic, frontier.size(),
            [&](uint64_t idx, ItemCost &cost) {
                VertexId v = frontier[idx];
                cost.intOps += 2;
                cost.directAccesses += 1;
                cost.sharedReadBytes += 4;
                for (VertexId u : graph.neighbors(v)) {
                    cost.intOps += 1;
                    cost.directAccesses += 1;
                    cost.sharedReadBytes += 4;  // adjacency
                    cost.sharedWriteBytes += 4; // level probe
                    if (level[u] == UINT32_MAX) {
                        // Atomic claim of the vertex.
                        level[u] = depth;
                        next.push_back(u);
                        cost.atomics += 1;
                        cost.sharedWriteBytes += 8;
                        cost.localBytes += 4;
                    }
                }
            });
        exec.barrier();
        exec.endIteration();
        frontier.swap(next);
    }

    WorkloadOutput out;
    out.vertexValues.resize(n);
    uint64_t reachable = 0;
    for (VertexId v = 0; v < n; ++v) {
        if (level[v] == UINT32_MAX) {
            out.vertexValues[v] = kUnreachable;
        } else {
            out.vertexValues[v] = level[v];
            ++reachable;
        }
    }
    out.scalar = static_cast<double>(reachable);
    return out;
}

} // namespace heteromap
