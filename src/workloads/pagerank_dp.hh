/**
 * @file
 * PageRank-DP (data-parallel push variant): every vertex scatters its
 * rank contribution to neighbors with atomic accumulation — more
 * parallel slack but far more contention than the pull variant.
 */

#ifndef HETEROMAP_WORKLOADS_PAGERANK_DP_HH
#define HETEROMAP_WORKLOADS_PAGERANK_DP_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Push-based PageRank with atomic scatter. */
class PageRankDp : public Workload
{
  public:
    explicit PageRankDp(double damping = 0.85, unsigned iterations = 20,
                        double tolerance = 1e-7)
        : damping_(damping), maxIterations_(iterations),
          tolerance_(tolerance)
    {
    }

    std::string name() const override { return "PR-DP"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = final rank; scalar = iterations executed. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    double damping_;
    unsigned maxIterations_;
    double tolerance_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_PAGERANK_DP_HH
