/**
 * @file
 * Connected components (Shiloach-Vishkin style): alternating hook and
 * pointer-jumping compress phases. The compress phase's pointer
 * chasing is the paper's example of complex indirect addressing (B8)
 * that favors multicores.
 */

#ifndef HETEROMAP_WORKLOADS_CONN_COMP_HH
#define HETEROMAP_WORKLOADS_CONN_COMP_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Shiloach-Vishkin connected components. */
class ConnectedComponents : public Workload
{
  public:
    ConnectedComponents() = default;

    std::string name() const override { return "CONN"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = component representative id;
     *  scalar = number of components. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_CONN_COMP_HH
