/**
 * @file
 * Workload registry: the nine paper benchmarks (Sec. VI-B) by name,
 * plus the full evaluation list used by the benches.
 */

#ifndef HETEROMAP_WORKLOADS_REGISTRY_HH
#define HETEROMAP_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace heteromap {

/**
 * Instantiate a benchmark by paper name: "SSSP-BF", "SSSP-Delta",
 * "BFS", "DFS", "PR", "PR-DP", "TRI", "COMM", "CONN" — plus the
 * extension workload "BC" (betweenness centrality), which is not part
 * of the paper's evaluation list. Fatal on unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** The nine benchmark names, in Fig. 5 order. */
const std::vector<std::string> &workloadNames();

/** Instantiate all nine benchmarks. */
std::vector<std::unique_ptr<Workload>> allWorkloads();

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_REGISTRY_HH
