/**
 * @file
 * PageRank implementation.
 */

#include "workloads/pagerank.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
PageRank::bVariables() const
{
    BVariables b;
    b.b1 = 0.8;  // rank gather is vertex division
    b.b5 = 0.2;  // convergence-error reduction
    b.b6 = 0.8;  // rank arithmetic is FP
    b.b7 = 0.8;
    b.b8 = 0.0;
    b.b9 = 0.5;  // graph + previous ranks (read-only per iteration)
    b.b10 = 0.4; // new ranks
    b.b11 = 0.2;
    b.b12 = 0.1; // only the error accumulator is contended
    b.b13 = 0.2; // two barriers per iteration
    return b;
}

WorkloadOutput
PageRank::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "PageRank requires a non-empty graph");

    const double base = (1.0 - damping_) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n, 0.0);

    unsigned iter = 0;
    for (; iter < maxIterations_; ++iter) {
        double error = 0.0;

        exec.parallelFor(
            "gather", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                double sum = 0.0;
                cost.intOps += 2;
                cost.directAccesses += 1;
                for (VertexId u : graph.neighbors(v)) {
                    // Pull rank/outdegree from each in-neighbor
                    // (graph is symmetrized).
                    sum += rank[u] /
                           static_cast<double>(graph.degree(u));
                    cost.fpOps += 2;
                    cost.directAccesses += 2;
                    cost.sharedReadBytes += 16; // rank + degree
                    cost.localBytes += 8;
                }
                next[v] = base + damping_ * sum;
                cost.fpOps += 2;
                cost.sharedWriteBytes += 8;
            });
        exec.barrier();

        exec.parallelFor(
            "error-reduce", PhaseKind::Reduction, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                error += std::fabs(next[v] - rank[v]);
                rank[v] = next[v];
                cost.fpOps += 2;
                cost.directAccesses += 2;
                cost.sharedWriteBytes += 16;
                cost.atomics += 1; // shared error accumulator
            });
        exec.barrier();
        exec.endIteration();

        if (error < tolerance_)
            break;
    }

    WorkloadOutput out;
    out.vertexValues.assign(rank.begin(), rank.end());
    out.scalar = static_cast<double>(iter + 1);
    return out;
}

} // namespace heteromap
