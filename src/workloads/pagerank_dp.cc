/**
 * @file
 * PageRank-DP implementation.
 */

#include "workloads/pagerank_dp.hh"

#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
PageRankDp::bVariables() const
{
    BVariables b;
    b.b1 = 0.9;  // scatter and apply are both vertex division
    b.b5 = 0.1;  // convergence reduction
    b.b6 = 0.8;  // FP rank arithmetic
    b.b7 = 0.8;
    b.b8 = 0.0;
    b.b9 = 0.4;
    b.b10 = 0.6; // shared accumulators, heavily written
    b.b11 = 0.1;
    b.b12 = 0.5; // atomic adds on every edge
    b.b13 = 0.2;
    return b;
}

WorkloadOutput
PageRankDp::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "PageRank-DP requires a non-empty graph");

    const double base = (1.0 - damping_) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> accum(n, 0.0);

    unsigned iter = 0;
    for (; iter < maxIterations_; ++iter) {
        exec.parallelFor(
            "scatter", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                auto degree = graph.degree(v);
                cost.intOps += 2;
                cost.directAccesses += 1;
                if (degree == 0)
                    return;
                double contrib =
                    rank[v] / static_cast<double>(degree);
                cost.fpOps += 1;
                cost.sharedReadBytes += 8;
                cost.localBytes += 8;
                for (VertexId u : graph.neighbors(v)) {
                    // Atomic add into the shared accumulator.
                    accum[u] += contrib;
                    cost.fpOps += 1;
                    cost.directAccesses += 2;
                    cost.sharedWriteBytes += 8;
                    cost.atomics += 1;
                }
            });
        exec.barrier();

        double error = 0.0;
        exec.parallelFor(
            "apply", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                double fresh = base + damping_ * accum[v];
                error += std::fabs(fresh - rank[v]);
                rank[v] = fresh;
                accum[v] = 0.0;
                cost.fpOps += 4;
                cost.directAccesses += 2;
                cost.sharedWriteBytes += 24;
                cost.atomics += 1; // error accumulator
            });
        exec.barrier();
        exec.endIteration();

        if (error < tolerance_)
            break;
    }

    WorkloadOutput out;
    out.vertexValues.assign(rank.begin(), rank.end());
    out.scalar = static_cast<double>(iter + 1);
    return out;
}

} // namespace heteromap
