/**
 * @file
 * Workload registry implementation.
 */

#include "workloads/registry.hh"

#include "util/logging.hh"
#include "workloads/betweenness.hh"
#include "workloads/bfs.hh"
#include "workloads/comm_detect.hh"
#include "workloads/conn_comp.hh"
#include "workloads/dfs.hh"
#include "workloads/pagerank.hh"
#include "workloads/pagerank_dp.hh"
#include "workloads/sssp_bf.hh"
#include "workloads/sssp_delta.hh"
#include "workloads/tri_count.hh"

namespace heteromap {

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "SSSP-BF")
        return std::make_unique<SsspBellmanFord>();
    if (name == "SSSP-Delta")
        return std::make_unique<SsspDelta>();
    if (name == "BFS")
        return std::make_unique<Bfs>();
    if (name == "DFS")
        return std::make_unique<Dfs>();
    if (name == "PR")
        return std::make_unique<PageRank>();
    if (name == "PR-DP")
        return std::make_unique<PageRankDp>();
    if (name == "TRI")
        return std::make_unique<TriangleCount>();
    if (name == "COMM")
        return std::make_unique<CommunityDetection>();
    if (name == "CONN")
        return std::make_unique<ConnectedComponents>();
    if (name == "BC") // extension workload, not in the Fig. 5 list
        return std::make_unique<BetweennessCentrality>();
    HM_FATAL("unknown workload '", name, "'");
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "SSSP-BF", "SSSP-Delta", "BFS",  "DFS",  "PR",
        "PR-DP",   "TRI",        "COMM", "CONN",
    };
    return names;
}

std::vector<std::unique_ptr<Workload>>
allWorkloads()
{
    std::vector<std::unique_ptr<Workload>> out;
    for (const auto &name : workloadNames())
        out.push_back(makeWorkload(name));
    return out;
}

} // namespace heteromap
