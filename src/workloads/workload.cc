/**
 * @file
 * Workload base-class helpers.
 */

#include "workloads/workload.hh"

namespace heteromap {

std::pair<WorkloadOutput, WorkloadProfile>
Workload::runProfiled(const Graph &graph) const
{
    Executor exec;
    WorkloadOutput out = run(graph, exec);
    return {std::move(out), exec.takeProfile()};
}

} // namespace heteromap
