/**
 * @file
 * Connected-components implementation: hook each vertex to its
 * minimum-labeled neighbor's root, then pointer-jump until the parent
 * forest is flat. Converges in O(log V) rounds.
 */

#include "workloads/conn_comp.hh"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
ConnectedComponents::bVariables() const
{
    BVariables b;
    b.b1 = 0.6;  // hook phase is vertex division
    b.b5 = 0.4;  // change-detection reduction
    b.b6 = 0.0;
    b.b7 = 0.4;
    b.b8 = 0.5;  // parent pointer jumping (Fig. 5: B8 set)
    b.b9 = 0.4;
    b.b10 = 0.6; // shared parent array
    b.b11 = 0.1;
    b.b12 = 0.3; // CAS hooks
    b.b13 = 0.2;
    return b;
}

WorkloadOutput
ConnectedComponents::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "connected components requires a non-empty graph");

    std::vector<VertexId> parent(n);
    for (VertexId v = 0; v < n; ++v)
        parent[v] = v;

    bool changed = true;
    while (changed) {
        changed = false;

        exec.parallelFor(
            "hook", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                cost.intOps += 2;
                cost.directAccesses += 1;
                VertexId pv = parent[v];
                cost.indirectAccesses += 1;
                cost.sharedWriteBytes += 4;
                for (VertexId u : graph.neighbors(v)) {
                    VertexId pu = parent[u];
                    cost.intOps += 2;
                    cost.directAccesses += 1;
                    cost.indirectAccesses += 1;
                    cost.sharedReadBytes += 4;
                    cost.sharedWriteBytes += 4;
                    if (pu < pv) {
                        // CAS hook onto the smaller root.
                        parent[pv] = std::min(parent[pv], pu);
                        parent[v] = pu;
                        pv = pu;
                        cost.atomics += 1;
                        cost.sharedWriteBytes += 8;
                        changed = true;
                    }
                }
            });
        exec.barrier();

        exec.parallelFor(
            "compress", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                cost.intOps += 1;
                cost.directAccesses += 1;
                // Pointer jumping: dependent loads until the root.
                while (parent[v] != parent[parent[v]]) {
                    parent[v] = parent[parent[v]];
                    cost.indirectAccesses += 2;
                    cost.sharedWriteBytes += 8;
                    cost.intOps += 1;
                }
                cost.indirectAccesses += 1;
                cost.sharedWriteBytes += 4;
            });
        exec.barrier();
        exec.endIteration();
    }

    WorkloadOutput out;
    out.vertexValues.resize(n);
    std::unordered_set<VertexId> roots;
    for (VertexId v = 0; v < n; ++v) {
        out.vertexValues[v] = static_cast<double>(parent[v]);
        roots.insert(parent[v]);
    }
    out.scalar = static_cast<double>(roots.size());
    return out;
}

} // namespace heteromap
