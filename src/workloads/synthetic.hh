/**
 * @file
 * Synthetic benchmark generator (Sec. V, Fig. 9). A SyntheticWorkload
 * inverts a B-variable vector into a runnable phase mix: B1-B5 choose
 * the outer-loop phase kinds and their code share, B6-B13 choose the
 * per-edge instruction/access mix. Together with the synthetic graph
 * generators (Table III) this produces the offline training corpus.
 */

#ifndef HETEROMAP_WORKLOADS_SYNTHETIC_HH
#define HETEROMAP_WORKLOADS_SYNTHETIC_HH

#include "util/rng.hh"
#include "workloads/workload.hh"

namespace heteromap {

/** A benchmark whose behaviour is dictated by a B vector. */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param b          Target benchmark characteristics. Phase-mix
     *                   values (B1-B5) are renormalized to sum to 1.
     * @param seed       Determinizes the generated access pattern.
     * @param iterations Outer iterations to run (>= 1).
     * @param frontier_rounds Number of narrow invocations the
     *                   frontier-style phase kinds (pareto, dynamic
     *                   pareto, push-pop) are split into per
     *                   iteration — models the dependence-chain
     *                   structure of high-diameter inputs.
     */
    SyntheticWorkload(BVariables b, uint64_t seed,
                      unsigned iterations = 3,
                      unsigned frontier_rounds = 1);

    std::string name() const override;
    BVariables bVariables() const override { return b_; }

    /** vertexValues[v] = final accumulator; scalar = checksum. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    BVariables b_;
    uint64_t seed_;
    unsigned iterations_;
    unsigned frontierRounds_;
};

/**
 * Enumerate a diverse family of synthetic B vectors: phase-mix corner
 * cases and Latin-hypercube-style samples of B6-B13. @p count vectors
 * are produced deterministically from @p seed.
 */
std::vector<BVariables> sampleSyntheticBVectors(std::size_t count,
                                                uint64_t seed);

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_SYNTHETIC_HH
