/**
 * @file
 * Community detection implementation. Deterministic label propagation:
 * ties break toward the smaller label, updates are double-buffered so
 * the result is independent of traversal order.
 */

#include "workloads/comm_detect.hh"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
CommunityDetection::bVariables() const
{
    BVariables b;
    b.b1 = 0.7;  // label scoring is vertex division
    b.b5 = 0.3;  // change-count reduction
    b.b6 = 0.6;  // FP weight accumulation
    b.b7 = 0.5;
    b.b8 = 0.3;  // label histogram is data-dependent addressing
    b.b9 = 0.4;
    b.b10 = 0.6; // shared label array, read and written
    b.b11 = 0.3; // per-thread histogram
    b.b12 = 0.2;
    b.b13 = 0.2;
    return b;
}

WorkloadOutput
CommunityDetection::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "community detection requires a non-empty graph");

    std::vector<VertexId> label(n);
    std::vector<VertexId> next(n);
    for (VertexId v = 0; v < n; ++v)
        label[v] = v;

    for (unsigned round = 0; round < maxRounds_; ++round) {
        uint64_t changes = 0;

        exec.parallelFor(
            "propagate", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                cost.intOps += 2;
                cost.directAccesses += 1;
                auto nbrs = graph.neighbors(v);
                auto wts = graph.edgeWeights(v);
                if (nbrs.empty()) {
                    next[v] = label[v];
                    return;
                }
                // Per-thread weighted histogram over neighbor labels.
                std::unordered_map<VertexId, double> score;
                for (std::size_t e = 0; e < nbrs.size(); ++e) {
                    VertexId lab = label[nbrs[e]];
                    score[lab] +=
                        wts.empty() ? 1.0 : static_cast<double>(wts[e]);
                    cost.fpOps += 1;
                    cost.indirectAccesses += 2; // label chase + bin
                    cost.sharedWriteBytes += 4; // shared label read
                    cost.sharedReadBytes += 8;  // adjacency + weight
                    cost.localBytes += 12;      // histogram entry
                }
                VertexId best = label[v];
                double best_score = -1.0;
                for (const auto &[lab, s] : score) {
                    cost.fpOps += 1;
                    cost.localBytes += 12;
                    if (s > best_score ||
                        (s == best_score && lab < best)) {
                        best = lab;
                        best_score = s;
                    }
                }
                next[v] = best;
                cost.sharedWriteBytes += 4;
            });
        exec.barrier();

        exec.parallelFor(
            "change-reduce", PhaseKind::Reduction, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                cost.intOps += 1;
                cost.directAccesses += 2;
                cost.sharedWriteBytes += 8;
                if (next[v] != label[v]) {
                    label[v] = next[v];
                    ++changes;
                    cost.atomics += 1;
                }
            });
        exec.barrier();
        exec.endIteration();

        if (changes == 0)
            break;
    }

    WorkloadOutput out;
    out.vertexValues.resize(n);
    std::unordered_set<VertexId> distinct;
    for (VertexId v = 0; v < n; ++v) {
        out.vertexValues[v] = static_cast<double>(label[v]);
        distinct.insert(label[v]);
    }
    out.scalar = static_cast<double>(distinct.size());
    return out;
}

} // namespace heteromap
