/**
 * @file
 * Synthetic workload implementation.
 */

#include "workloads/synthetic.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/registry.hh"

namespace heteromap {

SyntheticWorkload::SyntheticWorkload(BVariables b, uint64_t seed,
                                     unsigned iterations,
                                     unsigned frontier_rounds)
    : b_(b), seed_(seed), iterations_(std::max(1u, iterations)),
      frontierRounds_(std::max(1u, frontier_rounds))
{
    // Renormalize the phase mix so B1-B5 form a proper partition.
    double sum = b_.phaseSum();
    if (sum <= 0.0) {
        b_.b1 = 1.0;
    } else {
        b_.b1 /= sum;
        b_.b2 /= sum;
        b_.b3 /= sum;
        b_.b4 /= sum;
        b_.b5 /= sum;
    }
}

std::string
SyntheticWorkload::name() const
{
    std::ostringstream oss;
    oss << "SYN-" << std::hex << (seed_ & 0xffff);
    return oss.str();
}

WorkloadOutput
SyntheticWorkload::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "synthetic workload requires a non-empty graph");

    std::vector<double> acc(n, 1.0);

    struct PhaseSpec {
        const char *name;
        PhaseKind kind;
        double share;
    };
    const PhaseSpec specs[] = {
        {"syn-vertex", PhaseKind::VertexDivision, b_.b1},
        {"syn-pareto", PhaseKind::Pareto, b_.b2},
        {"syn-pareto-dyn", PhaseKind::ParetoDynamic, b_.b3},
        {"syn-push-pop", PhaseKind::PushPop, b_.b4},
        {"syn-reduce", PhaseKind::Reduction, b_.b5},
    };

    const auto extra_barriers =
        static_cast<unsigned>(std::lround(b_.b13 * 10.0));

    double checksum = 0.0;
    for (unsigned iter = 0; iter < iterations_; ++iter) {
        for (const auto &spec : specs) {
            if (spec.share <= 0.0)
                continue;
            // Phase code share scales the work items it covers.
            const auto items = static_cast<uint64_t>(
                std::max(1.0, spec.share * static_cast<double>(n)));
            Rng phase_rng(seed_ ^ (iter * 1315423911ULL) ^
                          reinterpret_cast<uintptr_t>(spec.name));

            // Frontier-style kinds run as a chain of narrow
            // invocations (each a dependence level); data-parallel
            // kinds run full width.
            const bool frontier_kind =
                spec.kind == PhaseKind::Pareto ||
                spec.kind == PhaseKind::ParetoDynamic ||
                spec.kind == PhaseKind::PushPop;
            const uint64_t rounds =
                frontier_kind
                    ? std::min<uint64_t>(frontierRounds_, items)
                    : 1;

            for (uint64_t r = 0; r < rounds; ++r) {
            const uint64_t lo = items * r / rounds;
            const uint64_t hi = items * (r + 1) / rounds;
            exec.parallelFor(
                spec.name, spec.kind, hi - lo,
                [&](uint64_t idx, ItemCost &cost) {
                    idx += lo;
                    auto v = static_cast<VertexId>(idx % n);
                    auto nbrs = graph.neighbors(v);
                    auto wts = graph.edgeWeights(v);
                    cost.intOps += 2;
                    cost.directAccesses += 1;

                    double local = acc[v];
                    cost.localBytes += 8.0 * b_.b11;
                    for (std::size_t e = 0; e < nbrs.size(); ++e) {
                        VertexId u = nbrs[e];
                        // Indirect share: chase through the
                        // accumulator to a data-dependent slot.
                        VertexId slot = u;
                        if (phase_rng.nextBool(b_.b8)) {
                            slot = static_cast<VertexId>(
                                static_cast<uint64_t>(
                                    std::fabs(acc[u]) * 2654435761.0) %
                                n);
                            cost.indirectAccesses += 2;
                        } else {
                            cost.directAccesses += 2;
                        }
                        double w = wts.empty()
                                       ? 1.0
                                       : static_cast<double>(wts[e]);
                        // FP vs integer work mix.
                        if (phase_rng.nextBool(b_.b6)) {
                            local += w * 1.0000001;
                            cost.fpOps += 2;
                        } else {
                            local += static_cast<int64_t>(w);
                            cost.intOps += 2;
                        }
                        cost.sharedReadBytes += 8.0 * b_.b9;
                        cost.sharedWriteBytes += 8.0 * b_.b10;
                        cost.localBytes += 8.0 * b_.b11;
                        // Contended atomic update share.
                        if (phase_rng.nextBool(b_.b12)) {
                            acc[slot] += 1e-9;
                            cost.atomics += 1;
                            cost.sharedWriteBytes += 8;
                        }
                    }
                    if (spec.kind == PhaseKind::Reduction) {
                        checksum += local;
                        cost.atomics += 1;
                    } else {
                        acc[v] = local;
                    }
                    cost.sharedWriteBytes += 8;
                });
            exec.barrier();
            }
        }
        for (unsigned bars = 0; bars < extra_barriers; ++bars)
            exec.barrier();
        exec.endIteration();
    }

    WorkloadOutput out;
    out.vertexValues = std::move(acc);
    for (double x : out.vertexValues)
        checksum += x;
    out.scalar = checksum;
    return out;
}

std::vector<BVariables>
sampleSyntheticBVectors(std::size_t count, uint64_t seed)
{
    std::vector<BVariables> out;
    out.reserve(count);
    Rng rng(seed);

    // Corner cases first: each pure phase kind.
    for (int corner = 0; corner < 5 && out.size() < count; ++corner) {
        BVariables b;
        double *phase[] = {&b.b1, &b.b2, &b.b3, &b.b4, &b.b5};
        *phase[corner] = 1.0;
        b.b7 = 0.8;
        b.b9 = 0.5;
        b.b10 = 0.5;
        out.push_back(b);
    }

    // Representative production mixes: the Fig. 5 benchmark
    // discretizations are themselves points of the synthetic space,
    // and covering them anchors the learners where real workloads
    // live (the corpus is still entirely synthetic kernels).
    for (const auto &workload : allWorkloads()) {
        if (out.size() >= count)
            break;
        out.push_back(workload->bVariables());
    }

    while (out.size() < count) {
        BVariables b;
        // Random two-phase mix on the 0.1 grid.
        double *phase[] = {&b.b1, &b.b2, &b.b3, &b.b4, &b.b5};
        std::size_t first = rng.nextBounded(5);
        std::size_t second = rng.nextBounded(5);
        double split = discretize01(rng.nextDouble(0.1, 0.9));
        *phase[first] += split;
        *phase[second] += 1.0 - split;

        b.b6 = discretize01(rng.nextDouble());
        b.b7 = discretize01(rng.nextDouble());
        b.b8 = discretize01(std::max(0.0, 1.0 - b.b7 -
                                               rng.nextDouble(0.0, 0.5)));
        b.b9 = discretize01(rng.nextDouble());
        b.b10 = discretize01(rng.nextDouble());
        b.b11 = discretize01(rng.nextDouble(0.0, 0.6));
        b.b12 = discretize01(rng.nextDouble(0.0, 0.7));
        b.b13 = discretize01(rng.nextDouble(0.0, 0.5));
        out.push_back(b);
    }
    return out;
}

} // namespace heteromap
