/**
 * @file
 * SSSP Delta-stepping (SSSP-Delta), after the GAP benchmark suite:
 * bucketed shortest paths with push-pop bucket processing and a
 * reduction to select the next bucket — the paper's canonical
 * multicore-friendly SSSP variant (Fig. 5: B1, B4, B5 set).
 */

#ifndef HETEROMAP_WORKLOADS_SSSP_DELTA_HH
#define HETEROMAP_WORKLOADS_SSSP_DELTA_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Delta-stepping single-source shortest paths. */
class SsspDelta : public Workload
{
  public:
    /**
     * @param source Source vertex (clamped to the graph).
     * @param delta  Bucket width; 0 picks ~the average edge weight.
     */
    explicit SsspDelta(VertexId source = kDefaultSource,
                       int64_t delta = 0)
        : source_(source), delta_(delta)
    {
    }

    std::string name() const override { return "SSSP-Delta"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = integral shortest distance (kUnreachable if
     *  disconnected); scalar = number of reachable vertices. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    VertexId source_;
    int64_t delta_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_SSSP_DELTA_HH
