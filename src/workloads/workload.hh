/**
 * @file
 * Workload interface. A workload is one of the paper's graph
 * benchmarks (Sec. VI-B): it carries a static B-variable descriptor
 * (Fig. 5/6, "set by the programmer") and an instrumented
 * implementation that executes for real under an Executor, producing
 * both a verifiable output and a WorkloadProfile for the performance
 * models.
 */

#ifndef HETEROMAP_WORKLOADS_WORKLOAD_HH
#define HETEROMAP_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.hh"
#include "features/bvars.hh"
#include "graph/graph.hh"

namespace heteromap {

/**
 * Result of a workload execution. vertexValues holds the per-vertex
 * output (distances, ranks, labels, ...; meaning documented per
 * workload); scalar holds aggregate outputs (e.g. triangle count).
 */
struct WorkloadOutput {
    std::vector<double> vertexValues;
    double scalar = 0.0;
};

/** Abstract graph benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Paper benchmark name, e.g. "SSSP-BF". */
    virtual std::string name() const = 0;

    /** Static Fig. 5/6 benchmark descriptor. */
    virtual BVariables bVariables() const = 0;

    /**
     * Execute on @p graph under @p exec, recording phase profiles.
     * @return the algorithm's output for correctness validation.
     */
    virtual WorkloadOutput run(const Graph &graph,
                               Executor &exec) const = 0;

    /**
     * Convenience: run with a fresh executor and return both the
     * output and the profile.
     */
    std::pair<WorkloadOutput, WorkloadProfile>
    runProfiled(const Graph &graph) const;
};

/** Source vertex convention shared by the traversal workloads. */
inline constexpr VertexId kDefaultSource = 0;

/** Infinite-distance marker in WorkloadOutput::vertexValues. */
inline constexpr double kUnreachable = 1e30;

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_WORKLOAD_HH
