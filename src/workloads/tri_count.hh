/**
 * @file
 * Triangle counting: per-vertex sorted-adjacency intersections with a
 * global reduction. The paper's example of a poorly parallel workload
 * with complex access patterns that multicore caches handle best.
 */

#ifndef HETEROMAP_WORKLOADS_TRI_COUNT_HH
#define HETEROMAP_WORKLOADS_TRI_COUNT_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Exact triangle counting over the undirected graph. */
class TriangleCount : public Workload
{
  public:
    TriangleCount() = default;

    std::string name() const override { return "TRI"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = triangles incident to v; scalar = total
     *  triangle count (each triangle counted once). */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_TRI_COUNT_HH
