/**
 * @file
 * Breadth-first search: frontier-based level traversal. Fig. 5
 * classifies BFS as pure pareto-division (B3) — the frontier chunks
 * mapped to threads grow and shrink dynamically with the wavefront.
 */

#ifndef HETEROMAP_WORKLOADS_BFS_HH
#define HETEROMAP_WORKLOADS_BFS_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Frontier BFS from a single source. */
class Bfs : public Workload
{
  public:
    explicit Bfs(VertexId source = kDefaultSource) : source_(source) {}

    std::string name() const override { return "BFS"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = hop distance (kUnreachable if disconnected);
     *  scalar = number of reachable vertices. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    VertexId source_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_BFS_HH
