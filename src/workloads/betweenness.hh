/**
 * @file
 * Betweenness centrality (Brandes' algorithm) — an extension workload
 * beyond the paper's nine benchmarks. Exercises a pattern mix the
 * paper's set lacks: alternating forward BFS waves and backward
 * dependency-accumulation waves with FP accumulators, per sampled
 * source. Available through makeWorkload("BC").
 */

#ifndef HETEROMAP_WORKLOADS_BETWEENNESS_HH
#define HETEROMAP_WORKLOADS_BETWEENNESS_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Brandes betweenness centrality (unweighted). */
class BetweennessCentrality : public Workload
{
  public:
    /**
     * @param samples Source vertices to run from; 0 = every vertex
     *                (exact centrality, small graphs only).
     */
    explicit BetweennessCentrality(unsigned samples = 16)
        : samples_(samples)
    {
    }

    std::string name() const override { return "BC"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = (sampled) betweenness score;
     *  scalar = sum of all scores. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    unsigned samples_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_BETWEENNESS_HH
