/**
 * @file
 * SSSP-Delta implementation. Buckets hold tentative vertices by
 * distance range; the current bucket is drained with push-pop
 * processing (re-inserting light-edge improvements), then a reduction
 * scans for the next non-empty bucket. High-diameter graphs produce
 * many bucket iterations — the behaviour Fig. 1 builds on.
 */

#include "workloads/sssp_delta.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

namespace {

constexpr int64_t kInfDist = std::numeric_limits<int64_t>::max() / 4;

int64_t
intWeight(float w)
{
    return std::max<int64_t>(1, static_cast<int64_t>(w));
}

} // namespace

BVariables
SsspDelta::bVariables() const
{
    BVariables b;
    b.b1 = 0.4;  // light-edge relaxations are vertex-divided
    b.b4 = 0.4;  // bucket push-pop processing
    b.b5 = 0.2;  // next-bucket selection reduction
    b.b6 = 0.0;
    b.b7 = 0.6;  // distance arrays via loop indexes
    b.b8 = 0.2;  // bucket queues are data-manipulated addressing
    b.b9 = 0.4;  // read-only graph
    b.b10 = 0.6; // distances + shared buckets
    b.b11 = 0.2;
    b.b12 = 0.4; // contended bucket inserts and distance updates
    b.b13 = 0.3; // three barriers per bucket iteration
    return b;
}

WorkloadOutput
SsspDelta::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "SSSP-Delta requires a non-empty graph");
    const VertexId src = std::min<VertexId>(source_, n - 1);

    // Pick delta ~ average edge weight when unspecified.
    int64_t delta = delta_;
    if (delta <= 0) {
        double sum = 0.0;
        EdgeId count = std::min<EdgeId>(graph.numEdges(), 4096);
        for (EdgeId e = 0; e < count; ++e)
            sum += intWeight(graph.edgeWeight(e));
        delta = std::max<int64_t>(
            1, static_cast<int64_t>(sum / std::max<EdgeId>(1, count)));
    }

    std::vector<int64_t> dist(n, kInfDist);
    dist[src] = 0;

    std::vector<std::vector<VertexId>> buckets(1);
    buckets[0].push_back(src);
    auto bucket_of = [&](int64_t d) {
        return static_cast<std::size_t>(d / delta);
    };
    auto push_bucket = [&](VertexId v, int64_t d) {
        std::size_t b = bucket_of(d);
        if (b >= buckets.size())
            buckets.resize(b + 1);
        buckets[b].push_back(v);
    };

    std::size_t current = 0;
    while (current < buckets.size()) {
        if (buckets[current].empty()) {
            ++current;
            continue;
        }

        // Drain the current bucket; light-edge improvements may
        // reinsert vertices into it (the inner push-pop loop).
        while (!buckets[current].empty()) {
            std::vector<VertexId> batch;
            batch.swap(buckets[current]);

            exec.parallelFor(
                "bucket-pop", PhaseKind::PushPop, batch.size(),
                [&](uint64_t idx, ItemCost &cost) {
                    VertexId v = batch[idx];
                    cost.intOps += 3;
                    cost.indirectAccesses += 2; // queue + dist chase
                    cost.sharedWriteBytes += 12;
                    int64_t dv = dist[v];
                    if (dv >= kInfDist ||
                        bucket_of(dv) != current) {
                        return; // stale entry
                    }
                    auto nbrs = graph.neighbors(v);
                    auto wts = graph.edgeWeights(v);
                    for (std::size_t e = 0; e < nbrs.size(); ++e) {
                        int64_t w = intWeight(
                            wts.empty() ? 1.0f : wts[e]);
                        int64_t alt = dv + w;
                        cost.intOps += 3;
                        cost.directAccesses += 2;
                        cost.sharedReadBytes += 8;
                        cost.localBytes += 8;
                        if (alt < dist[nbrs[e]]) {
                            // Atomic distance update + bucket insert.
                            dist[nbrs[e]] = alt;
                            push_bucket(nbrs[e], alt);
                            cost.atomics += 2;
                            cost.sharedWriteBytes += 16;
                            cost.indirectAccesses += 1;
                        }
                    }
                });
            exec.barrier();
        }

        // Reduction: find the next non-empty bucket.
        const uint64_t scan = buckets.size() - current;
        std::size_t next = buckets.size();
        exec.parallelFor(
            "bucket-select", PhaseKind::Reduction, scan,
            [&](uint64_t idx, ItemCost &cost) {
                std::size_t b = current + idx;
                cost.intOps += 1;
                cost.directAccesses += 1;
                cost.sharedReadBytes += 8;
                cost.atomics += 1; // min-reduction on the index
                if (!buckets[b].empty())
                    next = std::min(next, b);
            });
        exec.barrier();
        exec.endIteration();
        current = next == buckets.size() ? buckets.size()
                                         : next;
    }

    WorkloadOutput out;
    out.vertexValues.resize(n);
    uint64_t reachable = 0;
    for (VertexId v = 0; v < n; ++v) {
        if (dist[v] >= kInfDist) {
            out.vertexValues[v] = kUnreachable;
        } else {
            out.vertexValues[v] = static_cast<double>(dist[v]);
            ++reachable;
        }
    }
    out.scalar = static_cast<double>(reachable);
    return out;
}

} // namespace heteromap
