/**
 * @file
 * DFS implementation. The stack's top segment is popped as a batch
 * each round (deepest vertices first), neighbors are pushed back in
 * reverse order — a parallelizable traversal that preserves the LIFO
 * ordering pressure and the indirect queue addressing the paper's B
 * discretization highlights.
 */

#include "workloads/dfs.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
Dfs::bVariables() const
{
    BVariables b;
    b.b4 = 1.0;  // single push-pop phase
    b.b6 = 0.0;
    b.b7 = 0.5;
    b.b8 = 0.4;  // stack/queue data-manipulated addressing
    b.b9 = 0.4;
    b.b10 = 0.5; // shared stack + visited marks
    b.b11 = 0.1;
    b.b12 = 0.3; // contended stack pushes
    b.b13 = 0.1;
    return b;
}

WorkloadOutput
Dfs::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "DFS requires a non-empty graph");
    const VertexId src = std::min<VertexId>(source_, n - 1);

    std::vector<bool> visited(n, false);
    std::vector<double> round_of(n, kUnreachable);
    std::vector<VertexId> stack{src};
    visited[src] = true;
    uint64_t round = 0;
    round_of[src] = 0.0;

    // Each round drains the whole stack (deepest first) and the pops
    // push the next depth tier — the "parallel branches explored
    // concurrently" DFS formulation the paper's suites use.
    while (!stack.empty()) {
        ++round;
        std::vector<VertexId> batch;
        batch.swap(stack);
        std::reverse(batch.begin(), batch.end()); // deepest first

        exec.parallelFor(
            "stack-pop", PhaseKind::PushPop, batch.size(),
            [&](uint64_t idx, ItemCost &cost) {
                VertexId v = batch[idx];
                cost.intOps += 2;
                cost.indirectAccesses += 2; // stack slot + marks
                cost.sharedWriteBytes += 8;
                auto nbrs = graph.neighbors(v);
                for (std::size_t e = nbrs.size(); e > 0; --e) {
                    VertexId u = nbrs[e - 1];
                    cost.intOps += 1;
                    cost.directAccesses += 1;
                    cost.sharedReadBytes += 4;
                    cost.sharedWriteBytes += 1; // visited probe
                    if (!visited[u]) {
                        visited[u] = true;
                        round_of[u] = static_cast<double>(round);
                        stack.push_back(u);
                        cost.atomics += 1; // claimed via CAS
                        cost.indirectAccesses += 1;
                        cost.sharedWriteBytes += 8;
                    }
                }
            });
        exec.barrier();
        exec.endIteration();
    }

    WorkloadOutput out;
    out.vertexValues = std::move(round_of);
    uint64_t reachable = 0;
    for (VertexId v = 0; v < n; ++v)
        if (visited[v])
            ++reachable;
    out.scalar = static_cast<double>(reachable);
    return out;
}

} // namespace heteromap
