/**
 * @file
 * Reference implementations.
 */

#include "workloads/reference.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.hh"

namespace heteromap {

std::vector<int64_t>
referenceDijkstra(const Graph &graph, VertexId source)
{
    constexpr int64_t inf = std::numeric_limits<int64_t>::max() / 4;
    const VertexId n = graph.numVertices();
    HM_ASSERT(source < n, "Dijkstra source out of range");

    std::vector<int64_t> dist(n, inf);
    dist[source] = 0;
    using Entry = std::pair<int64_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.push({0, source});

    while (!heap.empty()) {
        auto [d, v] = heap.top();
        heap.pop();
        if (d > dist[v])
            continue;
        auto nbrs = graph.neighbors(v);
        auto wts = graph.edgeWeights(v);
        for (std::size_t e = 0; e < nbrs.size(); ++e) {
            int64_t w = std::max<int64_t>(
                1, static_cast<int64_t>(wts.empty() ? 1.0f : wts[e]));
            int64_t alt = d + w;
            if (alt < dist[nbrs[e]]) {
                dist[nbrs[e]] = alt;
                heap.push({alt, nbrs[e]});
            }
        }
    }
    return dist;
}

std::vector<double>
referencePageRank(const Graph &graph, double damping, unsigned iterations,
                  double tolerance)
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "PageRank reference requires a non-empty graph");
    const double base = (1.0 - damping) / static_cast<double>(n);
    std::vector<double> rank(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n);

    for (unsigned iter = 0; iter < iterations; ++iter) {
        double error = 0.0;
        for (VertexId v = 0; v < n; ++v) {
            double sum = 0.0;
            for (VertexId u : graph.neighbors(v))
                sum += rank[u] / static_cast<double>(graph.degree(u));
            next[v] = base + damping * sum;
        }
        for (VertexId v = 0; v < n; ++v) {
            error += std::abs(next[v] - rank[v]);
            rank[v] = next[v];
        }
        if (error < tolerance)
            break;
    }
    return rank;
}

uint64_t
referenceTriangles(const Graph &graph)
{
    const VertexId n = graph.numVertices();
    auto connected = [&](VertexId a, VertexId b) {
        auto nbrs = graph.neighbors(a);
        return std::binary_search(nbrs.begin(), nbrs.end(), b);
    };
    uint64_t count = 0;
    for (VertexId v = 0; v < n; ++v)
        for (VertexId u = v + 1; u < n; ++u)
            if (connected(v, u))
                for (VertexId w = u + 1; w < n; ++w)
                    if (connected(v, w) && connected(u, w))
                        ++count;
    return count;
}

std::vector<VertexId>
referenceComponents(const Graph &graph)
{
    const VertexId n = graph.numVertices();
    std::vector<VertexId> label(n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
        if (label[v] != kInvalidVertex)
            continue;
        // v is the smallest unvisited id in its component.
        std::queue<VertexId> frontier;
        frontier.push(v);
        label[v] = v;
        while (!frontier.empty()) {
            VertexId w = frontier.front();
            frontier.pop();
            for (VertexId u : graph.neighbors(w)) {
                if (label[u] == kInvalidVertex) {
                    label[u] = v;
                    frontier.push(u);
                }
            }
        }
    }
    return label;
}

} // namespace heteromap
