/**
 * @file
 * PageRank (pull variant): per-vertex rank gathering with a
 * convergence reduction. FP-heavy (B6), the paper's canonical
 * multicore-biased benchmark.
 */

#ifndef HETEROMAP_WORKLOADS_PAGERANK_HH
#define HETEROMAP_WORKLOADS_PAGERANK_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Pull-based PageRank. */
class PageRank : public Workload
{
  public:
    /**
     * @param damping    Damping factor (0.85 default).
     * @param iterations Maximum iterations.
     * @param tolerance  L1 convergence threshold.
     */
    explicit PageRank(double damping = 0.85, unsigned iterations = 20,
                      double tolerance = 1e-7)
        : damping_(damping), maxIterations_(iterations),
          tolerance_(tolerance)
    {
    }

    std::string name() const override { return "PR"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = final rank; scalar = iterations executed. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    double damping_;
    unsigned maxIterations_;
    double tolerance_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_PAGERANK_HH
