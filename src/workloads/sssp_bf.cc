/**
 * @file
 * SSSP-BF implementation. Push-style relaxation: every vertex with an
 * improved distance relaxes its out-edges with atomic-min updates into
 * a double-buffered distance array; two barriers separate the relax
 * and commit phases of each iteration, as in the paper's pseudocode.
 */

#include "workloads/sssp_bf.hh"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

namespace {

constexpr int64_t kInfDist = std::numeric_limits<int64_t>::max() / 4;

/** Integral edge weight, matching the no-FP Fig. 6 discretization. */
int64_t
intWeight(float w)
{
    return std::max<int64_t>(1, static_cast<int64_t>(w));
}

} // namespace

BVariables
SsspBellmanFord::bVariables() const
{
    BVariables b;
    b.b1 = 1.0;  // all parallel work is vertex division
    b.b6 = 0.0;  // integral distances, no FP
    b.b7 = 0.8;  // D/Dtmp/W accessed via loop indexes
    b.b8 = 0.0;
    b.b9 = 0.5;  // the read-only input graph W[]
    b.b10 = 0.5; // the two distance arrays
    b.b11 = 0.2; // local alternative-distance temporaries
    b.b12 = 0.2; // locks on D[] only
    b.b13 = 0.2; // two barrier calls per iteration
    return b;
}

WorkloadOutput
SsspBellmanFord::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "SSSP-BF requires a non-empty graph");
    const VertexId src = std::min<VertexId>(source_, n - 1);

    std::vector<int64_t> dist(n, kInfDist);
    std::vector<int64_t> dist_next(n, kInfDist);
    dist[src] = 0;
    dist_next[src] = 0;

    bool changed = true;
    for (uint64_t round = 0; changed && round < n; ++round) {
        changed = false;

        exec.parallelFor(
            "relax", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                cost.intOps += 2;
                cost.sharedWriteBytes += 8; // read D[v] (RW array)
                cost.directAccesses += 1;
                if (dist[v] >= kInfDist)
                    return;
                auto nbrs = graph.neighbors(v);
                auto wts = graph.edgeWeights(v);
                for (std::size_t e = 0; e < nbrs.size(); ++e) {
                    int64_t alt =
                        dist[v] +
                        intWeight(wts.empty() ? 1.0f : wts[e]);
                    cost.intOps += 2;
                    cost.directAccesses += 2;  // neighbor + weight
                    cost.sharedReadBytes += 8; // W[] is read-only
                    cost.localBytes += 8;      // alt temporary
                    if (alt < dist_next[nbrs[e]]) {
                        // Atomic-min on the shared Dtmp array.
                        dist_next[nbrs[e]] = alt;
                        cost.atomics += 1;
                        cost.sharedWriteBytes += 8;
                    }
                }
            });
        exec.barrier();

        exec.parallelFor(
            "commit", PhaseKind::VertexDivision, n,
            [&](uint64_t idx, ItemCost &cost) {
                auto v = static_cast<VertexId>(idx);
                cost.intOps += 1;
                cost.directAccesses += 2;
                cost.sharedWriteBytes += 16; // D[] and Dtmp[]
                if (dist_next[v] < dist[v]) {
                    dist[v] = dist_next[v];
                    changed = true;
                }
            });
        exec.barrier();
        exec.endIteration();
    }

    WorkloadOutput out;
    out.vertexValues.resize(n);
    uint64_t reachable = 0;
    for (VertexId v = 0; v < n; ++v) {
        if (dist[v] >= kInfDist) {
            out.vertexValues[v] = kUnreachable;
        } else {
            out.vertexValues[v] = static_cast<double>(dist[v]);
            ++reachable;
        }
    }
    out.scalar = static_cast<double>(reachable);
    return out;
}

} // namespace heteromap
