/**
 * @file
 * Community detection via weighted label propagation: each vertex
 * adopts the label with the greatest incident edge weight until labels
 * stabilize. FP scoring plus read-write shared label data make this a
 * multicore-biased benchmark in the paper's classification.
 */

#ifndef HETEROMAP_WORKLOADS_COMM_DETECT_HH
#define HETEROMAP_WORKLOADS_COMM_DETECT_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Weighted label-propagation community detection. */
class CommunityDetection : public Workload
{
  public:
    /** @param max_rounds Propagation rounds before cutoff. */
    explicit CommunityDetection(unsigned max_rounds = 10)
        : maxRounds_(max_rounds)
    {
    }

    std::string name() const override { return "COMM"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = community label; scalar = distinct labels. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    unsigned maxRounds_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_COMM_DETECT_HH
