/**
 * @file
 * SSSP-Bellman-Ford (SSSP-BF): iterative all-vertex edge relaxation,
 * the paper's canonical data-parallel, GPU-friendly benchmark. The B
 * descriptor follows Fig. 6 exactly (B1 = 1, B7 = 0.8, B9 = B10 = 0.5,
 * B11 = 0.2, B12 = B13 = 0.2). Distances are integral (no FP, B6 = 0).
 */

#ifndef HETEROMAP_WORKLOADS_SSSP_BF_HH
#define HETEROMAP_WORKLOADS_SSSP_BF_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Bellman-Ford single-source shortest paths. */
class SsspBellmanFord : public Workload
{
  public:
    /** @param source Source vertex (clamped to the graph). */
    explicit SsspBellmanFord(VertexId source = kDefaultSource)
        : source_(source)
    {
    }

    std::string name() const override { return "SSSP-BF"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = integral shortest distance (kUnreachable if
     *  disconnected); scalar = number of reachable vertices. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    VertexId source_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_SSSP_BF_HH
