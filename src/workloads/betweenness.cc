/**
 * @file
 * Brandes betweenness centrality. Per source: a level-synchronous
 * forward BFS records shortest-path counts and level structure; the
 * levels are then replayed backward, accumulating dependencies. Both
 * directions run as instrumented frontier phases.
 */

#include "workloads/betweenness.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"

namespace heteromap {

BVariables
BetweennessCentrality::bVariables() const
{
    BVariables b;
    b.b3 = 0.6;  // forward BFS waves (dynamic pareto)
    b.b2 = 0.4;  // backward accumulation waves (static fronts)
    b.b6 = 0.5;  // FP dependency accumulation
    b.b7 = 0.6;
    b.b8 = 0.1;
    b.b9 = 0.4;
    b.b10 = 0.6; // sigma/delta arrays, read and written
    b.b11 = 0.2;
    b.b12 = 0.3; // atomic sigma/delta updates
    b.b13 = 0.2;
    return b;
}

WorkloadOutput
BetweennessCentrality::run(const Graph &graph, Executor &exec) const
{
    const VertexId n = graph.numVertices();
    HM_ASSERT(n > 0, "betweenness requires a non-empty graph");

    std::vector<double> centrality(n, 0.0);
    const VertexId sources =
        samples_ == 0 ? n : std::min<VertexId>(samples_, n);

    std::vector<uint32_t> level(n);
    std::vector<double> sigma(n);
    std::vector<double> delta(n);

    for (VertexId src = 0; src < sources; ++src) {
        std::fill(level.begin(), level.end(), UINT32_MAX);
        std::fill(sigma.begin(), sigma.end(), 0.0);
        std::fill(delta.begin(), delta.end(), 0.0);
        level[src] = 0;
        sigma[src] = 1.0;

        // Forward BFS, retaining each level's frontier.
        std::vector<std::vector<VertexId>> levels{{src}};
        while (!levels.back().empty()) {
            const auto &frontier = levels.back();
            std::vector<VertexId> next;
            uint32_t depth =
                static_cast<uint32_t>(levels.size());
            exec.parallelFor(
                "bc-forward", PhaseKind::ParetoDynamic,
                frontier.size(), [&](uint64_t idx, ItemCost &cost) {
                    VertexId v = frontier[idx];
                    cost.intOps += 2;
                    cost.directAccesses += 1;
                    cost.sharedReadBytes += 4;
                    for (VertexId u : graph.neighbors(v)) {
                        cost.intOps += 1;
                        cost.directAccesses += 2;
                        cost.sharedReadBytes += 4;
                        cost.sharedWriteBytes += 12;
                        if (level[u] == UINT32_MAX) {
                            level[u] = depth;
                            next.push_back(u);
                            cost.atomics += 1;
                        }
                        if (level[u] == depth) {
                            // Atomic FP add on sigma.
                            sigma[u] += sigma[v];
                            cost.fpOps += 1;
                            cost.atomics += 1;
                        }
                    }
                });
            exec.barrier();
            levels.push_back(std::move(next));
        }
        levels.pop_back(); // trailing empty frontier

        // Backward dependency accumulation, deepest level first.
        for (std::size_t d = levels.size(); d-- > 1;) {
            const auto &wave = levels[d];
            exec.parallelFor(
                "bc-backward", PhaseKind::Pareto, wave.size(),
                [&](uint64_t idx, ItemCost &cost) {
                    VertexId w = wave[idx];
                    cost.intOps += 2;
                    cost.directAccesses += 1;
                    double coeff =
                        (1.0 + delta[w]) / std::max(1.0, sigma[w]);
                    cost.fpOps += 2;
                    cost.localBytes += 16;
                    for (VertexId v : graph.neighbors(w)) {
                        cost.intOps += 1;
                        cost.directAccesses += 2;
                        cost.sharedReadBytes += 8;
                        if (level[v] + 1 == level[w]) {
                            // Atomic FP add on delta.
                            delta[v] += sigma[v] * coeff;
                            cost.fpOps += 2;
                            cost.atomics += 1;
                            cost.sharedWriteBytes += 8;
                        }
                    }
                    if (w != src)
                        centrality[w] += delta[w];
                    cost.sharedWriteBytes += 8;
                });
            exec.barrier();
        }
        exec.endIteration();
    }

    WorkloadOutput out;
    out.vertexValues = std::move(centrality);
    for (double c : out.vertexValues)
        out.scalar += c;
    return out;
}

} // namespace heteromap
