/**
 * @file
 * Independent sequential reference implementations used by the test
 * suite to validate the instrumented workloads' outputs. These are
 * deliberately written with different algorithms/data structures than
 * the workloads they check.
 */

#ifndef HETEROMAP_WORKLOADS_REFERENCE_HH
#define HETEROMAP_WORKLOADS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace heteromap {

/**
 * Dijkstra shortest paths with the same integral weight convention as
 * the SSSP workloads (weights truncated to >= 1). Unreachable
 * vertices get INT64_MAX/4.
 */
std::vector<int64_t> referenceDijkstra(const Graph &graph,
                                       VertexId source);

/** Power-iteration PageRank matching the workloads' parameters. */
std::vector<double> referencePageRank(const Graph &graph,
                                      double damping = 0.85,
                                      unsigned iterations = 20,
                                      double tolerance = 1e-7);

/** Brute-force triangle count (O(V^3) — tiny graphs only). */
uint64_t referenceTriangles(const Graph &graph);

/** Component label per vertex: the minimum vertex id it can reach. */
std::vector<VertexId> referenceComponents(const Graph &graph);

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_REFERENCE_HH
