/**
 * @file
 * Depth-first search: stack-ordered traversal processed in push-pop
 * batches. Fig. 5 classifies DFS as pure push-pop (B4) with complex
 * indirect accesses (B8) from the queueing structures.
 */

#ifndef HETEROMAP_WORKLOADS_DFS_HH
#define HETEROMAP_WORKLOADS_DFS_HH

#include "workloads/workload.hh"

namespace heteromap {

/** Parallel pseudo-DFS: LIFO batches explored breadth-parallel. */
class Dfs : public Workload
{
  public:
    explicit Dfs(VertexId source = kDefaultSource) : source_(source) {}

    std::string name() const override { return "DFS"; }
    BVariables bVariables() const override;

    /** vertexValues[v] = discovery round (kUnreachable if not
     *  reached); scalar = number of reachable vertices. */
    WorkloadOutput run(const Graph &graph, Executor &exec) const override;

  private:
    VertexId source_;
};

} // namespace heteromap

#endif // HETEROMAP_WORKLOADS_DFS_HH
