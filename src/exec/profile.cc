/**
 * @file
 * Profile counter implementation.
 */

#include "exec/profile.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace heteromap {

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::VertexDivision: return "vertex-division";
      case PhaseKind::Pareto:         return "pareto";
      case PhaseKind::ParetoDynamic:  return "pareto-dynamic";
      case PhaseKind::PushPop:        return "push-pop";
      case PhaseKind::Reduction:      return "reduction";
    }
    return "?";
}

double
ItemCost::workUnits() const
{
    // Memory accesses dominate graph-analytic cost; indirect accesses
    // weigh double because they serialize on the memory system.
    return intOps + fpOps + directAccesses + 2.0 * indirectAccesses +
           4.0 * atomics;
}

double
PhaseProfile::totalAccesses() const
{
    return directAccesses + indirectAccesses;
}

double
PhaseProfile::totalBytes() const
{
    return sharedReadBytes + sharedWriteBytes + localBytes;
}

double
PhaseProfile::totalWorkUnits() const
{
    double total = 0.0;
    for (double c : bucketCost)
        total += c;
    return total;
}

void
PhaseProfile::merge(const PhaseProfile &other)
{
    HM_ASSERT(name == other.name, "merging mismatched phases: ", name,
              " vs ", other.name);
    HM_ASSERT(kind == other.kind, "merging mismatched phase kinds");
    invocations += other.invocations;
    workItems += other.workItems;
    intOps += other.intOps;
    fpOps += other.fpOps;
    directAccesses += other.directAccesses;
    indirectAccesses += other.indirectAccesses;
    sharedReadBytes += other.sharedReadBytes;
    sharedWriteBytes += other.sharedWriteBytes;
    localBytes += other.localBytes;
    atomics += other.atomics;
    maxItemCost = std::max(maxItemCost, other.maxItemCost);
    if (bucketCost.size() < other.bucketCost.size())
        bucketCost.resize(other.bucketCost.size(), 0.0);
    for (std::size_t i = 0; i < other.bucketCost.size(); ++i)
        bucketCost[i] += other.bucketCost[i];
}

const PhaseProfile *
WorkloadProfile::findPhase(const std::string &name) const
{
    for (const auto &phase : phases)
        if (phase.name == name)
            return &phase;
    return nullptr;
}

double
WorkloadProfile::totalWorkUnits() const
{
    double total = 0.0;
    for (const auto &phase : phases)
        total += phase.totalWorkUnits();
    return total;
}

double
WorkloadProfile::totalOps() const
{
    double total = 0.0;
    for (const auto &phase : phases)
        total += phase.totalOps();
    return total;
}

double
WorkloadProfile::totalBytes() const
{
    double total = 0.0;
    for (const auto &phase : phases)
        total += phase.totalBytes();
    return total;
}

double
WorkloadProfile::totalAtomics() const
{
    double total = 0.0;
    for (const auto &phase : phases)
        total += phase.atomics;
    return total;
}

std::string
WorkloadProfile::toString() const
{
    std::ostringstream oss;
    oss << "iterations=" << iterations << " barriers=" << barriers << "\n";
    for (const auto &phase : phases) {
        oss << "  " << phase.name << " (" << phaseKindName(phase.kind)
            << "): items=" << phase.workItems
            << " ops=" << phase.totalOps()
            << " bytes=" << phase.totalBytes()
            << " atomics=" << phase.atomics << "\n";
    }
    return oss.str();
}

} // namespace heteromap
