/**
 * @file
 * Instrumented executor. Workloads express their outer loops through
 * parallelFor()/barrier(); the executor runs the kernels *serially and
 * deterministically* while recording per-phase counters and the work
 * distribution over the item index space. Parallel behaviour (span,
 * imbalance, schedule policy) is reconstructed afterwards by the
 * ScheduleModel from the recorded bucket histogram, so one execution
 * serves every accelerator / thread-count / schedule combination.
 */

#ifndef HETEROMAP_EXEC_EXECUTOR_HH
#define HETEROMAP_EXEC_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/profile.hh"

namespace heteromap {

/** OpenMP-style scheduling policies (machine choice M9). */
enum class SchedulePolicy {
    Static,
    StaticChunked,
    Guided,
    Dynamic,
    Auto,
};

/** @return a short name, e.g. "dynamic". */
const char *schedulePolicyName(SchedulePolicy policy);

/**
 * Collects a WorkloadProfile while a workload executes. One Executor
 * instance per (workload, input) run.
 */
class Executor
{
  public:
    /** Kernel signature: item index plus a cost recorder. */
    using Kernel = std::function<void(uint64_t, ItemCost &)>;

    Executor() = default;

    /**
     * Run @p kernel over [0, num_items) under phase @p name of kind
     * @p kind. Repeated invocations with the same name accumulate into
     * one PhaseProfile. Items execute in index order.
     */
    void parallelFor(const std::string &name, PhaseKind kind,
                     uint64_t num_items, const Kernel &kernel);

    /** Record one global barrier crossing. */
    void barrier();

    /** Mark the completion of one outer iteration. */
    void endIteration();

    /** @return the accumulated profile (valid any time). */
    const WorkloadProfile &profile() const { return profile_; }

    /** Move the profile out; the executor is reset afterwards. */
    WorkloadProfile takeProfile();

  private:
    WorkloadProfile profile_;

    /** Find-or-create the accumulation slot for a phase. */
    PhaseProfile &phaseSlot(const std::string &name, PhaseKind kind);
};

/**
 * Reconstructs parallel spans from a phase's bucket histogram.
 *
 * Given T threads and a scheduling policy, spanFactor() returns the
 * ratio of the parallel span to the ideal span (total / T); 1.0 means
 * perfectly balanced. chunkCount() reports how many scheduling events
 * the policy generates, which the performance model charges dynamic-
 * scheduling overhead for.
 */
class ScheduleModel
{
  public:
    /**
     * @param bucket_cost   Work-unit histogram (from PhaseProfile).
     * @param chunk_buckets Chunk size for StaticChunked/Dynamic, in
     *                      buckets; <= 0 picks a default of 1.
     * @param max_item_cost Heaviest single item (span floor).
     */
    explicit ScheduleModel(const std::vector<double> &bucket_cost,
                           double chunk_buckets = 0.0,
                           double max_item_cost = 0.0);

    /** Span ratio >= 1 for @p threads under @p policy. */
    double spanFactor(unsigned threads, SchedulePolicy policy) const;

    /** Scheduling events charged overhead under @p policy. */
    double chunkCount(unsigned threads, SchedulePolicy policy) const;

    /** Total recorded work units. */
    double totalCost() const { return total_; }

  private:
    std::vector<double> buckets_;
    std::vector<double> prefix_; //!< prefix sums over buckets_
    double total_ = 0.0;
    double maxBucket_ = 0.0;
    double maxChunk_ = 0.0;      //!< heaviest aligned chunk
    double chunkBuckets_ = 0.0;
    double maxItemCost_ = 0.0;

    double staticSpan(unsigned threads) const;
    double chunkedSpan(unsigned threads, double chunk_buckets) const;
    double dynamicSpan(unsigned threads) const;
};

} // namespace heteromap

#endif // HETEROMAP_EXEC_EXECUTOR_HH
