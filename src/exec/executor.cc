/**
 * @file
 * Executor and ScheduleModel implementation.
 */

#include "exec/executor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace heteromap {

const char *
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::Static:        return "static";
      case SchedulePolicy::StaticChunked: return "static-chunked";
      case SchedulePolicy::Dynamic:       return "dynamic";
      case SchedulePolicy::Guided:        return "guided";
      case SchedulePolicy::Auto:          return "auto";
    }
    return "?";
}

PhaseProfile &
Executor::phaseSlot(const std::string &name, PhaseKind kind)
{
    for (auto &phase : profile_.phases) {
        if (phase.name == name) {
            HM_ASSERT(phase.kind == kind,
                      "phase '", name, "' re-run with a different kind");
            return phase;
        }
    }
    PhaseProfile fresh;
    fresh.name = name;
    fresh.kind = kind;
    fresh.bucketCost.assign(kNumBuckets, 0.0);
    profile_.phases.push_back(std::move(fresh));
    return profile_.phases.back();
}

void
Executor::parallelFor(const std::string &name, PhaseKind kind,
                      uint64_t num_items, const Kernel &kernel)
{
    PhaseProfile &phase = phaseSlot(name, kind);
    ++phase.invocations;
    phase.workItems += num_items;
    if (num_items == 0)
        return;

    for (uint64_t idx = 0; idx < num_items; ++idx) {
        ItemCost cost;
        kernel(idx, cost);

        phase.intOps += cost.intOps;
        phase.fpOps += cost.fpOps;
        phase.directAccesses += cost.directAccesses;
        phase.indirectAccesses += cost.indirectAccesses;
        phase.sharedReadBytes += cost.sharedReadBytes;
        phase.sharedWriteBytes += cost.sharedWriteBytes;
        phase.localBytes += cost.localBytes;
        phase.atomics += cost.atomics;

        double units = cost.workUnits();
        phase.maxItemCost = std::max(phase.maxItemCost, units);
        // 128-bit intermediate: idx * kNumBuckets overflows uint64_t
        // once num_items exceeds 2^64 / kNumBuckets (~3.6e16 items).
        std::size_t bucket = static_cast<std::size_t>(
            (static_cast<__uint128_t>(idx) * kNumBuckets) / num_items);
        phase.bucketCost[bucket] += units;
    }
}

void
Executor::barrier()
{
    ++profile_.barriers;
}

void
Executor::endIteration()
{
    ++profile_.iterations;
}

WorkloadProfile
Executor::takeProfile()
{
    WorkloadProfile out = std::move(profile_);
    profile_ = WorkloadProfile{};
    return out;
}

ScheduleModel::ScheduleModel(const std::vector<double> &bucket_cost,
                             double chunk_buckets, double max_item_cost)
    : buckets_(bucket_cost), chunkBuckets_(chunk_buckets),
      maxItemCost_(max_item_cost)
{
    // Prefix sums make every span query O(threads); the per-chunk
    // maximum drives the analytic dynamic-scheduling bound.
    prefix_.reserve(buckets_.size() + 1);
    prefix_.push_back(0.0);
    const auto chunk = static_cast<std::size_t>(
        std::max(1.0, chunkBuckets_));
    double chunk_sum = 0.0;
    std::size_t in_chunk = 0;
    for (double c : buckets_) {
        total_ += c;
        maxBucket_ = std::max(maxBucket_, c);
        prefix_.push_back(total_);
        chunk_sum += c;
        if (++in_chunk == chunk) {
            maxChunk_ = std::max(maxChunk_, chunk_sum);
            chunk_sum = 0.0;
            in_chunk = 0;
        }
    }
    maxChunk_ = std::max(maxChunk_, chunk_sum);

    // Chunks finer than one histogram bucket split bucket-level skew:
    // the heaviest chunk is the bucket fraction it covers, floored by
    // the heaviest single item.
    if (chunkBuckets_ > 0.0 && chunkBuckets_ < 1.0) {
        maxChunk_ = std::max(maxItemCost_,
                             maxBucket_ * chunkBuckets_);
    }
}

double
ScheduleModel::staticSpan(unsigned threads) const
{
    const std::size_t nb = buckets_.size();
    if (threads >= nb) {
        // More threads than histogram bins: imbalance below bucket
        // granularity is invisible, so assume an even split bounded
        // below by the heaviest single item (applied by the caller).
        return total_ / static_cast<double>(threads);
    }
    double span = 0.0;
    for (unsigned t = 0; t < threads; ++t) {
        std::size_t lo = (static_cast<std::size_t>(t) * nb) / threads;
        std::size_t hi =
            (static_cast<std::size_t>(t) + 1) * nb / threads;
        span = std::max(span, prefix_[hi] - prefix_[lo]);
    }
    return span;
}

double
ScheduleModel::chunkedSpan(unsigned threads, double chunk_buckets) const
{
    // Round-robin chunk assignment lands between the static block
    // partition and ideal balance; model it as their midpoint with the
    // chunk-size floor.
    (void)chunk_buckets;
    const double ideal = total_ / static_cast<double>(threads);
    return std::max(maxChunk_, 0.5 * (staticSpan(threads) + ideal));
}

double
ScheduleModel::dynamicSpan(unsigned threads) const
{
    // Greedy list scheduling keeps every thread busy until fewer than
    // one chunk of work remains: span ~ max(ideal, heaviest chunk).
    const double ideal = total_ / static_cast<double>(threads);
    return std::max(ideal, maxChunk_);
}

double
ScheduleModel::spanFactor(unsigned threads, SchedulePolicy policy) const
{
    HM_ASSERT(threads > 0, "spanFactor needs >= 1 thread");
    if (total_ <= 0.0)
        return 1.0;
    double ideal = total_ / static_cast<double>(threads);
    if (ideal <= 0.0)
        return 1.0;

    double span = 0.0;
    switch (policy) {
      case SchedulePolicy::Static:
        span = staticSpan(threads);
        break;
      case SchedulePolicy::StaticChunked:
        span = chunkedSpan(threads, std::max(1.0, chunkBuckets_));
        break;
      case SchedulePolicy::Dynamic:
        span = dynamicSpan(threads);
        break;
      case SchedulePolicy::Guided:
        // Guided lands between static and dynamic; model as the mean.
        span = 0.5 * (staticSpan(threads) + dynamicSpan(threads));
        break;
      case SchedulePolicy::Auto:
        span = std::min(staticSpan(threads), dynamicSpan(threads));
        break;
    }

    // A span can never undercut the heaviest single item.
    span = std::max(span, maxItemCost_);
    return std::max(1.0, span / ideal);
}

double
ScheduleModel::chunkCount(unsigned threads, SchedulePolicy policy) const
{
    const double nb = static_cast<double>(buckets_.size());
    switch (policy) {
      case SchedulePolicy::Static:
        return threads;
      case SchedulePolicy::StaticChunked:
      case SchedulePolicy::Dynamic:
        return nb / std::max(1.0, chunkBuckets_);
      case SchedulePolicy::Guided:
        // Exponentially shrinking chunks: ~T * log(n/T) grabs.
        return static_cast<double>(threads) *
               std::max(1.0, std::log2(nb / std::max(1u, threads) + 1.0));
      case SchedulePolicy::Auto:
        return threads;
    }
    return threads;
}

} // namespace heteromap
