/**
 * @file
 * Execution profiles: the measured per-phase counters that the
 * architecture performance models consume. A workload runs once per
 * input under the instrumented executor; the resulting profile is then
 * scored for any accelerator / M-configuration combination without
 * re-running the algorithm (see arch/perf_model.hh).
 */

#ifndef HETEROMAP_EXEC_PROFILE_HH
#define HETEROMAP_EXEC_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace heteromap {

/**
 * Outer-loop phase classes, Section III-C (B1-B5). The phase kind
 * captures the scheduling pattern; the counters capture the work.
 */
enum class PhaseKind {
    VertexDivision, //!< B1: fully data-parallel over vertices
    Pareto,         //!< B2: static frontier chunks
    ParetoDynamic,  //!< B3: dynamically growing frontier chunks
    PushPop,        //!< B4: ordered queue/bucket processing
    Reduction,      //!< B5: parallel reduction with atomics
};

/** @return a short name, e.g. "vertex-division". */
const char *phaseKindName(PhaseKind kind);

/**
 * Counters one kernel item (e.g. one vertex relaxation) records while
 * executing. All values are per-item increments; the executor folds
 * them into the running PhaseProfile.
 */
struct ItemCost {
    double intOps = 0.0;          //!< integer/control operations
    double fpOps = 0.0;           //!< floating-point operations
    double directAccesses = 0.0;  //!< loop-index addressed accesses (B7)
    double indirectAccesses = 0.0;//!< pointer-chased accesses (B8)
    double sharedReadBytes = 0.0; //!< read-only shared traffic (B9)
    double sharedWriteBytes = 0.0;//!< read-write shared traffic (B10)
    double localBytes = 0.0;      //!< thread-local traffic (B11)
    double atomics = 0.0;         //!< atomic updates (B12)

    /** Scalar "work units" used for load-balance bucketing. */
    double workUnits() const;
};

/**
 * Aggregated counters for one named phase, accumulated over all
 * iterations of the workload's outer loop. The bucket array preserves
 * the *distribution* of work over the item index space so the
 * schedule model can compute the parallel span for any thread count
 * and scheduling policy after the fact.
 */
struct PhaseProfile {
    std::string name;
    PhaseKind kind = PhaseKind::VertexDivision;

    uint64_t invocations = 0; //!< outer iterations that ran this phase
    uint64_t workItems = 0;   //!< total items across invocations

    double intOps = 0.0;
    double fpOps = 0.0;
    double directAccesses = 0.0;
    double indirectAccesses = 0.0;
    double sharedReadBytes = 0.0;
    double sharedWriteBytes = 0.0;
    double localBytes = 0.0;
    double atomics = 0.0;

    /** Largest single-item work-unit cost seen (span floor). */
    double maxItemCost = 0.0;

    /** Work-unit histogram over the item index space. */
    std::vector<double> bucketCost;

    /** Sum of all op counters (compute volume). */
    double totalOps() const { return intOps + fpOps; }

    /** Sum of all access counters. */
    double totalAccesses() const;

    /** Total bytes touched. */
    double totalBytes() const;

    /** Total work units (equals the bucket sum up to rounding). */
    double totalWorkUnits() const;

    /** Fold another profile of the same phase into this one. */
    void merge(const PhaseProfile &other);
};

/** Whole-workload profile: phases plus global synchronization counts. */
struct WorkloadProfile {
    std::vector<PhaseProfile> phases;
    uint64_t barriers = 0;   //!< global barrier crossings
    uint64_t iterations = 0; //!< outer-loop iterations to convergence

    /** Find a phase by name; nullptr when absent. */
    const PhaseProfile *findPhase(const std::string &name) const;

    /** Totals across phases. */
    double totalWorkUnits() const;
    double totalOps() const;
    double totalBytes() const;
    double totalAtomics() const;

    /** Human-readable multi-line summary. */
    std::string toString() const;
};

/** Number of load-distribution buckets per phase. */
inline constexpr std::size_t kNumBuckets = 512;

} // namespace heteromap

#endif // HETEROMAP_EXEC_PROFILE_HH
