/**
 * @file
 * Metrics-registry implementation and the shared bench reporting
 * helpers (--telemetry-out flag, combined metrics+trace JSON).
 */

#include "util/telemetry.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/build_info.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace heteromap {
namespace telemetry {

namespace {

/** Format a double compactly but losslessly enough for reports. */
std::string
formatDouble(double value)
{
    std::ostringstream oss;
    oss << std::setprecision(9) << value;
    return oss.str();
}

} // namespace

const std::array<double, Histogram::kBuckets - 1> &
Histogram::bucketBoundsMs()
{
    // 0.5us .. 1s in roughly 1-2.5-5 decades; values above the last
    // bound land in the +inf overflow bucket.
    static const std::array<double, kBuckets - 1> bounds = {
        0.0005, 0.001, 0.0025, 0.005, 0.01,  0.025, 0.05,
        0.1,    0.25,  0.5,    1.0,   2.5,   5.0,   10.0,
        25.0,   50.0,  100.0,  250.0, 1000.0,
    };
    return bounds;
}

std::size_t
Histogram::bucketIndexMs(double ms)
{
    const auto &bounds = bucketBoundsMs();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (ms <= bounds[i])
            return i;
    }
    return kBuckets - 1;
}

void
Histogram::record(double ms)
{
    buckets_[bucketIndexMs(ms)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ms, std::memory_order_relaxed);
    // min/max via CAS loops; contention is bounded because the value
    // only moves monotonically in each direction.
    double seen = min_.load(std::memory_order_relaxed);
    while (ms < seen &&
           !min_.compare_exchange_weak(seen, ms,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (ms > seen &&
           !max_.compare_exchange_weak(seen, ms,
                                       std::memory_order_relaxed)) {
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    if (snap.count > 0) {
        snap.min = min_.load(std::memory_order_relaxed);
        snap.max = max_.load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kBuckets; ++i)
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return snap;
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

namespace {

/**
 * Lower/upper value edges of bucket @p index, tightened to the
 * snapshot's observed min/max so interpolation never extrapolates
 * outside the recorded range (the overflow bucket has no upper bound
 * of its own, so the observed max is its edge).
 */
void
bucketEdges(const HistogramSnapshot &snap, std::size_t index,
            double *lo, double *hi)
{
    const auto &bounds = Histogram::bucketBoundsMs();
    *lo = index == 0 ? 0.0 : bounds[index - 1];
    *hi = index < bounds.size() ? bounds[index] : snap.max;
    *lo = std::max(*lo, snap.min);
    *hi = std::min(*hi, snap.max);
    if (*hi < *lo)
        *hi = *lo;
}

} // namespace

double
HistogramSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = q * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const uint64_t in_bucket = buckets[i];
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(cumulative) +
                static_cast<double>(in_bucket) >=
            rank) {
            double lo = 0.0;
            double hi = 0.0;
            bucketEdges(*this, i, &lo, &hi);
            const double frac =
                std::min(1.0, std::max(0.0, (rank - double(cumulative)) /
                                                double(in_bucket)));
            return lo + frac * (hi - lo);
        }
        cumulative += in_bucket;
    }
    return max;
}

double
HistogramSnapshot::fractionBelow(double ms) const
{
    if (count == 0)
        return 1.0;
    double below = 0.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const uint64_t in_bucket = buckets[i];
        if (in_bucket == 0)
            continue;
        double lo = 0.0;
        double hi = 0.0;
        bucketEdges(*this, i, &lo, &hi);
        if (ms >= hi) {
            below += static_cast<double>(in_bucket);
            continue;
        }
        if (ms > lo && hi > lo)
            below += static_cast<double>(in_bucket) * (ms - lo) / (hi - lo);
        break;
    }
    return std::min(1.0, below / static_cast<double>(count));
}

std::string
MetricsSnapshot::toText() const
{
    std::ostringstream oss;
    std::size_t width = 0;
    for (const auto &[name, value] : counters)
        width = std::max(width, name.size());
    for (const auto &[name, value] : gauges)
        width = std::max(width, name.size());
    for (const auto &[name, value] : histograms)
        width = std::max(width, name.size());

    for (const auto &[name, value] : counters) {
        oss << "counter    " << std::left << std::setw(int(width) + 2)
            << name << value << "\n";
    }
    for (const auto &[name, value] : gauges) {
        oss << "gauge      " << std::left << std::setw(int(width) + 2)
            << name << formatDouble(value) << "\n";
    }
    for (const auto &[name, hist] : histograms) {
        oss << "histogram  " << std::left << std::setw(int(width) + 2)
            << name << "count=" << hist.count
            << " sum=" << formatDouble(hist.sum) << "ms"
            << " mean=" << formatDouble(hist.mean()) << "ms"
            << " min=" << formatDouble(hist.min) << "ms"
            << " p50=" << formatDouble(hist.percentile(0.50)) << "ms"
            << " p95=" << formatDouble(hist.percentile(0.95)) << "ms"
            << " p99=" << formatDouble(hist.percentile(0.99)) << "ms"
            << " max=" << formatDouble(hist.max) << "ms\n";
    }
    return oss.str();
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream oss;
    oss << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        oss << (first ? "" : ",") << '"' << jsonEscape(name)
            << "\":" << value;
        first = false;
    }
    oss << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        oss << (first ? "" : ",") << '"' << jsonEscape(name)
            << "\":" << formatDouble(value);
        first = false;
    }
    oss << "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : histograms) {
        oss << (first ? "" : ",") << '"' << jsonEscape(name)
            << "\":{\"count\":" << hist.count
            << ",\"sum_ms\":" << formatDouble(hist.sum)
            << ",\"mean_ms\":" << formatDouble(hist.mean())
            << ",\"min_ms\":" << formatDouble(hist.min)
            << ",\"max_ms\":" << formatDouble(hist.max)
            << ",\"p50_ms\":" << formatDouble(hist.percentile(0.50))
            << ",\"p95_ms\":" << formatDouble(hist.percentile(0.95))
            << ",\"p99_ms\":" << formatDouble(hist.percentile(0.99))
            << ",\"buckets\":[";
        for (std::size_t i = 0; i < hist.buckets.size(); ++i)
            oss << (i == 0 ? "" : ",") << hist.buckets[i];
        oss << "]}";
        first = false;
    }
    oss << "}}";
    return oss.str();
}

std::string
MetricsSnapshot::toCsv() const
{
    std::ostringstream oss;
    oss << "kind,name,field,value\n";
    for (const auto &[name, value] : counters)
        oss << "counter," << name << ",value," << value << "\n";
    for (const auto &[name, value] : gauges)
        oss << "gauge," << name << ",value," << formatDouble(value)
            << "\n";
    for (const auto &[name, hist] : histograms) {
        oss << "histogram," << name << ",count," << hist.count << "\n"
            << "histogram," << name << ",sum_ms,"
            << formatDouble(hist.sum) << "\n"
            << "histogram," << name << ",mean_ms,"
            << formatDouble(hist.mean()) << "\n"
            << "histogram," << name << ",min_ms,"
            << formatDouble(hist.min) << "\n"
            << "histogram," << name << ",p50_ms,"
            << formatDouble(hist.percentile(0.50)) << "\n"
            << "histogram," << name << ",p95_ms,"
            << formatDouble(hist.percentile(0.95)) << "\n"
            << "histogram," << name << ",p99_ms,"
            << formatDouble(hist.percentile(0.99)) << "\n"
            << "histogram," << name << ",max_ms,"
            << formatDouble(hist.max) << "\n";
    }
    return oss.str();
}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: worker threads and static destructors (the
    // shared thread pool, the global stats cache) may update metrics
    // after main() returns, so the registry must outlive everything.
    static MetricsRegistry *the = new MetricsRegistry;
    return *the;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = counters_.find(name);
    if (found == counters_.end()) {
        found = counters_
                    .emplace(std::string(name),
                             std::make_unique<Counter>())
                    .first;
    }
    return *found->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = gauges_.find(name);
    if (found == gauges_.end()) {
        found = gauges_
                    .emplace(std::string(name), std::make_unique<Gauge>())
                    .first;
    }
    return *found->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = histograms_.find(name);
    if (found == histograms_.end()) {
        found = histograms_
                    .emplace(std::string(name),
                             std::make_unique<Histogram>())
                    .first;
    }
    return *found->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    if (!enabled())
        return snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        snap.counters.emplace(name, counter->value());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.emplace(name, gauge->value());
    for (const auto &[name, histogram] : histograms_)
        snap.histograms.emplace(name, histogram->snapshot());
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, gauge] : gauges_)
        gauge->reset();
    for (const auto &[name, histogram] : histograms_)
        histogram->reset();
}

std::string
consumeTelemetryOutFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int in = 1; in < argc; ++in) {
        const char *arg = argv[in];
        if (std::strcmp(arg, "--telemetry-out") == 0 && in + 1 < argc) {
            path = argv[++in];
            continue;
        }
        if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
            path = arg + 16;
            continue;
        }
        argv[out++] = argv[in];
    }
    argc = out;
    argv[argc] = nullptr;
    return path;
}

std::string
combinedTelemetryJson()
{
    const std::vector<TraceEvent> events = drainTrace();
    std::string out = "{\"traceEvents\":";
    out += traceEventsToJsonArray(events);
    out += ",\"buildInfo\":";
    out += buildInfoJson();
    out += ",\"metrics\":";
    out += registry().snapshot().toJson();
    out += "}";
    return out;
}

bool
writeTelemetryFile(const std::string &path)
{
    std::ofstream file(path);
    if (!file) {
        warn("telemetry: cannot open ", path, " for writing");
        return false;
    }
    file << combinedTelemetryJson() << "\n";
    if (!file.good()) {
        warn("telemetry: short write to ", path);
        return false;
    }
    inform("telemetry: wrote ", path);
    return true;
}

} // namespace telemetry
} // namespace heteromap
