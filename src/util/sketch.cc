/**
 * @file
 * Counting-histogram quantile sketch implementation. See sketch.hh
 * for the determinism rationale.
 */

#include "util/sketch.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace heteromap {
namespace telemetry {

QuantileSketch::QuantileSketch(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    HM_ASSERT(bins > 0, "sketch needs at least one bin");
    HM_ASSERT(hi > lo, "sketch range must be non-empty (lo=", lo,
              " hi=", hi, ")");
}

std::size_t
QuantileSketch::binOf(double value) const
{
    if (value <= lo_)
        return 0;
    if (value >= hi_)
        return counts_.size() - 1;
    const double frac = (value - lo_) / (hi_ - lo_);
    std::size_t bin = static_cast<std::size_t>(
        frac * static_cast<double>(counts_.size()));
    return std::min(bin, counts_.size() - 1);
}

void
QuantileSketch::insert(double value)
{
    value = std::min(hi_, std::max(lo_, value));
    counts_[binOf(value)] += 1;
    count_ += 1;
    if (!hasExtrema_) {
        hasExtrema_ = true;
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    HM_ASSERT(other.counts_.size() == counts_.size() &&
                  other.lo_ == lo_ && other.hi_ == hi_,
              "cannot merge sketches with different bin layouts");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    if (other.hasExtrema_) {
        if (!hasExtrema_) {
            hasExtrema_ = true;
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
}

double
QuantileSketch::observedMin() const
{
    return hasExtrema_ ? min_ : 0.0;
}

double
QuantileSketch::observedMax() const
{
    return hasExtrema_ ? max_ : 0.0;
}

double
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = q * static_cast<double>(count_);
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const uint64_t in_bin = counts_[i];
        if (in_bin == 0)
            continue;
        if (static_cast<double>(cumulative + in_bin) >= rank) {
            // Interpolate inside the bin, clamped to the exact
            // extrema so point masses report their true value.
            double bin_lo = lo_ + width * static_cast<double>(i);
            double bin_hi = bin_lo + width;
            bin_lo = std::max(bin_lo, min_);
            bin_hi = std::min(bin_hi, max_);
            if (bin_hi < bin_lo)
                bin_hi = bin_lo;
            const double frac = std::min(
                1.0, std::max(0.0, (rank - double(cumulative)) /
                                       double(in_bin)));
            return bin_lo + frac * (bin_hi - bin_lo);
        }
        cumulative += in_bin;
    }
    return max_;
}

double
QuantileSketch::cdfAt(double value) const
{
    if (count_ == 0)
        return 0.0;
    const std::size_t bin = binOf(std::min(hi_, std::max(lo_, value)));
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= bin; ++i)
        cumulative += counts_[i];
    return static_cast<double>(cumulative) / static_cast<double>(count_);
}

double
QuantileSketch::psiAgainst(const QuantileSketch &baseline,
                           double epsilon) const
{
    HM_ASSERT(baseline.counts_.size() == counts_.size(),
              "PSI needs matching bin layouts");
    const double bins = static_cast<double>(counts_.size());
    const double live_total = static_cast<double>(count_) + bins * epsilon;
    const double base_total =
        static_cast<double>(baseline.count_) + bins * epsilon;
    double psi = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double p =
            (static_cast<double>(counts_[i]) + epsilon) / live_total;
        const double q =
            (static_cast<double>(baseline.counts_[i]) + epsilon) /
            base_total;
        psi += (p - q) * std::log(p / q);
    }
    return psi;
}

double
QuantileSketch::ksAgainst(const QuantileSketch &baseline) const
{
    HM_ASSERT(baseline.counts_.size() == counts_.size(),
              "KS needs matching bin layouts");
    if (count_ == 0 || baseline.count_ == 0)
        return 0.0;
    double ks = 0.0;
    uint64_t live_cum = 0;
    uint64_t base_cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        live_cum += counts_[i];
        base_cum += baseline.counts_[i];
        const double gap =
            std::fabs(double(live_cum) / double(count_) -
                      double(base_cum) / double(baseline.count_));
        ks = std::max(ks, gap);
    }
    return ks;
}

void
QuantileSketch::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    hasExtrema_ = false;
    min_ = max_ = 0.0;
}

void
QuantileSketch::save(std::ostream &os) const
{
    os << "sketch " << counts_.size() << ' ' << std::setprecision(17)
       << lo_ << ' ' << hi_ << ' ' << count_ << ' '
       << (hasExtrema_ ? 1 : 0) << ' ' << min_ << ' ' << max_ << '\n';
    for (std::size_t i = 0; i < counts_.size(); ++i)
        os << (i == 0 ? "" : " ") << counts_[i];
    os << '\n';
}

std::string
QuantileSketch::toString() const
{
    std::ostringstream oss;
    save(oss);
    return oss.str();
}

bool
QuantileSketch::load(std::istream &is, QuantileSketch *out)
{
    std::string magic;
    std::size_t bins = 0;
    double lo = 0.0;
    double hi = 0.0;
    uint64_t count = 0;
    int has_extrema = 0;
    double min = 0.0;
    double max = 0.0;
    if (!(is >> magic >> bins >> lo >> hi >> count >> has_extrema >>
          min >> max) ||
        magic != "sketch" || bins == 0 || !(hi > lo))
        return false;
    QuantileSketch sketch(bins, lo, hi);
    uint64_t total = 0;
    for (std::size_t i = 0; i < bins; ++i) {
        uint64_t c = 0;
        if (!(is >> c))
            return false;
        sketch.counts_[i] = c;
        total += c;
    }
    if (total != count)
        return false;
    sketch.count_ = count;
    sketch.hasExtrema_ = has_extrema != 0;
    sketch.min_ = min;
    sketch.max_ = max;
    // Eat the trailing newline so back-to-back sketches stream.
    is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
    *out = std::move(sketch);
    return true;
}

bool
QuantileSketch::operator==(const QuantileSketch &other) const
{
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_ == other.counts_ && count_ == other.count_ &&
           hasExtrema_ == other.hasExtrema_ && min_ == other.min_ &&
           max_ == other.max_;
}

} // namespace telemetry
} // namespace heteromap
