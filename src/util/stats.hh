/**
 * @file
 * Small numeric helpers shared across the library: geometric means,
 * normalization, clamping to the paper's 0.1 discretization grid, and
 * summary statistics over sample vectors.
 */

#ifndef HETEROMAP_UTIL_STATS_HH
#define HETEROMAP_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace heteromap {

/** @return the arithmetic mean of @p xs (0 for an empty vector). */
double mean(const std::vector<double> &xs);

/**
 * @return the geometric mean of @p xs. All samples must be positive;
 * an empty vector yields 0. Used throughout the paper's evaluation
 * ("geomean completion times").
 */
double geomean(const std::vector<double> &xs);

/** @return the population standard deviation of @p xs. */
double stddev(const std::vector<double> &xs);

/** @return the minimum of @p xs; fatal on empty input. */
double minOf(const std::vector<double> &xs);

/** @return the maximum of @p xs; fatal on empty input. */
double maxOf(const std::vector<double> &xs);

/** @return the @p q quantile (0..1) of @p xs by linear interpolation. */
double quantile(std::vector<double> xs, double q);

/** @return @p x clamped into [lo, hi]. */
double clamp(double x, double lo, double hi);

/**
 * Snap @p x in [0, 1] to the paper's discretization grid: increments
 * of @p step (default 0.1), rounding half up.
 */
double discretize01(double x, double step = 0.1);

/**
 * Logarithmically normalize @p value against @p max_value into [0, 1],
 * the scheme Section III-B uses to smooth the huge spread in graph
 * characteristics: log(1+v) / log(1+max).
 */
double logNormalize(double value, double max_value);

/** @return relative difference |a-b| / max(|a|,|b|,eps). */
double relDiff(double a, double b);

/** Kahan-compensated sum of @p xs. */
double kahanSum(const std::vector<double> &xs);

} // namespace heteromap

#endif // HETEROMAP_UTIL_STATS_HH
