/**
 * @file
 * Xoshiro256++ implementation (public-domain reference algorithm by
 * Blackman & Vigna) plus distribution helpers.
 */

#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace heteromap {

namespace {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    HM_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    HM_ASSERT(lo <= hi, "nextRange requires lo <= hi, got ", lo, " > ", hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(span == 0 ? next() : nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (hasGaussSpare_) {
        hasGaussSpare_ = false;
        return gaussSpare_;
    }
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    double u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    gaussSpare_ = mag * std::sin(2.0 * M_PI * u2);
    hasGaussSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

std::size_t
Rng::nextDiscrete(const std::vector<double> &weights)
{
    HM_ASSERT(!weights.empty(), "nextDiscrete requires weights");
    double total = 0.0;
    for (double w : weights) {
        HM_ASSERT(w >= 0.0, "negative weight in nextDiscrete");
        total += w;
    }
    HM_ASSERT(total > 0.0, "nextDiscrete requires a positive weight sum");
    double draw = nextDouble() * total;
    double accum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        accum += weights[i];
        if (draw < accum)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace heteromap
