/**
 * @file
 * Plain-text table printer used by the bench binaries to reproduce the
 * paper's tables and figure data series, plus a CSV writer so results
 * can be post-processed.
 */

#ifndef HETEROMAP_UTIL_TABLE_HH
#define HETEROMAP_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace heteromap {

/**
 * Column-aligned text table. Collect rows of strings, then print with
 * automatic column widths. Numeric cells are formatted by the caller
 * (see formatNumber) so each table controls its own precision.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** @return number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render the table to @p os with a separator under the header. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p precision significant decimals. */
std::string formatNumber(double value, int precision = 3);

/** Format @p value as a percentage string, e.g. "31.0%". */
std::string formatPercent(double fraction, int precision = 1);

/** Format a count with thousands separators for readability. */
std::string formatCount(uint64_t value);

} // namespace heteromap

#endif // HETEROMAP_UTIL_TABLE_HH
