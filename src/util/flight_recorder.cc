/**
 * @file
 * Flight-recorder rings and JSONL export. The ring/collector
 * structure deliberately mirrors util/trace.cc so the two forensic
 * buffers share one concurrency story: per-thread rings behind a
 * per-ring mutex that only the drainer contends, drop-oldest with
 * counted drops, retired-thread records preserved, leaked singleton.
 */

#include "util/flight_recorder.hh"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/build_info.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace heteromap {
namespace forensics {

namespace {

/** Format a double for audit JSON (compact, round-trippable). */
std::string
formatAuditDouble(double value)
{
    std::ostringstream oss;
    oss << std::setprecision(12) << value;
    return oss.str();
}

} // namespace

std::string
auditRecordToJson(const AuditRecord &record)
{
    std::ostringstream oss;
    oss << "{\"type\":\"audit\",\"request_id\":" << record.requestId
        << ",\"ts_ns\":" << record.timestampNs
        << ",\"model_epoch\":" << record.modelEpoch
        << ",\"graph_fp\":\"" << std::hex << record.graphFingerprint
        << std::dec << "\",\"model_kind\":\""
        << telemetry::jsonEscape(record.modelKind)
        << "\",\"workload\":\""
        << telemetry::jsonEscape(record.workload)
        << "\",\"tree_leaf\":" << record.treeLeaf
        << ",\"tree_mask\":" << record.treePredicateMask
        << ",\"accelerator\":\""
        << telemetry::jsonEscape(record.accelerator) << "\",\"features\":[";
    for (std::size_t i = 0; i < record.features.size(); ++i)
        oss << (i == 0 ? "" : ",")
            << formatAuditDouble(record.features[i]);
    oss << "],\"scores\":[";
    for (std::size_t i = 0; i < record.scores.size(); ++i)
        oss << (i == 0 ? "" : ",") << formatAuditDouble(record.scores[i]);
    oss << "],\"queue_ms\":" << formatAuditDouble(record.queueMs)
        << ",\"measure_ms\":" << formatAuditDouble(record.measureMs)
        << ",\"featurize_ms\":" << formatAuditDouble(record.featurizeMs)
        << ",\"infer_ms\":" << formatAuditDouble(record.inferMs)
        << ",\"service_ms\":" << formatAuditDouble(record.serviceMs)
        << ",\"status\":" << record.status
        << ",\"degradation\":" << record.degradationLevel
        << ",\"supervised\":" << (record.supervised ? "true" : "false")
        << ",\"fallback\":"
        << (record.servedByFallback ? "true" : "false")
        << ",\"has_outcome\":" << (record.hasOutcome ? "true" : "false")
        << ",\"within_tolerance\":"
        << (record.withinTolerance ? "true" : "false") << "}";
    return oss.str();
}

#if HETEROMAP_TELEMETRY

namespace {

std::atomic<bool> armedFlag{false};
std::atomic<std::size_t> ringCapacity{kFlightRingCapacity};
std::atomic<uint64_t> appendedTotal{0};
std::atomic<uint64_t> droppedTotal{0};

/** One thread's audit ring. The owning thread appends; drains lock. */
struct AuditRing {
    std::mutex mutex;
    std::vector<AuditRecord> records;
    std::size_t next = 0;
    bool wrapped = false;

    void
    push(const AuditRecord &record)
    {
        bool dropped = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            const std::size_t capacity =
                ringCapacity.load(std::memory_order_relaxed);
            if (records.size() < capacity) {
                records.push_back(record);
            } else {
                records[next] = record;
                next = (next + 1) % records.size();
                wrapped = true;
                dropped = true;
            }
        }
        appendedTotal.fetch_add(1, std::memory_order_relaxed);
        if (dropped) {
            droppedTotal.fetch_add(1, std::memory_order_relaxed);
            HM_COUNTER_INC("flight.dropped");
        }
    }

    /** Extract oldest-first and reset the ring. Caller locks. */
    std::vector<AuditRecord>
    takeLocked()
    {
        std::vector<AuditRecord> out;
        out.reserve(records.size());
        if (wrapped) {
            out.insert(out.end(), records.begin() + long(next),
                       records.end());
            out.insert(out.end(), records.begin(),
                       records.begin() + long(next));
        } else {
            out = std::move(records);
        }
        records.clear();
        next = 0;
        wrapped = false;
        return out;
    }
};

/** Live thread rings plus exited threads' preserved records. */
class AuditCollector
{
  public:
    static AuditCollector &
    instance()
    {
        // Leaked: appending threads may outlive main()'s statics.
        static AuditCollector *the = new AuditCollector;
        return *the;
    }

    AuditRing *
    adopt()
    {
        auto ring = std::make_unique<AuditRing>();
        AuditRing *raw = ring.get();
        std::lock_guard<std::mutex> lock(mutex_);
        live_.push_back(std::move(ring));
        return raw;
    }

    void
    retire(AuditRing *ring)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            auto records = ring->takeLocked();
            retired_.insert(retired_.end(), records.begin(),
                            records.end());
        }
        auto it = std::find_if(
            live_.begin(), live_.end(),
            [ring](const auto &owned) { return owned.get() == ring; });
        if (it != live_.end())
            live_.erase(it);
    }

    std::vector<AuditRecord>
    drain()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<AuditRecord> out = std::move(retired_);
        retired_.clear();
        for (const auto &ring : live_) {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            auto records = ring->takeLocked();
            out.insert(out.end(), records.begin(), records.end());
        }
        std::stable_sort(out.begin(), out.end(),
                         [](const AuditRecord &a, const AuditRecord &b) {
                             return a.timestampNs < b.timestampNs;
                         });
        return out;
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        retired_.clear();
        for (const auto &ring : live_) {
            std::lock_guard<std::mutex> ring_lock(ring->mutex);
            ring->records.clear();
            ring->records.shrink_to_fit();
            ring->next = 0;
            ring->wrapped = false;
        }
    }

  private:
    AuditCollector() = default;

    std::mutex mutex_;
    std::vector<std::unique_ptr<AuditRing>> live_;
    std::vector<AuditRecord> retired_;
};

/** Registers on first append, retires records on thread exit. */
struct AuditRingHandle {
    AuditRing *ring;

    AuditRingHandle() : ring(AuditCollector::instance().adopt()) {}
    ~AuditRingHandle() { AuditCollector::instance().retire(ring); }
};

AuditRing &
localRing()
{
    thread_local AuditRingHandle handle;
    return *handle.ring;
}

} // namespace

void
armFlightRecorder(std::size_t ring_capacity)
{
    if (ring_capacity == 0)
        ring_capacity = 1;
    ringCapacity.store(ring_capacity, std::memory_order_relaxed);
    AuditCollector::instance().clear();
    appendedTotal.store(0, std::memory_order_relaxed);
    droppedTotal.store(0, std::memory_order_relaxed);
    armedFlag.store(true, std::memory_order_release);
}

void
disarmFlightRecorder()
{
    armedFlag.store(false, std::memory_order_release);
}

bool
flightRecorderArmed()
{
    return armedFlag.load(std::memory_order_relaxed);
}

void
appendAuditRecord(const AuditRecord &record)
{
    if (!flightRecorderArmed())
        return;
    localRing().push(record);
}

std::vector<AuditRecord>
drainAuditRecords()
{
    return AuditCollector::instance().drain();
}

uint64_t
auditRecordsAppended()
{
    return appendedTotal.load(std::memory_order_relaxed);
}

uint64_t
auditRecordsDropped()
{
    return droppedTotal.load(std::memory_order_relaxed);
}

void
dumpFlightRecorder(std::ostream &os, std::string_view reason)
{
    const std::vector<AuditRecord> records = drainAuditRecords();
    os << "{\"type\":\"flight-recorder\",\"reason\":\""
       << telemetry::jsonEscape(reason)
       << "\",\"build\":" << telemetry::buildInfoJson()
       << ",\"records\":" << records.size()
       << ",\"appended\":" << auditRecordsAppended()
       << ",\"dropped\":" << auditRecordsDropped() << "}\n";
    for (const AuditRecord &record : records)
        os << auditRecordToJson(record) << "\n";
}

bool
dumpFlightRecorderToFile(const std::string &path, std::string_view reason)
{
    std::ofstream file(path);
    if (!file) {
        warn("flight-recorder: cannot open ", path, " for writing");
        return false;
    }
    dumpFlightRecorder(file, reason);
    if (!file.good()) {
        warn("flight-recorder: short write to ", path);
        return false;
    }
    inform("flight-recorder: wrote ", path, " (", reason, ")");
    return true;
}

#else // HETEROMAP_TELEMETRY=OFF: dumps still emit a valid (empty)
      // document so tooling pointed at an OFF build stays parseable.

void
dumpFlightRecorder(std::ostream &os, std::string_view reason)
{
    os << "{\"type\":\"flight-recorder\",\"reason\":\""
       << telemetry::jsonEscape(reason)
       << "\",\"build\":" << telemetry::buildInfoJson()
       << ",\"records\":0,\"appended\":0,\"dropped\":0}\n";
}

bool
dumpFlightRecorderToFile(const std::string &path, std::string_view reason)
{
    std::ofstream file(path);
    if (!file)
        return false;
    dumpFlightRecorder(file, reason);
    return file.good();
}

#endif // HETEROMAP_TELEMETRY

} // namespace forensics
} // namespace heteromap
