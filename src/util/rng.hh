/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic code in
 * HeteroMap draws from an explicitly seeded Rng so that simulations,
 * training runs, and tests are bit-reproducible.
 */

#ifndef HETEROMAP_UTIL_RNG_HH
#define HETEROMAP_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace heteromap {

/**
 * Xoshiro256++ generator. Small, fast, and high quality; not
 * cryptographic. Distribution helpers cover the needs of the graph
 * generators and the tuner.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit draw. */
    uint64_t next();

    /** @return uniform integer in [0, bound), bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** @return true with probability p (clamped to [0, 1]). */
    bool nextBool(double p = 0.5);

    /** @return standard normal draw (Box-Muller). */
    double nextGaussian();

    /**
     * @return a draw from a discrete distribution proportional to
     * @p weights (weights need not sum to one; all must be >= 0 and
     * at least one must be positive).
     */
    std::size_t nextDiscrete(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of @p items. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Split off an independent child stream (for parallel phases). */
    Rng split();

  private:
    uint64_t s_[4];

    /** Cached second Box-Muller variate. */
    double gaussSpare_ = 0.0;
    bool hasGaussSpare_ = false;
};

} // namespace heteromap

#endif // HETEROMAP_UTIL_RNG_HH
