/**
 * @file
 * Scoped trace spans: RAII timing regions recorded into thread-local
 * ring buffers and drained into Chrome trace_event JSON, loadable in
 * about:tracing or Perfetto.
 *
 * Usage: drop `HM_SPAN("predict.infer");` at the top of a scope. The
 * span records a complete ("ph":"X") event — monotonic start
 * timestamp, duration, and the recording thread's id — when the scope
 * exits. Nesting works naturally (inner spans sit inside outer spans
 * on the same thread's track), and spans recorded by pool workers
 * land on their own tracks.
 *
 * Hot-path cost: two steady_clock reads plus one short critical
 * section on a thread-local mutex that only the draining thread ever
 * contends. Each thread's buffer is a fixed-capacity ring
 * (kTraceRingCapacity events); overflow overwrites the oldest events
 * and counts the drops in the "trace.dropped" counter rather than
 * allocating without bound.
 *
 * In a HETEROMAP_TELEMETRY=OFF build the HM_SPAN macro compiles to
 * nothing and the drain functions report no events.
 */

#ifndef HETEROMAP_UTIL_TRACE_HH
#define HETEROMAP_UTIL_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/telemetry.hh"

namespace heteromap {
namespace telemetry {

/** Events a thread buffers before the ring starts dropping. */
inline constexpr std::size_t kTraceRingCapacity = 8192;

/** One completed span. Timestamps are ns since the trace epoch. */
struct TraceEvent {
    const char *name = "";  //!< static string (macro call sites)
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint32_t tid = 0;       //!< small sequential thread id
};

/** Runtime kill switch (spans become two relaxed loads when off). */
void setTracingEnabled(bool enabled);
bool tracingEnabled();

/** Monotonic ns since the process trace epoch (first call). */
uint64_t traceNowNs();

/** Append one completed span to the calling thread's ring. */
void recordSpan(const char *name, uint64_t start_ns, uint64_t end_ns);

/**
 * Collect every buffered event — live thread rings and the retired
 * events of exited threads — clear the buffers, and return the
 * events sorted by start time.
 */
std::vector<TraceEvent> drainTrace();

/** Drop all buffered events without returning them. */
void clearTrace();

/** JSON array of Chrome trace_event "X" objects. */
std::string traceEventsToJsonArray(const std::vector<TraceEvent> &events);

/** Full Chrome trace object: {"traceEvents":[...]}. */
std::string traceToChromeJson(const std::vector<TraceEvent> &events);

/** Escape @p text for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** One event parsed back out of a Chrome trace JSON document. */
struct ParsedTraceEvent {
    std::string name;
    std::string ph;
    double ts = 0.0;  //!< microseconds
    double dur = 0.0; //!< microseconds (X events)
    bool hasDur = false;
    double pid = 0.0;
    double tid = 0.0;
};

/**
 * Parse a Chrome trace JSON document (bare event array, or an object
 * with a "traceEvents" array; other keys are ignored, as the viewers
 * do). Returns the events; on malformed input returns an empty
 * vector and sets @p error.
 */
std::vector<ParsedTraceEvent> parseChromeTrace(const std::string &json,
                                               std::string *error);

/**
 * Validate @p json against the trace_event format contract the
 * acceptance criteria name: every event carries name/ph/ts/pid/tid,
 * "X" events carry a non-negative dur, and "B"/"E" events balance
 * per (pid, tid) track with matching names. @p num_events receives
 * the event count on success.
 */
bool validateChromeTrace(const std::string &json,
                         std::string *error = nullptr,
                         std::size_t *num_events = nullptr);

/**
 * True when @p json parses as one complete JSON document. Shared by
 * the forensics tests/benches to assert flight-recorder JSONL lines
 * and statusz snapshots are well-formed without growing a second
 * parser. On failure sets @p error when non-null.
 */
bool validateJson(const std::string &json, std::string *error = nullptr);

/** RAII span; prefer the HM_SPAN macro. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
        : name_(name), active_(tracingEnabled()),
          start_(active_ ? traceNowNs() : 0)
    {
    }

    ~ScopedSpan()
    {
        if (active_)
            recordSpan(name_, start_, traceNowNs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    bool active_;
    uint64_t start_;
};

} // namespace telemetry
} // namespace heteromap

#define HM_SPAN_CONCAT2(a, b) a##b
#define HM_SPAN_CONCAT(a, b) HM_SPAN_CONCAT2(a, b)

#if HETEROMAP_TELEMETRY

/** Time the enclosing scope as the trace span @p name. */
#define HM_SPAN(name)                                                     \
    ::heteromap::telemetry::ScopedSpan HM_SPAN_CONCAT(hmSpan_,            \
                                                      __LINE__)(name)

#else

#define HM_SPAN(name)                                                     \
    do {                                                                  \
    } while (0)

#endif // HETEROMAP_TELEMETRY

#endif // HETEROMAP_UTIL_TRACE_HH
