/**
 * @file
 * Recoverable-error tier. Result<T> is an expected-style carrier of
 * either a value or a structured Error, so subsystems (graph I/O, the
 * profiler database, the deployment supervisor) can report failures
 * without tearing down the process the way fatal()/panic() do. The
 * HM_RECOVERABLE macro builds an Error with call-site context and a
 * warn-level log record, mirroring HM_FATAL without the throw.
 */

#ifndef HETEROMAP_UTIL_ERRORS_HH
#define HETEROMAP_UTIL_ERRORS_HH

#include <sstream>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.hh"

namespace heteromap {

/** Category of a recoverable failure. */
enum class ErrorCode {
    Io,          //!< a file or stream could not be opened or read
    Parse,       //!< malformed textual input
    OutOfRange,  //!< a value outside its declared domain
    Unavailable, //!< a required resource is (currently) offline
    Exhausted,   //!< bounded retries or attempts ran out
};

/** @return e.g. "parse" for ErrorCode::Parse. */
const char *errorCodeName(ErrorCode code);

/** A recoverable failure the caller may inspect, report, or retry. */
struct Error {
    ErrorCode code = ErrorCode::Io;
    std::string message;
    std::size_t line = 0; //!< 1-based input line; 0 = not line-oriented

    /** "parse error (line 7): malformed edge" style rendering. */
    std::string toString() const;
};

/** Build an Error tagged with a 1-based input line (0 = none). */
template <typename... Args>
Error
makeError(ErrorCode code, std::size_t line, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return Error{code, oss.str(), line};
}

/** HM_RECOVERABLE backend: build an Error and log it at warn level. */
template <typename... Args>
Error
recoverableAt(ErrorCode code, const char *file, int src_line,
              Args &&...args)
{
    Error err = makeError(code, 0, std::forward<Args>(args)...);
    warn(errorCodeName(code), " error: ", err.message, " [", file, ":",
         src_line, "]");
    return err;
}

/**
 * Value-or-Error carrier. Implicitly constructible from either side;
 * accessing the wrong side is a panic (an internal bug), while
 * orThrow() converts an error into the legacy FatalError pathway for
 * callers that still want exceptional behavior.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
    Result(Error error)
        : state_(std::in_place_index<1>, std::move(error))
    {
    }

    /** @return true when a value is held. */
    bool ok() const { return state_.index() == 0; }
    explicit operator bool() const { return ok(); }

    const T &
    value() const &
    {
        HM_ASSERT(ok(), "Result::value() on error: ", error().toString());
        return std::get<0>(state_);
    }

    T &&
    value() &&
    {
        HM_ASSERT(ok(), "Result::value() on error: ", error().toString());
        return std::move(std::get<0>(state_));
    }

    const Error &
    error() const
    {
        HM_ASSERT(!ok(), "Result::error() on a success value");
        return std::get<1>(state_);
    }

    /** @return the held value, or @p fallback when this is an error. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? std::get<0>(state_) : std::move(fallback);
    }

    /** Unwrap, converting an error into a thrown FatalError. */
    T
    orThrow() &&
    {
        if (!ok())
            throw FatalError(error().toString());
        return std::move(std::get<0>(state_));
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace heteromap

/** Build (and warn-log) a recoverable Error with call-site context. */
#define HM_RECOVERABLE(code, ...)                                         \
    ::heteromap::recoverableAt(code, __FILE__, __LINE__, __VA_ARGS__)

#endif // HETEROMAP_UTIL_ERRORS_HH
