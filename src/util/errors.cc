/**
 * @file
 * Recoverable-error rendering helpers.
 */

#include "util/errors.hh"

namespace heteromap {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io:          return "io";
      case ErrorCode::Parse:       return "parse";
      case ErrorCode::OutOfRange:  return "out-of-range";
      case ErrorCode::Unavailable: return "unavailable";
      case ErrorCode::Exhausted:   return "exhausted";
    }
    return "?";
}

std::string
Error::toString() const
{
    std::string out = std::string(errorCodeName(code)) + " error";
    if (line > 0)
        out += " (line " + std::to_string(line) + ")";
    out += ": " + message;
    return out;
}

} // namespace heteromap
