/**
 * @file
 * Prediction provenance flight recorder: a process-wide, always-cheap
 * audit trail of "why did this request get this M-config".
 *
 * Every served (or locally issued) prediction appends one compact
 * AuditRecord — request id, model epoch, graph fingerprint, the full
 * feature vector, the decision path (flat-tree predicate mask + leaf
 * id when the model is the flattened decision tree, model kind + raw
 * normalized-M scores otherwise), the chosen accelerator, per-stage
 * latencies, and the supervised outcome when one exists — into the
 * calling thread's fixed-capacity ring. The discipline is the same as
 * util/trace: per-thread rings behind a per-ring mutex only the
 * drainer contends, drop-oldest on overflow with exact drop
 * accounting (a process counter plus the "flight.dropped" registry
 * metric), retired threads' records preserved, everything leaked so
 * late-exiting threads stay safe.
 *
 * The recorder is disarmed by default: append() is a single relaxed
 * atomic load until armFlightRecorder() runs, so the serving hot path
 * pays nothing until someone wants forensics. dump() emits JSONL —
 * one build-info-stamped header object, then one object per record —
 * which is what the postmortem artifacts the chaos soak asserts on
 * look like.
 *
 * In a HETEROMAP_TELEMETRY=OFF build every entry point is an inline
 * no-op (flightRecorderArmed() is a compile-time false, so guarded
 * call sites dead-strip the record construction too).
 */

#ifndef HETEROMAP_UTIL_FLIGHT_RECORDER_HH
#define HETEROMAP_UTIL_FLIGHT_RECORDER_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/telemetry.hh"

namespace heteromap {
namespace forensics {

/**
 * Feature/score dimensions are fixed here rather than pulled from
 * features/ and model/ headers because util/ sits below both in the
 * library stack; serve/prediction_service.cc static_asserts these
 * against kNumFeatures / kNumOutputs so a drifting paper constant
 * fails the build instead of truncating records.
 */
inline constexpr std::size_t kAuditFeatureDims = 17;
inline constexpr std::size_t kAuditScoreDims = 20;

/** Records a thread buffers before the ring starts dropping. */
inline constexpr std::size_t kFlightRingCapacity = 4096;

/** One served prediction's provenance. Fixed-size, no heap. */
struct AuditRecord {
    uint64_t requestId = 0;       //!< 0 for non-serving (library) calls
    uint64_t timestampNs = 0;     //!< telemetry::traceNowNs()
    uint64_t modelEpoch = 0;      //!< registry epoch (0 = unversioned)
    uint64_t graphFingerprint = 0; //!< mixed hash of the input graph
    char modelKind[24] = {};      //!< predictor kind/name, truncated
    char workload[24] = {};       //!< benchmark name, truncated
    int32_t treeLeaf = -1;        //!< flat-tree leaf id; -1 otherwise
    uint32_t treePredicateMask = 0; //!< flat-tree predicate bits
    std::array<double, kAuditFeatureDims> features{};
    std::array<double, kAuditScoreDims> scores{}; //!< normalized M
    char accelerator[12] = {};    //!< chosen M1
    double queueMs = 0.0;
    double measureMs = 0.0;
    double featurizeMs = 0.0;
    double inferMs = 0.0;
    double serviceMs = 0.0;
    int32_t status = 0;           //!< serve::ServeStatus value
    int32_t degradationLevel = 0; //!< watchdog ladder rung
    bool supervised = false;
    bool servedByFallback = false;
    bool hasOutcome = false;      //!< supervised outcome attached
    bool withinTolerance = false; //!< outcome verdict (mispredict = !)

    void
    setModelKind(std::string_view kind)
    {
        copyTruncated(modelKind, sizeof(modelKind), kind);
    }

    void
    setWorkload(std::string_view name)
    {
        copyTruncated(workload, sizeof(workload), name);
    }

    void
    setAccelerator(std::string_view name)
    {
        copyTruncated(accelerator, sizeof(accelerator), name);
    }

  private:
    static void
    copyTruncated(char *dst, std::size_t capacity, std::string_view src)
    {
        const std::size_t n = src.size() < capacity - 1 ? src.size()
                                                        : capacity - 1;
        std::memcpy(dst, src.data(), n);
        dst[n] = '\0';
    }
};

/** One record as a single-line JSON object (no trailing newline). */
std::string auditRecordToJson(const AuditRecord &record);

#if HETEROMAP_TELEMETRY

/**
 * Start recording. Clears any buffered records and zeroes the
 * appended/dropped accounting so post-arm numbers are exact; new
 * rings (and cleared ones) use @p ring_capacity.
 */
void armFlightRecorder(std::size_t ring_capacity = kFlightRingCapacity);

/** Stop recording. Buffered records stay drainable. */
void disarmFlightRecorder();

bool flightRecorderArmed();

/** Buffer one record (no-op while disarmed). */
void appendAuditRecord(const AuditRecord &record);

/**
 * Extract every buffered record — live rings and retired threads —
 * sorted by timestamp, clearing the buffers. Concurrent appends land
 * in either this drain or the next.
 */
std::vector<AuditRecord> drainAuditRecords();

/** Records accepted since the last arm (survives drains). */
uint64_t auditRecordsAppended();

/** Records overwritten by ring overflow since the last arm. */
uint64_t auditRecordsDropped();

/**
 * Drain and write JSONL: a header object (type, @p reason, build
 * info, record/drop accounting), then one record object per line.
 */
void dumpFlightRecorder(std::ostream &os, std::string_view reason);

/** dumpFlightRecorder() into @p path; warn+false on IO error. */
bool dumpFlightRecorderToFile(const std::string &path,
                              std::string_view reason);

#else // HETEROMAP_TELEMETRY=OFF: inline no-ops, armed() is constant
      // false so guarded call sites compile away entirely.

inline void
armFlightRecorder(std::size_t = kFlightRingCapacity)
{
}

inline void
disarmFlightRecorder()
{
}

inline bool
flightRecorderArmed()
{
    return false;
}

inline void
appendAuditRecord(const AuditRecord &)
{
}

inline std::vector<AuditRecord>
drainAuditRecords()
{
    return {};
}

inline uint64_t
auditRecordsAppended()
{
    return 0;
}

inline uint64_t
auditRecordsDropped()
{
    return 0;
}

void dumpFlightRecorder(std::ostream &os, std::string_view reason);

bool dumpFlightRecorderToFile(const std::string &path,
                              std::string_view reason);

#endif // HETEROMAP_TELEMETRY

} // namespace forensics
} // namespace heteromap

#endif // HETEROMAP_UTIL_FLIGHT_RECORDER_HH
