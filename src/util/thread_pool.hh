/**
 * @file
 * Small work-stealing thread pool. Each worker owns a deque; it pops
 * its own tasks from the front and steals from the back of a sibling
 * when it runs dry, so coarse, unevenly sized tasks (e.g. the offline
 * training sweep's tuning cases) balance without a central queue
 * becoming a point of contention. Exceptions thrown by tasks are
 * captured and rethrown from wait(); destruction drains every queued
 * task before joining.
 *
 * The pool reports itself through the telemetry registry
 * (util/telemetry.hh): "pool.tasks" and "pool.steals" counters, a
 * "pool.queue_depth" gauge, and a "pool.worker_idle_ms" histogram of
 * how long workers sit parked between tasks.
 */

#ifndef HETEROMAP_UTIL_THREAD_POOL_HH
#define HETEROMAP_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace heteromap {

/** Fixed-size work-stealing pool of worker threads. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads Worker count; 0 picks defaultThreadCount(). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /** Enqueue @p task for execution on some worker. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished. The first
     * exception any task threw since the last wait() is rethrown
     * here (the pool stays usable afterwards).
     */
    void wait();

    /**
     * Run body(0) .. body(count - 1) across the pool and wait().
     * Iterations must not depend on each other; any iteration's
     * exception propagates out of this call.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** max(1, hardware concurrency) — the threads == 0 resolution. */
    static std::size_t defaultThreadCount();

    /**
     * Process-wide shared pool (defaultThreadCount() workers),
     * created on first use. Intended for short, coarse parallel
     * sections on hot paths — e.g. online graph measurement — where
     * spinning up a private pool per call would dominate the work.
     * parallelFor()'s completion barrier is pool-global, so callers
     * that use it on the shared pool must serialize their sections
     * against each other (graph measurement does, see
     * sharedPoolMutex in graph/props.cc).
     */
    static ThreadPool &shared();

  private:
    /** One worker's state: its deque and the lock guarding it. */
    struct Worker {
        std::deque<Task> queue;
        std::mutex mutex;
    };

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex idle_mutex_;            //!< sleep/wake of idle workers
    std::condition_variable idle_cv_;
    std::mutex done_mutex_;            //!< wait() rendezvous
    std::condition_variable done_cv_;

    std::atomic<std::size_t> queued_{0};  //!< tasks sitting in queues
    std::atomic<std::size_t> pending_{0}; //!< queued + running tasks
    std::atomic<bool> stop_{false};
    std::atomic<std::size_t> next_{0};    //!< round-robin submit cursor

    std::mutex exception_mutex_;
    std::exception_ptr first_exception_;

    void workerLoop(std::size_t self);
    bool tryPop(std::size_t self, Task &task);
    void runTask(Task &task);
};

} // namespace heteromap

#endif // HETEROMAP_UTIL_THREAD_POOL_HH
