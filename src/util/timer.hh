/**
 * @file
 * Wall-clock timer. Used only where the paper also measures real time:
 * the inference overhead of each predictor (Table IV "Overhead (ms)").
 * All *modelled* time comes from arch/PerfModel, never from the clock.
 */

#ifndef HETEROMAP_UTIL_TIMER_HH
#define HETEROMAP_UTIL_TIMER_HH

#include <chrono>

namespace heteromap {

/** Monotonic stopwatch with millisecond/microsecond readouts. */
class Timer
{
  public:
    /** Start (or restart) the stopwatch. */
    void
    start()
    {
        begin_ = Clock::now();
    }

    /** @return elapsed seconds since start(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - begin_).count();
    }

    /** @return elapsed milliseconds since start(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

    /**
     * @return elapsed milliseconds since start()/the last lap, and
     * restart the stopwatch from the *same* clock read, so
     * consecutive laps partition the elapsed time exactly: no
     * instant is counted twice or dropped between stages. This is
     * what lets HeteroMap::predict's per-stage timings sum to its
     * reported overheadMs to the bit.
     */
    double
    lapMillis()
    {
        const Clock::time_point now = Clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(now - begin_)
                .count();
        begin_ = now;
        return ms;
    }

    /** @return elapsed microseconds since start(). */
    double elapsedMicros() const { return elapsedSeconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point begin_ = Clock::now();
};

} // namespace heteromap

#endif // HETEROMAP_UTIL_TIMER_HH
