/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <atomic>
#include <cstdio>

namespace heteromap {

namespace {

std::atomic<bool> verboseFlag{true};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
logVerbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::string full = std::string(levelTag(level)) + ": " + msg + " [" +
                       file + ":" + std::to_string(line) + "]";
    std::fprintf(stderr, "%s\n", full.c_str());
    if (level == LogLevel::Panic)
        throw PanicError(full);
    throw FatalError(full);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (!logVerbose())
        return;
    std::fprintf(stderr, "%s: %s\n", levelTag(level), msg.c_str());
}

} // namespace detail

} // namespace heteromap
