/**
 * @file
 * Implementation of the logging helpers.
 *
 * Every record is emitted through one mutex-guarded sink, so
 * messages from concurrent threads (e.g. ThreadPool workers
 * inform()ing mid-sweep) come out whole instead of interleaving
 * mid-line on stderr. Tests can swap the sink to capture records.
 */

#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

#include "util/telemetry.hh"

namespace heteromap {

namespace {

std::atomic<bool> verboseFlag{true};

/** Guards both the active sink pointer and each record's emission. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Active custom sink; nullptr means the default stderr sink. */
LogSink &
activeSink()
{
    static LogSink sink;
    return sink;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

/** Hand one whole record to the sink, under the logging mutex. */
void
emitRecord(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (activeSink() != nullptr) {
        activeSink()(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", levelTag(level), msg.c_str());
}

} // namespace

void
setLogVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
logVerbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    LogSink previous = std::move(activeSink());
    activeSink() = std::move(sink);
    return previous;
}

namespace detail {

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::string full = std::string(levelTag(level)) + ": " + msg + " [" +
                       file + ":" + std::to_string(line) + "]";
    emitRecord(level, msg + " [" + file + ":" + std::to_string(line) + "]");
    if (level == LogLevel::Panic)
        throw PanicError(full);
    throw FatalError(full);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        HM_COUNTER_INC("log.warn");
    else
        HM_COUNTER_INC("log.inform");
    if (!logVerbose())
        return;
    emitRecord(level, msg);
}

} // namespace detail

} // namespace heteromap
