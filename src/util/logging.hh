/**
 * @file
 * Status-message and error-reporting helpers, modeled after gem5's
 * logging discipline: panic() for internal invariant violations,
 * fatal() for user errors, warn()/inform() for status output.
 */

#ifndef HETEROMAP_UTIL_LOGGING_HH
#define HETEROMAP_UTIL_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace heteromap {

/** Thrown by fatal(): a user error the caller may report and recover from. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by panic(): an internal invariant violation (a HeteroMap bug). */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Severity of a log message. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail {

/**
 * Emit a formatted log record to stderr and, for Fatal/Panic, terminate.
 *
 * @param level Message severity.
 * @param file  Source file of the call site.
 * @param line  Source line of the call site.
 * @param msg   Fully formatted message body.
 */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);

/** Emit a non-terminating log record to stderr. */
void logMessage(LogLevel level, const std::string &msg);

} // namespace detail

/** Toggle inform()/warn() output (tests silence it). */
void setLogVerbose(bool verbose);

/** @return true when inform()/warn() output is enabled. */
bool logVerbose();

/**
 * A pluggable destination for log records. Receives the severity and
 * the fully formatted message body (no trailing newline). Invoked
 * under the logging mutex, so records never interleave and the sink
 * needs no synchronization of its own; keep it quick and never log
 * from inside it.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install @p sink as the log destination (nullptr restores the
 * default stderr sink) and return the previous sink (nullptr when
 * stderr was active). Tests use this to capture records instead of
 * silencing them.
 */
LogSink setLogSink(LogSink sink);

/**
 * RAII sink capture: installs @p sink on construction and restores
 * the previous sink on destruction.
 */
class ScopedLogSink
{
  public:
    explicit ScopedLogSink(LogSink sink)
        : previous_(setLogSink(std::move(sink)))
    {
    }

    ~ScopedLogSink() { setLogSink(std::move(previous_)); }

    ScopedLogSink(const ScopedLogSink &) = delete;
    ScopedLogSink &operator=(const ScopedLogSink &) = delete;

  private:
    LogSink previous_;
};

/**
 * Report an unrecoverable internal error (a HeteroMap bug) and abort.
 * Use for conditions that should never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::logAndDie(LogLevel::Panic, file, line, oss.str());
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit. The simulation cannot continue but HeteroMap
 * itself is not at fault.
 */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::logAndDie(LogLevel::Fatal, file, line, oss.str());
}

/** Print a warning about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::logMessage(LogLevel::Warn, oss.str());
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    detail::logMessage(LogLevel::Inform, oss.str());
}

} // namespace heteromap

/** Abort with an internal-bug diagnostic; see heteromap::panicAt. */
#define HM_PANIC(...) ::heteromap::panicAt(__FILE__, __LINE__, __VA_ARGS__)

/** Exit with a user-error diagnostic; see heteromap::fatalAt. */
#define HM_FATAL(...) ::heteromap::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; compiled in all build types. */
#define HM_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::heteromap::panicAt(__FILE__, __LINE__,                      \
                                 "assertion failed: " #cond " ",          \
                                 ##__VA_ARGS__);                          \
        }                                                                 \
    } while (0)

#endif // HETEROMAP_UTIL_LOGGING_HH
