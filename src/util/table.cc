/**
 * @file
 * Implementation of the text-table printer.
 */

#include "util/table.hh"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace heteromap {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    HM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    HM_ASSERT(cells.size() == headers_.size(),
              "row arity ", cells.size(), " != header arity ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
formatNumber(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatPercent(double fraction, int precision)
{
    return formatNumber(fraction * 100.0, precision) + "%";
}

std::string
formatCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run != 0 && run % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++run;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace heteromap
