/**
 * @file
 * CRC64 implementation.
 */

#include "util/checksum.hh"

#include <array>
#include <cctype>

namespace heteromap {

namespace {

/** Reflected ECMA-182 polynomial. */
constexpr uint64_t kPoly = 0xc96c5795d7870f42ull;

const std::array<uint64_t, 256> &
table()
{
    static const std::array<uint64_t, 256> t = [] {
        std::array<uint64_t, 256> entries{};
        for (uint64_t i = 0; i < entries.size(); ++i) {
            uint64_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ (kPoly & (~(crc & 1) + 1));
            entries[i] = crc;
        }
        return entries;
    }();
    return t;
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

void
Crc64::update(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    const auto &t = table();
    uint64_t crc = state_;
    for (std::size_t i = 0; i < size; ++i)
        crc = t[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
    state_ = crc;
}

uint64_t
crc64(std::string_view text)
{
    Crc64 crc;
    crc.update(text);
    return crc.value();
}

std::string
checksumToHex(uint64_t checksum)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[checksum & 0xf];
        checksum >>= 4;
    }
    return out;
}

bool
checksumFromHex(std::string_view text, uint64_t &out)
{
    if (text.size() != 16)
        return false;
    uint64_t value = 0;
    for (char c : text) {
        const int digit = hexDigit(c);
        if (digit < 0)
            return false;
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    out = value;
    return true;
}

} // namespace heteromap
