/**
 * @file
 * Build provenance for telemetry artifacts. Every dump a run leaves
 * behind (combined telemetry JSON, flight-recorder JSONL postmortems,
 * statusz snapshots) is stamped with the git describe string, the
 * compiler, and the HETEROMAP_TELEMETRY / HETEROMAP_SANITIZE
 * configuration, so an artifact pulled out of CI weeks later is
 * attributable to the exact build that produced it.
 *
 * The definitions live in build_info.cc, generated at configure time
 * from util/build_info.cc.in (src/CMakeLists.txt runs git describe
 * and configure_file); this header is static.
 */

#ifndef HETEROMAP_UTIL_BUILD_INFO_HH
#define HETEROMAP_UTIL_BUILD_INFO_HH

#include <string>

namespace heteromap {
namespace telemetry {

/** Configure-time facts about this binary. Pointers are static. */
struct BuildInfo {
    const char *gitDescribe; //!< `git describe --always --dirty`
    const char *compiler;    //!< id + version, e.g. "GNU 13.2.0"
    const char *buildType;   //!< CMAKE_BUILD_TYPE
    const char *telemetry;   //!< "ON" / "OFF"
    const char *sanitize;    //!< HETEROMAP_SANITIZE preset
};

/** The process build info (same object every call). */
const BuildInfo &buildInfo();

/** One-line human-readable stamp for text headers. */
std::string buildInfoLine();

/** {"git":...,"compiler":...,...} for embedding in JSON documents. */
std::string buildInfoJson();

} // namespace telemetry
} // namespace heteromap

#endif // HETEROMAP_UTIL_BUILD_INFO_HH
