/**
 * @file
 * Data-integrity checksums for persisted artifacts. The serving tier
 * writes every model stream under a CRC64 (ECMA-182 polynomial,
 * reflected, the xz/GNU variant) so a torn write, a truncated file,
 * or a flipped bit is detected at load time as a recoverable error
 * instead of being parsed into a silently-wrong model. The
 * implementation is a standard 256-entry table computed at first use;
 * incremental updates let callers checksum streams without buffering
 * them twice.
 */

#ifndef HETEROMAP_UTIL_CHECKSUM_HH
#define HETEROMAP_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace heteromap {

/**
 * Incremental CRC64 (ECMA-182, reflected; CRC-64/XZ parameters:
 * init and xorout all-ones). Feed bytes with update(), read the
 * digest with value(); value() may be read mid-stream and feeding
 * may continue afterwards.
 */
class Crc64
{
  public:
    Crc64() = default;

    /** Fold @p size bytes at @p data into the running checksum. */
    void update(const void *data, std::size_t size);

    /** Convenience overload for string payloads. */
    void
    update(std::string_view text)
    {
        update(text.data(), text.size());
    }

    /** The checksum of everything fed so far. */
    uint64_t value() const { return state_ ^ kXorOut; }

    /** Reset to the empty-input state. */
    void reset() { state_ = kXorOut; }

  private:
    static constexpr uint64_t kXorOut = ~0ull;
    uint64_t state_ = kXorOut;
};

/** One-shot CRC64 of @p text. */
uint64_t crc64(std::string_view text);

/** Render @p checksum as fixed-width lowercase hex (16 digits). */
std::string checksumToHex(uint64_t checksum);

/**
 * Parse a checksumToHex() rendering. @return false (leaving @p out
 * untouched) when @p text is not exactly 16 hex digits.
 */
bool checksumFromHex(std::string_view text, uint64_t &out);

} // namespace heteromap

#endif // HETEROMAP_UTIL_CHECKSUM_HH
