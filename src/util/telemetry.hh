/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms with lock-free hot-path updates.
 *
 * The registry answers the question every perf/robustness PR needs
 * answered before its claims are trustworthy: where does the time go,
 * and what are the pools and caches doing under load? Instrumented
 * code records through the HM_COUNTER_* / HM_GAUGE_SET /
 * HM_HISTOGRAM_RECORD_MS macros below; a reporting path (the
 * --telemetry-out flag on every bench binary, or a snapshot() call)
 * turns the accumulated state into a text table, JSON, or CSV.
 *
 * Concurrency model: registration (first lookup of a name) takes a
 * mutex; every subsequent update is a relaxed std::atomic operation
 * on a stable object, so the hot path never locks. The macros cache
 * the looked-up metric in a function-local static, making the
 * steady-state cost a single atomic RMW.
 *
 * Build-time gate: configuring with -DHETEROMAP_TELEMETRY=OFF defines
 * HETEROMAP_TELEMETRY=0, which compiles every macro below to a no-op
 * and makes snapshot() return an empty snapshot. The metric *types*
 * stay fully functional in both builds so subsystems (e.g. the stats
 * cache) can keep exposing their legacy accessors through them.
 */

#ifndef HETEROMAP_UTIL_TELEMETRY_HH
#define HETEROMAP_UTIL_TELEMETRY_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#ifndef HETEROMAP_TELEMETRY
#define HETEROMAP_TELEMETRY 1
#endif

namespace heteromap {
namespace telemetry {

/** True when the build records telemetry (HETEROMAP_TELEMETRY=ON). */
constexpr bool
enabled()
{
    return HETEROMAP_TELEMETRY != 0;
}

/** Monotonic event counter. All operations are lock-free. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (e.g. a queue depth). */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time copy of a Histogram's state. */
struct HistogramSnapshot {
    static constexpr std::size_t kBuckets = 20;

    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; //!< 0 when count == 0
    double max = 0.0; //!< 0 when count == 0
    std::array<uint64_t, kBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : sum / count; }

    /**
     * Interpolated quantile estimate in milliseconds for @p q in
     * [0, 1]. Walks the cumulative bucket counts to the bucket holding
     * rank q*count and interpolates linearly inside it, with the
     * bucket edges tightened to the observed min/max so single-bucket
     * distributions report exact values. Returns 0 when empty.
     */
    double percentile(double q) const;

    /**
     * Fraction of recorded values <= @p ms, interpolating within the
     * straddling bucket. Returns 1 when empty (vacuously compliant);
     * the SLO tracker leans on that convention for idle windows.
     */
    double fractionBelow(double ms) const;
};

/**
 * Fixed-bucket latency histogram over milliseconds. Buckets are
 * log-ish spaced from 0.5us to 1s (plus an overflow bucket), chosen
 * to resolve both sub-microsecond inference latencies and
 * whole-training-sweep durations. record() is lock-free: one bucket
 * fetch_add plus count/sum/min/max atomics.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

    /** Upper bounds (ms) of buckets 0..kBuckets-2; the last is +inf. */
    static const std::array<double, kBuckets - 1> &bucketBoundsMs();

    /** Bucket a value of @p ms milliseconds falls into. */
    static std::size_t bucketIndexMs(double ms);

    void record(double ms);

    HistogramSnapshot snapshot() const;

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    void reset();

  private:
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/** Point-in-time copy of every registered metric, name-sorted. */
struct MetricsSnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /** Aligned human-readable table. */
    std::string toText() const;

    /** {"counters":{...},"gauges":{...},"histograms":{...}}. */
    std::string toJson() const;

    /** kind,name,field,value rows (histograms expand per field). */
    std::string toCsv() const;
};

/**
 * The process-wide name -> metric map. Metric objects live for the
 * process lifetime (the registry is never destroyed), so references
 * returned by counter()/gauge()/histogram() stay valid in static
 * destructors and exiting worker threads.
 */
class MetricsRegistry
{
  public:
    /** The singleton (leaked deliberately; see class comment). */
    static MetricsRegistry &instance();

    /** Find-or-create; the reference is stable forever. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /**
     * Copy out every registered metric. Returns an empty snapshot in
     * a HETEROMAP_TELEMETRY=OFF build (metrics still function for
     * their owners, but the registry reports nothing).
     */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every registered value (registrations survive). Values
     * concurrently updated during reset land in the post-reset
     * epoch; intended for tests and report tooling, not hot paths.
     */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/** Shorthand for MetricsRegistry::instance(). */
inline MetricsRegistry &
registry()
{
    return MetricsRegistry::instance();
}

/**
 * Scan argv for "--telemetry-out <path>" (or --telemetry-out=<path>),
 * strip it from the argument list, and return the path ("" when the
 * flag is absent). Shared by every bench binary so they all speak the
 * same reporting dialect without each growing a flag parser.
 */
std::string consumeTelemetryOutFlag(int &argc, char **argv);

/**
 * One JSON document holding both views: a Chrome trace_event object
 * ("traceEvents", loadable in about:tracing / Perfetto, which ignore
 * the extra key) and the current metrics snapshot ("metrics").
 * Drains the trace buffers.
 */
std::string combinedTelemetryJson();

/** Write combinedTelemetryJson() to @p path; warn+false on IO error. */
bool writeTelemetryFile(const std::string &path);

/**
 * RAII companion to consumeTelemetryOutFlag(): writes the combined
 * telemetry file at scope exit when the flag was present. Benches put
 * one at the top of main() and forget about it.
 */
class TelemetryFileWriter
{
  public:
    explicit TelemetryFileWriter(std::string path) : path_(std::move(path))
    {
    }

    ~TelemetryFileWriter()
    {
        if (!path_.empty())
            writeTelemetryFile(path_);
    }

    TelemetryFileWriter(const TelemetryFileWriter &) = delete;
    TelemetryFileWriter &operator=(const TelemetryFileWriter &) = delete;

  private:
    std::string path_;
};

} // namespace telemetry
} // namespace heteromap

#if HETEROMAP_TELEMETRY

/** Add @p delta to the process counter @p name (hot-path safe). */
#define HM_COUNTER_ADD(name, delta)                                       \
    do {                                                                  \
        static ::heteromap::telemetry::Counter &hmTelemetryCounter =      \
            ::heteromap::telemetry::registry().counter(name);             \
        hmTelemetryCounter.add(delta);                                    \
    } while (0)

/** Set the process gauge @p name to @p value (hot-path safe). */
#define HM_GAUGE_SET(name, value)                                         \
    do {                                                                  \
        static ::heteromap::telemetry::Gauge &hmTelemetryGauge =          \
            ::heteromap::telemetry::registry().gauge(name);               \
        hmTelemetryGauge.set(value);                                      \
    } while (0)

/** Record @p ms milliseconds into the histogram @p name. */
#define HM_HISTOGRAM_RECORD_MS(name, ms)                                  \
    do {                                                                  \
        static ::heteromap::telemetry::Histogram &hmTelemetryHistogram =  \
            ::heteromap::telemetry::registry().histogram(name);           \
        hmTelemetryHistogram.record(ms);                                  \
    } while (0)

#else // HETEROMAP_TELEMETRY=OFF: every macro compiles away.

#define HM_COUNTER_ADD(name, delta)                                       \
    do {                                                                  \
        (void)sizeof(delta);                                              \
    } while (0)

#define HM_GAUGE_SET(name, value)                                         \
    do {                                                                  \
        (void)sizeof(value);                                              \
    } while (0)

#define HM_HISTOGRAM_RECORD_MS(name, ms)                                  \
    do {                                                                  \
        (void)sizeof(ms);                                                 \
    } while (0)

#endif // HETEROMAP_TELEMETRY

/** Increment the process counter @p name by one. */
#define HM_COUNTER_INC(name) HM_COUNTER_ADD(name, 1)

#endif // HETEROMAP_UTIL_TELEMETRY_HH
