/**
 * @file
 * Timer is header-only; this translation unit anchors the target.
 */

#include "util/timer.hh"
