/**
 * @file
 * Deterministic streaming quantile sketch for drift detection.
 *
 * The drift monitor needs per-feature-dimension distribution
 * summaries that are (a) mergeable so per-thread accumulation stays
 * lock-free, (b) byte-identical regardless of insertion order or
 * thread count so baselines serialized into model envelopes replay
 * exactly, and (c) cheap enough to update on every served request.
 * HeteroMap's features live on a [0,1] grid discretized to 0.1
 * (features/bvars.hh, features/ivars.hh), so a fixed-bin counting
 * histogram is exact for the quantities we compare: integer bucket
 * counts plus an exact min/max, no floating-point accumulator whose
 * value would depend on summation order. GK/t-digest style sketches
 * buy nothing here and would break determinism.
 *
 * Drift scores: psiAgainst() is the Population Stability Index
 * (sum over bins of (p-q)*ln(p/q), Laplace-smoothed), the standard
 * "has this feature moved" score; ksAgainst() is the two-sample
 * Kolmogorov-Smirnov statistic (max CDF gap), kept as a second
 * opinion with a different sensitivity profile (PSI reacts to mass
 * reweighting, KS to location shift).
 */

#ifndef HETEROMAP_UTIL_SKETCH_HH
#define HETEROMAP_UTIL_SKETCH_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace heteromap {
namespace telemetry {

/** Bins a default-constructed sketch uses (0.05-wide over [0,1]). */
inline constexpr std::size_t kSketchDefaultBins = 20;

class QuantileSketch
{
  public:
    /** Sketch over [@p lo, @p hi] with @p bins equal-width bins. */
    explicit QuantileSketch(std::size_t bins = kSketchDefaultBins,
                            double lo = 0.0, double hi = 1.0);

    /** Count @p value (clamped into [lo, hi]). O(1). */
    void insert(double value);

    /**
     * Fold @p other into this sketch. Requires identical bin layout.
     * Commutative and associative, so any thread-count / merge-order
     * combination over the same multiset yields an identical sketch.
     */
    void merge(const QuantileSketch &other);

    uint64_t count() const { return count_; }
    std::size_t bins() const { return counts_.size(); }
    double lowerBound() const { return lo_; }
    double upperBound() const { return hi_; }
    uint64_t binCount(std::size_t bin) const { return counts_[bin]; }

    /** Exact observed extrema (0 when the sketch is empty). */
    double observedMin() const;
    double observedMax() const;

    /** Interpolated quantile for @p q in [0,1]; 0 when empty. */
    double quantile(double q) const;

    /** Fraction of mass in bins at or below the bin of @p value. */
    double cdfAt(double value) const;

    /**
     * Population Stability Index of this sketch (the live window)
     * against @p baseline. Both sides are Laplace-smoothed with
     * @p epsilon pseudo-counts per bin so empty bins stay finite.
     * >= 0; 0 iff the normalized bin masses agree. Conventional
     * reading: < 0.1 stable, 0.1-0.25 drifting, > 0.25 shifted.
     */
    double psiAgainst(const QuantileSketch &baseline,
                      double epsilon = 0.5) const;

    /** Two-sample KS statistic (max |CDF gap|) in [0, 1]. */
    double ksAgainst(const QuantileSketch &baseline) const;

    /** Drop all counts (layout survives). */
    void clear();

    /**
     * Deterministic text serialization: same multiset of inserts ->
     * byte-identical output, independent of order and threading.
     */
    void save(std::ostream &os) const;
    std::string toString() const;

    /** Parse save() output; false (and untouched sketch) on error. */
    static bool load(std::istream &is, QuantileSketch *out);

    bool operator==(const QuantileSketch &other) const;
    bool operator!=(const QuantileSketch &other) const
    {
        return !(*this == other);
    }

  private:
    std::size_t binOf(double value) const;

    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    // Exact extrema; stored as "unset" sentinels via hasExtrema_ so
    // empty sketches serialize identically however they were made.
    bool hasExtrema_ = false;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace telemetry
} // namespace heteromap

#endif // HETEROMAP_UTIL_SKETCH_HH
