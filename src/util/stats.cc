/**
 * @file
 * Implementation of the numeric helpers.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace heteromap {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return kahanSum(xs) / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        HM_ASSERT(x > 0.0, "geomean requires positive samples, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double mu = mean(xs);
    double accum = 0.0;
    for (double x : xs)
        accum += (x - mu) * (x - mu);
    return std::sqrt(accum / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        HM_FATAL("minOf on empty vector");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        HM_FATAL("maxOf on empty vector");
    return *std::max_element(xs.begin(), xs.end());
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        HM_FATAL("quantile on empty vector");
    q = clamp(q, 0.0, 1.0);
    std::sort(xs.begin(), xs.end());
    double pos = q * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
clamp(double x, double lo, double hi)
{
    return std::min(std::max(x, lo), hi);
}

double
discretize01(double x, double step)
{
    HM_ASSERT(step > 0.0, "discretize01 requires a positive step");
    x = clamp(x, 0.0, 1.0);
    double snapped = std::floor(x / step + 0.5) * step;
    return clamp(snapped, 0.0, 1.0);
}

double
logNormalize(double value, double max_value)
{
    HM_ASSERT(max_value > 0.0, "logNormalize requires a positive maximum");
    if (value <= 0.0)
        return 0.0;
    double norm = std::log1p(value) / std::log1p(max_value);
    return clamp(norm, 0.0, 1.0);
}

double
relDiff(double a, double b)
{
    double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
    return std::fabs(a - b) / scale;
}

double
kahanSum(const std::vector<double> &xs)
{
    double sum = 0.0;
    double comp = 0.0;
    for (double x : xs) {
        double y = x - comp;
        double t = sum + y;
        comp = (t - sum) - y;
        sum = t;
    }
    return sum;
}

} // namespace heteromap
