/**
 * @file
 * Work-stealing thread pool implementation.
 */

#include "util/thread_pool.hh"

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"

namespace heteromap {

std::size_t
ThreadPool::defaultThreadCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool &
ThreadPool::shared()
{
    // Function-local static: constructed on first use, joined at
    // process exit after main()'s pools are gone.
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        stop_.store(true);
    }
    idle_cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    HM_ASSERT(task != nullptr, "submitted an empty task");
    HM_ASSERT(!stop_.load(), "submit() on a stopping pool");
    Worker &target =
        *workers_[next_.fetch_add(1) % workers_.size()];
    pending_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(target.mutex);
        target.queue.push_back(std::move(task));
    }
    // Publish under idle_mutex_ so a worker checking its wait
    // predicate cannot miss the increment.
    {
        std::lock_guard<std::mutex> lock(idle_mutex_);
        HM_GAUGE_SET("pool.queue_depth", double(queued_.fetch_add(1) + 1));
    }
    idle_cv_.notify_one();
}

bool
ThreadPool::tryPop(std::size_t self, Task &task)
{
    // Own queue first (front: submission order), then steal from the
    // back of each sibling, scanning from our right-hand neighbour.
    {
        Worker &own = *workers_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.queue.empty()) {
            task = std::move(own.queue.front());
            own.queue.pop_front();
            HM_GAUGE_SET("pool.queue_depth",
                         double(queued_.fetch_sub(1) - 1));
            return true;
        }
    }
    for (std::size_t offset = 1; offset < workers_.size(); ++offset) {
        Worker &victim = *workers_[(self + offset) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.queue.empty()) {
            task = std::move(victim.queue.back());
            victim.queue.pop_back();
            HM_GAUGE_SET("pool.queue_depth",
                         double(queued_.fetch_sub(1) - 1));
            HM_COUNTER_INC("pool.steals");
            return true;
        }
    }
    return false;
}

void
ThreadPool::runTask(Task &task)
{
    HM_COUNTER_INC("pool.tasks");
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mutex_);
        if (first_exception_ == nullptr)
            first_exception_ = std::current_exception();
    }
    std::size_t left = pending_.fetch_sub(1) - 1;
    if (left == 0) {
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_all();
    }
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        Task task;
        if (tryPop(self, task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(idle_mutex_);
        if (stop_.load() && queued_.load() == 0)
            return;
        Timer idle;
        idle.start();
        idle_cv_.wait(lock, [this] {
            return stop_.load() || queued_.load() > 0;
        });
        HM_HISTOGRAM_RECORD_MS("pool.worker_idle_ms",
                               idle.elapsedMillis());
        if (stop_.load() && queued_.load() == 0)
            return;
    }
}

void
ThreadPool::wait()
{
    {
        std::unique_lock<std::mutex> lock(done_mutex_);
        done_cv_.wait(lock,
                      [this] { return pending_.load() == 0; });
    }
    std::exception_ptr rethrow;
    {
        std::lock_guard<std::mutex> lock(exception_mutex_);
        std::swap(rethrow, first_exception_);
    }
    if (rethrow != nullptr)
        std::rethrow_exception(rethrow);
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    for (std::size_t i = 0; i < count; ++i)
        submit([&body, i] { body(i); });
    wait();
}

} // namespace heteromap
