/**
 * @file
 * Trace-span buffers, Chrome trace_event export, and the minimal
 * JSON parser/validator backing the exported-trace acceptance check.
 */

#include "util/trace.hh"

#include "util/build_info.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace heteromap {
namespace telemetry {

namespace {

std::atomic<bool> tracingFlag{true};

/** One thread's span ring. The owning thread appends; drains lock. */
struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events; //!< ring storage, capacity-bounded
    std::size_t next = 0;           //!< overwrite cursor once full
    bool wrapped = false;
    uint32_t tid = 0;

    void
    push(const TraceEvent &event)
    {
        bool dropped = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (events.size() < kTraceRingCapacity) {
                events.push_back(event);
            } else {
                events[next] = event;
                next = (next + 1) % kTraceRingCapacity;
                wrapped = true;
                dropped = true;
            }
        }
        if (dropped)
            HM_COUNTER_INC("trace.dropped");
    }

    /** Extract events oldest-first and reset the ring. Caller locks. */
    std::vector<TraceEvent>
    takeLocked()
    {
        std::vector<TraceEvent> out;
        out.reserve(events.size());
        if (wrapped) {
            out.insert(out.end(), events.begin() + long(next),
                       events.end());
            out.insert(out.end(), events.begin(),
                       events.begin() + long(next));
        } else {
            out = std::move(events);
        }
        events.clear();
        next = 0;
        wrapped = false;
        return out;
    }
};

/** Process-wide set of live thread buffers plus exited threads' events. */
class Collector
{
  public:
    static Collector &
    instance()
    {
        // Leaked: threads (and their buffer destructors) may outlive
        // main()'s statics.
        static Collector *the = new Collector;
        return *the;
    }

    ThreadBuffer *
    adopt()
    {
        auto buffer = std::make_unique<ThreadBuffer>();
        ThreadBuffer *raw = buffer.get();
        std::lock_guard<std::mutex> lock(mutex_);
        raw->tid = nextTid_++;
        live_.push_back(std::move(buffer));
        return raw;
    }

    void
    retire(ThreadBuffer *buffer)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            auto events = buffer->takeLocked();
            retired_.insert(retired_.end(), events.begin(), events.end());
        }
        auto it = std::find_if(
            live_.begin(), live_.end(),
            [buffer](const auto &owned) { return owned.get() == buffer; });
        if (it != live_.end())
            live_.erase(it);
    }

    std::vector<TraceEvent>
    drain()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<TraceEvent> out = std::move(retired_);
        retired_.clear();
        for (const auto &buffer : live_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            auto events = buffer->takeLocked();
            out.insert(out.end(), events.begin(), events.end());
        }
        std::sort(out.begin(), out.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      return a.startNs < b.startNs;
                  });
        return out;
    }

  private:
    Collector() = default;

    std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> live_;
    std::vector<TraceEvent> retired_;
    uint32_t nextTid_ = 1;
};

/** Registers with the collector on first span, retires on thread exit. */
struct ThreadBufferHandle {
    ThreadBuffer *buffer;

    ThreadBufferHandle() : buffer(Collector::instance().adopt()) {}
    ~ThreadBufferHandle() { Collector::instance().retire(buffer); }
};

ThreadBuffer &
localBuffer()
{
    thread_local ThreadBufferHandle handle;
    return *handle.buffer;
}

} // namespace

void
setTracingEnabled(bool enabled)
{
    tracingFlag.store(enabled, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return enabled() && tracingFlag.load(std::memory_order_relaxed);
}

uint64_t
traceNowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - epoch)
                        .count());
}

void
recordSpan(const char *name, uint64_t start_ns, uint64_t end_ns)
{
    if (!tracingEnabled())
        return;
    ThreadBuffer &buffer = localBuffer();
    TraceEvent event;
    event.name = name;
    event.startNs = start_ns;
    event.durNs = end_ns >= start_ns ? end_ns - start_ns : 0;
    event.tid = buffer.tid;
    buffer.push(event);
}

std::vector<TraceEvent>
drainTrace()
{
    if (!enabled())
        return {};
    return Collector::instance().drain();
}

void
clearTrace()
{
    if (enabled())
        Collector::instance().drain();
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
traceEventsToJsonArray(const std::vector<TraceEvent> &events)
{
    // Complete ("X") events: ts/dur in fractional microseconds, the
    // unit the trace_event format specifies.
    std::ostringstream oss;
    oss << "[";
    bool first = true;
    for (const TraceEvent &event : events) {
        char buf[64];
        oss << (first ? "" : ",") << "{\"name\":\""
            << jsonEscape(event.name)
            << "\",\"cat\":\"heteromap\",\"ph\":\"X\",\"ts\":";
        std::snprintf(buf, sizeof(buf), "%.3f",
                      double(event.startNs) / 1e3);
        oss << buf << ",\"dur\":";
        std::snprintf(buf, sizeof(buf), "%.3f",
                      double(event.durNs) / 1e3);
        oss << buf << ",\"pid\":1,\"tid\":" << event.tid << "}";
        first = false;
    }
    oss << "]";
    return oss.str();
}

std::string
traceToChromeJson(const std::vector<TraceEvent> &events)
{
    // The buildInfo key makes the artifact attributable to a git
    // state and build configuration; trace viewers ignore unknown
    // top-level keys.
    return "{\"traceEvents\":" + traceEventsToJsonArray(events) +
           ",\"buildInfo\":" + buildInfoJson() + "}";
}

namespace {

/** Minimal JSON value tree — just enough to audit a trace document. */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;
};

/** Recursive-descent JSON parser (throws std::runtime_error). */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view literal)
    {
        if (text_.compare(pos_, literal.size(), literal) != 0)
            return false;
        pos_ += literal.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        JsonValue value;
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"':
            value.kind = JsonValue::Kind::String;
            value.string = parseString();
            return value;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
            return value;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            value.kind = JsonValue::Kind::Bool;
            return value;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return value;
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        expect('{');
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            value.object.emplace(std::move(key), parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        expect('[');
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.array.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char escape = text_[pos_++];
            switch (escape) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Validation only cares about ASCII names; encode
                // non-ASCII code points as '?' rather than UTF-8.
                out += code < 0x80 ? char(code) : '?';
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        try {
            value.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("unparseable number");
        }
        return value;
    }
};

/** The "traceEvents" array of @p doc, or @p doc itself when an array. */
const JsonValue *
traceEventsOf(const JsonValue &doc, std::string *error)
{
    if (doc.kind == JsonValue::Kind::Array)
        return &doc;
    if (doc.kind == JsonValue::Kind::Object) {
        auto found = doc.object.find("traceEvents");
        if (found == doc.object.end()) {
            if (error != nullptr)
                *error = "object document lacks a traceEvents key";
            return nullptr;
        }
        if (found->second.kind != JsonValue::Kind::Array) {
            if (error != nullptr)
                *error = "traceEvents is not an array";
            return nullptr;
        }
        return &found->second;
    }
    if (error != nullptr)
        *error = "document is neither an array nor an object";
    return nullptr;
}

} // namespace

bool
validateJson(const std::string &json, std::string *error)
{
    try {
        JsonParser(json).parse();
        return true;
    } catch (const std::exception &e) {
        if (error != nullptr)
            *error = e.what();
        return false;
    }
}

std::vector<ParsedTraceEvent>
parseChromeTrace(const std::string &json, std::string *error)
{
    JsonValue doc;
    try {
        doc = JsonParser(json).parse();
    } catch (const std::exception &e) {
        if (error != nullptr)
            *error = e.what();
        return {};
    }
    const JsonValue *events = traceEventsOf(doc, error);
    if (events == nullptr)
        return {};

    std::vector<ParsedTraceEvent> out;
    out.reserve(events->array.size());
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &entry = events->array[i];
        if (entry.kind != JsonValue::Kind::Object) {
            if (error != nullptr)
                *error = "event " + std::to_string(i) +
                         " is not an object";
            return {};
        }
        ParsedTraceEvent event;
        auto string_field = [&](const char *key, std::string *dst) {
            auto found = entry.object.find(key);
            if (found == entry.object.end() ||
                found->second.kind != JsonValue::Kind::String)
                return false;
            *dst = found->second.string;
            return true;
        };
        auto number_field = [&](const char *key, double *dst) {
            auto found = entry.object.find(key);
            if (found == entry.object.end() ||
                found->second.kind != JsonValue::Kind::Number)
                return false;
            *dst = found->second.number;
            return true;
        };
        if (!string_field("name", &event.name) ||
            !string_field("ph", &event.ph) ||
            !number_field("ts", &event.ts) ||
            !number_field("pid", &event.pid) ||
            !number_field("tid", &event.tid)) {
            if (error != nullptr)
                *error = "event " + std::to_string(i) +
                         " lacks a required name/ph/ts/pid/tid field";
            return {};
        }
        event.hasDur = number_field("dur", &event.dur);
        out.push_back(std::move(event));
    }
    return out;
}

bool
validateChromeTrace(const std::string &json, std::string *error,
                    std::size_t *num_events)
{
    std::string parse_error;
    std::vector<ParsedTraceEvent> events =
        parseChromeTrace(json, &parse_error);
    if (events.empty() && !parse_error.empty()) {
        if (error != nullptr)
            *error = parse_error;
        return false;
    }

    // B/E events must balance, LIFO, per (pid, tid) track.
    std::map<std::pair<double, double>, std::vector<std::string>> stacks;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const ParsedTraceEvent &event = events[i];
        if (event.ph == "X") {
            if (!event.hasDur || event.dur < 0.0) {
                if (error != nullptr)
                    *error = "X event " + std::to_string(i) +
                             " lacks a non-negative dur";
                return false;
            }
        } else if (event.ph == "B") {
            stacks[{event.pid, event.tid}].push_back(event.name);
        } else if (event.ph == "E") {
            auto &stack = stacks[{event.pid, event.tid}];
            if (stack.empty() || stack.back() != event.name) {
                if (error != nullptr)
                    *error = "E event " + std::to_string(i) + " (" +
                             event.name + ") does not close the open span";
                return false;
            }
            stack.pop_back();
        } else if (event.ph != "M" && event.ph != "i" &&
                   event.ph != "C") {
            if (error != nullptr)
                *error = "event " + std::to_string(i) +
                         " has unsupported ph '" + event.ph + "'";
            return false;
        }
    }
    for (const auto &[track, stack] : stacks) {
        if (!stack.empty()) {
            if (error != nullptr)
                *error = "unbalanced B event: " + stack.back();
            return false;
        }
    }
    if (num_events != nullptr)
        *num_events = events.size();
    return true;
}

} // namespace telemetry
} // namespace heteromap
