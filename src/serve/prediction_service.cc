/**
 * @file
 * Prediction service implementation.
 */

#include "serve/prediction_service.hh"

#include <algorithm>
#include <chrono>
#include <optional>

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "util/trace.hh"

namespace heteromap {
namespace serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
millisBetween(SteadyClock::time_point from, SteadyClock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

SteadyClock::duration
millisDuration(double ms)
{
    return std::chrono::duration_cast<SteadyClock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

/** Clamp the zero-means-default knobs to sane minima. */
ServiceOptions
normalized(ServiceOptions options)
{
    options.workers = std::max<std::size_t>(1, options.workers);
    options.queueCapacity =
        std::max<std::size_t>(1, options.queueCapacity);
    options.maxBatch = std::max<std::size_t>(1, options.maxBatch);
    options.statsShards = std::max<std::size_t>(1, options.statsShards);
    options.statsCapacityPerShard =
        std::max<std::size_t>(1, options.statsCapacityPerShard);
    return options;
}

} // namespace

PredictionService::PredictionService(ModelRegistry &models,
                                     ServiceOptions options)
    : models_(models), options_(normalized(std::move(options))),
      queue_(options_.queueCapacity), pool_(options_.workers)
{
    HM_ASSERT(models_.current() != nullptr,
              "PredictionService needs a registry with at least one "
              "published model");
    stats_shards_.reserve(options_.statsShards);
    for (std::size_t s = 0; s < options_.statsShards; ++s) {
        // Every shard registers the same prefix, so the shared
        // "serve.stats_cache.*" counters aggregate across shards
        // (and the per-shard accessors read the same atomics).
        stats_shards_.push_back(std::make_unique<GraphStatsCache>(
            options_.statsCapacityPerShard, "serve.stats_cache"));
    }
    for (std::size_t w = 0; w < pool_.threadCount(); ++w)
        pool_.submit([this] { workerLoop(); });
}

PredictionService::~PredictionService()
{
    try {
        close();
    } catch (const std::exception &e) {
        warn("prediction service worker failed during shutdown: ",
             e.what());
    }
}

GraphStatsCache &
PredictionService::shardFor(const BatchKey &key)
{
    return *stats_shards_[hashBatchKey(key) % stats_shards_.size()];
}

std::future<ServeResponse>
PredictionService::submit(ServeRequest request)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    HM_COUNTER_INC("serve.submitted");
    HM_ASSERT(request.workload != nullptr && request.graph != nullptr,
              "a serve request needs a workload and a graph");

    PendingRequest pending;
    std::future<ServeResponse> future = pending.promise.get_future();
    pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    pending.key = makeBatchKey(request);
    pending.enqueued = SteadyClock::now();
    if (request.deadlineMs > 0.0) {
        pending.hasDeadline = true;
        pending.deadline =
            pending.enqueued + millisDuration(request.deadlineMs);
    }
    pending.request = std::move(request);

    auto respondClosed = [&] {
        ServeResponse response;
        response.status = ServeStatus::Closed;
        response.requestId = pending.id;
        pending.promise.set_value(std::move(response));
    };

    if (closed_.load(std::memory_order_acquire)) {
        respondClosed();
        return future;
    }

    switch (queue_.push(pending, options_.admission)) {
      case RequestQueue::PushResult::Admitted:
        admitted_.fetch_add(1, std::memory_order_relaxed);
        HM_COUNTER_INC("serve.admitted");
        break;
      case RequestQueue::PushResult::Full:
        respondShed(pending, ShedReason::QueueFull);
        break;
      case RequestQueue::PushResult::Closed:
        respondClosed();
        break;
    }
    return future;
}

void
PredictionService::respondShed(PendingRequest &pending, ShedReason reason)
{
    shed_.fetch_add(1, std::memory_order_relaxed);
    HM_COUNTER_INC("serve.shed");
    if (reason == ShedReason::QueueFull)
        HM_COUNTER_INC("serve.shed.queue_full");
    else if (reason == ShedReason::DeadlineExpired)
        HM_COUNTER_INC("serve.shed.deadline");

    ServeResponse response;
    response.status = ServeStatus::Shed;
    response.shedReason = reason;
    response.requestId = pending.id;
    pending.promise.set_value(std::move(response));
}

void
PredictionService::noteResponded(std::size_t count)
{
    responded_.fetch_add(count, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(drain_mutex_);
    }
    drain_cv_.notify_all();
}

void
PredictionService::workerLoop()
{
    PendingRequest first;
    while (queue_.pop(first)) {
        std::vector<PendingRequest> batch;
        batch.push_back(std::move(first));
        gatherBatch(batch);
        serveBatch(batch);
        noteResponded(batch.size());
    }
}

void
PredictionService::gatherBatch(std::vector<PendingRequest> &batch)
{
    if (options_.maxBatch <= batch.size())
        return;
    const BatchKey key = batch.front().key;
    const auto deadline =
        SteadyClock::now() + millisDuration(options_.maxBatchDelayMs);
    queue_.popMatchingUntil(key, options_.maxBatch - batch.size(),
                            deadline, batch);
}

void
PredictionService::serveBatch(std::vector<PendingRequest> &batch)
{
    HM_SPAN("serve.batch");
    HM_COUNTER_INC("serve.batches");
    HM_COUNTER_ADD("serve.batched_requests", batch.size());

    const auto start = SteadyClock::now();

    // Shed whatever outlived its queueing budget before spending the
    // measurement on it.
    std::vector<PendingRequest> live;
    live.reserve(batch.size());
    for (PendingRequest &pending : batch) {
        if (pending.hasDeadline && start > pending.deadline)
            respondShed(pending, ShedReason::DeadlineExpired);
        else
            live.push_back(std::move(pending));
    }
    if (live.empty())
        return;

    // Pin the model for the whole batch: every response below is
    // served by this one snapshot, however many hot-swaps land
    // concurrently — no torn reads, and one epoch per batch.
    std::shared_ptr<const ModelSnapshot> snapshot = models_.current();
    HM_ASSERT(snapshot != nullptr,
              "serving requires a published model");

    Timer timer;
    timer.start();

    // One GraphStats measurement amortizes across the batch (every
    // member shares the fingerprint by construction).
    const GraphStats stats = [&] {
        HM_SPAN("serve.measure");
        return shardFor(live.front().key)
            .measure(*live.front().request.graph,
                     live.front().request.measure);
    }();
    HM_HISTOGRAM_RECORD_MS("serve.batch.measure_ms",
                           timer.lapMillis());

    // Group members by (workload, input): one featurize per group,
    // and one inference serves every unsupervised member of it.
    std::vector<bool> served(live.size(), false);
    for (std::size_t i = 0; i < live.size(); ++i) {
        if (served[i])
            continue;
        const ServeRequest &lead = live[i].request;
        const std::string workload_name = lead.workload->name();

        timer.lapMillis(); // realign: charge only the featurize below
        BenchmarkCase bench = [&] {
            HM_SPAN("serve.featurize");
            return makeCase(*lead.workload, *lead.graph,
                            lead.inputName, stats);
        }();
        HM_HISTOGRAM_RECORD_MS("serve.batch.featurize_ms",
                               timer.lapMillis());

        std::optional<Deployment> group_deployment;
        for (std::size_t j = i; j < live.size(); ++j) {
            if (served[j])
                continue;
            const ServeRequest &member = live[j].request;
            if (member.inputName != lead.inputName ||
                member.workload->name() != workload_name) {
                continue;
            }
            served[j] = true;

            ServeResponse response;
            response.status = ServeStatus::Ok;
            response.requestId = live[j].id;
            response.modelEpoch = snapshot->epoch;
            response.batchSize = live.size();
            response.queueMs = millisBetween(live[j].enqueued, start);

            if (member.supervised) {
                superviseDeploy(snapshot, bench, response);
            } else {
                if (!group_deployment) {
                    HM_SPAN("serve.infer");
                    group_deployment =
                        snapshot->framework->deploy(bench);
                }
                response.deployment = *group_deployment;
            }

            response.serviceMs =
                millisBetween(start, SteadyClock::now());
            HM_HISTOGRAM_RECORD_MS("serve.request.service_ms",
                                   response.serviceMs);
            completed_.fetch_add(1, std::memory_order_relaxed);
            HM_COUNTER_INC("serve.completed");
            live[j].promise.set_value(std::move(response));
        }
    }
}

void
PredictionService::superviseDeploy(
    const std::shared_ptr<const ModelSnapshot> &snapshot,
    const BenchmarkCase &bench, ServeResponse &response)
{
    // The lane serializes: the Supervisor owns the fault clock and
    // is stateful, so supervised deployments order behind the mutex.
    std::lock_guard<std::mutex> lock(supervised_mutex_);
    if (supervised_model_ != snapshot) {
        // A hot-swap landed since the last supervised deployment;
        // rebind the ladder to the new model (the fault clock
        // restarts with it — documented in DESIGN.md §10).
        supervised_model_ = snapshot;
        supervisor_ = std::make_unique<Supervisor>(
            *snapshot->framework, options_.faults,
            options_.supervisor);
    }
    HM_SPAN("serve.supervised");
    DeploymentOutcome outcome = supervisor_->deploy(bench);
    HM_COUNTER_INC("serve.supervised");
    if (!outcome.withinTolerance)
        HM_COUNTER_INC("serve.supervised_degraded");
    response.deployment = outcome.deployment;
    response.outcome = std::move(outcome);
}

void
PredictionService::drain()
{
    const uint64_t target = admitted_.load(std::memory_order_acquire);
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [&] {
        return responded_.load(std::memory_order_acquire) >= target;
    });
}

void
PredictionService::close()
{
    std::lock_guard<std::mutex> lock(close_mutex_);
    closed_.store(true, std::memory_order_release);
    queue_.close();
    // Workers drain every already-admitted request (pop() only
    // returns false once the queue is closed *and* empty), then
    // their loop tasks finish; wait() rethrows the first worker
    // exception, if any.
    pool_.wait();
}

uint64_t
PredictionService::statsHits() const
{
    // Shards share the prefixed registry counters, so any shard
    // reads the aggregate.
    return stats_shards_.front()->hits();
}

uint64_t
PredictionService::statsMisses() const
{
    return stats_shards_.front()->misses();
}

} // namespace serve
} // namespace heteromap
