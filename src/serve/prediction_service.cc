/**
 * @file
 * Prediction service implementation.
 */

#include "serve/prediction_service.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "model/decision_tree.hh"
#include "util/build_info.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "util/trace.hh"

namespace heteromap {
namespace serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
millisBetween(SteadyClock::time_point from, SteadyClock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

SteadyClock::duration
millisDuration(double ms)
{
    return std::chrono::duration_cast<SteadyClock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               SteadyClock::now().time_since_epoch())
        .count();
}

void
sleepMillis(double ms)
{
    if (ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
}

/** Clamp the zero-means-default knobs to sane minima. */
ServiceOptions
normalized(ServiceOptions options)
{
    options.workers = std::max<std::size_t>(1, options.workers);
    options.queueCapacity =
        std::max<std::size_t>(1, options.queueCapacity);
    options.maxBatch = std::max<std::size_t>(1, options.maxBatch);
    options.statsShards = std::max<std::size_t>(1, options.statsShards);
    options.statsCapacityPerShard =
        std::max<std::size_t>(1, options.statsCapacityPerShard);
    options.watchdog.pollMs = std::max(0.5, options.watchdog.pollMs);
    return options;
}

} // namespace

const char *
degradationLevelName(DegradationLevel level)
{
    switch (level) {
      case DegradationLevel::Normal: return "normal";
      case DegradationLevel::ShrinkBatch: return "shrink-batch";
      case DegradationLevel::BypassSupervised:
        return "bypass-supervised";
      case DegradationLevel::FallbackHeuristic:
        return "fallback-heuristic";
    }
    HM_PANIC("unreachable degradation level ",
             static_cast<int>(level));
}

PredictionService::PredictionService(ModelRegistry &models,
                                     ServiceOptions options)
    : models_(models), options_(normalized(std::move(options))),
      queue_(options_.queueCapacity), drift_(options_.drift),
      slo_(options_.slo), pool_(options_.workers)
{
    HM_ASSERT(models_.current() != nullptr,
              "PredictionService needs a registry with at least one "
              "published model");
    stats_shards_.reserve(options_.statsShards);
    for (std::size_t s = 0; s < options_.statsShards; ++s) {
        // Every shard registers the service's prefix, so the
        // "<prefix>.*" counters aggregate across shards (and the
        // per-shard accessors read the same atomics). Co-resident
        // services that keep the default prefix alias each other —
        // multi-service hosts pass distinct prefixes (see
        // ServiceOptions::statsMetricsPrefix).
        stats_shards_.push_back(std::make_unique<GraphStatsCache>(
            options_.statsCapacityPerShard,
            options_.statsMetricsPrefix.empty()
                ? nullptr
                : options_.statsMetricsPrefix.c_str()));
    }

    // The last-resort model: the paper's hand-built heuristic tree
    // needs no training, so it is always ready — and its measure
    // path rides the same warm stats shards as the real model.
    fallback_ = std::make_unique<HeteroMap>(
        models_.pair(), makePredictor(PredictorKind::DecisionTree),
        models_.oracle());

    HM_GAUGE_SET("serve.degradation_level", 0.0);

    health_.reserve(pool_.threadCount());
    for (std::size_t w = 0; w < pool_.threadCount(); ++w) {
        health_.push_back(std::make_unique<WorkerHealth>());
        health_.back()->alive.store(true, std::memory_order_release);
        health_.back()->beatNs.store(nowNs(),
                                     std::memory_order_release);
    }
    for (std::size_t w = 0; w < pool_.threadCount(); ++w)
        pool_.submit([this, w] { workerLoop(w); });

    if (options_.watchdog.enabled)
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

PredictionService::~PredictionService()
{
    try {
        close();
    } catch (const std::exception &e) {
        warn("prediction service worker failed during shutdown: ",
             e.what());
    }
}

GraphStatsCache &
PredictionService::shardFor(const BatchKey &key)
{
    return *stats_shards_[hashBatchKey(key) % stats_shards_.size()];
}

DegradationLevel
PredictionService::degradationLevel() const
{
    return static_cast<DegradationLevel>(
        degradation_.load(std::memory_order_acquire));
}

void
PredictionService::beat(WorkerHealth &health)
{
    health.beatNs.store(nowNs(), std::memory_order_release);
}

void
PredictionService::noteFault()
{
    last_fault_ns_.store(nowNs(), std::memory_order_release);
    int level = degradation_.load(std::memory_order_acquire);
    while (level < static_cast<int>(
                       DegradationLevel::FallbackHeuristic)) {
        if (degradation_.compare_exchange_weak(
                level, level + 1, std::memory_order_acq_rel)) {
            HM_COUNTER_INC("serve.degradation_steps");
            HM_GAUGE_SET("serve.degradation_level",
                         static_cast<double>(level + 1));
            warn("serve: degradation escalated to ",
                 degradationLevelName(
                     static_cast<DegradationLevel>(level + 1)));
            // Escalating into (or past) the supervised bypass is the
            // "something is really wrong" moment — capture the
            // provenance of everything served up to it.
            if (level + 1 >=
                static_cast<int>(DegradationLevel::BypassSupervised))
                maybePostmortem("ladder-escalation");
            break;
        }
    }
}

std::future<ServeResponse>
PredictionService::submit(ServeRequest request)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    HM_COUNTER_INC("serve.submitted");
    HM_ASSERT(request.workload != nullptr && request.graph != nullptr,
              "a serve request needs a workload and a graph");

    // Chaos: admission delay models a slow front door (a saturated
    // RPC layer); it runs on the submitter's thread, before the
    // queue, so it never holds a service lock.
    if (options_.chaos != nullptr) {
        if (auto action =
                options_.chaos->visit(ChaosPoint::AdmissionDelay)) {
            sleepMillis(action->delayMs);
        }
    }

    PendingRequest pending;
    std::future<ServeResponse> future = pending.promise.get_future();
    pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    pending.key = makeBatchKey(request);
    pending.enqueued = SteadyClock::now();
    if (request.deadlineMs > 0.0) {
        pending.hasDeadline = true;
        pending.deadline =
            pending.enqueued + millisDuration(request.deadlineMs);
    }
    pending.request = std::move(request);

    auto respondClosed = [&] {
        ServeResponse response;
        response.status = ServeStatus::Closed;
        response.requestId = pending.id;
        respond(pending, std::move(response));
    };

    if (closed_.load(std::memory_order_acquire)) {
        respondClosed();
        return future;
    }

    switch (queue_.push(pending, options_.admission)) {
      case RequestQueue::PushResult::Admitted:
        admitted_.fetch_add(1, std::memory_order_relaxed);
        HM_COUNTER_INC("serve.admitted");
        break;
      case RequestQueue::PushResult::Full:
        respondShed(pending, ShedReason::QueueFull);
        break;
      case RequestQueue::PushResult::Closed:
        respondClosed();
        break;
    }
    return future;
}

void
PredictionService::respond(PendingRequest &pending,
                           ServeResponse response)
{
    pending.responded = true;
    pending.promise.set_value(std::move(response));
}

void
PredictionService::respondShed(PendingRequest &pending, ShedReason reason)
{
    shed_.fetch_add(1, std::memory_order_relaxed);
    HM_COUNTER_INC("serve.shed");
    if (reason == ShedReason::QueueFull)
        HM_COUNTER_INC("serve.shed.queue_full");
    else if (reason == ShedReason::DeadlineExpired)
        HM_COUNTER_INC("serve.shed.deadline");

    ServeResponse response;
    response.status = ServeStatus::Shed;
    response.shedReason = reason;
    response.requestId = pending.id;
    respond(pending, std::move(response));
}

void
PredictionService::failBatch(std::vector<PendingRequest> &batch,
                             const std::string &what)
{
    batch_failures_.fetch_add(1, std::memory_order_relaxed);
    HM_COUNTER_INC("serve.worker.batch_failures");
    noteFault();

    const int level = degradation_.load(std::memory_order_acquire);
    for (PendingRequest &pending : batch) {
        if (pending.responded)
            continue;
        errors_.fetch_add(1, std::memory_order_relaxed);
        HM_COUNTER_INC("serve.errors");
        ServeResponse response;
        response.status = ServeStatus::Error;
        response.requestId = pending.id;
        response.degradationLevel = level;
        response.error =
            ServeError{ErrorCode::Unavailable, what};
        respond(pending, std::move(response));
    }
}

void
PredictionService::noteResponded(std::size_t count)
{
    responded_.fetch_add(count, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(drain_mutex_);
    }
    drain_cv_.notify_all();
}

void
PredictionService::workerLoop(std::size_t slot)
{
    WorkerHealth &health = *health_[slot];
    PendingRequest first;
    for (;;) {
        // Idle (blocked in pop) is not a stall: busy is down, so
        // the watchdog skips the heartbeat check.
        health.busy.store(false, std::memory_order_release);
        if (!queue_.pop(first))
            break; // closed and drained — normal exit
        health.busy.store(true, std::memory_order_release);
        beat(health);

        std::vector<PendingRequest> batch;
        batch.push_back(std::move(first));
        gatherBatch(batch);
        beat(health);

        bool lethal = false;
        try {
            if (options_.chaos != nullptr) {
                // Stall: sleep without beating the heartbeat, so
                // the watchdog sees a busy worker going silent.
                if (auto action = options_.chaos->visit(
                        ChaosPoint::WorkerStall)) {
                    sleepMillis(action->delayMs);
                }
                if (auto action = options_.chaos->visit(
                        ChaosPoint::WorkerCrashBatch)) {
                    lethal = action->lethal;
                    throw ChaosCrash("chaos: worker crashed on batch");
                }
            }
            serveBatch(batch);
        } catch (const ChaosCrash &e) {
            // A chaos crash is a rehearsed postmortem moment: dump
            // the flight recorder before containing the batch.
            maybePostmortem("chaos-crash");
            failBatch(batch, e.what());
        } catch (const std::exception &e) {
            // Contain the blast radius to this batch: exactly its
            // unresponded promises fail, with a structured error —
            // never a broken promise, never a dead service.
            failBatch(batch, e.what());
        } catch (...) {
            failBatch(batch, "unknown worker exception");
        }
        noteResponded(batch.size());

        if (lethal) {
            // Simulated hard crash: this loop task exits; the
            // watchdog notices the dead slot and restarts it.
            health.busy.store(false, std::memory_order_release);
            health.alive.store(false, std::memory_order_release);
            return;
        }
    }
    health.busy.store(false, std::memory_order_release);
    health.alive.store(false, std::memory_order_release);
}

void
PredictionService::gatherBatch(std::vector<PendingRequest> &batch)
{
    if (options_.maxBatch <= batch.size())
        return;
    // Ladder rung 1+: collapse the linger window — under faults the
    // service trades batching efficiency for latency head-room.
    const double linger =
        degradation_.load(std::memory_order_acquire) >=
                static_cast<int>(DegradationLevel::ShrinkBatch)
            ? 0.0
            : options_.maxBatchDelayMs;
    const BatchKey key = batch.front().key;
    const auto deadline = SteadyClock::now() + millisDuration(linger);
    queue_.popMatchingUntil(key, options_.maxBatch - batch.size(),
                            deadline, batch);
}

void
PredictionService::serveBatch(std::vector<PendingRequest> &batch)
{
    HM_SPAN("serve.batch");
    HM_COUNTER_INC("serve.batches");
    HM_COUNTER_ADD("serve.batched_requests", batch.size());

    const auto start = SteadyClock::now();

    // Shed whatever outlived its queueing budget before spending the
    // measurement on it. Requests stay in `batch` (indices, not
    // moves) so an exception below can still fail their promises.
    std::vector<std::size_t> live;
    live.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].hasDeadline && start > batch[i].deadline)
            respondShed(batch[i], ShedReason::DeadlineExpired);
        else
            live.push_back(i);
    }
    if (live.empty())
        return;

    const int level = degradation_.load(std::memory_order_acquire);
    const bool use_fallback =
        level >= static_cast<int>(DegradationLevel::FallbackHeuristic);
    const bool bypass_supervised =
        level >= static_cast<int>(DegradationLevel::BypassSupervised);

    // Pin the model for the whole batch: every response below is
    // served by this one snapshot, however many hot-swaps land
    // concurrently — no torn reads, and one epoch per batch. The
    // fallback path still stamps the snapshot's epoch, keeping the
    // per-client monotone-epoch contract alive through the window.
    std::shared_ptr<const ModelSnapshot> snapshot = models_.current();
    HM_ASSERT(snapshot != nullptr,
              "serving requires a published model");

    // Keep the drift window bound to the pinned model's baseline
    // (pointer-equal rebinds are a no-op; a hot-swap resets the
    // in-progress window — see DriftMonitor::setBaseline).
    if (telemetry::enabled())
        drift_.setBaseline(snapshot->baseline);

    Timer timer;
    timer.start();

    // One GraphStats measurement amortizes across the batch (every
    // member shares the fingerprint by construction).
    const PendingRequest &head = batch[live.front()];
    const GraphStats stats = [&] {
        HM_SPAN("serve.measure");
        return shardFor(head.key).measure(*head.request.graph,
                                          head.request.measure);
    }();
    const double measure_ms = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("serve.batch.measure_ms", measure_ms);

    // Pass 1 — group members by (workload, input): one featurize per
    // group, and note which groups have at least one member that
    // needs an (unsupervised) inference.
    struct Group {
        BenchmarkCase bench;
        double featurizeMs = 0.0;         //!< this group's featurize
        std::vector<std::size_t> members; //!< indices into `live`
        std::ptrdiff_t inferSlot = -1;    //!< slot in the batched pass
    };
    std::vector<Group> groups;
    std::vector<bool> grouped(live.size(), false);
    std::vector<BenchmarkCase> infer_benches;
    for (std::size_t i = 0; i < live.size(); ++i) {
        if (grouped[i])
            continue;
        const ServeRequest &lead = batch[live[i]].request;
        const std::string workload_name = lead.workload->name();

        timer.lapMillis(); // realign: charge only the featurize below
        Group group;
        group.bench = [&] {
            HM_SPAN("serve.featurize");
            return makeCase(*lead.workload, *lead.graph,
                            lead.inputName, stats);
        }();
        group.featurizeMs = timer.lapMillis();
        HM_HISTOGRAM_RECORD_MS("serve.batch.featurize_ms",
                               group.featurizeMs);

        bool needs_infer = false;
        for (std::size_t j = i; j < live.size(); ++j) {
            if (grouped[j])
                continue;
            const ServeRequest &member = batch[live[j]].request;
            if (member.inputName != lead.inputName ||
                member.workload->name() != workload_name) {
                continue;
            }
            grouped[j] = true;
            group.members.push_back(j);
            if (!member.supervised || bypass_supervised)
                needs_infer = true;
        }
        if (needs_infer) {
            group.inferSlot =
                static_cast<std::ptrdiff_t>(infer_benches.size());
            infer_benches.push_back(group.bench);
        }
        groups.push_back(std::move(group));
    }

    // One batched forward pass serves every group: the predictor runs
    // once over all distinct (workload, input) cases instead of once
    // per group. Each Deployment is byte-identical to the per-group
    // deploy() it replaces (Predictor::predictBatch contract) and
    // carries the batch-amortized inference share as overheadMs.
    std::vector<Deployment> deployments;
    if (!infer_benches.empty()) {
        HM_SPAN("serve.infer");
        const HeteroMap &framework =
            use_fallback ? *fallback_ : *snapshot->framework;
        timer.lapMillis();
        deployments = framework.deployBatch(infer_benches);
        HM_HISTOGRAM_RECORD_MS("serve.batch.infer_ms",
                               timer.lapMillis());
    }

    // Pass 2 — distribute responses.
    for (const Group &group : groups) {
        for (std::size_t j : group.members) {
            PendingRequest &member_pending = batch[live[j]];
            const ServeRequest &member = member_pending.request;

            ServeResponse response;
            response.status = ServeStatus::Ok;
            response.requestId = member_pending.id;
            response.modelEpoch = snapshot->epoch;
            response.batchSize = live.size();
            response.degradationLevel = level;
            response.queueMs =
                millisBetween(member_pending.enqueued, start);

            if (member.supervised && !bypass_supervised) {
                superviseDeploy(snapshot, group.bench, response);
            } else {
                if (member.supervised) {
                    HM_COUNTER_INC("serve.supervised_bypassed");
                }
                HM_ASSERT(group.inferSlot >= 0,
                          "unsupervised member without an inference");
                response.deployment = deployments[
                    static_cast<std::size_t>(group.inferSlot)];
                if (use_fallback) {
                    response.servedByFallback = true;
                    fallback_served_.fetch_add(
                        1, std::memory_order_relaxed);
                    HM_COUNTER_INC("serve.fallback_served");
                }
            }

            response.serviceMs =
                millisBetween(start, SteadyClock::now());
            HM_HISTOGRAM_RECORD_MS("serve.request.service_ms",
                                   response.serviceMs);

            if (telemetry::enabled()) {
                slo_.record(response.serviceMs);
                drift_.observe(group.bench.features);
            }

            if (forensics::flightRecorderArmed()) {
                static_assert(forensics::kAuditFeatureDims ==
                                  kNumFeatures,
                              "audit feature dims track kNumFeatures");
                static_assert(forensics::kAuditScoreDims ==
                                  kNumOutputs,
                              "audit score dims track kNumOutputs");
                const bool lane_supervised =
                    member.supervised && !bypass_supervised;
                const HeteroMap &served =
                    !lane_supervised && use_fallback
                        ? *fallback_
                        : *snapshot->framework;

                forensics::AuditRecord audit;
                audit.requestId = member_pending.id;
                audit.timestampNs = telemetry::traceNowNs();
                audit.modelEpoch = snapshot->epoch;
                audit.graphFingerprint =
                    mixFingerprint(member_pending.key.fingerprint);
                audit.setModelKind(served.predictor().name());
                audit.setWorkload(member.workload->name());
                if (const auto *tree =
                        dynamic_cast<const DecisionTreeHeuristic *>(
                            &served.predictor())) {
                    const DecisionTreeHeuristic::DecisionPath path =
                        tree->decisionPath(group.bench.features);
                    audit.treeLeaf = path.leaf;
                    audit.treePredicateMask = path.predicateMask;
                }
                audit.features = group.bench.features.asArray();
                audit.scores = response.deployment.predicted.m;
                audit.setAccelerator(acceleratorKindName(
                    response.deployment.config.accelerator));
                audit.queueMs = response.queueMs;
                audit.measureMs = measure_ms;
                audit.featurizeMs = group.featurizeMs;
                audit.inferMs = response.deployment.overheadMs;
                audit.serviceMs = response.serviceMs;
                audit.status =
                    static_cast<int32_t>(response.status);
                audit.degradationLevel = level;
                audit.supervised = member.supervised;
                audit.servedByFallback = response.servedByFallback;
                audit.hasOutcome = response.outcome.has_value();
                audit.withinTolerance =
                    response.outcome.has_value() &&
                    response.outcome->withinTolerance;
                forensics::appendAuditRecord(audit);
            }

            completed_.fetch_add(1, std::memory_order_relaxed);
            HM_COUNTER_INC("serve.completed");
            respond(member_pending, std::move(response));
        }
    }
}

void
PredictionService::superviseDeploy(
    const std::shared_ptr<const ModelSnapshot> &snapshot,
    const BenchmarkCase &bench, ServeResponse &response)
{
    // The lane serializes: the Supervisor owns the fault clock and
    // is stateful, so supervised deployments order behind the mutex.
    std::lock_guard<std::mutex> lock(supervised_mutex_);

    // Chaos: hang while holding the lane mutex — exactly the
    // failure mode the BypassSupervised ladder rung exists for.
    if (options_.chaos != nullptr) {
        if (auto action =
                options_.chaos->visit(ChaosPoint::SupervisorHang)) {
            sleepMillis(action->delayMs);
        }
    }

    if (supervised_model_ != snapshot) {
        // A hot-swap landed since the last supervised deployment;
        // rebind the ladder to the new model (the fault clock
        // restarts with it — documented in DESIGN.md §10).
        supervised_model_ = snapshot;
        supervisor_ = std::make_unique<Supervisor>(
            *snapshot->framework, options_.faults,
            options_.supervisor);
    }
    HM_SPAN("serve.supervised");
    DeploymentOutcome outcome = supervisor_->deploy(bench);
    HM_COUNTER_INC("serve.supervised");
    if (!outcome.withinTolerance)
        HM_COUNTER_INC("serve.supervised_degraded");
    // Ground truth for the drift monitor: the supervised lane is the
    // only place the service learns whether a prediction held up.
    if (telemetry::enabled())
        drift_.observeOutcome(outcome.withinTolerance);
    response.deployment = outcome.deployment;
    response.outcome = std::move(outcome);
}

void
PredictionService::watchdogLoop()
{
    const auto poll = millisDuration(options_.watchdog.pollMs);
    const int64_t stuck_ns = static_cast<int64_t>(
        options_.watchdog.stuckAfterMs * 1e6);
    const int64_t recover_ns = static_cast<int64_t>(
        options_.watchdog.recoverAfterMs * 1e6);

    std::unique_lock<std::mutex> lock(watchdog_mutex_);
    while (!watchdog_stop_) {
        watchdog_cv_.wait_for(lock, poll,
                              [&] { return watchdog_stop_; });
        if (watchdog_stop_)
            return;
        lock.unlock();

        const int64_t now = nowNs();
        for (std::size_t slot = 0; slot < health_.size(); ++slot) {
            WorkerHealth &health = *health_[slot];
            if (!health.alive.load(std::memory_order_acquire)) {
                if (!closed_.load(std::memory_order_acquire)) {
                    // Crashed worker: restart its loop task on the
                    // pool (the crash freed a pool thread).
                    worker_restarts_.fetch_add(
                        1, std::memory_order_relaxed);
                    HM_COUNTER_INC("serve.worker.restarts");
                    noteFault();
                    warn("serve: restarting dead worker ", slot);
                    health.alive.store(true,
                                       std::memory_order_release);
                    beat(health);
                    pool_.submit(
                        [this, slot] { workerLoop(slot); });
                }
                continue;
            }
            if (health.busy.load(std::memory_order_acquire) &&
                now - health.beatNs.load(
                          std::memory_order_acquire) > stuck_ns) {
                worker_stalls_.fetch_add(1,
                                         std::memory_order_relaxed);
                HM_COUNTER_INC("serve.worker.stalls");
                noteFault();
                warn("serve: worker ", slot,
                     " stalled mid-batch (no heartbeat)");
                // Rearm so a still-stuck worker is recounted per
                // stuck window, not per poll tick.
                beat(health);
            }
        }

        // SLO windows close on the watchdog's clock (the tracker
        // rate-limits itself to slo.windowMs).
        if (telemetry::enabled())
            slo_.maybeHarvest();

        // De-escalate one rung per fault-free recovery window.
        const int level = degradation_.load(std::memory_order_acquire);
        if (level > 0) {
            const int64_t quiet_since = std::max(
                last_fault_ns_.load(std::memory_order_acquire),
                last_recover_ns_.load(std::memory_order_acquire));
            if (now - quiet_since > recover_ns) {
                degradation_.store(level - 1,
                                   std::memory_order_release);
                last_recover_ns_.store(now,
                                       std::memory_order_release);
                HM_GAUGE_SET("serve.degradation_level",
                             static_cast<double>(level - 1));
            }
        }

        lock.lock();
    }
}

void
PredictionService::stopWatchdog()
{
    if (!watchdog_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(watchdog_mutex_);
        watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
}

void
PredictionService::drain()
{
    const uint64_t target = admitted_.load(std::memory_order_acquire);
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [&] {
        return responded_.load(std::memory_order_acquire) >= target;
    });
}

void
PredictionService::close()
{
    std::lock_guard<std::mutex> lock(close_mutex_);
    closed_.store(true, std::memory_order_release);
    // Stop the watchdog first so no restart task races pool_.wait().
    stopWatchdog();
    queue_.close();
    // Workers drain every already-admitted request (pop() only
    // returns false once the queue is closed *and* empty), then
    // their loop tasks finish; wait() rethrows the first worker
    // exception, if any (worker loops swallow their own, so this
    // only fires for infrastructure failures).
    pool_.wait();
    // If every worker died (lethal chaos) with requests still
    // queued, answer them Closed — an admitted request never ends
    // in a broken promise.
    PendingRequest leftover;
    while (queue_.pop(leftover)) {
        ServeResponse response;
        response.status = ServeStatus::Closed;
        response.requestId = leftover.id;
        respond(leftover, std::move(response));
        noteResponded(1);
    }
    // Close a final SLO window so short-lived services (tests, CLI
    // runs) report the tail of their traffic too.
    if (telemetry::enabled())
        slo_.maybeHarvest(true);
}

uint64_t
PredictionService::statsHits() const
{
    // With a metrics prefix, the shards share the prefixed registry
    // counters, so any one shard reads the aggregate; detached
    // (empty-prefix) caches each own their counters and must sum.
    if (!options_.statsMetricsPrefix.empty())
        return stats_shards_.front()->hits();
    uint64_t total = 0;
    for (const auto &shard : stats_shards_)
        total += shard->hits();
    return total;
}

uint64_t
PredictionService::statsMisses() const
{
    if (!options_.statsMetricsPrefix.empty())
        return stats_shards_.front()->misses();
    uint64_t total = 0;
    for (const auto &shard : stats_shards_)
        total += shard->misses();
    return total;
}

void
PredictionService::maybePostmortem(const char *reason)
{
    if (options_.postmortemPrefix.empty() ||
        !forensics::flightRecorderArmed())
        return;
    const uint64_t seq =
        postmortems_.fetch_add(1, std::memory_order_relaxed);
    const std::string path = options_.postmortemPrefix + "postmortem-" +
                             std::to_string(seq) + ".jsonl";
    if (forensics::dumpFlightRecorderToFile(path, reason))
        HM_COUNTER_INC("serve.postmortems");
}

ServiceStatus
PredictionService::statusz() const
{
    ServiceStatus status;
    if (auto snapshot = models_.current()) {
        status.modelEpoch = snapshot->epoch;
        status.predictorName = snapshot->predictorName;
        status.hasBaseline = snapshot->baseline != nullptr;
    }
    status.degradationLevel =
        static_cast<int>(degradationLevel());
    status.queueDepth = queue_.size();
    status.queueCapacity = queue_.capacity();
    status.workers = pool_.threadCount();
    status.submitted = submitted();
    status.admitted = admitted();
    status.completed = completed();
    status.shed = shed();
    status.errors = errorResponses();
    status.batchFailures = batchFailures();
    status.workerStalls = workerStalls();
    status.workerRestarts = workerRestarts();
    status.fallbackServed = fallbackServed();
    status.statsHits = statsHits();
    status.statsMisses = statsMisses();
    status.statsPrefix = options_.statsMetricsPrefix;
    status.flightArmed = forensics::flightRecorderArmed();
    status.flightAppended = forensics::auditRecordsAppended();
    status.flightDropped = forensics::auditRecordsDropped();
    status.postmortems = postmortems();
    status.drift = drift_.scores();
    status.slo = slo_.status();
    return status;
}

namespace {

std::string
fmtDouble(double value)
{
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
}

} // namespace

std::string
statuszText(const ServiceStatus &status)
{
    std::ostringstream os;
    os << telemetry::buildInfoLine() << "\n";
    os << "model: epoch=" << status.modelEpoch << " predictor="
       << status.predictorName
       << " baseline=" << (status.hasBaseline ? "yes" : "no") << "\n";
    os << "ladder: level=" << status.degradationLevel << " ("
       << degradationLevelName(static_cast<DegradationLevel>(
              status.degradationLevel))
       << ")\n";
    os << "queue: depth=" << status.queueDepth << "/"
       << status.queueCapacity << " workers=" << status.workers
       << "\n";
    os << "requests: submitted=" << status.submitted
       << " admitted=" << status.admitted
       << " completed=" << status.completed << " shed=" << status.shed
       << " errors=" << status.errors << "\n";
    os << "faults: batch_failures=" << status.batchFailures
       << " stalls=" << status.workerStalls
       << " restarts=" << status.workerRestarts
       << " fallback_served=" << status.fallbackServed << "\n";
    os << "stats_cache: hits=" << status.statsHits
       << " misses=" << status.statsMisses << "\n";
    os << "flight: armed=" << (status.flightArmed ? "yes" : "no")
       << " appended=" << status.flightAppended
       << " dropped=" << status.flightDropped
       << " postmortems=" << status.postmortems << "\n";
    os << "drift: baseline=" << (status.drift.hasBaseline ? "yes" : "no")
       << " psi=" << fmtDouble(status.drift.psi)
       << " ks=" << fmtDouble(status.drift.ks)
       << " worst_dim=" << status.drift.worstDim
       << " mispredict_rate="
       << fmtDouble(status.drift.mispredictRate)
       << " windows=" << status.drift.windows
       << " alerts=" << status.drift.alerts << "\n";
    os << "slo: windows=" << status.slo.windows
       << " requests=" << status.slo.requests
       << " p50_ms=" << fmtDouble(status.slo.p50Ms)
       << " p95_ms=" << fmtDouble(status.slo.p95Ms)
       << " p99_ms=" << fmtDouble(status.slo.p99Ms) << "\n";
    for (const SloStatus::Objective &objective :
         status.slo.objectives) {
        os << "slo." << objective.name << ": threshold_ms="
           << fmtDouble(objective.thresholdMs)
           << " target=" << fmtDouble(objective.target)
           << " good=" << fmtDouble(objective.goodFraction)
           << " burn=" << fmtDouble(objective.burnRate)
           << " budget=" << fmtDouble(objective.budgetRemaining)
           << " breaches=" << objective.breaches << "\n";
    }
    return os.str();
}

std::string
statuszJson(const ServiceStatus &status)
{
    std::ostringstream os;
    os << "{\"type\":\"statusz\",\"build\":"
       << telemetry::buildInfoJson();
    os << ",\"model\":{\"epoch\":" << status.modelEpoch
       << ",\"predictor\":\""
       << telemetry::jsonEscape(status.predictorName)
       << "\",\"has_baseline\":"
       << (status.hasBaseline ? "true" : "false") << "}";
    os << ",\"ladder\":{\"level\":" << status.degradationLevel
       << ",\"name\":\""
       << degradationLevelName(static_cast<DegradationLevel>(
              status.degradationLevel))
       << "\"}";
    os << ",\"queue\":{\"depth\":" << status.queueDepth
       << ",\"capacity\":" << status.queueCapacity
       << ",\"workers\":" << status.workers << "}";
    os << ",\"requests\":{\"submitted\":" << status.submitted
       << ",\"admitted\":" << status.admitted
       << ",\"completed\":" << status.completed
       << ",\"shed\":" << status.shed
       << ",\"errors\":" << status.errors << "}";
    os << ",\"faults\":{\"batch_failures\":" << status.batchFailures
       << ",\"stalls\":" << status.workerStalls
       << ",\"restarts\":" << status.workerRestarts
       << ",\"fallback_served\":" << status.fallbackServed << "}";
    os << ",\"stats_cache\":{\"hits\":" << status.statsHits
       << ",\"misses\":" << status.statsMisses << "}";
    os << ",\"flight\":{\"armed\":"
       << (status.flightArmed ? "true" : "false")
       << ",\"appended\":" << status.flightAppended
       << ",\"dropped\":" << status.flightDropped
       << ",\"postmortems\":" << status.postmortems << "}";
    os << ",\"drift\":{\"has_baseline\":"
       << (status.drift.hasBaseline ? "true" : "false")
       << ",\"psi\":" << fmtDouble(status.drift.psi)
       << ",\"ks\":" << fmtDouble(status.drift.ks)
       << ",\"worst_dim\":" << status.drift.worstDim
       << ",\"mispredict_rate\":"
       << fmtDouble(status.drift.mispredictRate)
       << ",\"windows\":" << status.drift.windows
       << ",\"alerts\":" << status.drift.alerts << "}";
    os << ",\"slo\":{\"windows\":" << status.slo.windows
       << ",\"requests\":" << status.slo.requests
       << ",\"p50_ms\":" << fmtDouble(status.slo.p50Ms)
       << ",\"p95_ms\":" << fmtDouble(status.slo.p95Ms)
       << ",\"p99_ms\":" << fmtDouble(status.slo.p99Ms)
       << ",\"objectives\":[";
    for (std::size_t i = 0; i < status.slo.objectives.size(); ++i) {
        const SloStatus::Objective &objective =
            status.slo.objectives[i];
        if (i > 0)
            os << ",";
        os << "{\"name\":\"" << telemetry::jsonEscape(objective.name)
           << "\",\"threshold_ms\":" << fmtDouble(objective.thresholdMs)
           << ",\"target\":" << fmtDouble(objective.target)
           << ",\"good_fraction\":"
           << fmtDouble(objective.goodFraction)
           << ",\"burn_rate\":" << fmtDouble(objective.burnRate)
           << ",\"budget_remaining\":"
           << fmtDouble(objective.budgetRemaining)
           << ",\"breaches\":" << objective.breaches << "}";
    }
    os << "]}}";
    return os.str();
}

ServiceStatus
aggregateStatusz(const std::vector<ServiceStatus> &shards)
{
    ServiceStatus fleet;
    if (shards.empty())
        return fleet;
    fleet = shards.front();
    fleet.queueDepth = fleet.queueCapacity = fleet.workers = 0;
    fleet.submitted = fleet.admitted = fleet.completed = 0;
    fleet.shed = fleet.errors = 0;
    fleet.batchFailures = fleet.workerStalls = 0;
    fleet.workerRestarts = fleet.fallbackServed = 0;
    fleet.postmortems = 0;
    fleet.statsHits = fleet.statsMisses = 0;
    fleet.statsPrefix = "fleet";

    // Stats-cache counters: one term per distinct shared prefix
    // (those shards read the same registry atomics — their reported
    // values are copies of one number), plus every detached shard.
    std::map<std::string, std::pair<uint64_t, uint64_t>> by_prefix;
    for (const ServiceStatus &shard : shards) {
        fleet.queueDepth += shard.queueDepth;
        fleet.queueCapacity += shard.queueCapacity;
        fleet.workers += shard.workers;
        fleet.submitted += shard.submitted;
        fleet.admitted += shard.admitted;
        fleet.completed += shard.completed;
        fleet.shed += shard.shed;
        fleet.errors += shard.errors;
        fleet.batchFailures += shard.batchFailures;
        fleet.workerStalls += shard.workerStalls;
        fleet.workerRestarts += shard.workerRestarts;
        fleet.fallbackServed += shard.fallbackServed;
        fleet.postmortems += shard.postmortems;

        if (shard.statsPrefix.empty()) {
            fleet.statsHits += shard.statsHits;
            fleet.statsMisses += shard.statsMisses;
        } else {
            // Snapshot skew across shards of one prefix group is
            // possible (statuses are taken one by one); take the
            // max — the freshest read of the shared counter.
            auto &entry = by_prefix[shard.statsPrefix];
            entry.first = std::max(entry.first, shard.statsHits);
            entry.second = std::max(entry.second, shard.statsMisses);
        }

        fleet.modelEpoch = std::max(fleet.modelEpoch, shard.modelEpoch);
        fleet.degradationLevel =
            std::max(fleet.degradationLevel, shard.degradationLevel);
        fleet.hasBaseline = fleet.hasBaseline && shard.hasBaseline;
        if (shard.drift.psi > fleet.drift.psi)
            fleet.drift = shard.drift;
    }
    for (const auto &[prefix, counts] : by_prefix) {
        fleet.statsHits += counts.first;
        fleet.statsMisses += counts.second;
    }

    // SLO roll-up: worst shard per objective (matched by name), and
    // percentile upper bounds — a fleet-total percentile cannot be
    // recovered from per-shard percentiles, so report the bound and
    // leave exact numbers to the per-shard blocks.
    fleet.slo = SloStatus{};
    fleet.slo.objectives =
        shards.front().slo.objectives; // shape from shard 0
    for (const ServiceStatus &shard : shards) {
        fleet.slo.windows =
            std::max(fleet.slo.windows, shard.slo.windows);
        fleet.slo.requests += shard.slo.requests;
        fleet.slo.p50Ms = std::max(fleet.slo.p50Ms, shard.slo.p50Ms);
        fleet.slo.p95Ms = std::max(fleet.slo.p95Ms, shard.slo.p95Ms);
        fleet.slo.p99Ms = std::max(fleet.slo.p99Ms, shard.slo.p99Ms);
        for (SloStatus::Objective &fleet_obj : fleet.slo.objectives) {
            for (const SloStatus::Objective &shard_obj :
                 shard.slo.objectives) {
                if (shard_obj.name != fleet_obj.name)
                    continue;
                if (&shard == &shards.front()) {
                    // Shard 0 seeded the shape; only fold the others.
                    break;
                }
                fleet_obj.goodFraction = std::min(
                    fleet_obj.goodFraction, shard_obj.goodFraction);
                fleet_obj.burnRate =
                    std::max(fleet_obj.burnRate, shard_obj.burnRate);
                fleet_obj.budgetRemaining =
                    std::min(fleet_obj.budgetRemaining,
                             shard_obj.budgetRemaining);
                fleet_obj.breaches += shard_obj.breaches;
                break;
            }
        }
    }
    return fleet;
}

std::string
fleetStatuszText(const std::vector<ServiceStatus> &shards)
{
    std::ostringstream os;
    os << "fleet: shards=" << shards.size() << "\n";
    os << statuszText(aggregateStatusz(shards));
    for (std::size_t s = 0; s < shards.size(); ++s) {
        os << "\n--- shard " << s << " ---\n";
        os << statuszText(shards[s]);
    }
    return os.str();
}

std::string
fleetStatuszJson(const std::vector<ServiceStatus> &shards)
{
    // Reuse the single-service emitter for each block: the fleet
    // document is {"type":"statusz","shard_count":N,
    // "fleet":<status>,"shards":[<status>...]} where each <status>
    // is a full statuszJson object (type marker included, so both
    // shapes validate the same way).
    std::ostringstream os;
    os << "{\"type\":\"statusz\",\"shard_count\":" << shards.size()
       << ",\"fleet\":" << statuszJson(aggregateStatusz(shards))
       << ",\"shards\":[";
    for (std::size_t s = 0; s < shards.size(); ++s) {
        if (s > 0)
            os << ",";
        os << statuszJson(shards[s]);
    }
    os << "]}";
    return os.str();
}

} // namespace serve
} // namespace heteromap
