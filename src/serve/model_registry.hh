/**
 * @file
 * ModelRegistry: the serving subsystem's hot-swappable model slot.
 *
 * The active model is an immutable snapshot behind a tiny pointer
 * lock (copy-and-pin, RCU-style): a reader copies the shared_ptr
 * once and keeps the whole (HeteroMap, epoch, kind) bundle alive
 * for as long as it uses it, so a publish never tears a model out
 * from under an in-flight batch — the swap itself is a single
 * pointer assignment under the lock, never a wait for readers.
 * (libstdc++ 12's std::atomic<shared_ptr> would make the load
 * lock-free too, but its embedded spinlock is opaque to
 * ThreadSanitizer; the plain mutex keeps the registry verifiable by
 * tools/check_tsan.sh.) Each publish bumps a monotonically
 * increasing epoch that the PredictionService stamps into every
 * response — the observable proof that a retrain or a disk load
 * swapped in with zero downtime.
 *
 * Publish paths: publish() installs an already-built predictor,
 * publishTrained() fits a fresh learner on a corpus (e.g. the
 * TrainingPipeline's output from a background retrain), and load()
 * hot-loads any PredictorKind from a savePredictor() stream.
 *
 * Persistence is crash-safe. Every stream carries the checksummed
 * "heteromap-model" envelope (core/heteromap.hh; v2, or v3 when the
 * active snapshot carries a feature baseline): saveActive()
 * writes to a temporary sibling and rename()s it into place, so a
 * crash mid-write never leaves a half-model at the target path, and
 * loadFrom()/load() verify the checksum before parsing. A corrupt,
 * truncated, or kind-mismatched stream comes back as a recoverable
 * Result error: the active model is untouched (the rollback is
 * implicit — the last-good snapshot keeps serving), the epoch stays
 * monotone (failed loads never bump it), and the
 * "serve.model_load_failures" counter accounts for the attempt.
 */

#ifndef HETEROMAP_SERVE_MODEL_REGISTRY_HH
#define HETEROMAP_SERVE_MODEL_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

#include "arch/fault_model.hh"
#include "core/heteromap.hh"
#include "util/errors.hh"

namespace heteromap {
namespace serve {

/** Immutable bundle a reader acquires with one atomic load. */
struct ModelSnapshot {
    std::shared_ptr<const HeteroMap> framework;
    uint64_t epoch = 0;
    PredictorKind kind = PredictorKind::DecisionTree;
    std::string predictorName;

    /**
     * Training-time feature-distribution baseline this model ships
     * with (publishTrained() builds it from the corpus; loadFrom()
     * restores it from a v3 envelope). Null for models published
     * without one — the drift monitor is simply inert then. Also
     * installed on the framework, so both handles agree.
     */
    std::shared_ptr<const FeatureBaseline> baseline;
};

/** Atomic, epoch-stamped holder of the active serving model. */
class ModelRegistry
{
  public:
    /**
     * @param pair   Accelerator pair every published model targets.
     * @param oracle Evaluation oracle (must outlive the registry).
     */
    ModelRegistry(AcceleratorPair pair, const Oracle &oracle);

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * The active snapshot (nullptr before the first publish). The
     * returned shared_ptr pins the model: holding it across a batch
     * guarantees every request in the batch is served by one
     * consistent model, however many publishes land meanwhile.
     */
    std::shared_ptr<const ModelSnapshot> current() const;

    /**
     * Install @p predictor as the active model, optionally carrying
     * its training-time feature @p baseline. @return the new epoch
     * (1 for the first publish, strictly increasing after).
     */
    uint64_t publish(PredictorKind kind,
                     std::unique_ptr<Predictor> predictor,
                     std::shared_ptr<const FeatureBaseline> baseline =
                         nullptr);

    /**
     * makePredictor(kind), train on @p corpus, publish — with the
     * corpus's feature baseline attached, so saveActive() emits a v3
     * envelope and the serving drift monitor arms itself.
     */
    uint64_t publishTrained(PredictorKind kind,
                            const TrainingSet &corpus);

    /**
     * Hot-load a savePredictor() stream and publish it. On any
     * failure (bad envelope, checksum mismatch, truncation, kind
     * mismatch) the active snapshot and epoch are untouched and the
     * error is recoverable. @return the new epoch on success.
     */
    Result<uint64_t> load(PredictorKind kind, std::istream &is);

    /**
     * Persist the active model to @p path atomically: the envelope
     * is written to "<path>.tmp.<pid-ish>" and rename()d over the
     * target, so readers of @p path see either the old complete file
     * or the new complete file — never a torn write. @return the
     * epoch of the snapshot that was saved.
     */
    Result<uint64_t> saveActive(const std::string &path);

    /**
     * Load a saveActive() file and publish it (self-describing: the
     * kind comes from the envelope). A corrupt or unreadable file is
     * a recoverable error; the last-good snapshot keeps serving and
     * the epoch does not move. @return the new epoch on success.
     */
    Result<uint64_t> loadFrom(const std::string &path);

    /** Epoch of the active model (0 before the first publish). */
    uint64_t epoch() const;

    /** Failed load()/loadFrom() attempts since construction. */
    uint64_t loadFailures() const;

    /**
     * Install a chaos policy (arch/fault_model.hh). When armed with
     * ModelLoadCorrupt, loadFrom() flips one payload bit before
     * verification — exercising the detect-and-rollback path.
     */
    void setChaosPolicy(std::shared_ptr<ChaosPolicy> chaos);

    const AcceleratorPair &pair() const { return pair_; }
    const Oracle &oracle() const { return oracle_; }

  private:
    AcceleratorPair pair_;
    const Oracle &oracle_;

    std::mutex publish_mutex_; //!< serializes writers only
    uint64_t next_epoch_ = 0;  //!< guarded by publish_mutex_

    mutable std::mutex active_mutex_; //!< guards only the pointer swap
    std::shared_ptr<const ModelSnapshot> active_;

    std::atomic<uint64_t> load_failures_{0};

    mutable std::mutex chaos_mutex_;
    std::shared_ptr<ChaosPolicy> chaos_; //!< guarded by chaos_mutex_

    /** Count + meter a failed load and pass @p error through. */
    Error noteLoadFailure(Error error);
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_MODEL_REGISTRY_HH
