/**
 * @file
 * PredictionService: the in-process, multi-tenant prediction server.
 *
 * Clients submit ServeRequests and get a future<ServeResponse>; a
 * worker group on util/thread_pool drains a bounded RequestQueue with
 * admission control (serve/request_queue.hh). Workers micro-batch:
 * after popping a request they linger up to maxBatchDelayMs
 * collecting queued requests that share its graph fingerprint, so one
 * GraphStats measurement — and, per distinct (workload, input) in the
 * batch, one featurize and one inference — amortize across the whole
 * batch. Responses are stamped with the epoch of the ModelRegistry
 * snapshot that served them, so hot-swaps (background retrain, disk
 * load) are observable per response and can never tear a model out
 * from under an in-flight batch.
 *
 * Supervised lane: requests with supervised = true deploy through a
 * persistent core/supervisor Supervisor, whose mispredict detection
 * flags responses and walks the degradation ladder for them; the
 * lane's Supervisor is rebuilt against the new model when a hot-swap
 * lands.
 *
 * Graph measurements go through per-service GraphStatsCache shards,
 * each constructed with the same metrics prefix so the shared
 * "serve.stats_cache.*" registry counters aggregate across shards —
 * private caches without a prefix would silently drop that
 * accounting (see graph/stats_cache.hh).
 *
 * Telemetry (util/telemetry.hh): counters serve.submitted /
 * .admitted / .completed / .shed (+ .shed.queue_full, .shed.deadline)
 * / .batches / .batched_requests / .supervised /
 * .supervised_degraded; gauge serve.queue_depth; histograms
 * serve.queue_wait_ms, serve.batch.measure_ms,
 * serve.batch.featurize_ms, serve.request.service_ms.
 */

#ifndef HETEROMAP_SERVE_PREDICTION_SERVICE_HH
#define HETEROMAP_SERVE_PREDICTION_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/fault_model.hh"
#include "core/supervisor.hh"
#include "serve/model_registry.hh"
#include "serve/request_queue.hh"
#include "util/thread_pool.hh"

namespace heteromap {
namespace serve {

/** Service tunables. Defaults suit tests and small deployments. */
struct ServiceOptions {
    /** Worker threads draining the queue (>= 1). */
    std::size_t workers = 2;

    /** Bound on queued requests (admission control beyond it). */
    std::size_t queueCapacity = 256;

    AdmissionPolicy admission = AdmissionPolicy::Block;

    /** Max requests coalesced into one batch; 1 disables batching. */
    std::size_t maxBatch = 8;

    /**
     * How long a worker lingers for coalescible arrivals after the
     * first request of a batch, in milliseconds. 0 batches only
     * what is already queued.
     */
    double maxBatchDelayMs = 0.2;

    /** GraphStatsCache shards (>= 1); keyed by graph fingerprint. */
    std::size_t statsShards = 2;

    /** Entry bound per stats shard. */
    std::size_t statsCapacityPerShard = GraphStatsCache::kDefaultCapacity;

    /** Supervised-lane tunables and fault scenario. */
    SupervisorOptions supervisor{};
    FaultInjector faults{};
};

/** Concurrent prediction server over a ModelRegistry. */
class PredictionService
{
  public:
    /**
     * @param models  Registry with at least one published model.
     * @param options Tunables; worker threads start immediately.
     */
    explicit PredictionService(ModelRegistry &models,
                               ServiceOptions options = {});

    /** close()s and joins the workers. */
    ~PredictionService();

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    /**
     * Submit one request. Always returns a future that becomes
     * ready: Ok with a deployment, Shed (admission or deadline), or
     * Closed. Under Block admission this call waits for queue space
     * — an admitted request is never dropped.
     */
    std::future<ServeResponse> submit(ServeRequest request);

    /**
     * Wait until every request admitted before this call has been
     * responded to (the queue may still accept new work).
     */
    void drain();

    /**
     * Stop admitting, serve everything already queued, and join the
     * workers. Idempotent; rethrows the first worker exception.
     */
    void close();

    /** Worker thread count. */
    std::size_t workers() const { return pool_.threadCount(); }

    /** @name Request accounting (monotonic). @{ */
    uint64_t submitted() const { return submitted_.load(); }
    uint64_t admitted() const { return admitted_.load(); }
    uint64_t completed() const { return completed_.load(); }
    uint64_t shed() const { return shed_.load(); }
    /** @} */

    /** Aggregate stats-shard counters (mirrors serve.stats_cache.*). */
    uint64_t statsHits() const;
    uint64_t statsMisses() const;

  private:
    ModelRegistry &models_;
    ServiceOptions options_;
    RequestQueue queue_;

    std::atomic<uint64_t> next_id_{1};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> responded_{0}; //!< admitted, now answered
    std::atomic<bool> closed_{false};

    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;

    std::vector<std::unique_ptr<GraphStatsCache>> stats_shards_;

    /** @name Supervised lane (serialized; see superviseDeploy). @{ */
    std::mutex supervised_mutex_;
    std::shared_ptr<const ModelSnapshot> supervised_model_;
    std::unique_ptr<Supervisor> supervisor_;
    /** @} */

    std::mutex close_mutex_; //!< makes close() idempotent

    ThreadPool pool_; //!< last member: destroyed (joined) first

    GraphStatsCache &shardFor(const BatchKey &key);
    void workerLoop();
    void gatherBatch(std::vector<PendingRequest> &batch);
    void serveBatch(std::vector<PendingRequest> &batch);
    void superviseDeploy(
        const std::shared_ptr<const ModelSnapshot> &snapshot,
        const BenchmarkCase &bench, ServeResponse &response);
    void respondShed(PendingRequest &pending, ShedReason reason);
    void noteResponded(std::size_t count);
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_PREDICTION_SERVICE_HH
