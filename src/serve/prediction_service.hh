/**
 * @file
 * PredictionService: the in-process, multi-tenant prediction server.
 *
 * Clients submit ServeRequests and get a future<ServeResponse>; a
 * worker group on util/thread_pool drains a bounded RequestQueue with
 * admission control (serve/request_queue.hh). Workers micro-batch:
 * after popping a request they linger up to maxBatchDelayMs
 * collecting queued requests that share its graph fingerprint, so one
 * GraphStats measurement — and, per distinct (workload, input) in the
 * batch, one featurize and one inference — amortize across the whole
 * batch. Responses are stamped with the epoch of the ModelRegistry
 * snapshot that served them, so hot-swaps (background retrain, disk
 * load) are observable per response and can never tear a model out
 * from under an in-flight batch.
 *
 * Supervised lane: requests with supervised = true deploy through a
 * persistent core/supervisor Supervisor, whose mispredict detection
 * flags responses and walks the degradation ladder for them; the
 * lane's Supervisor is rebuilt against the new model when a hot-swap
 * lands.
 *
 * Graph measurements go through per-service GraphStatsCache shards,
 * each constructed with the same metrics prefix so the shared
 * "serve.stats_cache.*" registry counters aggregate across shards —
 * private caches without a prefix would silently drop that
 * accounting (see graph/stats_cache.hh).
 *
 * Fault tolerance: workers are supervised by a watchdog thread. An
 * exception during measure/featurize/infer fails only that batch's
 * promises — each with a structured ServeError — and the worker
 * keeps draining; a crashed (exited) worker is detected by its
 * stale heartbeat slot and restarted on the pool; a stalled worker
 * (busy with no heartbeat past watchdog.stuckAfterMs) is counted
 * and drives the degradation ladder. Under sustained faults the
 * service degrades stepwise — shrink the batching window, bypass
 * the supervised lane, serve from a built-in DecisionTreeHeuristic
 * fallback that rides the warm GraphStatsCache — and walks back to
 * normal after a quiet period. Chaos faults (arch/fault_model.hh
 * ChaosPolicy) can be injected at four serving points to rehearse
 * all of this deterministically; with no policy armed every hook is
 * a single relaxed atomic load.
 *
 * Telemetry (util/telemetry.hh): counters serve.submitted /
 * .admitted / .completed / .shed (+ .shed.queue_full, .shed.deadline)
 * / .batches / .batched_requests / .supervised /
 * .supervised_degraded / .supervised_bypassed / .errors /
 * .fallback_served / .degradation_steps / .worker.batch_failures /
 * .worker.stalls / .worker.restarts; gauges serve.queue_depth,
 * serve.degradation_level; histograms serve.queue_wait_ms,
 * serve.batch.measure_ms, serve.batch.featurize_ms,
 * serve.request.service_ms.
 */

#ifndef HETEROMAP_SERVE_PREDICTION_SERVICE_HH
#define HETEROMAP_SERVE_PREDICTION_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/fault_model.hh"
#include "core/supervisor.hh"
#include "serve/drift_monitor.hh"
#include "serve/model_registry.hh"
#include "serve/request_queue.hh"
#include "serve/slo_tracker.hh"
#include "util/thread_pool.hh"

namespace heteromap {
namespace serve {

/**
 * Degradation ladder the watchdog walks under sustained faults.
 * Each fault event (batch failure, stall, restart) escalates one
 * rung; a quiet period of watchdog.recoverAfterMs de-escalates one.
 */
enum class DegradationLevel {
    Normal = 0,           //!< full batching, all lanes
    ShrinkBatch = 1,      //!< batching window collapsed to zero linger
    BypassSupervised = 2, //!< supervised lane bypassed (plus above)
    FallbackHeuristic = 3, //!< built-in heuristic serves (plus above)
};

/** @return e.g. "bypass-supervised". */
const char *degradationLevelName(DegradationLevel level);

/** Worker-watchdog tunables. */
struct WatchdogOptions {
    bool enabled = true;

    /** Scan cadence, in milliseconds. */
    double pollMs = 5.0;

    /**
     * A worker that is busy on a batch with no heartbeat for this
     * long is counted stalled (generous: CI machines are noisy).
     */
    double stuckAfterMs = 250.0;

    /** Fault-free time before the ladder steps down one rung. */
    double recoverAfterMs = 100.0;
};

/** Service tunables. Defaults suit tests and small deployments. */
struct ServiceOptions {
    /** Worker threads draining the queue (>= 1). */
    std::size_t workers = 2;

    /** Bound on queued requests (admission control beyond it). */
    std::size_t queueCapacity = 256;

    AdmissionPolicy admission = AdmissionPolicy::Block;

    /** Max requests coalesced into one batch; 1 disables batching. */
    std::size_t maxBatch = 8;

    /**
     * How long a worker lingers for coalescible arrivals after the
     * first request of a batch, in milliseconds. 0 batches only
     * what is already queued.
     */
    double maxBatchDelayMs = 0.2;

    /** GraphStatsCache shards (>= 1); keyed by graph fingerprint. */
    std::size_t statsShards = 2;

    /** Entry bound per stats shard. */
    std::size_t statsCapacityPerShard = GraphStatsCache::kDefaultCapacity;

    /**
     * Telemetry prefix for this service's stats-cache counters. The
     * default makes every service in the process mirror into the
     * same "serve.stats_cache.*" registry counters — fine for one
     * service, but N co-resident services (the net tier's shards)
     * then all read the identical process aggregate, and summing
     * them would N-times-count it. A multi-shard host gives each
     * service a distinct prefix ("serve.shard3.stats_cache") so
     * per-shard hit rates are real; aggregateStatusz() uses the
     * prefix to know which numbers are safe to sum. Empty = private
     * detached counters (no registry mirror).
     */
    std::string statsMetricsPrefix = "serve.stats_cache";

    /** Supervised-lane tunables and fault scenario. */
    SupervisorOptions supervisor{};
    FaultInjector faults{};

    /**
     * Chaos policy fired at the serving fault points (AdmissionDelay
     * in submit, WorkerStall/WorkerCrashBatch in the worker loop,
     * SupervisorHang in the supervised lane). Shared so tests and
     * the registry can arm the same schedule. Null = no chaos.
     */
    std::shared_ptr<ChaosPolicy> chaos;

    WatchdogOptions watchdog{};

    /**
     * When non-empty, the service writes automatic flight-recorder
     * postmortems ("<prefix>postmortem-<seq>.jsonl",
     * util/flight_recorder.hh) whenever the degradation ladder
     * escalates to BypassSupervised or beyond and whenever a chaos
     * crash kills a batch — provided the process flight recorder is
     * armed. Empty (the default) disables automatic dumps.
     */
    std::string postmortemPrefix;

    /**
     * Drift-monitor tunables (serve/drift_monitor.hh). The monitor
     * arms itself from the active model's feature baseline and stays
     * inert for baseline-less models.
     */
    DriftOptions drift{};

    /** SLO objectives and harvest cadence (serve/slo_tracker.hh). */
    SloOptions slo{};
};

/**
 * Point-in-time service snapshot for statusz rendering — everything
 * an operator (or tools/hm_statusz) wants on one page.
 */
struct ServiceStatus {
    uint64_t modelEpoch = 0;
    std::string predictorName;
    bool hasBaseline = false;

    int degradationLevel = 0;

    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    std::size_t workers = 0;

    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t errors = 0;

    uint64_t batchFailures = 0;
    uint64_t workerStalls = 0;
    uint64_t workerRestarts = 0;
    uint64_t fallbackServed = 0;

    uint64_t statsHits = 0;
    uint64_t statsMisses = 0;

    /**
     * The service's statsMetricsPrefix. Shard statuses that share a
     * non-empty prefix are reading the *same* registry counters, so
     * a fleet roll-up must count that group once, not per shard
     * (see aggregateStatusz).
     */
    std::string statsPrefix;

    bool flightArmed = false;
    uint64_t flightAppended = 0;
    uint64_t flightDropped = 0;
    uint64_t postmortems = 0;

    DriftScores drift;
    SloStatus slo;
};

/** Human-readable multi-line rendering of @p status. */
std::string statuszText(const ServiceStatus &status);

/**
 * One build-info-stamped JSON object ({"type":"statusz",...}) —
 * the document tools/hm_statusz validates and renders.
 */
std::string statuszJson(const ServiceStatus &status);

/**
 * Roll @p shards up into one fleet-total ServiceStatus without
 * double-counting:
 *
 *  - request/fault counters, queue depth/capacity, and workers sum
 *    across shards (each shard owns those);
 *  - stats-cache counters sum once per distinct statsPrefix — N
 *    shards sharing "serve.stats_cache" all read the same process
 *    aggregate, so that group contributes one term, while shards
 *    with per-shard prefixes (or empty = detached) each contribute;
 *  - flight-recorder numbers are process-wide: taken once;
 *  - model epoch, ladder level, drift, and SLO report the *worst*
 *    shard (max epoch; max ladder; max PSI; per-objective min good
 *    fraction / max burn / min budget, with percentile upper
 *    bounds), because a fleet is as healthy as its sickest shard.
 *
 * Empty input yields a default ServiceStatus.
 */
ServiceStatus aggregateStatusz(const std::vector<ServiceStatus> &shards);

/** Fleet rendering: the aggregate, then one block per shard. */
std::string fleetStatuszText(const std::vector<ServiceStatus> &shards);

/**
 * One JSON document ({"type":"statusz","fleet":{...},"shards":[...]})
 * — hm_statusz validates and renders it like a single-service
 * snapshot, plus the per-shard breakdown.
 */
std::string fleetStatuszJson(const std::vector<ServiceStatus> &shards);

/** Concurrent prediction server over a ModelRegistry. */
class PredictionService
{
  public:
    /**
     * @param models  Registry with at least one published model.
     * @param options Tunables; worker threads start immediately.
     */
    explicit PredictionService(ModelRegistry &models,
                               ServiceOptions options = {});

    /** close()s and joins the workers. */
    ~PredictionService();

    PredictionService(const PredictionService &) = delete;
    PredictionService &operator=(const PredictionService &) = delete;

    /**
     * Submit one request. Always returns a future that becomes
     * ready: Ok with a deployment, Shed (admission or deadline), or
     * Closed. Under Block admission this call waits for queue space
     * — an admitted request is never dropped.
     */
    std::future<ServeResponse> submit(ServeRequest request);

    /**
     * Wait until every request admitted before this call has been
     * responded to (the queue may still accept new work).
     */
    void drain();

    /**
     * Stop admitting, serve everything already queued, and join the
     * workers. Idempotent; rethrows the first worker exception.
     */
    void close();

    /** Worker thread count. */
    std::size_t workers() const { return pool_.threadCount(); }

    /** @name Request accounting (monotonic). @{ */
    uint64_t submitted() const { return submitted_.load(); }
    uint64_t admitted() const { return admitted_.load(); }
    uint64_t completed() const { return completed_.load(); }
    uint64_t shed() const { return shed_.load(); }
    uint64_t errorResponses() const { return errors_.load(); }
    /** @} */

    /** @name Fault-tolerance accounting (monotonic). @{ */
    uint64_t batchFailures() const { return batch_failures_.load(); }
    uint64_t workerStalls() const { return worker_stalls_.load(); }
    uint64_t workerRestarts() const { return worker_restarts_.load(); }
    uint64_t fallbackServed() const { return fallback_served_.load(); }
    /** @} */

    /** Current degradation-ladder rung. */
    DegradationLevel degradationLevel() const;

    /** Aggregate stats-shard counters (mirrors serve.stats_cache.*). */
    uint64_t statsHits() const;
    uint64_t statsMisses() const;

    /** Drift scores (readable in telemetry-OFF builds too). */
    DriftScores driftScores() const { return drift_.scores(); }

    /** SLO state: last window, rolling budget, latency percentiles. */
    SloStatus sloStatus() const { return slo_.status(); }

    /** Automatic postmortem dumps triggered so far. */
    uint64_t postmortems() const { return postmortems_.load(); }

    /** Live snapshot for statuszText()/statuszJson(). */
    ServiceStatus statusz() const;

  private:
    /**
     * Per-worker health slot the watchdog scans. beatNs is the
     * steady-clock timestamp of the worker's last heartbeat; busy
     * distinguishes "blocked in pop (idle, never stalled)" from
     * "serving a batch"; alive goes false when the worker's loop
     * task exits (lethal chaos crash, or normal close-time drain).
     */
    struct WorkerHealth {
        std::atomic<int64_t> beatNs{0};
        std::atomic<bool> busy{false};
        std::atomic<bool> alive{false};
    };

    ModelRegistry &models_;
    ServiceOptions options_;
    RequestQueue queue_;

    std::atomic<uint64_t> next_id_{1};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> errors_{0};
    std::atomic<uint64_t> responded_{0}; //!< admitted, now answered
    std::atomic<bool> closed_{false};

    std::atomic<uint64_t> batch_failures_{0};
    std::atomic<uint64_t> worker_stalls_{0};
    std::atomic<uint64_t> worker_restarts_{0};
    std::atomic<uint64_t> fallback_served_{0};

    /** @name Degradation ladder (watchdog-driven). @{ */
    std::atomic<int> degradation_{0};
    std::atomic<int64_t> last_fault_ns_{0};
    std::atomic<int64_t> last_recover_ns_{0};
    /** @} */

    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;

    std::vector<std::unique_ptr<GraphStatsCache>> stats_shards_;

    /** @name Forensics: drift, SLOs, postmortem accounting. @{ */
    DriftMonitor drift_;
    SloTracker slo_;
    std::atomic<uint64_t> postmortems_{0};
    /** @} */

    /** Heuristic served at DegradationLevel::FallbackHeuristic. */
    std::unique_ptr<HeteroMap> fallback_;

    /** @name Supervised lane (serialized; see superviseDeploy). @{ */
    std::mutex supervised_mutex_;
    std::shared_ptr<const ModelSnapshot> supervised_model_;
    std::unique_ptr<Supervisor> supervisor_;
    /** @} */

    std::mutex close_mutex_; //!< makes close() idempotent

    /** @name Watchdog thread. @{ */
    std::vector<std::unique_ptr<WorkerHealth>> health_;
    std::mutex watchdog_mutex_;
    std::condition_variable watchdog_cv_;
    bool watchdog_stop_ = false; //!< guarded by watchdog_mutex_
    std::thread watchdog_;
    /** @} */

    ThreadPool pool_; //!< last member: destroyed (joined) first

    GraphStatsCache &shardFor(const BatchKey &key);
    void workerLoop(std::size_t slot);
    void gatherBatch(std::vector<PendingRequest> &batch);
    void serveBatch(std::vector<PendingRequest> &batch);
    void superviseDeploy(
        const std::shared_ptr<const ModelSnapshot> &snapshot,
        const BenchmarkCase &bench, ServeResponse &response);
    void respond(PendingRequest &pending, ServeResponse response);
    void respondShed(PendingRequest &pending, ShedReason reason);
    void noteResponded(std::size_t count);

    /** Fail every not-yet-responded promise in @p batch. */
    void failBatch(std::vector<PendingRequest> &batch,
                   const std::string &what);
    void watchdogLoop();
    void stopWatchdog();
    void noteFault();
    void beat(WorkerHealth &health);

    /**
     * Dump the armed flight recorder to the next sequenced
     * postmortem file (no-op without a prefix or an armed recorder).
     */
    void maybePostmortem(const char *reason);
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_PREDICTION_SERVICE_HH
