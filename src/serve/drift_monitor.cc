/**
 * @file
 * Drift monitor implementation.
 */

#include "serve/drift_monitor.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {
namespace serve {

DriftMonitor::DriftMonitor(DriftOptions options)
    : options_(std::move(options))
{
    options_.windowSize = std::max<std::size_t>(2, options_.windowSize);
    options_.outcomeWindow =
        std::max<std::size_t>(1, options_.outcomeWindow);
    outcomes_.assign(options_.outcomeWindow, 0);
}

void
DriftMonitor::setBaseline(std::shared_ptr<const FeatureBaseline> baseline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (baseline == baseline_)
        return;
    baseline_ = std::move(baseline);
    scores_.hasBaseline = baseline_ != nullptr;
    // The half-filled window was accumulated for the old baseline;
    // scoring it against the new one would report phantom drift.
    for (telemetry::QuantileSketch &sketch : window_)
        sketch.clear();
    window_fill_ = 0;
}

bool
DriftMonitor::hasBaseline() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return baseline_ != nullptr;
}

bool
DriftMonitor::closeWindowLocked()
{
    double worst_psi = 0.0;
    double worst_ks = 0.0;
    std::size_t worst_dim = 0;
    for (std::size_t d = 0; d < kDims; ++d) {
        const double psi = window_[d].psiAgainst(baseline_->dims[d]);
        worst_ks = std::max(worst_ks, window_[d].ksAgainst(
                                          baseline_->dims[d]));
        if (psi > worst_psi) {
            worst_psi = psi;
            worst_dim = d;
        }
    }
    scores_.psi = worst_psi;
    scores_.ks = worst_ks;
    scores_.worstDim = worst_dim;
    scores_.windows += 1;
    const bool alert = worst_psi >= options_.psiAlert;
    if (alert)
        scores_.alerts += 1;

    for (telemetry::QuantileSketch &sketch : window_)
        sketch.clear();
    window_fill_ = 0;
    return alert;
}

void
DriftMonitor::observe(const FeatureVector &features)
{
    DriftScores published;
    bool alerted = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (baseline_ == nullptr)
            return;
        const auto values = features.asArray();
        static_assert(std::tuple_size_v<decltype(features.asArray())> ==
                          kDims,
                      "drift window dims must match the feature vector");
        for (std::size_t d = 0; d < kDims; ++d)
            window_[d].insert(values[d]);
        if (++window_fill_ < options_.windowSize)
            return;
        alerted = closeWindowLocked();
        published = scores_;
    }

    HM_GAUGE_SET("serve.drift.psi", published.psi);
    HM_GAUGE_SET("serve.drift.ks", published.ks);
    HM_GAUGE_SET("serve.drift.windows",
                 static_cast<double>(published.windows));
    if (alerted) {
        HM_COUNTER_INC("serve.drift.alerts");
        warn("serve: feature drift alert — window PSI ", published.psi,
             " (dim ", published.worstDim, ", threshold ",
             options_.psiAlert, ")");
        if (options_.onAlert)
            options_.onAlert(published);
    }
}

void
DriftMonitor::observeOutcome(bool within_tolerance)
{
    double rate = 0.0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        outcomes_[outcome_next_] = within_tolerance ? 0 : 1;
        outcome_next_ = (outcome_next_ + 1) % outcomes_.size();
        outcome_count_ = std::min(outcome_count_ + 1, outcomes_.size());
        uint64_t mispredicts = 0;
        for (std::size_t i = 0; i < outcome_count_; ++i)
            mispredicts += outcomes_[i];
        rate = static_cast<double>(mispredicts) /
               static_cast<double>(outcome_count_);
        scores_.mispredictRate = rate;
    }
    HM_GAUGE_SET("serve.drift.mispredict_rate", rate);
}

DriftScores
DriftMonitor::scores() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return scores_;
}

} // namespace serve
} // namespace heteromap
