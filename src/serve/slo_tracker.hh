/**
 * @file
 * Rolling-window latency SLO tracker for the serving tier.
 *
 * Workers record() every response's service latency into one
 * lock-free telemetry::Histogram; the watchdog (or any caller)
 * closes tumbling windows with maybeHarvest(). Each harvest takes a
 * histogram snapshot, subtracts the previous one, and evaluates
 * every objective on the window's delta using the interpolated
 * HistogramSnapshot::fractionBelow():
 *
 *   goodFraction = fraction of the window's requests at or under
 *                  the objective's threshold (1.0 for an idle
 *                  window — vacuously compliant);
 *   burnRate     = (1 - goodFraction) / (1 - target), the SRE
 *                  error-budget burn rate (1.0 = spending exactly
 *                  the budget, > 1 = on track to blow it);
 *   budgetRemaining = share of the error budget left over the last
 *                  budgetWindows windows, request-weighted:
 *                  1 - badRequests / (allowedFraction * requests),
 *                  clamped to [0, 1] (a breach shows up as 0
 *                  remaining plus a burn rate above 1).
 *
 * Results are exported as serve.slo.<objective>.good_fraction /
 * .burn_rate / .budget_remaining gauges and stay readable through
 * status() in telemetry-OFF builds (the tracker owns its Histogram,
 * which works in both builds).
 */

#ifndef HETEROMAP_SERVE_SLO_TRACKER_HH
#define HETEROMAP_SERVE_SLO_TRACKER_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/telemetry.hh"

namespace heteromap {
namespace serve {

/** One latency objective: target fraction under a threshold. */
struct SloObjective {
    std::string name;        //!< metric-name fragment, e.g. "fast"
    double thresholdMs = 1.0;
    double target = 0.95;    //!< required good fraction in (0, 1)
};

struct SloOptions {
    /** Defaulted in the tracker when empty (see makeDefaultSlos). */
    std::vector<SloObjective> objectives;

    /** Minimum wall time between maybeHarvest() window closes. */
    double windowMs = 250.0;

    /** Rolling error-budget horizon, in windows. */
    std::size_t budgetWindows = 40;
};

/** Objectives used when SloOptions::objectives is empty. */
std::vector<SloObjective> makeDefaultSlos();

/** Point-in-time SLO state (last completed window + budget). */
struct SloStatus {
    struct Objective {
        std::string name;
        double thresholdMs = 0.0;
        double target = 0.0;
        double goodFraction = 1.0;
        double burnRate = 0.0;
        double budgetRemaining = 1.0;
        uint64_t breaches = 0; //!< windows with goodFraction < target
    };

    std::vector<Objective> objectives;
    uint64_t windows = 0;    //!< completed windows
    uint64_t requests = 0;   //!< latencies recorded so far
    double p50Ms = 0.0;      //!< cumulative latency percentiles
    double p95Ms = 0.0;
    double p99Ms = 0.0;
};

/** Thread-safe; record() is lock-free, harvests take a mutex. */
class SloTracker
{
  public:
    explicit SloTracker(SloOptions options = {});

    /** Record one response's service latency. Lock-free. */
    void record(double service_ms) { histogram_.record(service_ms); }

    /**
     * Close a window when windowMs has elapsed since the last close
     * (always, when @p force). @return true when a window closed.
     */
    bool maybeHarvest(bool force = false);

    SloStatus status() const;

  private:
    /** Per-objective rolling budget ring entry. */
    struct WindowSpend {
        double bad = 0.0;      //!< bad-request mass in the window
        uint64_t total = 0;    //!< requests in the window
    };

    struct ObjectiveState {
        SloObjective objective;
        std::vector<WindowSpend> ring; //!< budgetWindows entries
        std::size_t ringNext = 0;
        std::size_t ringFill = 0;
        double goodFraction = 1.0;
        double burnRate = 0.0;
        double budgetRemaining = 1.0;
        uint64_t breaches = 0;
    };

    SloOptions options_;
    telemetry::Histogram histogram_;

    mutable std::mutex mutex_;
    std::vector<ObjectiveState> states_;
    telemetry::HistogramSnapshot last_; //!< cumulative, at last close
    std::chrono::steady_clock::time_point last_close_;
    uint64_t windows_ = 0;
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_SLO_TRACKER_HH
