/**
 * @file
 * Request queue implementation.
 */

#include "serve/request_queue.hh"

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {
namespace serve {

namespace {

/** splitmix64 finalizer (same mixing as the stats-cache hashes). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
ServeError::toString() const
{
    return std::string(errorCodeName(code)) + " error: " + message;
}

BatchKey
makeBatchKey(const ServeRequest &request)
{
    HM_ASSERT(request.graph != nullptr,
              "a serve request needs a graph");
    return {fingerprintGraph(*request.graph), request.measure.sweeps,
            request.measure.seed};
}

uint64_t
hashBatchKey(const BatchKey &key)
{
    uint64_t h = mix64(key.fingerprint.numVertices);
    h = mix64(h ^ key.fingerprint.numEdges);
    h = mix64(h ^ key.fingerprint.footprintBytes);
    h = mix64(h ^ key.fingerprint.offsetsHash);
    h = mix64(h ^ key.fingerprint.neighborsHash);
    h = mix64(h ^ key.sweeps);
    return mix64(h ^ key.seed);
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity)
{
    HM_ASSERT(capacity > 0, "request queue needs a positive capacity");
}

void
RequestQueue::publishDepth() const
{
    // Called with mutex_ held.
    HM_GAUGE_SET("serve.queue_depth",
                 static_cast<double>(queue_.size()));
}

RequestQueue::PushResult
RequestQueue::push(PendingRequest &pending, AdmissionPolicy policy)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (policy == AdmissionPolicy::Block) {
        not_full_.wait(lock, [&] {
            return closed_ || queue_.size() < capacity_;
        });
    }
    if (closed_)
        return PushResult::Closed;
    if (queue_.size() >= capacity_)
        return PushResult::Full;
    queue_.push_back(std::move(pending));
    publishDepth();
    lock.unlock();
    // notify_all: poppers wait for any request, batch gatherers for a
    // matching one — both predicates live on not_empty_.
    not_empty_.notify_all();
    return PushResult::Admitted;
}

bool
RequestQueue::pop(PendingRequest &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty())
        return false; // closed and fully drained
    out = std::move(queue_.front());
    queue_.pop_front();
    publishDepth();
    lock.unlock();
    not_full_.notify_one();
    return true;
}

std::size_t
RequestQueue::popMatchingUntil(
    const BatchKey &key, std::size_t max_count,
    std::chrono::steady_clock::time_point deadline,
    std::vector<PendingRequest> &out)
{
    std::size_t extracted = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto it = queue_.begin();
             it != queue_.end() && extracted < max_count;) {
            if (it->key == key) {
                out.push_back(std::move(*it));
                it = queue_.erase(it);
                ++extracted;
            } else {
                ++it;
            }
        }
        if (extracted > 0) {
            publishDepth();
            not_full_.notify_all();
        }
        if (extracted >= max_count || closed_ ||
            std::chrono::steady_clock::now() >= deadline) {
            return extracted;
        }
        if (not_empty_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            // One final scan above on the next loop iteration would
            // hit the deadline check; scan now and leave.
            continue;
        }
    }
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace serve
} // namespace heteromap
