/**
 * @file
 * RetryingClient: the client-side half of the serving fault-tolerance
 * story. Wraps a PredictionService and turns its raw futures into a
 * resilient call():
 *
 *  - bounded retries with exponential backoff + seeded jitter
 *    (deterministic under a fixed seed, and the sleep itself is
 *    injectable so tests capture backoffs instead of waiting them);
 *  - a per-request wall-clock deadline the whole attempt sequence —
 *    backoffs included — must fit inside;
 *  - a circuit breaker per lane (fast vs supervised, which fail
 *    independently: a hung supervisor lane should not open the fast
 *    lane's breaker). Classic three-state machine: Closed counts
 *    consecutive failed calls, trips Open at the threshold; Open
 *    fast-fails (ShedReason::CircuitOpen) without touching the
 *    service until the cooldown elapses; the first call after the
 *    cooldown runs as the Half-Open probe — success closes the
 *    breaker, failure reopens it for another cooldown.
 *
 * Retry classification: Error and Shed responses are transient and
 * retried; Ok succeeds; Closed is terminal (the service is shutting
 * down — retrying cannot help).
 *
 * Backends: the client speaks to a ServeBackend, not to a concrete
 * PredictionService — the in-process service is one backend, and the
 * network client (net/client.hh) is another. A network backend's
 * contract is to *return* transport failures (connection reset,
 * frame decode error) as ServeStatus::Error responses carrying a
 * structured ServeError rather than throwing, so network failures
 * walk the same retry/backoff/breaker ladder as server-side batch
 * failures do.
 */

#ifndef HETEROMAP_SERVE_RETRYING_CLIENT_HH
#define HETEROMAP_SERVE_RETRYING_CLIENT_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "serve/prediction_service.hh"
#include "util/rng.hh"

namespace heteromap {
namespace serve {

/**
 * Something a RetryingClient can call: the in-process service, a
 * network connection to one, or a test double. call() must always
 * return a response — transport failures become Error responses
 * with a ServeError (code Unavailable for connection-level faults,
 * Parse for frame decode failures), never exceptions, so the
 * breaker ladder sees them like any other transient failure.
 */
class ServeBackend
{
  public:
    virtual ~ServeBackend() = default;
    virtual ServeResponse call(ServeRequest request) = 0;
};

/** ServeBackend over an in-process PredictionService. */
class InProcessBackend : public ServeBackend
{
  public:
    explicit InProcessBackend(PredictionService &service)
        : service_(service)
    {
    }

    ServeResponse
    call(ServeRequest request) override
    {
        return service_.submit(std::move(request)).get();
    }

  private:
    PredictionService &service_;
};

/** Breaker states, the classic three. */
enum class CircuitState {
    Closed,   //!< normal: calls flow, consecutive failures counted
    Open,     //!< tripped: fast-fail until the cooldown elapses
    HalfOpen, //!< probing: one call decides close vs re-open
};

/** @return e.g. "half-open". */
const char *circuitStateName(CircuitState state);

/** Breaker lanes; supervised and fast traffic fail independently. */
enum class ClientLane {
    Fast = 0,
    Supervised = 1,
};
inline constexpr std::size_t kNumClientLanes = 2;

/** Retry/backoff/breaker tunables. */
struct RetryOptions {
    /** Total tries per call() (>= 1); 1 disables retries. */
    unsigned maxAttempts = 3;

    /** First backoff, in milliseconds. */
    double initialBackoffMs = 1.0;

    /** Growth factor per retry (>= 1). */
    double backoffMultiplier = 2.0;

    /** Backoff ceiling, in milliseconds. */
    double maxBackoffMs = 50.0;

    /**
     * Uniform jitter as a fraction of the backoff: each sleep is
     * drawn from [backoff * (1 - f), backoff * (1 + f)]. Seeded, so
     * the whole sleep sequence is reproducible.
     */
    double jitterFraction = 0.2;

    /**
     * Wall-clock budget for one call() — attempts plus backoffs —
     * in milliseconds. 0 disables the deadline.
     */
    double requestDeadlineMs = 0.0;

    /** Consecutive failed calls that trip the breaker Open. */
    unsigned breakerThreshold = 5;

    /** Open -> Half-Open cooldown, in milliseconds. */
    double breakerOpenMs = 100.0;

    /** Jitter RNG seed (determinism in tests and replays). */
    uint64_t seed = 0x5eedULL;
};

/** What one resilient call() did, beyond the response itself. */
struct ClientResult {
    ServeResponse response;

    /** Attempts actually made (0 when the breaker fast-failed). */
    unsigned attempts = 0;

    /** Total backoff requested across the attempts, in ms. */
    double totalBackoffMs = 0.0;

    /** True when the breaker shed without touching the service. */
    bool breakerFastFail = false;
};

/** Resilient, breaker-guarded facade over a PredictionService. */
class RetryingClient
{
  public:
    /**
     * Replacement sleep, called with each backoff in milliseconds.
     * Tests install a capturing lambda to assert the exact jittered
     * sequence without real waiting.
     */
    using Sleeper = std::function<void(double ms)>;

    /** Wrap the in-process service (owns the adapter). */
    explicit RetryingClient(PredictionService &service,
                            RetryOptions options = {});

    /** Wrap any backend (@p backend must outlive the client). */
    explicit RetryingClient(ServeBackend &backend,
                            RetryOptions options = {});

    RetryingClient(const RetryingClient &) = delete;
    RetryingClient &operator=(const RetryingClient &) = delete;

    /**
     * Submit @p request, retrying transient failures. Always returns
     * a terminal result: the last response observed, or a synthetic
     * Shed(CircuitOpen) when the lane's breaker fast-failed.
     */
    ClientResult call(ServeRequest request);

    /** Current breaker state of @p lane. */
    CircuitState laneState(ClientLane lane) const;

    /** Consecutive failed calls recorded against @p lane. */
    unsigned laneFailureStreak(ClientLane lane) const;

    /** Install a test sleeper (default: std::this_thread sleep). */
    void setSleeper(Sleeper sleeper);

    const RetryOptions &options() const { return options_; }

  private:
    struct Breaker {
        CircuitState state = CircuitState::Closed;
        unsigned consecutiveFailures = 0;
        std::chrono::steady_clock::time_point openedAt{};
    };

    std::unique_ptr<ServeBackend> owned_backend_; //!< service adapter
    ServeBackend &backend_;
    RetryOptions options_;

    mutable std::mutex mutex_; //!< guards breakers_ and rng_
    std::array<Breaker, kNumClientLanes> breakers_;
    Rng rng_;
    Sleeper sleeper_;

    /** Clamp option fields to their documented domains. */
    void normalizeOptions();

    /** Jittered backoff for 1-based retry number @p retry. */
    double backoffMs(unsigned retry);

    /** Breaker admission check; may transition Open -> HalfOpen. */
    bool admit(ClientLane lane);
    void recordSuccess(ClientLane lane);
    void recordFailure(ClientLane lane);
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_RETRYING_CLIENT_HH
