/**
 * @file
 * Retrying client implementation.
 */

#include "serve/retrying_client.hh"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {
namespace serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
millisSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               SteadyClock::now() - start)
        .count();
}

bool
isTerminal(const ServeResponse &response)
{
    // Ok succeeded; Closed means the service is shutting down, so
    // more attempts can only observe Closed again. Error and Shed
    // are transient (a crashed batch, a reset connection, a full
    // queue) — retry those. The exception: a Parse or OutOfRange
    // ServeError says the *request* is malformed (bad frame, graph
    // the server does not know) — resending identical bytes fails
    // identically, so those errors are terminal too.
    if (response.status == ServeStatus::Ok ||
        response.status == ServeStatus::Closed)
        return true;
    return response.status == ServeStatus::Error && response.error &&
           (response.error->code == ErrorCode::Parse ||
            response.error->code == ErrorCode::OutOfRange);
}

} // namespace

const char *
circuitStateName(CircuitState state)
{
    switch (state) {
      case CircuitState::Closed: return "closed";
      case CircuitState::Open: return "open";
      case CircuitState::HalfOpen: return "half-open";
    }
    HM_PANIC("unreachable circuit state ", static_cast<int>(state));
}

RetryingClient::RetryingClient(PredictionService &service,
                               RetryOptions options)
    : owned_backend_(std::make_unique<InProcessBackend>(service)),
      backend_(*owned_backend_), options_(options), rng_(options.seed)
{
    normalizeOptions();
}

RetryingClient::RetryingClient(ServeBackend &backend,
                               RetryOptions options)
    : backend_(backend), options_(options), rng_(options.seed)
{
    normalizeOptions();
}

void
RetryingClient::normalizeOptions()
{
    options_.maxAttempts = std::max(1u, options_.maxAttempts);
    options_.backoffMultiplier =
        std::max(1.0, options_.backoffMultiplier);
    options_.jitterFraction =
        std::clamp(options_.jitterFraction, 0.0, 1.0);
    options_.breakerThreshold = std::max(1u, options_.breakerThreshold);
    sleeper_ = [](double ms) {
        if (ms > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
    };
}

void
RetryingClient::setSleeper(Sleeper sleeper)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sleeper_ = std::move(sleeper);
}

CircuitState
RetryingClient::laneState(ClientLane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breakers_[static_cast<std::size_t>(lane)].state;
}

unsigned
RetryingClient::laneFailureStreak(ClientLane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return breakers_[static_cast<std::size_t>(lane)]
        .consecutiveFailures;
}

double
RetryingClient::backoffMs(unsigned retry)
{
    // retry is 1-based: the sleep before the 2nd attempt is retry 1.
    double base = options_.initialBackoffMs;
    for (unsigned i = 1; i < retry; ++i)
        base *= options_.backoffMultiplier;
    base = std::min(base, options_.maxBackoffMs);
    double jitter;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jitter = rng_.nextDouble(-options_.jitterFraction,
                                 options_.jitterFraction);
    }
    return std::max(0.0, base * (1.0 + jitter));
}

bool
RetryingClient::admit(ClientLane lane)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Breaker &breaker = breakers_[static_cast<std::size_t>(lane)];
    switch (breaker.state) {
      case CircuitState::Closed:
      case CircuitState::HalfOpen:
        return true;
      case CircuitState::Open: {
        const double open_ms =
            std::chrono::duration<double, std::milli>(
                SteadyClock::now() - breaker.openedAt)
                .count();
        if (open_ms < options_.breakerOpenMs)
            return false;
        // Cooldown over: this call is the Half-Open probe.
        breaker.state = CircuitState::HalfOpen;
        return true;
      }
    }
    HM_PANIC("unreachable circuit state");
}

void
RetryingClient::recordSuccess(ClientLane lane)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Breaker &breaker = breakers_[static_cast<std::size_t>(lane)];
    if (breaker.state != CircuitState::Closed) {
        HM_COUNTER_INC("client.breaker_closed");
    }
    breaker.state = CircuitState::Closed;
    breaker.consecutiveFailures = 0;
}

void
RetryingClient::recordFailure(ClientLane lane)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Breaker &breaker = breakers_[static_cast<std::size_t>(lane)];
    ++breaker.consecutiveFailures;
    const bool trip =
        breaker.state == CircuitState::HalfOpen ||
        breaker.consecutiveFailures >= options_.breakerThreshold;
    if (trip) {
        if (breaker.state != CircuitState::Open)
            HM_COUNTER_INC("client.breaker_opened");
        breaker.state = CircuitState::Open;
        breaker.openedAt = SteadyClock::now();
    }
}

ClientResult
RetryingClient::call(ServeRequest request)
{
    const ClientLane lane = request.supervised
                                ? ClientLane::Supervised
                                : ClientLane::Fast;
    ClientResult result;

    if (!admit(lane)) {
        // Fast-fail without touching the service: the lane is known
        // bad and still cooling down.
        HM_COUNTER_INC("client.breaker_fast_fails");
        result.breakerFastFail = true;
        result.response.status = ServeStatus::Shed;
        result.response.shedReason = ShedReason::CircuitOpen;
        return result;
    }

    const auto start = SteadyClock::now();
    for (unsigned attempt = 1;; ++attempt) {
        result.attempts = attempt;
        HM_COUNTER_INC("client.attempts");
        result.response = backend_.call(request);

        if (isTerminal(result.response))
            break;
        if (attempt >= options_.maxAttempts) {
            HM_COUNTER_INC("client.retries_exhausted");
            break;
        }
        if (options_.requestDeadlineMs > 0.0 &&
            millisSince(start) >= options_.requestDeadlineMs) {
            HM_COUNTER_INC("client.deadline_exhausted");
            break;
        }

        const double backoff = backoffMs(attempt);
        result.totalBackoffMs += backoff;
        HM_COUNTER_INC("client.retries");
        Sleeper sleeper;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            sleeper = sleeper_;
        }
        sleeper(backoff);
    }

    if (result.response.status == ServeStatus::Ok)
        recordSuccess(lane);
    else
        recordFailure(lane);
    return result;
}

} // namespace serve
} // namespace heteromap
