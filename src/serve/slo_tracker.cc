/**
 * @file
 * SLO tracker implementation.
 */

#include "serve/slo_tracker.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace heteromap {
namespace serve {

namespace {

/**
 * The window's histogram delta: cumulative @p now minus cumulative
 * @p last. Bucket counts and the count/sum subtract exactly; the
 * delta's extrema are unknowable from two cumulative snapshots, so
 * the cumulative ones stand in — they only widen the interpolation
 * edges fractionBelow() tightens with, never misplace mass.
 */
telemetry::HistogramSnapshot
windowDelta(const telemetry::HistogramSnapshot &now,
            const telemetry::HistogramSnapshot &last)
{
    telemetry::HistogramSnapshot delta = now;
    delta.count = now.count - last.count;
    delta.sum = now.sum - last.sum;
    for (std::size_t b = 0; b < telemetry::HistogramSnapshot::kBuckets;
         ++b) {
        delta.buckets[b] = now.buckets[b] - last.buckets[b];
    }
    return delta;
}

} // namespace

std::vector<SloObjective>
makeDefaultSlos()
{
    // Thresholds sized for the in-process service: the fast
    // objective guards the cached/batched common case, the tail one
    // the measurement-heavy cold path.
    return {
        {"fast", 5.0, 0.90},
        {"tail", 50.0, 0.99},
    };
}

SloTracker::SloTracker(SloOptions options) : options_(std::move(options))
{
    if (options_.objectives.empty())
        options_.objectives = makeDefaultSlos();
    options_.windowMs = std::max(1.0, options_.windowMs);
    options_.budgetWindows =
        std::max<std::size_t>(1, options_.budgetWindows);
    for (const SloObjective &objective : options_.objectives) {
        HM_ASSERT(objective.target > 0.0 && objective.target < 1.0,
                  "SLO target must be a fraction in (0, 1)");
        ObjectiveState state;
        state.objective = objective;
        state.ring.assign(options_.budgetWindows, WindowSpend{});
        states_.push_back(std::move(state));
    }
    last_close_ = std::chrono::steady_clock::now();
}

bool
SloTracker::maybeHarvest(bool force)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (!force) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(now - last_close_)
                .count();
        if (elapsed_ms < options_.windowMs)
            return false;
    }
    last_close_ = now;

    const telemetry::HistogramSnapshot cumulative =
        histogram_.snapshot();
    const telemetry::HistogramSnapshot window =
        windowDelta(cumulative, last_);
    last_ = cumulative;
    windows_ += 1;

    for (ObjectiveState &state : states_) {
        const double good =
            window.fractionBelow(state.objective.thresholdMs);
        const double allowed = 1.0 - state.objective.target;
        state.goodFraction = good;
        state.burnRate = (1.0 - good) / allowed;
        if (good < state.objective.target && window.count > 0)
            state.breaches += 1;

        state.ring[state.ringNext] = WindowSpend{
            (1.0 - good) * static_cast<double>(window.count),
            window.count};
        state.ringNext = (state.ringNext + 1) % state.ring.size();
        state.ringFill =
            std::min(state.ringFill + 1, state.ring.size());

        double bad = 0.0;
        uint64_t total = 0;
        for (std::size_t i = 0; i < state.ringFill; ++i) {
            bad += state.ring[i].bad;
            total += state.ring[i].total;
        }
        state.budgetRemaining =
            total == 0
                ? 1.0
                : std::clamp(1.0 - bad / (allowed *
                                          static_cast<double>(total)),
                             0.0, 1.0);

        if (telemetry::enabled()) {
            const std::string prefix =
                "serve.slo." + state.objective.name;
            telemetry::registry()
                .gauge(prefix + ".good_fraction")
                .set(state.goodFraction);
            telemetry::registry()
                .gauge(prefix + ".burn_rate")
                .set(state.burnRate);
            telemetry::registry()
                .gauge(prefix + ".budget_remaining")
                .set(state.budgetRemaining);
        }
    }
    return true;
}

SloStatus
SloTracker::status() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SloStatus status;
    status.windows = windows_;
    const telemetry::HistogramSnapshot cumulative =
        histogram_.snapshot();
    status.requests = cumulative.count;
    status.p50Ms = cumulative.percentile(0.50);
    status.p95Ms = cumulative.percentile(0.95);
    status.p99Ms = cumulative.percentile(0.99);
    for (const ObjectiveState &state : states_) {
        SloStatus::Objective out;
        out.name = state.objective.name;
        out.thresholdMs = state.objective.thresholdMs;
        out.target = state.objective.target;
        out.goodFraction = state.goodFraction;
        out.burnRate = state.burnRate;
        out.budgetRemaining = state.budgetRemaining;
        out.breaches = state.breaches;
        status.objectives.push_back(std::move(out));
    }
    return status;
}

} // namespace serve
} // namespace heteromap
