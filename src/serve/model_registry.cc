/**
 * @file
 * Model registry implementation.
 */

#include "serve/model_registry.hh"

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {
namespace serve {

ModelRegistry::ModelRegistry(AcceleratorPair pair, const Oracle &oracle)
    : pair_(std::move(pair)), oracle_(oracle)
{
}

std::shared_ptr<const ModelSnapshot>
ModelRegistry::current() const
{
    std::lock_guard<std::mutex> lock(active_mutex_);
    return active_;
}

uint64_t
ModelRegistry::publish(PredictorKind kind,
                       std::unique_ptr<Predictor> predictor)
{
    HM_ASSERT(predictor != nullptr, "cannot publish a null predictor");
    std::lock_guard<std::mutex> lock(publish_mutex_);

    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->predictorName = predictor->name();
    snapshot->framework = std::make_shared<const HeteroMap>(
        pair_, std::move(predictor), oracle_);
    snapshot->epoch = ++next_epoch_;
    snapshot->kind = kind;

    // Readers holding the previous snapshot keep serving from it;
    // its HeteroMap is reclaimed when the last in-flight batch drops
    // the shared_ptr. New readers see the new model immediately.
    {
        std::lock_guard<std::mutex> lock(active_mutex_);
        active_ = snapshot;
    }

    HM_COUNTER_INC("serve.model_publishes");
    HM_GAUGE_SET("serve.model_epoch",
                 static_cast<double>(snapshot->epoch));
    return snapshot->epoch;
}

uint64_t
ModelRegistry::publishTrained(PredictorKind kind,
                              const TrainingSet &corpus)
{
    std::unique_ptr<Predictor> predictor = makePredictor(kind);
    predictor->train(corpus);
    return publish(kind, std::move(predictor));
}

uint64_t
ModelRegistry::load(PredictorKind kind, std::istream &is)
{
    return publish(kind, loadPredictor(kind, is));
}

uint64_t
ModelRegistry::epoch() const
{
    auto snapshot = current();
    return snapshot == nullptr ? 0 : snapshot->epoch;
}

} // namespace serve
} // namespace heteromap
