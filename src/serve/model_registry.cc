/**
 * @file
 * Model registry implementation.
 */

#include "serve/model_registry.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "model/feature_baseline.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {
namespace serve {

namespace {

/** splitmix64 finalizer, for the temp-file suffix. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

ModelRegistry::ModelRegistry(AcceleratorPair pair, const Oracle &oracle)
    : pair_(std::move(pair)), oracle_(oracle)
{
}

std::shared_ptr<const ModelSnapshot>
ModelRegistry::current() const
{
    std::lock_guard<std::mutex> lock(active_mutex_);
    return active_;
}

uint64_t
ModelRegistry::publish(PredictorKind kind,
                       std::unique_ptr<Predictor> predictor,
                       std::shared_ptr<const FeatureBaseline> baseline)
{
    HM_ASSERT(predictor != nullptr, "cannot publish a null predictor");
    std::lock_guard<std::mutex> lock(publish_mutex_);

    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->predictorName = predictor->name();
    auto framework = std::make_shared<HeteroMap>(
        pair_, std::move(predictor), oracle_);
    framework->setBaseline(baseline);
    snapshot->framework = std::move(framework);
    snapshot->baseline = std::move(baseline);
    snapshot->epoch = ++next_epoch_;
    snapshot->kind = kind;

    // Readers holding the previous snapshot keep serving from it;
    // its HeteroMap is reclaimed when the last in-flight batch drops
    // the shared_ptr. New readers see the new model immediately.
    {
        std::lock_guard<std::mutex> lock(active_mutex_);
        active_ = snapshot;
    }

    HM_COUNTER_INC("serve.model_publishes");
    HM_GAUGE_SET("serve.model_epoch",
                 static_cast<double>(snapshot->epoch));
    return snapshot->epoch;
}

uint64_t
ModelRegistry::publishTrained(PredictorKind kind,
                              const TrainingSet &corpus)
{
    std::unique_ptr<Predictor> predictor = makePredictor(kind);
    predictor->train(corpus);
    // Capture what the model was trained on: the baseline rides the
    // snapshot (arming the drift monitor) and the v3 envelope
    // saveActive() writes, so a disk round-trip keeps it.
    auto baseline = std::make_shared<const FeatureBaseline>(
        buildFeatureBaseline(corpus));
    return publish(kind, std::move(predictor), std::move(baseline));
}

Result<uint64_t>
ModelRegistry::load(PredictorKind kind, std::istream &is)
{
    // The self-describing loader, so a v3 stream's baseline comes
    // along; the caller-declared kind is still enforced.
    Result<LoadedPredictor> loaded = loadAnyPredictor(is);
    if (!loaded.ok())
        return noteLoadFailure(std::move(loaded).error());
    LoadedPredictor model = std::move(loaded).value();
    if (model.kind != kind) {
        return noteLoadFailure(HM_RECOVERABLE(
            ErrorCode::Parse, "model kind mismatch: stream holds a ",
            predictorKindName(model.kind), ", caller requested a ",
            predictorKindName(kind)));
    }
    return publish(kind, std::move(model.predictor),
                   std::move(model.baseline));
}

Result<uint64_t>
ModelRegistry::saveActive(const std::string &path)
{
    std::shared_ptr<const ModelSnapshot> snapshot = current();
    if (snapshot == nullptr) {
        return HM_RECOVERABLE(ErrorCode::Unavailable,
                              "saveActive(", path,
                              "): no model published yet");
    }

    std::ostringstream envelope;
    savePredictor(snapshot->framework->predictor(), snapshot->kind,
                  envelope, snapshot->baseline.get());
    const std::string body = envelope.str();

    // Unique-enough sibling name: same directory as the target (so
    // the rename below is not a cross-filesystem move), salted by
    // the registry's address and the epoch being saved.
    const uint64_t salt =
        mix64(reinterpret_cast<uintptr_t>(this) ^ snapshot->epoch);
    const std::string tmp =
        path + ".tmp." + std::to_string(salt % 1000000);

    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out.is_open()) {
            return HM_RECOVERABLE(ErrorCode::Io, "saveActive(", path,
                                  "): cannot open temp file ", tmp);
        }
        out.write(body.data(),
                  static_cast<std::streamsize>(body.size()));
        out.flush();
        if (!out.good()) {
            out.close();
            std::remove(tmp.c_str());
            return HM_RECOVERABLE(ErrorCode::Io, "saveActive(", path,
                                  "): short write to ", tmp);
        }
    }

    // The atomic publish: readers of `path` see the old complete
    // file until this instant, the new complete file after it.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return HM_RECOVERABLE(ErrorCode::Io, "saveActive(", path,
                              "): rename from ", tmp, " failed");
    }
    HM_COUNTER_INC("serve.model_saves");
    return snapshot->epoch;
}

Result<uint64_t>
ModelRegistry::loadFrom(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        return noteLoadFailure(
            HM_RECOVERABLE(ErrorCode::Io, "loadFrom(", path,
                           "): cannot open file"));
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    std::string bytes = raw.str();

    // Chaos: ModelLoadCorrupt flips one payload bit before
    // verification, proving the checksum catches it and the
    // last-good snapshot keeps serving.
    std::shared_ptr<ChaosPolicy> chaos;
    {
        std::lock_guard<std::mutex> lock(chaos_mutex_);
        chaos = chaos_;
    }
    if (chaos != nullptr && !bytes.empty() &&
        chaos->visit(ChaosPoint::ModelLoadCorrupt).has_value()) {
        bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    }

    std::istringstream is(bytes);
    Result<LoadedPredictor> loaded = loadAnyPredictor(is);
    if (!loaded.ok()) {
        return noteLoadFailure(std::move(loaded).error());
    }
    LoadedPredictor model = std::move(loaded).value();
    return publish(model.kind, std::move(model.predictor),
                   std::move(model.baseline));
}

uint64_t
ModelRegistry::epoch() const
{
    auto snapshot = current();
    return snapshot == nullptr ? 0 : snapshot->epoch;
}

uint64_t
ModelRegistry::loadFailures() const
{
    return load_failures_.load(std::memory_order_relaxed);
}

void
ModelRegistry::setChaosPolicy(std::shared_ptr<ChaosPolicy> chaos)
{
    std::lock_guard<std::mutex> lock(chaos_mutex_);
    chaos_ = std::move(chaos);
}

Error
ModelRegistry::noteLoadFailure(Error error)
{
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    HM_COUNTER_INC("serve.model_load_failures");
    return error;
}

} // namespace serve
} // namespace heteromap
