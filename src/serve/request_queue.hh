/**
 * @file
 * Bounded MPMC prediction-request queue with admission control — the
 * front door of the serving subsystem (serve/prediction_service.hh).
 *
 * Admission is policy-driven: Block applies backpressure (the caller
 * waits for space, so no admitted request is ever dropped), Reject
 * sheds at the door when the queue is full (the caller gets an
 * immediate Shed response and the "serve.shed" counter accounts for
 * it exactly). Deadlines ride on each request; expiry is checked at
 * dequeue time so a request that waited past its budget is shed
 * instead of wasting a measurement + featurize + inference on an
 * answer nobody is waiting for.
 *
 * The queue also powers micro-batching: popMatchingUntil() extracts
 * requests that share a BatchKey — the graph fingerprint and
 * measurement parameters — so one worker can coalesce them into a
 * single GraphStats measurement (and, per workload, a single
 * featurize) for the whole batch.
 */

#ifndef HETEROMAP_SERVE_REQUEST_QUEUE_HH
#define HETEROMAP_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/heteromap.hh"
#include "core/supervisor.hh"
#include "graph/stats_cache.hh"
#include "util/errors.hh"
#include "workloads/workload.hh"

namespace heteromap {
namespace serve {

/** What happens when a request arrives and the queue is full. */
enum class AdmissionPolicy {
    Block,  //!< backpressure: the submitter waits for space
    Reject, //!< load shedding: the request is shed immediately
};

/** Terminal state of one served request. */
enum class ServeStatus {
    Ok,     //!< predicted and deployed; deployment is valid
    Shed,   //!< load-shed (see ShedReason); deployment is empty
    Error,  //!< serving failed (see ServeResponse::error)
    Closed, //!< submitted to a closed/closing service
};

/** Why a request was shed. */
enum class ShedReason {
    None,
    QueueFull,       //!< Reject admission with the queue at capacity
    DeadlineExpired, //!< still queued when its deadline passed
    CircuitOpen,     //!< a RetryingClient breaker shed without submitting
    QuotaExceeded,   //!< a net-tier admission quota rejected the client
};

/**
 * Structured serving failure. A worker that throws mid-batch fails
 * only that batch's promises, each carrying one of these — a client
 * always gets a ready future with a diagnosable error, never a
 * broken promise.
 */
struct ServeError {
    ErrorCode code = ErrorCode::Unavailable;
    std::string message;

    /** "unavailable error: ..." style rendering. */
    std::string toString() const;
};

/** One prediction request, as a client submits it. */
struct ServeRequest {
    /** Benchmark to featurize; must be safe for concurrent use. */
    std::shared_ptr<const Workload> workload;

    /** Input graph; shared so it outlives the response. */
    std::shared_ptr<const Graph> graph;

    std::string inputName;
    MeasureOptions measure{};

    /**
     * Queueing budget in milliseconds; 0 disables the deadline. A
     * request still queued when the budget expires is shed at
     * dequeue time (any admission policy — setting a deadline opts
     * into shedding).
     */
    double deadlineMs = 0.0;

    /**
     * Route through the supervised lane: the deployment runs under
     * the Supervisor's mispredict detection, and a flagged response
     * walks the degradation ladder (core/supervisor.hh). The full
     * DeploymentOutcome is attached to the response.
     */
    bool supervised = false;
};

/** The service's answer to one ServeRequest. */
struct ServeResponse {
    ServeStatus status = ServeStatus::Closed;
    ShedReason shedReason = ShedReason::None;

    uint64_t requestId = 0;

    /**
     * Epoch of the model snapshot that served this request —
     * monotonically increasing across hot-swaps, so clients can
     * observe a swap land without a restart.
     */
    uint64_t modelEpoch = 0;

    /** The prediction + modelled deployment (status == Ok). */
    Deployment deployment;

    /** Supervised-lane outcome (requests with supervised = true). */
    std::optional<DeploymentOutcome> outcome;

    /** Why serving failed (status == Error). */
    std::optional<ServeError> error;

    /**
     * Degradation-ladder level the service was at when this request
     * was served (0 = normal; see DegradationLevel in
     * prediction_service.hh). A supervised request answered at
     * level >= 2 was served without its supervised lane.
     */
    int degradationLevel = 0;

    /**
     * True when the built-in fallback heuristic answered instead of
     * the registry's model (ladder level 3, or no healthy model).
     * modelEpoch still stamps the active snapshot's epoch so the
     * monotone-epoch contract holds across fallback windows.
     */
    bool servedByFallback = false;

    double queueMs = 0.0;         //!< admission -> dequeue wait
    double serviceMs = 0.0;       //!< dequeue -> response, whole batch
    std::size_t batchSize = 0;    //!< requests coalesced with this one
};

/**
 * Coalescing key: requests agreeing on it can share one GraphStats
 * measurement (the dominant online cost). Structure-based, like the
 * stats cache key — two distinct Graph objects holding the same CSR
 * batch together.
 */
struct BatchKey {
    GraphFingerprint fingerprint;
    unsigned sweeps = 0;
    uint64_t seed = 0;

    bool operator==(const BatchKey &) const = default;
};

/** Key @p request for coalescing (fingerprints the graph). */
BatchKey makeBatchKey(const ServeRequest &request);

/** 64-bit mix of a BatchKey, for shard selection and hashing. */
uint64_t hashBatchKey(const BatchKey &key);

/** A request admitted into the queue, with its response promise. */
struct PendingRequest {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    uint64_t id = 0;
    BatchKey key;
    std::chrono::steady_clock::time_point enqueued{};
    bool hasDeadline = false;
    std::chrono::steady_clock::time_point deadline{};

    /**
     * Set once the promise has been fulfilled. Lets the worker's
     * batch-failure path fail exactly the promises that have not
     * been answered yet — a promise is never consumed twice.
     */
    bool responded = false;
};

/** Bounded MPMC queue of pending prediction requests. */
class RequestQueue
{
  public:
    enum class PushResult { Admitted, Full, Closed };

    /** @param capacity Maximum queued requests (> 0). */
    explicit RequestQueue(std::size_t capacity);

    /**
     * Admit @p pending under @p policy. Moves from @p pending only
     * on Admitted; on Full/Closed the caller keeps it (and its
     * promise) to respond with the shed/closed status. Block waits
     * for space (or close()); Reject returns Full immediately.
     */
    PushResult push(PendingRequest &pending, AdmissionPolicy policy);

    /**
     * Blocking FIFO pop. @return false only when the queue is
     * closed *and* drained — every admitted request is handed to
     * some worker before workers see the closed signal.
     */
    bool pop(PendingRequest &out);

    /**
     * Extract up to @p max_count requests whose key equals @p key
     * (preserving their relative order; non-matching requests keep
     * their positions), waiting until @p deadline for more matches
     * while under the count. Returns the number extracted. Returns
     * early when the queue closes.
     */
    std::size_t popMatchingUntil(
        const BatchKey &key, std::size_t max_count,
        std::chrono::steady_clock::time_point deadline,
        std::vector<PendingRequest> &out);

    /** Stop admitting; wake every blocked pusher and popper. */
    void close();

    bool closed() const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<PendingRequest> queue_;
    bool closed_ = false;

    /** Mirror the depth into the "serve.queue_depth" gauge. */
    void publishDepth() const;
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_REQUEST_QUEUE_HH
