/**
 * @file
 * Feature-drift monitor for the serving tier: compares tumbling
 * windows of live request features against the training-time
 * FeatureBaseline carried by the model (envelope v3), and tracks the
 * rolling supervised mispredict rate as the ground-truth companion
 * signal.
 *
 * Scoring: each completed window computes PSI and KS
 * (util/sketch.hh) per feature dimension against the baseline and
 * reports the worst dimension — feature drift is a per-dimension
 * phenomenon, and a max is what an alert should trip on. Scores are
 * exported as gauges (serve.drift.psi / .ks / .mispredict_rate) and
 * kept readable through scores() so telemetry-OFF builds and tests
 * can assert on them directly. When the window PSI crosses
 * psiAlert the alert counter bumps and the optional callback fires
 * (outside the monitor lock, so it may log or dump freely).
 *
 * Without a baseline the monitor is inert: observe() returns after
 * one branch, and scores().hasBaseline stays false. A baseline swap
 * (model hot-swap) resets the in-progress window — scoring a window
 * against a baseline it wasn't accumulated for would be noise.
 */

#ifndef HETEROMAP_SERVE_DRIFT_MONITOR_HH
#define HETEROMAP_SERVE_DRIFT_MONITOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "model/feature_baseline.hh"

namespace heteromap {
namespace serve {

/** Last-completed-window drift scores plus rolling outcome rate. */
struct DriftScores {
    double psi = 0.0;  //!< max PSI over dimensions, last window
    double ks = 0.0;   //!< max KS over dimensions, last window
    std::size_t worstDim = 0; //!< dimension with the max PSI
    double mispredictRate = 0.0; //!< rolling supervised-outcome rate
    uint64_t windows = 0;        //!< completed windows scored
    uint64_t alerts = 0;         //!< windows with psi >= psiAlert
    bool hasBaseline = false;
};

struct DriftOptions {
    /** Requests per scored tumbling window. */
    std::size_t windowSize = 256;

    /** PSI alert threshold (>= 0.25 is "shifted" by convention). */
    double psiAlert = 0.25;

    /** Supervised outcomes in the rolling mispredict-rate window. */
    std::size_t outcomeWindow = 64;

    /**
     * Fired (outside the lock) whenever a completed window's max
     * PSI reaches psiAlert; receives the freshly computed scores.
     */
    std::function<void(const DriftScores &)> onAlert;
};

/** Thread-safe; observe() is one mutex + kDims bin increments. */
class DriftMonitor
{
  public:
    static constexpr std::size_t kDims = FeatureBaseline::kDims;

    explicit DriftMonitor(DriftOptions options = {});

    /**
     * Install (or swap) the training-time baseline. A pointer-equal
     * baseline is a no-op; a different one resets the in-progress
     * window. Null disarms the monitor.
     */
    void setBaseline(std::shared_ptr<const FeatureBaseline> baseline);

    bool hasBaseline() const;

    /** Count one served request's features into the live window. */
    void observe(const FeatureVector &features);

    /** Count one supervised outcome (false = mispredict). */
    void observeOutcome(bool within_tolerance);

    DriftScores scores() const;

  private:
    DriftOptions options_;

    mutable std::mutex mutex_;
    std::shared_ptr<const FeatureBaseline> baseline_;
    std::array<telemetry::QuantileSketch, kDims> window_;
    std::size_t window_fill_ = 0;

    /** Rolling outcome ring: 1 = mispredict. */
    std::vector<uint8_t> outcomes_;
    std::size_t outcome_next_ = 0;
    std::size_t outcome_count_ = 0;

    DriftScores scores_; //!< guarded by mutex_

    /** Score + reset the full window; true when it alerted. */
    bool closeWindowLocked();
};

} // namespace serve
} // namespace heteromap

#endif // HETEROMAP_SERVE_DRIFT_MONITOR_HH
