/**
 * @file
 * Training pipeline implementation.
 */

#include "core/training.hh"

#include <algorithm>
#include <cmath>

#include "core/experiment.hh"
#include "graph/generators.hh"
#include "tuner/annealing.hh"
#include "tuner/grid_search.hh"
#include "tuner/random_search.hh"
#include "util/logging.hh"
#include "workloads/synthetic.hh"

namespace heteromap {

std::vector<TrainingGraph>
defaultTrainingGraphs(uint64_t seed)
{
    // Scaled Table III: uniform-random and Kronecker families swept
    // over size and density.
    std::vector<std::pair<std::string, Graph>> raw;
    raw.emplace_back("unif-small-sparse",
                     generateUniformRandom(4096, 8192, seed + 1));
    raw.emplace_back("unif-small-dense",
                     generateUniformRandom(4096, 65536, seed + 2));
    raw.emplace_back("unif-large",
                     generateUniformRandom(16384, 131072, seed + 3));
    raw.emplace_back("kron-sparse",
                     generateRmat(12, 4.0, seed + 4));
    raw.emplace_back("kron-dense",
                     generateRmat(12, 24.0, seed + 5));
    raw.emplace_back("kron-large",
                     generateRmat(13, 16.0, seed + 6));

    // Nominal scale multipliers: each executed proxy stands in for
    // the same structure at Table III sizes, so the I features span
    // the space real inputs live in (vertices up to 65M+, edges up
    // to 2B, diameters up to the Rgg regime).
    struct Scale {
        const char *tag;
        double factor;
        double diameter_factor;
    };
    const Scale scales[] = {
        {"", 1.0, 1.0},
        {"@1k", 1000.0, 8.0},
        {"@64k", 64000.0, 40.0},
        {"@hidia", 2000.0, 250.0}, // road/geometric diameter regime
    };

    std::vector<TrainingGraph> out;
    out.reserve(raw.size() * std::size(scales));
    for (auto &[name, graph] : raw) {
        GraphStats stats = measureGraph(graph);
        for (const Scale &scale : scales) {
            GraphStats nominal = stats;
            nominal.numVertices = static_cast<uint64_t>(
                static_cast<double>(stats.numVertices) * scale.factor);
            nominal.numEdges = static_cast<uint64_t>(
                static_cast<double>(stats.numEdges) * scale.factor);
            nominal.maxDegree = static_cast<uint64_t>(
                static_cast<double>(stats.maxDegree) *
                std::sqrt(scale.factor));
            nominal.diameter = static_cast<uint64_t>(
                static_cast<double>(stats.diameter) *
                scale.diameter_factor);
            out.push_back(
                {name + std::string(scale.tag), graph, stats, nominal});
        }
    }
    return out;
}

TrainingPipeline::TrainingPipeline(AcceleratorPair pair,
                                   const Oracle &oracle,
                                   TrainingOptions options)
    : pair_(std::move(pair)), oracle_(oracle), options_(options)
{
}

namespace {

/**
 * Canonical resting point for machine knobs. Tuned optima often have
 * flat directions (e.g. blocktime is irrelevant without contention);
 * the raw argmin assigns arbitrary values there, which poisons a
 * regression corpus. Near-optimal candidates are therefore snapped to
 * the configuration closest to this anchor.
 */
NormalizedMVector
canonicalAnchor()
{
    NormalizedMVector y;
    y.m.fill(0.5);
    y.m[1] = 1.0;  // all cores
    y.m[2] = 1.0;  // all threads
    y.m[8] = 0.0;  // static schedule
    y.m[9] = 1.0;  // full SIMD
    y.m[10] = 0.1; // small chunks
    y.m[18] = 1.0; // full global threading
    y.m[19] = 0.5; // mid work-group
    return y;
}

/** Best config on one side, tie-broken toward the canonical anchor. */
MConfig
tuneSideCanonical(const MSearchSpace &space,
                  const TuneObjective &objective, AcceleratorKind side,
                  const AcceleratorPair &pair, double *best_score)
{
    // Pass 1: the side's best score.
    double best = 0.0;
    bool first = true;
    std::vector<std::pair<MConfig, double>> scored;
    for (const MConfig &candidate : space.enumerate()) {
        if (candidate.accelerator != side)
            continue;
        double score = objective(candidate);
        scored.emplace_back(candidate, score);
        if (first || score < best) {
            best = score;
            first = false;
        }
    }
    HM_ASSERT(!first, "no candidates on the requested side");

    // Pass 2: among near-ties, prefer the anchor-closest candidate.
    const NormalizedMVector anchor = canonicalAnchor();
    const MConfig *chosen = nullptr;
    double chosen_dist = 0.0;
    for (const auto &[candidate, score] : scored) {
        if (score > best * 1.05)
            continue;
        NormalizedMVector y = normalizeConfig(candidate, pair);
        double dist = 0.0;
        for (std::size_t k = 1; k < kNumOutputs; ++k) {
            double d = y.m[k] - anchor.m[k];
            dist += d * d;
        }
        if (chosen == nullptr || dist < chosen_dist) {
            chosen = &candidate;
            chosen_dist = dist;
        }
    }
    if (best_score != nullptr)
        *best_score = best;
    return *chosen;
}

} // namespace

TuneResult
TrainingPipeline::tuneCase(const BenchmarkCase &bench)
{
    MSearchSpace space(pair_, options_.granularity);
    TuneObjective objective =
        options_.energyObjective
            ? oracle_.energyObjective(bench, pair_)
            : oracle_.timeObjective(bench, pair_);
    switch (options_.tuner) {
      case TunerKind::Grid:
        return gridSearch(space, objective);
      case TunerKind::Random:
        return randomSearch(space, objective,
                            options_.searchIterations, options_.seed);
      case TunerKind::Anneal: {
        AnnealOptions anneal;
        anneal.iterations = options_.searchIterations;
        anneal.seed = options_.seed;
        return simulatedAnnealing(space, objective, anneal);
      }
    }
    HM_PANIC("unhandled tuner kind");
}

TrainingSet
TrainingPipeline::run(const std::vector<TrainingGraph> &graphs)
{
    const std::vector<TrainingGraph> &corpus =
        graphs.empty()
            ? *[this] {
                  static const std::vector<TrainingGraph> defaults =
                      defaultTrainingGraphs(options_.seed);
                  return &defaults;
              }()
            : graphs;

    auto b_vectors = sampleSyntheticBVectors(
        options_.syntheticBenchmarks, options_.seed);

    TrainingSet samples;
    samples.reserve(b_vectors.size() * corpus.size());
    evaluations_ = 0;

    std::size_t case_index = 0;
    for (const auto &b : b_vectors) {
        for (const auto &tg : corpus) {
            // Frontier-style phases chain through as many narrow
            // levels as the (nominal) diameter implies, teaching the
            // learners the high-diameter starvation effect.
            const auto frontier_rounds = static_cast<unsigned>(
                std::clamp<uint64_t>(tg.scaleStats.diameter / 4, 1,
                                     96));
            SyntheticWorkload workload(b, options_.seed + case_index,
                                       options_.syntheticIterations,
                                       frontier_rounds);
            BenchmarkCase bench = makeCase(workload, tg.graph, tg.name,
                                           tg.stats, tg.scaleStats);

            NormalizedMVector y;
            if (options_.tuner == TunerKind::Grid) {
                // Tune each side independently so the label carries
                // the best knobs for *both* accelerators; M1 records
                // the winner. A single global search would leave the
                // losing side's knobs at meaningless defaults.
                MSearchSpace space(pair_, options_.granularity);
                TuneObjective objective =
                    options_.energyObjective
                        ? oracle_.energyObjective(bench, pair_)
                        : oracle_.timeObjective(bench, pair_);
                double gpu_score = 0.0;
                double mc_score = 0.0;
                MConfig gpu_best = tuneSideCanonical(
                    space, objective, AcceleratorKind::Gpu, pair_,
                    &gpu_score);
                MConfig mc_best = tuneSideCanonical(
                    space, objective, AcceleratorKind::Multicore,
                    pair_, &mc_score);
                evaluations_ += space.enumerate().size();

                y = normalizeConfig(mc_best, pair_);
                NormalizedMVector y_gpu =
                    normalizeConfig(gpu_best, pair_);
                y.m[18] = y_gpu.m[18];
                y.m[19] = y_gpu.m[19];
                y.m[0] = gpu_score <= mc_score ? 0.0 : 1.0;
            } else {
                TuneResult tuned = tuneCase(bench);
                evaluations_ += tuned.evaluations;
                y = normalizeConfig(tuned.best, pair_);
            }

            database_.insert(bench.features, y);
            samples.push_back({bench.features, y});
        }
        ++case_index;
    }
    inform("training pipeline: ", samples.size(), " samples, ",
           evaluations_, " tuner evaluations");
    return samples;
}

} // namespace heteromap
