/**
 * @file
 * Training pipeline implementation.
 */

#include "core/training.hh"

#include <algorithm>
#include <cmath>

#include "core/experiment.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "tuner/annealing.hh"
#include "tuner/grid_search.hh"
#include "tuner/objective_cache.hh"
#include "tuner/random_search.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"
#include "workloads/synthetic.hh"

namespace heteromap {

std::vector<TrainingGraph>
defaultTrainingGraphs(uint64_t seed)
{
    // Scaled Table III: uniform-random and Kronecker families swept
    // over size and density.
    std::vector<std::pair<std::string, Graph>> raw;
    raw.emplace_back("unif-small-sparse",
                     generateUniformRandom(4096, 8192, seed + 1));
    raw.emplace_back("unif-small-dense",
                     generateUniformRandom(4096, 65536, seed + 2));
    raw.emplace_back("unif-large",
                     generateUniformRandom(16384, 131072, seed + 3));
    raw.emplace_back("kron-sparse",
                     generateRmat(12, 4.0, seed + 4));
    raw.emplace_back("kron-dense",
                     generateRmat(12, 24.0, seed + 5));
    raw.emplace_back("kron-large",
                     generateRmat(13, 16.0, seed + 6));

    // Nominal scale multipliers: each executed proxy stands in for
    // the same structure at Table III sizes, so the I features span
    // the space real inputs live in (vertices up to 65M+, edges up
    // to 2B, diameters up to the Rgg regime).
    struct Scale {
        const char *tag;
        double factor;
        double diameter_factor;
    };
    const Scale scales[] = {
        {"", 1.0, 1.0},
        {"@1k", 1000.0, 8.0},
        {"@64k", 64000.0, 40.0},
        {"@hidia", 2000.0, 250.0}, // road/geometric diameter regime
    };

    std::vector<TrainingGraph> out;
    out.reserve(raw.size() * std::size(scales));
    for (auto &[name, graph] : raw) {
        // Memoized: pipelines rebuilt with the same seed regenerate
        // byte-identical corpus graphs, so every run after the first
        // skips the measurement sweeps entirely.
        GraphStats stats = globalStatsCache().measure(graph);
        for (const Scale &scale : scales) {
            GraphStats nominal = stats;
            nominal.numVertices = static_cast<uint64_t>(
                static_cast<double>(stats.numVertices) * scale.factor);
            nominal.numEdges = static_cast<uint64_t>(
                static_cast<double>(stats.numEdges) * scale.factor);
            nominal.maxDegree = static_cast<uint64_t>(
                static_cast<double>(stats.maxDegree) *
                std::sqrt(scale.factor));
            nominal.diameter = static_cast<uint64_t>(
                static_cast<double>(stats.diameter) *
                scale.diameter_factor);
            out.push_back(
                {name + std::string(scale.tag), graph, stats, nominal});
        }
    }
    return out;
}

TrainingPipeline::TrainingPipeline(AcceleratorPair pair,
                                   const Oracle &oracle,
                                   TrainingOptions options)
    : pair_(std::move(pair)), oracle_(oracle), options_(options)
{
}

namespace {

/**
 * Canonical resting point for machine knobs. Tuned optima often have
 * flat directions (e.g. blocktime is irrelevant without contention);
 * the raw argmin assigns arbitrary values there, which poisons a
 * regression corpus. Near-optimal candidates are therefore snapped to
 * the configuration closest to this anchor.
 */
NormalizedMVector
canonicalAnchor()
{
    NormalizedMVector y;
    y.m.fill(0.5);
    y.m[1] = 1.0;  // all cores
    y.m[2] = 1.0;  // all threads
    y.m[8] = 0.0;  // static schedule
    y.m[9] = 1.0;  // full SIMD
    y.m[10] = 0.1; // small chunks
    y.m[18] = 1.0; // full global threading
    y.m[19] = 0.5; // mid work-group
    return y;
}

/** Best config on one side, tie-broken toward the canonical anchor. */
MConfig
tuneSideCanonical(const std::vector<MConfig> &candidates,
                  const TuneObjective &objective, AcceleratorKind side,
                  const AcceleratorPair &pair, double *best_score)
{
    // Pass 1: the side's best score.
    double best = 0.0;
    bool first = true;
    std::vector<std::pair<MConfig, double>> scored;
    for (const MConfig &candidate : candidates) {
        if (candidate.accelerator != side)
            continue;
        double score = objective(candidate);
        scored.emplace_back(candidate, score);
        if (first || score < best) {
            best = score;
            first = false;
        }
    }
    HM_ASSERT(!first, "no candidates on the requested side");

    // Pass 2: among near-ties, prefer the anchor-closest candidate.
    const NormalizedMVector anchor = canonicalAnchor();
    const MConfig *chosen = nullptr;
    double chosen_dist = 0.0;
    for (const auto &[candidate, score] : scored) {
        if (score > best * 1.05)
            continue;
        NormalizedMVector y = normalizeConfig(candidate, pair);
        double dist = 0.0;
        for (std::size_t k = 1; k < kNumOutputs; ++k) {
            double d = y.m[k] - anchor.m[k];
            dist += d * d;
        }
        if (chosen == nullptr || dist < chosen_dist) {
            chosen = &candidate;
            chosen_dist = dist;
        }
    }
    if (best_score != nullptr)
        *best_score = best;
    return *chosen;
}

} // namespace

TuneResult
TrainingPipeline::tuneCase(const MSearchSpace &space,
                           const TuneObjective &objective) const
{
    switch (options_.tuner) {
      case TunerKind::Grid:
        return gridSearch(space, objective);
      case TunerKind::Random:
        return randomSearch(space, objective,
                            options_.searchIterations, options_.seed);
      case TunerKind::Anneal: {
        AnnealOptions anneal;
        // searchIterations is the case's total objective budget for
        // Random and Anneal alike: divide it across the restarts
        // rather than granting each restart the full budget.
        anneal.iterations = std::max<std::size_t>(
            1, options_.searchIterations / anneal.restarts);
        anneal.seed = options_.seed;
        return simulatedAnnealing(space, objective, anneal);
      }
    }
    HM_PANIC("unhandled tuner kind");
}

TrainingSet
TrainingPipeline::run(const std::vector<TrainingGraph> &graphs)
{
    HM_SPAN("train.run");
    HM_COUNTER_INC("train.runs");
    // The default corpus is cached per pipeline, derived from *this*
    // pipeline's seed. (A function-local static here would freeze the
    // first pipeline's seed into every later pipeline's corpus.)
    if (graphs.empty() && defaultCorpus_.empty())
        defaultCorpus_ = defaultTrainingGraphs(options_.seed);
    const std::vector<TrainingGraph> &corpus =
        graphs.empty() ? defaultCorpus_ : graphs;

    auto b_vectors = sampleSyntheticBVectors(
        options_.syntheticBenchmarks, options_.seed);

    // Enumerate the M grid once per run (i.e. once per granularity);
    // every case and both per-side tuning passes share the read-only
    // candidate list.
    const MSearchSpace space(pair_, options_.granularity);
    const std::vector<MConfig> candidates = space.enumerate();

    struct CaseResult {
        FeatureVector x;
        NormalizedMVector y;
        std::size_t evaluations = 0;
    };
    const std::size_t num_cases = b_vectors.size() * corpus.size();
    std::vector<CaseResult> results(num_cases);

    // Each (B-vector, training-graph) case is independent: workers
    // only read shared state and write their own results slot, and
    // the merge below walks slots in case order, so the output is
    // byte-identical for any thread count.
    auto run_case = [&](std::size_t case_index) {
        // Per-case span: in a parallel sweep these land on the pool
        // workers' trace tracks, making load imbalance visible.
        HM_SPAN("train.case");
        const BVariables &b = b_vectors[case_index / corpus.size()];
        const TrainingGraph &tg = corpus[case_index % corpus.size()];

        // Frontier-style phases chain through as many narrow
        // levels as the (nominal) diameter implies, teaching the
        // learners the high-diameter starvation effect.
        const auto frontier_rounds = static_cast<unsigned>(
            std::clamp<uint64_t>(tg.scaleStats.diameter / 4, 1, 96));
        // Seeded per (B, graph) case, not per B vector, so no two
        // cases share a synthetic access pattern.
        SyntheticWorkload workload(b, options_.seed + case_index,
                                   options_.syntheticIterations,
                                   frontier_rounds);
        BenchmarkCase bench = makeCase(workload, tg.graph, tg.name,
                                       tg.stats, tg.scaleStats);

        // The memo cache keys on (config, case): one cache per case,
        // owned by the worker tuning it. Score and tie-break passes
        // hit the oracle once per distinct configuration, and
        // invocations() is the exact evaluation count.
        ObjectiveCache cache(options_.energyObjective
                                 ? oracle_.energyObjective(bench, pair_)
                                 : oracle_.timeObjective(bench, pair_));
        TuneObjective objective = cache.asObjective();

        NormalizedMVector y;
        if (options_.tuner == TunerKind::Grid) {
            // Tune each side independently so the label carries
            // the best knobs for *both* accelerators; M1 records
            // the winner. A single global search would leave the
            // losing side's knobs at meaningless defaults.
            double gpu_score = 0.0;
            double mc_score = 0.0;
            MConfig gpu_best = tuneSideCanonical(
                candidates, objective, AcceleratorKind::Gpu, pair_,
                &gpu_score);
            MConfig mc_best = tuneSideCanonical(
                candidates, objective, AcceleratorKind::Multicore,
                pair_, &mc_score);

            y = normalizeConfig(mc_best, pair_);
            NormalizedMVector y_gpu = normalizeConfig(gpu_best, pair_);
            y.m[18] = y_gpu.m[18];
            y.m[19] = y_gpu.m[19];
            y.m[0] = gpu_score <= mc_score ? 0.0 : 1.0;
        } else {
            TuneResult tuned = tuneCase(space, objective);
            y = normalizeConfig(tuned.best, pair_);
        }
        results[case_index] = {bench.features, y, cache.invocations()};
        HM_COUNTER_INC("train.cases");
    };

    const std::size_t threads = options_.threads == 0
                                    ? ThreadPool::defaultThreadCount()
                                    : options_.threads;
    if (threads > 1 && num_cases > 1) {
        ThreadPool pool(std::min(threads, num_cases));
        pool.parallelFor(num_cases, run_case);
    } else {
        for (std::size_t i = 0; i < num_cases; ++i)
            run_case(i);
    }

    // Merge on join, in deterministic case order.
    TrainingSet samples;
    samples.reserve(num_cases);
    evaluations_ = 0;
    ProfilerDatabase fresh;
    for (const CaseResult &result : results) {
        fresh.insert(result.x, result.y);
        samples.push_back({result.x, result.y});
        evaluations_ += result.evaluations;
    }
    database_.merge(fresh);
    inform("training pipeline: ", samples.size(), " samples, ",
           evaluations_, " tuner evaluations");
    return samples;
}

} // namespace heteromap
