/**
 * @file
 * Offline training pipeline (Sec. V, Fig. 8 step 1): synthetic
 * benchmarks (B-vector mixes) x synthetic graphs (Table III families)
 * are executed, auto-tuned to their best M configuration, and recorded
 * in the profiler database / training set the learners fit.
 */

#ifndef HETEROMAP_CORE_TRAINING_HH
#define HETEROMAP_CORE_TRAINING_HH

#include <functional>
#include <string>
#include <vector>

#include "core/database.hh"
#include "core/oracle.hh"

namespace heteromap {

/** Tuner used to label each synthetic combination. */
enum class TunerKind {
    Grid,
    Random,
    Anneal,
};

/** Pipeline knobs. Defaults balance corpus quality and runtime. */
struct TrainingOptions {
    std::size_t syntheticBenchmarks = 48; //!< B vectors to sample
    unsigned syntheticIterations = 2;     //!< outer iterations per run
    TunerKind tuner = TunerKind::Grid;
    GridGranularity granularity = GridGranularity::Coarse;
    std::size_t searchIterations = 400;   //!< for Random/Anneal
    bool energyObjective = false;         //!< train for energy instead
    uint64_t seed = 2026;

    /**
     * Worker threads for the sweep; 0 = hardware concurrency. Cases
     * fan out over a work-stealing pool and merge back in case order,
     * so any thread count produces byte-identical output to 1.
     */
    std::size_t threads = 1;
};

/** A named synthetic training graph. */
struct TrainingGraph {
    std::string name;
    Graph graph;
    GraphStats stats;      //!< measured (shape) statistics
    GraphStats scaleStats; //!< nominal scale the graph stands in for
};

/**
 * Scaled-down Table III corpus: uniform-random and Kronecker graphs
 * across sizes and densities. Each executed instance stands in for a
 * family of nominal sizes spanning Table III's 16-65M vertex / up to
 * 2B edge range, so the training corpus covers the I-feature space
 * the real inputs occupy (the paper trains on graphs this large for
 * exactly that reason). Deterministic in @p seed.
 */
std::vector<TrainingGraph> defaultTrainingGraphs(uint64_t seed);

/** Runs the offline sweep and accumulates labelled samples. */
class TrainingPipeline
{
  public:
    TrainingPipeline(AcceleratorPair pair, const Oracle &oracle,
                     TrainingOptions options = {});

    /**
     * Execute the sweep over @p graphs (defaultTrainingGraphs when
     * empty) and return the labelled corpus. Also fills database().
     */
    TrainingSet run(const std::vector<TrainingGraph> &graphs = {});

    /** The (B, I) -> M store filled by run(). */
    const ProfilerDatabase &database() const { return database_; }

    /**
     * Distinct objective evaluations (actual oracle invocations)
     * spent in the last run(), as counted by the per-case memo
     * caches — repeats served from the cache are not charged.
     */
    std::size_t evaluations() const { return evaluations_; }

  private:
    AcceleratorPair pair_;
    const Oracle &oracle_;
    TrainingOptions options_;
    ProfilerDatabase database_;
    std::size_t evaluations_ = 0;
    std::vector<TrainingGraph> defaultCorpus_; //!< lazy, this seed's

    TuneResult tuneCase(const MSearchSpace &space,
                        const TuneObjective &objective) const;
};

} // namespace heteromap

#endif // HETEROMAP_CORE_TRAINING_HH
