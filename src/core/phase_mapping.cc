/**
 * @file
 * Phase-level mapping implementation. Each phase is scored in
 * isolation (a single-phase profile inheriting its share of the
 * workload's barriers) under both sides' tuned configurations; the
 * assignment takes the per-phase minimum, and switches between
 * adjacent phases pay a per-iteration state transfer.
 */

#include "core/phase_mapping.hh"

#include <algorithm>

#include "arch/cache_model.hh"
#include "util/logging.hh"

namespace heteromap {

PhaseMappingResult
evaluatePhaseMapping(const BenchmarkCase &bench,
                     const AcceleratorPair &pair, const Oracle &oracle,
                     double interconnect_gbs)
{
    HM_ASSERT(interconnect_gbs > 0.0,
              "interconnect bandwidth must be positive");

    CaseBaselines base = computeBaselines(bench, pair, oracle,
                                          GridGranularity::Coarse);

    PhaseMappingResult result;
    result.wholeBenchmarkSeconds = base.idealSeconds;

    const WorkloadProfile &profile = bench.profile;
    const double total_invocations = [&] {
        double sum = 0.0;
        for (const auto &phase : profile.phases)
            sum += static_cast<double>(phase.invocations);
        return std::max(1.0, sum);
    }();

    std::vector<AcceleratorKind> chosen;
    for (const auto &phase : profile.phases) {
        // Single-phase profile with a proportional barrier share.
        WorkloadProfile solo;
        solo.phases.push_back(phase);
        solo.iterations = profile.iterations;
        solo.barriers = static_cast<uint64_t>(
            static_cast<double>(profile.barriers) *
            static_cast<double>(phase.invocations) /
            total_invocations);

        BenchmarkCase phase_case = bench;
        phase_case.profile = solo;

        double gpu_s =
            oracle.seconds(phase_case, pair, base.gpuBest);
        double mc_s =
            oracle.seconds(phase_case, pair, base.multicoreBest);
        AcceleratorKind side = gpu_s <= mc_s
                                   ? AcceleratorKind::Gpu
                                   : AcceleratorKind::Multicore;
        chosen.push_back(side);
        result.assignment.emplace_back(phase.name, side);
        result.freeTransferSeconds += std::min(gpu_s, mc_s);
    }

    // Transfers: per outer iteration, every adjacent-phase boundary
    // whose sides differ moves the hot per-vertex state across the
    // interconnect (plus the wrap-around boundary of the loop).
    unsigned switches = 0;
    for (std::size_t i = 0; i + 1 < chosen.size(); ++i)
        switches += chosen[i] != chosen[i + 1];
    if (chosen.size() > 1 && chosen.front() != chosen.back())
        ++switches;
    result.switchesPerIteration = switches;

    const double state_bytes =
        CacheModel::vertexStateBytes(bench.scaleStats);
    // Scale the nominal state volume down to proxy time units, like
    // every other modelled cost (the profile is proxy-scaled).
    const double proxy_state_bytes = state_bytes / bench.timeScale();
    const double transfer_seconds =
        static_cast<double>(switches) *
        static_cast<double>(std::max<uint64_t>(1, profile.iterations)) *
        proxy_state_bytes / (interconnect_gbs * 1e9);

    result.withTransferSeconds =
        result.freeTransferSeconds + transfer_seconds;
    return result;
}

} // namespace heteromap
