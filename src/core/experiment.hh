/**
 * @file
 * Shared experiment harness for the bench binaries: the cached 9x9
 * benchmark-input case grid (Sec. VI-B x Table I), per-case
 * single-accelerator and ideal baselines, and the paper's metrics
 * (speedup over the GPU baseline, accuracy vs the ideal).
 */

#ifndef HETEROMAP_CORE_EXPERIMENT_HH
#define HETEROMAP_CORE_EXPERIMENT_HH

#include <vector>

#include "core/heteromap.hh"
#include "core/oracle.hh"
#include "tuner/grid_search.hh"

namespace heteromap {

/**
 * The full evaluation grid: every paper benchmark on every Table I
 * dataset, profiled once per process and cached. The first call is
 * expensive (it executes all 81 combinations).
 */
const std::vector<BenchmarkCase> &evaluationCases();

/** Subset view of evaluationCases() for one workload. */
std::vector<const BenchmarkCase *>
casesForWorkload(const std::string &workload_name);

/** Subset view of evaluationCases() for one input. */
std::vector<const BenchmarkCase *>
casesForInput(const std::string &input_name);

/** Grid search restricted to one accelerator side. */
TuneResult gridSearchSide(const MSearchSpace &space,
                          const TuneObjective &objective,
                          AcceleratorKind side);

/** Tuned single-accelerator baselines + the cross-accelerator ideal. */
struct CaseBaselines {
    MConfig gpuBest;
    MConfig multicoreBest;
    MConfig idealBest;
    double gpuSeconds = 0.0;
    double multicoreSeconds = 0.0;
    double idealSeconds = 0.0;
};

/**
 * Compute baselines for one case: best GPU-only configuration, best
 * multicore-only configuration (both OpenTuner-style optimized, per
 * Sec. VI-C), and the overall ideal.
 */
CaseBaselines computeBaselines(const BenchmarkCase &bench,
                               const AcceleratorPair &pair,
                               const Oracle &oracle,
                               GridGranularity granularity =
                                   GridGranularity::Fine);

/** ideal/actual performance ratio in [0, 1] — Table IV "Accuracy". */
double accuracyVsIdeal(double actual_seconds, double ideal_seconds);

/**
 * Pin both accelerators' memory to the same size (Sec. VI-A: "the
 * main memory used by both accelerators is pinned to the smallest one
 * available"). @p mem_bytes = 0 picks the smaller of the two.
 */
AcceleratorPair pinnedPair(AcceleratorPair pair, uint64_t mem_bytes = 0);

/**
 * Train one predictor on the default synthetic corpus and wrap it in
 * a ready-to-deploy HeteroMap runtime. Shared by the evaluation
 * benches; options default to the corpus size the benches use.
 */
HeteroMap trainedHeteroMap(const AcceleratorPair &pair,
                           const Oracle &oracle, PredictorKind kind,
                           std::size_t synthetic_benchmarks = 32);

/**
 * Deployment completion time with the framework's (real, measured)
 * inference overhead charged at the case's nominal time scale — the
 * paper adds milliseconds of overhead to seconds-scale runs; our
 * modelled times are proxy-scaled, so the overhead is divided by
 * BenchmarkCase::timeScale() to keep its relative weight faithful.
 */
double deployedSeconds(const Deployment &deployment,
                       const BenchmarkCase &bench);

} // namespace heteromap

#endif // HETEROMAP_CORE_EXPERIMENT_HH
