/**
 * @file
 * ProfilerDatabase implementation.
 */

#include "core/database.hh"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"
#include "util/stats.hh"

namespace heteromap {

std::string
ProfilerDatabase::keyOf(const FeatureVector &features)
{
    std::ostringstream oss;
    for (double v : features.asArray())
        oss << static_cast<int>(std::lround(discretize01(v) * 10.0))
            << ":";
    return oss.str();
}

void
ProfilerDatabase::insert(const FeatureVector &features,
                         const NormalizedMVector &best)
{
    entries_[keyOf(features)] = Entry{features, best};
}

void
ProfilerDatabase::merge(const ProfilerDatabase &other)
{
    for (const auto &[key, entry] : other.entries_)
        entries_[key] = entry;
}

std::optional<NormalizedMVector>
ProfilerDatabase::lookup(const FeatureVector &features) const
{
    auto it = entries_.find(keyOf(features));
    if (it == entries_.end())
        return std::nullopt;
    return it->second.best;
}

NormalizedMVector
ProfilerDatabase::nearest(const FeatureVector &features) const
{
    if (entries_.empty())
        HM_FATAL("nearest() on an empty profiler database");
    auto target = features.asArray();
    const Entry *best_entry = nullptr;
    double best_dist = 0.0;
    for (const auto &[key, entry] : entries_) {
        (void)key;
        auto flat = entry.features.asArray();
        double dist = 0.0;
        for (std::size_t i = 0; i < flat.size(); ++i) {
            double d = flat[i] - target[i];
            dist += d * d;
        }
        if (best_entry == nullptr || dist < best_dist) {
            best_entry = &entry;
            best_dist = dist;
        }
    }
    return best_entry->best;
}

TrainingSet
ProfilerDatabase::toTrainingSet() const
{
    TrainingSet out;
    out.reserve(entries_.size());
    for (const auto &[key, entry] : entries_) {
        (void)key;
        out.push_back({entry.features, entry.best});
    }
    return out;
}

void
ProfilerDatabase::save(std::ostream &os) const
{
    os << "# heteromap profiler database v1\n";
    for (const auto &[key, entry] : entries_) {
        (void)key;
        for (double v : entry.features.asArray())
            os << v << " ";
        os << "->";
        for (double v : entry.best.m)
            os << " " << v;
        os << "\n";
    }
}

Result<ProfilerDatabase>
ProfilerDatabase::tryLoad(std::istream &is)
{
    ProfilerDatabase db;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::array<double, kNumFeatures> flat{};
        for (double &v : flat)
            ls >> v;
        std::string arrow;
        ls >> arrow;
        if (ls.fail() || arrow != "->")
            return makeError(ErrorCode::Parse, line_no,
                             "profiler database line ", line_no,
                             ": malformed entry");
        NormalizedMVector best;
        for (double &v : best.m)
            ls >> v;
        if (ls.fail())
            return makeError(ErrorCode::Parse, line_no,
                             "profiler database line ", line_no,
                             ": truncated M vector");
        db.insert(featureVectorFromArray(flat), best);
    }
    return db;
}

ProfilerDatabase
ProfilerDatabase::load(std::istream &is)
{
    return tryLoad(is).orThrow();
}

} // namespace heteromap
