/**
 * @file
 * Phase-level accelerator mapping — the "temporal aspects, where
 * program parts are run on either accelerator" that Sec. V-A
 * explicitly leaves out. This extension evaluates the headroom such a
 * scheme would have: each phase of a workload is assigned to the
 * accelerator that runs it fastest, charging an interconnect transfer
 * of the per-vertex state on every switch between adjacent phases.
 */

#ifndef HETEROMAP_CORE_PHASE_MAPPING_HH
#define HETEROMAP_CORE_PHASE_MAPPING_HH

#include <string>
#include <vector>

#include "core/experiment.hh"

namespace heteromap {

/** Outcome of a phase-level mapping analysis for one case. */
struct PhaseMappingResult {
    /** Whole-benchmark ideal (best single accelerator, tuned). */
    double wholeBenchmarkSeconds = 0.0;
    /** Phase-level seconds with free transfers (upper bound). */
    double freeTransferSeconds = 0.0;
    /** Phase-level seconds including interconnect transfers. */
    double withTransferSeconds = 0.0;
    /** Accelerator switches per outer iteration. */
    unsigned switchesPerIteration = 0;
    /** Chosen accelerator per phase, in profile order. */
    std::vector<std::pair<std::string, AcceleratorKind>> assignment;
};

/**
 * Evaluate phase-level mapping for @p bench on @p pair, scoring each
 * phase under the side's whole-benchmark tuned configuration.
 *
 * @param interconnect_gbs Host interconnect bandwidth for state
 *        transfers between accelerators (PCIe 3.0 x16 ~ 12 GB/s).
 */
PhaseMappingResult evaluatePhaseMapping(const BenchmarkCase &bench,
                                        const AcceleratorPair &pair,
                                        const Oracle &oracle,
                                        double interconnect_gbs = 12.0);

} // namespace heteromap

#endif // HETEROMAP_CORE_PHASE_MAPPING_HH
