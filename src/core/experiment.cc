/**
 * @file
 * Experiment harness implementation.
 */

#include "core/experiment.hh"

#include <algorithm>

#include "core/training.hh"
#include "tuner/grid_search.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/registry.hh"

namespace heteromap {

const std::vector<BenchmarkCase> &
evaluationCases()
{
    static const std::vector<BenchmarkCase> cases = [] {
        std::vector<BenchmarkCase> out;
        auto workloads = allWorkloads();
        const auto &datasets = evaluationDatasets();
        out.reserve(workloads.size() * datasets.size());
        for (const auto &workload : workloads) {
            for (const auto &dataset : datasets) {
                inform("profiling ", workload->name(), " on ",
                       dataset.shortName());
                out.push_back(makeCase(*workload, dataset));
            }
        }
        return out;
    }();
    return cases;
}

std::vector<const BenchmarkCase *>
casesForWorkload(const std::string &workload_name)
{
    std::vector<const BenchmarkCase *> out;
    for (const auto &bench : evaluationCases())
        if (bench.workloadName == workload_name)
            out.push_back(&bench);
    return out;
}

std::vector<const BenchmarkCase *>
casesForInput(const std::string &input_name)
{
    std::vector<const BenchmarkCase *> out;
    for (const auto &bench : evaluationCases())
        if (bench.inputName == input_name)
            out.push_back(&bench);
    return out;
}

TuneResult
gridSearchSide(const MSearchSpace &space, const TuneObjective &objective,
               AcceleratorKind side)
{
    return gridSearchSide(space.enumerate(), objective, side);
}

CaseBaselines
computeBaselines(const BenchmarkCase &bench, const AcceleratorPair &pair,
                 const Oracle &oracle, GridGranularity granularity)
{
    MSearchSpace space(pair, granularity);
    TuneObjective objective = oracle.timeObjective(bench, pair);

    // Enumerate once; both per-side sweeps share the list.
    const std::vector<MConfig> candidates = space.enumerate();

    CaseBaselines out;
    TuneResult gpu =
        gridSearchSide(candidates, objective, AcceleratorKind::Gpu);
    TuneResult multicore =
        gridSearchSide(candidates, objective, AcceleratorKind::Multicore);
    out.gpuBest = gpu.best;
    out.gpuSeconds = gpu.bestScore;
    out.multicoreBest = multicore.best;
    out.multicoreSeconds = multicore.bestScore;

    if (gpu.bestScore <= multicore.bestScore) {
        out.idealBest = gpu.best;
        out.idealSeconds = gpu.bestScore;
    } else {
        out.idealBest = multicore.best;
        out.idealSeconds = multicore.bestScore;
    }
    return out;
}

double
accuracyVsIdeal(double actual_seconds, double ideal_seconds)
{
    if (actual_seconds <= 0.0)
        return 0.0;
    return clamp(ideal_seconds / actual_seconds, 0.0, 1.0);
}

AcceleratorPair
pinnedPair(AcceleratorPair pair, uint64_t mem_bytes)
{
    if (mem_bytes == 0)
        mem_bytes = std::min(pair.gpu.memBytes, pair.multicore.memBytes);
    pair.gpu.memBytes = std::min(pair.gpu.maxMemBytes, mem_bytes);
    pair.multicore.memBytes =
        std::min(pair.multicore.maxMemBytes, mem_bytes);
    return pair;
}

double
deployedSeconds(const Deployment &deployment, const BenchmarkCase &bench)
{
    return deployment.report.seconds +
           deployment.overheadMs * 1e-3 / bench.timeScale();
}

HeteroMap
trainedHeteroMap(const AcceleratorPair &pair, const Oracle &oracle,
                 PredictorKind kind, std::size_t synthetic_benchmarks)
{
    TrainingOptions options;
    options.syntheticBenchmarks = synthetic_benchmarks;
    options.syntheticIterations = 1;
    TrainingPipeline pipeline(pair, oracle, options);
    TrainingSet corpus = pipeline.run();

    HeteroMap framework(pair, makePredictor(kind), oracle);
    framework.trainOffline(corpus);
    return framework;
}

} // namespace heteromap
