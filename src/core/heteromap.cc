/**
 * @file
 * HeteroMap runtime implementation.
 */

#include "core/heteromap.hh"

#include "graph/stats_cache.hh"
#include "model/adaptive_library.hh"
#include "model/decision_tree.hh"
#include "model/linear_regression.hh"
#include "model/mlp.hh"
#include "model/poly_regression.hh"
#include "model/table_lookup.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "util/trace.hh"

namespace heteromap {

std::unique_ptr<Predictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        return std::make_unique<DecisionTreeHeuristic>();
      case PredictorKind::LinearRegression:
        return std::make_unique<LinearRegression>();
      case PredictorKind::MultiRegression:
        return std::make_unique<PolyRegression>(7);
      case PredictorKind::AdaptiveLibrary:
        return std::make_unique<AdaptiveLibrary>();
      case PredictorKind::Deep16:
        return std::make_unique<Mlp>(16);
      case PredictorKind::Deep32:
        return std::make_unique<Mlp>(32);
      case PredictorKind::Deep64:
        return std::make_unique<Mlp>(64);
      case PredictorKind::Deep128:
        return std::make_unique<Mlp>(128);
      case PredictorKind::TableLookup:
        return std::make_unique<TableLookupPredictor>();
    }
    HM_PANIC("unhandled predictor kind");
}

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::DecisionTree:     return "decision-tree";
      case PredictorKind::LinearRegression: return "linear-regression";
      case PredictorKind::MultiRegression:  return "multi-regression";
      case PredictorKind::AdaptiveLibrary:  return "adaptive-library";
      case PredictorKind::Deep16:           return "deep-16";
      case PredictorKind::Deep32:           return "deep-32";
      case PredictorKind::Deep64:           return "deep-64";
      case PredictorKind::Deep128:          return "deep-128";
      case PredictorKind::TableLookup:      return "table-lookup";
    }
    return "?";
}

namespace {

/** Hidden width of a Deep.* kind; 0 for non-MLP kinds. */
unsigned
deepWidth(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Deep16:  return 16;
      case PredictorKind::Deep32:  return 32;
      case PredictorKind::Deep64:  return 64;
      case PredictorKind::Deep128: return 128;
      default:                     return 0;
    }
}

/** dynamic_cast that fatals with the kind name on a type mismatch. */
template <typename Concrete>
const Concrete &
asConcrete(const Predictor &predictor, PredictorKind kind)
{
    const auto *concrete = dynamic_cast<const Concrete *>(&predictor);
    if (concrete == nullptr)
        HM_FATAL(std::string("savePredictor: predictor is not a ") +
                 predictorKindName(kind));
    return *concrete;
}

} // namespace

void
savePredictor(const Predictor &predictor, PredictorKind kind,
              std::ostream &os)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        asConcrete<DecisionTreeHeuristic>(predictor, kind).save(os);
        return;
      case PredictorKind::LinearRegression:
        asConcrete<LinearRegression>(predictor, kind).save(os);
        return;
      case PredictorKind::MultiRegression:
        asConcrete<PolyRegression>(predictor, kind).save(os);
        return;
      case PredictorKind::AdaptiveLibrary:
        asConcrete<AdaptiveLibrary>(predictor, kind).save(os);
        return;
      case PredictorKind::Deep16:
      case PredictorKind::Deep32:
      case PredictorKind::Deep64:
      case PredictorKind::Deep128: {
        const Mlp &mlp = asConcrete<Mlp>(predictor, kind);
        if (mlp.hiddenWidth() != deepWidth(kind))
            HM_FATAL("savePredictor: MLP width does not match kind");
        mlp.save(os);
        return;
      }
      case PredictorKind::TableLookup:
        asConcrete<TableLookupPredictor>(predictor, kind).save(os);
        return;
    }
    HM_PANIC("unhandled predictor kind");
}

std::unique_ptr<Predictor>
loadPredictor(PredictorKind kind, std::istream &is)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        return std::make_unique<DecisionTreeHeuristic>(
            DecisionTreeHeuristic::load(is));
      case PredictorKind::LinearRegression:
        return std::make_unique<LinearRegression>(
            LinearRegression::load(is));
      case PredictorKind::MultiRegression:
        return std::make_unique<PolyRegression>(
            PolyRegression::load(is));
      case PredictorKind::AdaptiveLibrary:
        return std::make_unique<AdaptiveLibrary>(
            AdaptiveLibrary::load(is));
      case PredictorKind::Deep16:
      case PredictorKind::Deep32:
      case PredictorKind::Deep64:
      case PredictorKind::Deep128: {
        auto mlp = std::make_unique<Mlp>(Mlp::load(is));
        if (mlp->hiddenWidth() != deepWidth(kind))
            HM_FATAL("loadPredictor: stream holds an MLP of a "
                     "different width than the requested kind");
        return mlp;
      }
      case PredictorKind::TableLookup:
        return std::make_unique<TableLookupPredictor>(
            TableLookupPredictor::load(is));
    }
    HM_PANIC("unhandled predictor kind");
}

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::DecisionTree,    PredictorKind::LinearRegression,
        PredictorKind::MultiRegression, PredictorKind::AdaptiveLibrary,
        PredictorKind::Deep16,          PredictorKind::Deep32,
        PredictorKind::Deep64,          PredictorKind::Deep128,
    };
    return kinds;
}

HeteroMap::HeteroMap(AcceleratorPair pair,
                     std::unique_ptr<Predictor> predictor,
                     const Oracle &oracle)
    : pair_(std::move(pair)), predictor_(std::move(predictor)),
      oracle_(oracle)
{
    HM_ASSERT(predictor_ != nullptr, "HeteroMap requires a predictor");
}

void
HeteroMap::trainOffline(const TrainingSet &corpus)
{
    predictor_->train(corpus);
}

Deployment
HeteroMap::deploy(const BenchmarkCase &bench) const
{
    return deploy(bench, DeployConstraints{});
}

Deployment
HeteroMap::predict(const Workload &workload, const Graph &graph,
                   const std::string &input_name,
                   const MeasureOptions &measure) const
{
    // The full online path is real framework time the paper's
    // overhead column would see. Each stage is timed with lapMillis()
    // — one clock read per stage boundary — so the per-stage
    // "predict.stage.*" histograms partition overheadMs exactly:
    // their sums add up to the reported total, no instant counted
    // twice or dropped.
    HM_SPAN("predict");
    HM_COUNTER_INC("predict.calls");
    Timer timer;
    timer.start();

    const GraphStats stats = [&] {
        HM_SPAN("predict.measure");
        return globalStatsCache().measure(graph, measure);
    }();
    const double measure_ms = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.measure_ms", measure_ms);

    BenchmarkCase bench = [&] {
        HM_SPAN("predict.featurize");
        return makeCase(workload, graph, input_name, stats);
    }();
    const double featurize_ms = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.featurize_ms", featurize_ms);

    // deploy() times the inference stage itself and records it as
    // "predict.stage.infer_ms"; its overheadMs is that stage's value.
    Deployment out = deploy(bench);
    out.overheadMs += measure_ms + featurize_ms;
    return out;
}

Deployment
HeteroMap::deploy(const BenchmarkCase &bench,
                  const DeployConstraints &constraints) const
{
    Deployment out;
    HM_COUNTER_INC("deploy.calls");

    // The inference latency is real wall-clock time — the paper adds
    // the framework's runtime overhead to the completion time.
    Timer timer;
    timer.start();
    {
        HM_SPAN("predict.infer");
        out.predicted = predictor_->predict(bench.features);
        if (constraints.forceAccelerator) {
            // Mask the other accelerator out of the M1 choice; the
            // intra-accelerator knobs remain the predictor's.
            out.predicted.m[0] = *constraints.forceAccelerator ==
                                         AcceleratorKind::Multicore
                                     ? 1.0
                                     : 0.0;
        }
        out.config = deployNormalized(out.predicted, pair_);
    }
    out.overheadMs = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.infer_ms", out.overheadMs);

    {
        HM_SPAN("deploy.oracle");
        out.report = oracle_.run(bench, pair_, out.config);
    }
    return out;
}

} // namespace heteromap
