/**
 * @file
 * HeteroMap runtime implementation.
 */

#include "core/heteromap.hh"

#include <sstream>

#include "graph/stats_cache.hh"
#include "util/checksum.hh"
#include "model/adaptive_library.hh"
#include "model/decision_tree.hh"
#include "model/feature_baseline.hh"
#include "model/linear_regression.hh"
#include "model/mlp.hh"
#include "model/poly_regression.hh"
#include "model/table_lookup.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/timer.hh"
#include "util/trace.hh"

namespace heteromap {

std::unique_ptr<Predictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        return std::make_unique<DecisionTreeHeuristic>();
      case PredictorKind::LinearRegression:
        return std::make_unique<LinearRegression>();
      case PredictorKind::MultiRegression:
        return std::make_unique<PolyRegression>(7);
      case PredictorKind::AdaptiveLibrary:
        return std::make_unique<AdaptiveLibrary>();
      case PredictorKind::Deep16:
        return std::make_unique<Mlp>(16);
      case PredictorKind::Deep32:
        return std::make_unique<Mlp>(32);
      case PredictorKind::Deep64:
        return std::make_unique<Mlp>(64);
      case PredictorKind::Deep128:
        return std::make_unique<Mlp>(128);
      case PredictorKind::TableLookup:
        return std::make_unique<TableLookupPredictor>();
    }
    HM_PANIC("unhandled predictor kind");
}

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::DecisionTree:     return "decision-tree";
      case PredictorKind::LinearRegression: return "linear-regression";
      case PredictorKind::MultiRegression:  return "multi-regression";
      case PredictorKind::AdaptiveLibrary:  return "adaptive-library";
      case PredictorKind::Deep16:           return "deep-16";
      case PredictorKind::Deep32:           return "deep-32";
      case PredictorKind::Deep64:           return "deep-64";
      case PredictorKind::Deep128:          return "deep-128";
      case PredictorKind::TableLookup:      return "table-lookup";
    }
    return "?";
}

std::optional<PredictorKind>
predictorKindFromName(std::string_view name)
{
    static const PredictorKind kinds[] = {
        PredictorKind::DecisionTree,    PredictorKind::LinearRegression,
        PredictorKind::MultiRegression, PredictorKind::AdaptiveLibrary,
        PredictorKind::Deep16,          PredictorKind::Deep32,
        PredictorKind::Deep64,          PredictorKind::Deep128,
        PredictorKind::TableLookup,
    };
    for (PredictorKind kind : kinds) {
        if (name == predictorKindName(kind))
            return kind;
    }
    return std::nullopt;
}

namespace {

/** Hidden width of a Deep.* kind; 0 for non-MLP kinds. */
unsigned
deepWidth(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Deep16:  return 16;
      case PredictorKind::Deep32:  return 32;
      case PredictorKind::Deep64:  return 64;
      case PredictorKind::Deep128: return 128;
      default:                     return 0;
    }
}

/** dynamic_cast that fatals with the kind name on a type mismatch. */
template <typename Concrete>
const Concrete &
asConcrete(const Predictor &predictor, PredictorKind kind)
{
    const auto *concrete = dynamic_cast<const Concrete *>(&predictor);
    if (concrete == nullptr)
        HM_FATAL(std::string("savePredictor: predictor is not a ") +
                 predictorKindName(kind));
    return *concrete;
}

/**
 * Envelope leader. v2 is the baseline-less format every pre-drift
 * model file uses; v3 appends a checksummed FeatureBaseline trailer.
 * Loads accept both, saves emit v2 unless a baseline is supplied, so
 * the version bump never invalidates an existing stream.
 */
constexpr const char *kModelMagic = "heteromap-model";
constexpr const char *kModelVersion = "v2";
constexpr const char *kModelVersionV3 = "v3";

/** The pre-envelope per-kind serialization (the v2 payload). */
void
savePayload(const Predictor &predictor, PredictorKind kind,
            std::ostream &os)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        asConcrete<DecisionTreeHeuristic>(predictor, kind).save(os);
        return;
      case PredictorKind::LinearRegression:
        asConcrete<LinearRegression>(predictor, kind).save(os);
        return;
      case PredictorKind::MultiRegression:
        asConcrete<PolyRegression>(predictor, kind).save(os);
        return;
      case PredictorKind::AdaptiveLibrary:
        asConcrete<AdaptiveLibrary>(predictor, kind).save(os);
        return;
      case PredictorKind::Deep16:
      case PredictorKind::Deep32:
      case PredictorKind::Deep64:
      case PredictorKind::Deep128: {
        const Mlp &mlp = asConcrete<Mlp>(predictor, kind);
        if (mlp.hiddenWidth() != deepWidth(kind))
            HM_FATAL("savePredictor: MLP width does not match kind");
        mlp.save(os);
        return;
      }
      case PredictorKind::TableLookup:
        asConcrete<TableLookupPredictor>(predictor, kind).save(os);
        return;
    }
    HM_PANIC("unhandled predictor kind");
}

/**
 * Parse a v2 payload as @p kind. The concrete load() routines signal
 * malformed input through HM_FATAL; the caller (loadPredictor /
 * loadAnyPredictor) converts that into a Result error.
 */
std::unique_ptr<Predictor>
loadPayload(PredictorKind kind, std::istream &is)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        return std::make_unique<DecisionTreeHeuristic>(
            DecisionTreeHeuristic::load(is));
      case PredictorKind::LinearRegression:
        return std::make_unique<LinearRegression>(
            LinearRegression::load(is));
      case PredictorKind::MultiRegression:
        return std::make_unique<PolyRegression>(
            PolyRegression::load(is));
      case PredictorKind::AdaptiveLibrary:
        return std::make_unique<AdaptiveLibrary>(
            AdaptiveLibrary::load(is));
      case PredictorKind::Deep16:
      case PredictorKind::Deep32:
      case PredictorKind::Deep64:
      case PredictorKind::Deep128: {
        auto mlp = std::make_unique<Mlp>(Mlp::load(is));
        if (mlp->hiddenWidth() != deepWidth(kind))
            HM_FATAL("loadPredictor: stream holds an MLP of a "
                     "different width than the requested kind");
        return mlp;
      }
      case PredictorKind::TableLookup:
        return std::make_unique<TableLookupPredictor>(
            TableLookupPredictor::load(is));
    }
    HM_PANIC("unhandled predictor kind");
}

/**
 * Read and verify the envelope header + payload (+ the v3 baseline
 * trailer when present). On success @p kind and @p payload are
 * filled and @p baseline holds the parsed FeatureBaseline (null for
 * v2 or an empty trailer); every failure is a recoverable Error.
 */
Result<bool>
readEnvelope(std::istream &is, PredictorKind &kind,
             std::string &payload,
             std::shared_ptr<const FeatureBaseline> &baseline)
{
    std::string magic, version, kind_name, crc_hex;
    std::size_t payload_bytes = 0;
    is >> magic >> version >> kind_name >> payload_bytes >> crc_hex;
    if (is.fail() || magic != kModelMagic)
        return HM_RECOVERABLE(ErrorCode::Parse,
                              "model stream has no '", kModelMagic,
                              "' envelope header");
    const bool v3 = version == kModelVersionV3;
    if (version != kModelVersion && !v3)
        return HM_RECOVERABLE(ErrorCode::Parse,
                              "unsupported model envelope version '",
                              version, "' (expected ", kModelVersion,
                              " or ", kModelVersionV3, ")");
    const std::optional<PredictorKind> declared =
        predictorKindFromName(kind_name);
    if (!declared)
        return HM_RECOVERABLE(ErrorCode::Parse,
                              "model envelope declares unknown "
                              "predictor kind '",
                              kind_name, "'");
    uint64_t declared_crc = 0;
    if (!checksumFromHex(crc_hex, declared_crc))
        return HM_RECOVERABLE(ErrorCode::Parse,
                              "model envelope checksum '", crc_hex,
                              "' is not 16 hex digits");

    // A corrupted size field must not drive a giant allocation; no
    // legitimate model payload approaches this bound.
    constexpr std::size_t kMaxPayloadBytes = 1ull << 30;
    if (payload_bytes > kMaxPayloadBytes)
        return HM_RECOVERABLE(ErrorCode::Parse,
                              "model envelope declares an absurd "
                              "payload size (",
                              payload_bytes, " bytes) — corrupt header");

    std::size_t baseline_bytes = 0;
    uint64_t baseline_crc = 0;
    if (v3) {
        std::string baseline_crc_hex;
        is >> baseline_bytes >> baseline_crc_hex;
        if (is.fail())
            return HM_RECOVERABLE(ErrorCode::Parse,
                                  "v3 model envelope lacks the "
                                  "baseline trailer fields");
        if (!checksumFromHex(baseline_crc_hex, baseline_crc))
            return HM_RECOVERABLE(ErrorCode::Parse,
                                  "model baseline checksum '",
                                  baseline_crc_hex,
                                  "' is not 16 hex digits");
        if (baseline_bytes > kMaxPayloadBytes)
            return HM_RECOVERABLE(ErrorCode::Parse,
                                  "model envelope declares an absurd "
                                  "baseline size (",
                                  baseline_bytes,
                                  " bytes) — corrupt header");
    }

    // The single separator after the header line; then exactly
    // payload_bytes of payload.
    is.get();
    payload.resize(payload_bytes);
    is.read(payload.data(),
            static_cast<std::streamsize>(payload_bytes));
    if (static_cast<std::size_t>(is.gcount()) != payload_bytes)
        return HM_RECOVERABLE(
            ErrorCode::Io, "model payload truncated: expected ",
            payload_bytes, " bytes, stream held ", is.gcount());

    const uint64_t actual_crc = crc64(payload);
    if (actual_crc != declared_crc)
        return HM_RECOVERABLE(
            ErrorCode::Parse, "model payload checksum mismatch: "
            "envelope says ",
            checksumToHex(declared_crc), ", payload hashes to ",
            checksumToHex(actual_crc),
            " (corrupt or torn model stream)");

    if (v3 && baseline_bytes > 0) {
        std::string baseline_text(baseline_bytes, '\0');
        is.read(baseline_text.data(),
                static_cast<std::streamsize>(baseline_bytes));
        if (static_cast<std::size_t>(is.gcount()) != baseline_bytes)
            return HM_RECOVERABLE(
                ErrorCode::Io, "model baseline truncated: expected ",
                baseline_bytes, " bytes, stream held ", is.gcount());
        const uint64_t actual_baseline_crc = crc64(baseline_text);
        if (actual_baseline_crc != baseline_crc)
            return HM_RECOVERABLE(
                ErrorCode::Parse,
                "model baseline checksum mismatch: envelope says ",
                checksumToHex(baseline_crc), ", trailer hashes to ",
                checksumToHex(actual_baseline_crc),
                " (corrupt or torn model stream)");
        std::istringstream body(baseline_text);
        FeatureBaseline parsed;
        if (!FeatureBaseline::load(body, &parsed))
            return HM_RECOVERABLE(ErrorCode::Parse,
                                  "model baseline trailer failed to "
                                  "parse as a feature-baseline");
        baseline =
            std::make_shared<const FeatureBaseline>(std::move(parsed));
    }
    kind = *declared;
    return true;
}

/** Parse @p payload as @p kind, converting fatals into Errors. */
Result<std::unique_ptr<Predictor>>
parsePayload(PredictorKind kind, const std::string &payload)
{
    try {
        std::istringstream body(payload);
        return loadPayload(kind, body);
    } catch (const FatalError &e) {
        return makeError(ErrorCode::Parse, 0,
                         "model payload failed to parse as ",
                         predictorKindName(kind), ": ", e.what());
    }
}

} // namespace

void
savePredictor(const Predictor &predictor, PredictorKind kind,
              std::ostream &os)
{
    savePredictor(predictor, kind, os, nullptr);
}

void
savePredictor(const Predictor &predictor, PredictorKind kind,
              std::ostream &os, const FeatureBaseline *baseline)
{
    std::ostringstream payload;
    savePayload(predictor, kind, payload);
    const std::string body = payload.str();
    if (baseline == nullptr) {
        // Byte-identical to the pre-baseline format.
        os << kModelMagic << " " << kModelVersion << " "
           << predictorKindName(kind) << " " << body.size() << " "
           << checksumToHex(crc64(body)) << "\n"
           << body;
        return;
    }
    const std::string trailer = baseline->toString();
    os << kModelMagic << " " << kModelVersionV3 << " "
       << predictorKindName(kind) << " " << body.size() << " "
       << checksumToHex(crc64(body)) << " " << trailer.size() << " "
       << checksumToHex(crc64(trailer)) << "\n"
       << body << trailer;
}

Result<std::unique_ptr<Predictor>>
loadPredictor(PredictorKind kind, std::istream &is)
{
    PredictorKind declared = kind;
    std::string payload;
    std::shared_ptr<const FeatureBaseline> baseline;
    Result<bool> header = readEnvelope(is, declared, payload, baseline);
    if (!header)
        return header.error();
    if (declared != kind)
        return HM_RECOVERABLE(
            ErrorCode::Parse, "model kind mismatch: stream holds a ",
            predictorKindName(declared), ", caller requested a ",
            predictorKindName(kind));
    return parsePayload(kind, payload);
}

Result<LoadedPredictor>
loadAnyPredictor(std::istream &is)
{
    PredictorKind declared = PredictorKind::DecisionTree;
    std::string payload;
    std::shared_ptr<const FeatureBaseline> baseline;
    Result<bool> header = readEnvelope(is, declared, payload, baseline);
    if (!header)
        return header.error();
    Result<std::unique_ptr<Predictor>> parsed =
        parsePayload(declared, payload);
    if (!parsed)
        return parsed.error();
    return LoadedPredictor{declared, std::move(parsed).value(),
                           std::move(baseline)};
}

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::DecisionTree,    PredictorKind::LinearRegression,
        PredictorKind::MultiRegression, PredictorKind::AdaptiveLibrary,
        PredictorKind::Deep16,          PredictorKind::Deep32,
        PredictorKind::Deep64,          PredictorKind::Deep128,
    };
    return kinds;
}

HeteroMap::HeteroMap(AcceleratorPair pair,
                     std::unique_ptr<Predictor> predictor,
                     const Oracle &oracle)
    : pair_(std::move(pair)), predictor_(std::move(predictor)),
      oracle_(oracle)
{
    HM_ASSERT(predictor_ != nullptr, "HeteroMap requires a predictor");
}

void
HeteroMap::trainOffline(const TrainingSet &corpus)
{
    predictor_->train(corpus);
    // Capture the training-time feature distribution alongside the
    // fit: the drift monitor compares live serving windows against
    // exactly the corpus this model saw, and savePredictor()'s v3
    // envelope ships the two together.
    baseline_ = std::make_shared<const FeatureBaseline>(
        buildFeatureBaseline(corpus));
}

Deployment
HeteroMap::deploy(const BenchmarkCase &bench) const
{
    return deploy(bench, DeployConstraints{});
}

Deployment
HeteroMap::predict(const Workload &workload, const Graph &graph,
                   const std::string &input_name,
                   const MeasureOptions &measure) const
{
    // The full online path is real framework time the paper's
    // overhead column would see. Each stage is timed with lapMillis()
    // — one clock read per stage boundary — so the per-stage
    // "predict.stage.*" histograms partition overheadMs exactly:
    // their sums add up to the reported total, no instant counted
    // twice or dropped.
    HM_SPAN("predict");
    HM_COUNTER_INC("predict.calls");
    Timer timer;
    timer.start();

    const GraphStats stats = [&] {
        HM_SPAN("predict.measure");
        return globalStatsCache().measure(graph, measure);
    }();
    const double measure_ms = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.measure_ms", measure_ms);

    BenchmarkCase bench = [&] {
        HM_SPAN("predict.featurize");
        return makeCase(workload, graph, input_name, stats);
    }();
    const double featurize_ms = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.featurize_ms", featurize_ms);

    // deploy() times the inference stage itself and records it as
    // "predict.stage.infer_ms"; its overheadMs is that stage's value.
    Deployment out = deploy(bench);
    const double infer_ms = out.overheadMs;
    out.overheadMs += measure_ms + featurize_ms;

    if (forensics::flightRecorderArmed()) {
        // Library-path provenance: requestId/epoch 0 mark a direct
        // predict() call (the serving path stamps real ids).
        static_assert(forensics::kAuditFeatureDims == kNumFeatures);
        static_assert(forensics::kAuditScoreDims == kNumOutputs);
        forensics::AuditRecord record;
        record.timestampNs = telemetry::traceNowNs();
        record.graphFingerprint = mixFingerprint(fingerprintGraph(graph));
        record.setModelKind(predictor_->name());
        record.setWorkload(workload.name());
        record.features = bench.features.asArray();
        record.scores = out.predicted.m;
        record.setAccelerator(
            acceleratorKindName(out.config.accelerator));
        if (const auto *tree =
                dynamic_cast<const DecisionTreeHeuristic *>(
                    predictor_.get())) {
            const auto path = tree->decisionPath(bench.features);
            record.treePredicateMask = path.predicateMask;
            record.treeLeaf = path.leaf;
        }
        record.measureMs = measure_ms;
        record.featurizeMs = featurize_ms;
        record.inferMs = infer_ms;
        record.serviceMs = out.overheadMs;
        forensics::appendAuditRecord(record);
    }
    return out;
}

Deployment
HeteroMap::deploy(const BenchmarkCase &bench,
                  const DeployConstraints &constraints) const
{
    Deployment out;
    HM_COUNTER_INC("deploy.calls");

    // The inference latency is real wall-clock time — the paper adds
    // the framework's runtime overhead to the completion time.
    Timer timer;
    timer.start();
    {
        HM_SPAN("predict.infer");
        out.predicted = predictor_->predict(bench.features);
        if (constraints.forceAccelerator) {
            // Mask the other accelerator out of the M1 choice; the
            // intra-accelerator knobs remain the predictor's.
            out.predicted.m[0] = *constraints.forceAccelerator ==
                                         AcceleratorKind::Multicore
                                     ? 1.0
                                     : 0.0;
        }
        out.config = deployNormalized(out.predicted, pair_);
    }
    out.overheadMs = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.infer_ms", out.overheadMs);

    {
        HM_SPAN("deploy.oracle");
        out.report = oracle_.run(bench, pair_, out.config);
    }
    return out;
}

std::vector<Deployment>
HeteroMap::deployBatch(std::span<const BenchmarkCase> benches) const
{
    std::vector<Deployment> out(benches.size());
    if (benches.empty())
        return out;
    const std::size_t n = benches.size();
    HM_COUNTER_ADD("deploy.calls", n);
    HM_COUNTER_INC("deploy.batches");

    // One timed forward pass for the whole batch; each deployment is
    // charged its amortized share so Table IV-style overhead sums
    // stay honest under batching.
    Timer timer;
    timer.start();
    {
        HM_SPAN("predict.infer_batch");
        std::vector<FeatureVector> features(n);
        for (std::size_t i = 0; i < n; ++i)
            features[i] = benches[i].features;
        std::vector<NormalizedMVector> predicted(n);
        predictor_->predictBatch(features, predicted);
        for (std::size_t i = 0; i < n; ++i) {
            out[i].predicted = predicted[i];
            out[i].config = deployNormalized(predicted[i], pair_);
        }
    }
    const double infer_ms = timer.lapMillis();
    HM_HISTOGRAM_RECORD_MS("predict.stage.infer_batch_ms", infer_ms);
    const double amortized_ms = infer_ms / static_cast<double>(n);

    HM_SPAN("deploy.oracle");
    for (std::size_t i = 0; i < n; ++i) {
        out[i].overheadMs = amortized_ms;
        out[i].report = oracle_.run(benches[i], pair_, out[i].config);
    }
    return out;
}

} // namespace heteromap
