/**
 * @file
 * HeteroMap runtime implementation.
 */

#include "core/heteromap.hh"

#include "graph/stats_cache.hh"
#include "model/adaptive_library.hh"
#include "model/decision_tree.hh"
#include "model/linear_regression.hh"
#include "model/mlp.hh"
#include "model/poly_regression.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace heteromap {

std::unique_ptr<Predictor>
makePredictor(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::DecisionTree:
        return std::make_unique<DecisionTreeHeuristic>();
      case PredictorKind::LinearRegression:
        return std::make_unique<LinearRegression>();
      case PredictorKind::MultiRegression:
        return std::make_unique<PolyRegression>(7);
      case PredictorKind::AdaptiveLibrary:
        return std::make_unique<AdaptiveLibrary>();
      case PredictorKind::Deep16:
        return std::make_unique<Mlp>(16);
      case PredictorKind::Deep32:
        return std::make_unique<Mlp>(32);
      case PredictorKind::Deep64:
        return std::make_unique<Mlp>(64);
      case PredictorKind::Deep128:
        return std::make_unique<Mlp>(128);
    }
    HM_PANIC("unhandled predictor kind");
}

const std::vector<PredictorKind> &
allPredictorKinds()
{
    static const std::vector<PredictorKind> kinds = {
        PredictorKind::DecisionTree,    PredictorKind::LinearRegression,
        PredictorKind::MultiRegression, PredictorKind::AdaptiveLibrary,
        PredictorKind::Deep16,          PredictorKind::Deep32,
        PredictorKind::Deep64,          PredictorKind::Deep128,
    };
    return kinds;
}

HeteroMap::HeteroMap(AcceleratorPair pair,
                     std::unique_ptr<Predictor> predictor,
                     const Oracle &oracle)
    : pair_(std::move(pair)), predictor_(std::move(predictor)),
      oracle_(oracle)
{
    HM_ASSERT(predictor_ != nullptr, "HeteroMap requires a predictor");
}

void
HeteroMap::trainOffline(const TrainingSet &corpus)
{
    predictor_->train(corpus);
}

Deployment
HeteroMap::deploy(const BenchmarkCase &bench) const
{
    return deploy(bench, DeployConstraints{});
}

Deployment
HeteroMap::predict(const Workload &workload, const Graph &graph,
                   const std::string &input_name,
                   const MeasureOptions &measure) const
{
    // Measurement is real framework time the paper's overhead column
    // would see; time it and charge it to the deployment.
    Timer timer;
    timer.start();
    GraphStats stats = globalStatsCache().measure(graph, measure);
    const double measure_ms = timer.elapsedMillis();

    BenchmarkCase bench = makeCase(workload, graph, input_name, stats);
    Deployment out = deploy(bench);
    out.overheadMs += measure_ms;
    return out;
}

Deployment
HeteroMap::deploy(const BenchmarkCase &bench,
                  const DeployConstraints &constraints) const
{
    Deployment out;

    // The inference latency is real wall-clock time — the paper adds
    // the framework's runtime overhead to the completion time.
    Timer timer;
    timer.start();
    out.predicted = predictor_->predict(bench.features);
    if (constraints.forceAccelerator) {
        // Mask the other accelerator out of the M1 choice; the
        // intra-accelerator knobs remain the predictor's.
        out.predicted.m[0] =
            *constraints.forceAccelerator == AcceleratorKind::Multicore
                ? 1.0
                : 0.0;
    }
    out.config = deployNormalized(out.predicted, pair_);
    out.overheadMs = timer.elapsedMillis();

    out.report = oracle_.run(bench, pair_, out.config);
    return out;
}

} // namespace heteromap
