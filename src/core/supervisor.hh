/**
 * @file
 * Supervised deployment loop. Wraps HeteroMap::deploy() with
 * mispredict detection against a (possibly faulty) modelled system
 * and a graceful degradation ladder:
 *
 *   1. MaskPredict       — re-predict with the misbehaving accelerator
 *                          masked out of the M1 choice,
 *   2. SwitchAccelerator — conservative configuration on whichever
 *                          accelerator currently looks healthiest,
 *   3. ShrinkConfig      — shrink the intra-accelerator configuration
 *                          (cores / threads / SIMD, GPU work sizes),
 *   4. RetryBackoff      — retry under exponential backoff so
 *                          transient faults can expire.
 *
 * Attempts are bounded; a run that exhausts its attempts degrades to
 * the best observed configuration instead of panicking, and every
 * deployment emits a structured DeploymentOutcome rather than a bare
 * Deployment.
 */

#ifndef HETEROMAP_CORE_SUPERVISOR_HH
#define HETEROMAP_CORE_SUPERVISOR_HH

#include <vector>

#include "arch/fault_model.hh"
#include "core/heteromap.hh"
#include "util/errors.hh"

namespace heteromap {

/** Tunables of the supervised deployment loop. */
struct SupervisorOptions {
    /**
     * Relative slowdown of observed vs. predicted completion beyond
     * which an attempt is classified as a mispredict (0.25 = observed
     * more than 25% slower than the healthy-model prediction).
     */
    double mispredictTolerance = 0.25;

    /** Total deployment attempts before degrading to best-effort. */
    unsigned maxAttempts = 6;

    /** First RetryBackoff delay (modelled milliseconds). */
    double backoffBaseMs = 1.0;

    /** Multiplier between consecutive backoff delays. */
    double backoffFactor = 2.0;

    /** Multiplier on intra-accelerator knobs per ShrinkConfig rung. */
    double shrinkFactor = 0.5;
};

/** Degradation-ladder rungs, in escalation order. */
enum class FallbackAction {
    Initial,           //!< trust the predictor as-is
    MaskPredict,       //!< re-predict with the faulty side masked
    SwitchAccelerator, //!< conservative config on the healthier side
    ShrinkConfig,      //!< shrink the intra-accelerator configuration
    RetryBackoff,      //!< same config again after exponential backoff
};

/** @return e.g. "mask-predict". */
const char *fallbackActionName(FallbackAction action);

/** One attempt within a supervised deployment. */
struct DeploymentAttempt {
    FallbackAction action = FallbackAction::Initial;
    MConfig config;
    double predictedSeconds = 0.0; //!< healthy-model completion
    double observedSeconds = 0.0;  //!< fault-perturbed completion
    double backoffMs = 0.0;        //!< backoff charged before running
    bool ran = false;              //!< false when the side was offline
    bool mispredict = false;
    std::vector<FaultKind> faults; //!< faults active on the tried side
};

/** Structured result of one supervised deployment. */
struct DeploymentOutcome {
    /** True when some attempt completed (even a degraded one). */
    bool completed = false;

    /** True when the accepted attempt passed the mispredict check. */
    bool withinTolerance = false;

    /** The accepted deployment; its report is the *observed* run. */
    Deployment deployment;

    std::vector<DeploymentAttempt> attempts;

    /** Ladder rungs taken after the initial attempt. */
    std::vector<FallbackAction> fallbackPath;

    /** Total active faults observed across all attempts. */
    unsigned faultsSeen = 0;

    double totalBackoffMs = 0.0;
    uint64_t deploymentIndex = 0;

    /** Recoverable description of why nothing completed. */
    Error failure{ErrorCode::Exhausted, "", 0};

    /** Multi-line diagnostic dump. */
    std::string toString() const;
};

/**
 * The supervised deployment loop: owns the fault clock (deployment
 * index + cumulative modelled seconds) that drives FaultSchedule
 * windows, and never lets a modelled fault escape as an exception.
 */
class Supervisor
{
  public:
    /**
     * @param framework Trained (or analytical) HeteroMap runtime.
     * @param injector  Fault scenario; default = healthy system.
     * @param options   Loop tunables.
     */
    explicit Supervisor(const HeteroMap &framework,
                        FaultInjector injector = {},
                        SupervisorOptions options = {});

    /** Supervise one deployment and advance the fault clock. */
    DeploymentOutcome deploy(const BenchmarkCase &bench);

    const FaultClock &clock() const { return clock_; }
    const FaultInjector &injector() const { return injector_; }
    const SupervisorOptions &options() const { return options_; }
    uint64_t deploymentsRun() const { return clock_.deployment; }

  private:
    const HeteroMap &framework_;
    FaultInjector injector_;
    SupervisorOptions options_;
    FaultClock clock_;

    /** Full-width but cautious configuration on @p side. */
    MConfig conservativeConfig(AcceleratorKind side) const;

    /** One ladder step down in intra-accelerator concurrency. */
    MConfig shrinkConfig(MConfig config) const;

    /** Side whose composed fault effect currently costs least. */
    AcceleratorKind healthierSide() const;
};

} // namespace heteromap

#endif // HETEROMAP_CORE_SUPERVISOR_HH
