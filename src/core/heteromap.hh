/**
 * @file
 * The HeteroMap runtime (Fig. 8): offline-trained predictor + online
 * evaluation. Given a discretized benchmark-input combination, the
 * framework predicts machine choices, deploys them on the selected
 * accelerator, and charges its own (real, measured) inference latency
 * to the completion time, exactly as the paper's methodology does.
 */

#ifndef HETEROMAP_CORE_HETEROMAP_HH
#define HETEROMAP_CORE_HETEROMAP_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "core/oracle.hh"
#include "graph/props.hh"
#include "model/predictor.hh"
#include "util/errors.hh"

namespace heteromap {

struct FeatureBaseline;

/**
 * The learner strategies of Table IV, plus the non-parametric
 * database-backed table lookup (Sec. V's "indexed using B,I tuples"
 * store) so deployment modes that serve straight from the profiler
 * database name themselves the same way.
 */
enum class PredictorKind {
    DecisionTree,
    LinearRegression,
    MultiRegression,
    AdaptiveLibrary,
    Deep16,
    Deep32,
    Deep64,
    Deep128,
    TableLookup,
};

/** Instantiate one of the learners. */
std::unique_ptr<Predictor> makePredictor(PredictorKind kind);

/** All Table IV learner kinds, in table order (TableLookup is not a
 *  Table IV row and is deliberately absent). */
const std::vector<PredictorKind> &allPredictorKinds();

/** Stable identifier, e.g. "deep-64"; used in serialized headers. */
const char *predictorKindName(PredictorKind kind);

/** Inverse of predictorKindName(); nullopt for unknown names. */
std::optional<PredictorKind> predictorKindFromName(
    std::string_view name);

/**
 * Persist @p predictor — which must be an instance of the concrete
 * class @p kind names — in a format loadPredictor() restores. Every
 * PredictorKind serializes; analytical models persist their
 * parameters, learned models their fitted weights/tuples.
 *
 * The stream is a crash-safe envelope:
 *
 *   heteromap-model v2 <kind-name> <payload-bytes> <crc64-hex>\n
 *   <payload>
 *
 * where <payload> is the concrete model's own versioned text format
 * and the CRC64 (util/checksum.hh) covers every payload byte — so a
 * truncated file, a torn write, or a single flipped bit is caught at
 * load time before any parsing happens.
 */
void savePredictor(const Predictor &predictor, PredictorKind kind,
                   std::ostream &os);

/**
 * savePredictor() carrying the training-time feature-distribution
 * baseline the drift monitor compares live traffic against. With a
 * null @p baseline the output is byte-identical v2; with one, the
 * envelope version bumps to v3 and grows two trailer fields plus the
 * baseline body, each independently checksummed:
 *
 *   heteromap-model v3 <kind-name> <payload-bytes> <crc64-hex>
 *       <baseline-bytes> <baseline-crc64-hex>\n
 *   <payload><baseline>
 *
 * loadPredictor()/loadAnyPredictor() accept both versions, so every
 * pre-drift model file keeps loading unchanged.
 */
void savePredictor(const Predictor &predictor, PredictorKind kind,
                   std::ostream &os, const FeatureBaseline *baseline);

/**
 * Restore a predictor of @p kind from the savePredictor() envelope.
 * Recoverable: a malformed header, a kind mismatch (e.g. a Deep.32
 * stream loaded as Deep.64), a truncated payload, or a checksum
 * failure comes back as a Result error the caller can report and
 * roll back from — never an abort, so a model registry keeps its
 * last-good model when a hot-load goes bad. On success the returned
 * predictor's predict() outputs are byte-identical to the saved
 * instance's.
 */
Result<std::unique_ptr<Predictor>> loadPredictor(PredictorKind kind,
                                                 std::istream &is);

/** A predictor restored together with its envelope-declared kind. */
struct LoadedPredictor {
    PredictorKind kind = PredictorKind::DecisionTree;
    std::unique_ptr<Predictor> predictor;
    /** Training-time baseline from a v3 envelope; null for v2. */
    std::shared_ptr<const FeatureBaseline> baseline;
};

/**
 * Restore whatever kind the envelope declares (the self-describing
 * variant of loadPredictor(), used by registry snapshot files whose
 * kind is not known a priori). Same error contract.
 */
Result<LoadedPredictor> loadAnyPredictor(std::istream &is);

/** Result of one online deployment. */
struct Deployment {
    MConfig config;            //!< deployed machine choices
    ExecutionReport report;    //!< modelled on-chip execution
    double overheadMs = 0.0;   //!< measured predictor latency
    NormalizedMVector predicted;

    /** Completion time including the framework's overhead. */
    double
    totalSeconds() const
    {
        return report.seconds + overheadMs * 1e-3;
    }
};

/**
 * Constraints applied to one online prediction. Used by the
 * supervised deployment loop (core/supervisor.hh) to mask a faulty
 * accelerator out of the M1 choice while keeping the predictor's
 * intra-accelerator knobs.
 */
struct DeployConstraints {
    /** When set, M1 is forced to this accelerator. */
    std::optional<AcceleratorKind> forceAccelerator;
};

/** Trained predictor bound to a multi-accelerator pair. */
class HeteroMap
{
  public:
    /**
     * @param pair      Target multi-accelerator system.
     * @param predictor Learner (trained or analytical).
     * @param oracle    Evaluation oracle for deployment.
     */
    HeteroMap(AcceleratorPair pair, std::unique_ptr<Predictor> predictor,
              const Oracle &oracle);

    /** Fit the learner on an offline corpus (no-op for analytical). */
    void trainOffline(const TrainingSet &corpus);

    /** Predict, deploy, and report one benchmark-input combination. */
    Deployment deploy(const BenchmarkCase &bench) const;

    /**
     * One-call online path from a raw graph: measure it through the
     * global GraphStats cache (graph/stats_cache.hh), featurize,
     * predict, and deploy. Every stage is timed: the returned
     * overheadMs is exactly the sum of the measurement latency (near
     * zero when the graph's stats are still cached), the featurize
     * latency, and the inference latency, and each stage is recorded
     * in the telemetry registry ("predict.stage.measure_ms" /
     * ".featurize_ms" / ".infer_ms" histograms) and as trace spans —
     * keeping the Table IV overhead accounting honest for the full
     * runtime path, with a per-stage breakdown instead of a single
     * opaque number.
     */
    Deployment predict(const Workload &workload, const Graph &graph,
                       const std::string &input_name,
                       const MeasureOptions &measure = {}) const;

    /** Deploy under @p constraints (e.g. with one accelerator masked). */
    Deployment deploy(const BenchmarkCase &bench,
                      const DeployConstraints &constraints) const;

    /**
     * Deploy a micro-batch with one predictor forward pass. The
     * predictions come from Predictor::predictBatch(), so each
     * deployment's config is byte-identical to deploy(benches[i]);
     * only the timing differs — the single inference stage is timed
     * once, recorded as "predict.stage.infer_batch_ms", and each
     * returned Deployment carries the batch-amortized share
     * (total / count) as its overheadMs.
     */
    std::vector<Deployment>
    deployBatch(std::span<const BenchmarkCase> benches) const;

    const Predictor &predictor() const { return *predictor_; }
    const AcceleratorPair &pair() const { return pair_; }
    const Oracle &oracle() const { return oracle_; }

    /**
     * Feature-distribution baseline captured by the last
     * trainOffline() call (or installed from a v3 envelope via
     * setBaseline()); null until one exists. Shared with the serving
     * drift monitor, which compares live windows against it.
     */
    std::shared_ptr<const FeatureBaseline> baseline() const
    {
        return baseline_;
    }
    void setBaseline(std::shared_ptr<const FeatureBaseline> baseline)
    {
        baseline_ = std::move(baseline);
    }

  private:
    AcceleratorPair pair_;
    std::unique_ptr<Predictor> predictor_;
    const Oracle &oracle_;
    std::shared_ptr<const FeatureBaseline> baseline_;
};

} // namespace heteromap

#endif // HETEROMAP_CORE_HETEROMAP_HH
