/**
 * @file
 * Profiler database (Sec. V "Training"): the offline store of
 * (B, I) -> best-M tuples the training pipeline produces. Keys are the
 * discretized feature grid; lookups support exact hits and
 * nearest-neighbor fallback, and the store round-trips through a text
 * format so a trained setup can be reused.
 */

#ifndef HETEROMAP_CORE_DATABASE_HH
#define HETEROMAP_CORE_DATABASE_HH

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "model/predictor.hh"
#include "util/errors.hh"

namespace heteromap {

/** Offline (B, I) -> M store, indexed by the discretized features. */
class ProfilerDatabase
{
  public:
    ProfilerDatabase() = default;

    /** Insert/overwrite the tuple for @p features. */
    void insert(const FeatureVector &features,
                const NormalizedMVector &best);

    /**
     * Merge-on-join: fold @p other's entries into this store
     * (@p other wins key collisions). Parallel producers each fill a
     * private database and the owner merges them after joining, so
     * the store itself needs no locking.
     */
    void merge(const ProfilerDatabase &other);

    /** Exact lookup on the discretized key. */
    std::optional<NormalizedMVector>
    lookup(const FeatureVector &features) const;

    /**
     * Nearest stored entry by L2 feature distance; fatal when the
     * database is empty.
     */
    NormalizedMVector nearest(const FeatureVector &features) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Convert the store to a TrainingSet for the learners. */
    TrainingSet toTrainingSet() const;

    /** Serialize as "key17 -> m20" text lines. */
    void save(std::ostream &os) const;

    /** Parse the save() format; malformed input is a recoverable
     * line-numbered Error rather than a process teardown. */
    static Result<ProfilerDatabase> tryLoad(std::istream &is);

    /** Throwing wrapper around tryLoad (throws FatalError). */
    static ProfilerDatabase load(std::istream &is);

  private:
    /** Discretized feature grid key. */
    static std::string keyOf(const FeatureVector &features);

    struct Entry {
        FeatureVector features;
        NormalizedMVector best;
    };
    std::map<std::string, Entry> entries_;
};

} // namespace heteromap

#endif // HETEROMAP_CORE_DATABASE_HH
