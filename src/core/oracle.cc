/**
 * @file
 * Oracle implementation.
 */

#include "core/oracle.hh"

#include <algorithm>

#include "util/logging.hh"

namespace heteromap {

BenchmarkCase
makeCase(const Workload &workload, const Dataset &dataset)
{
    BenchmarkCase bench;
    bench.workloadName = workload.name();
    bench.inputName = dataset.shortName();

    auto [output, profile] = workload.runProfiled(dataset.proxy());
    bench.output = std::move(output);
    bench.profile = std::move(profile);

    bench.features.b = workload.bVariables();
    bench.features.i = extractIVariables(dataset); // nominal stats
    bench.shapeStats = dataset.proxyStats();
    bench.scaleStats = dataset.nominal();
    return bench;
}

BenchmarkCase
makeCase(const Workload &workload, const Graph &graph,
         const std::string &input_name, const GraphStats &stats)
{
    return makeCase(workload, graph, input_name, stats, stats);
}

BenchmarkCase
makeCase(const Workload &workload, const Graph &graph,
         const std::string &input_name, const GraphStats &shape_stats,
         const GraphStats &scale_stats)
{
    BenchmarkCase bench;
    bench.workloadName = workload.name();
    bench.inputName = input_name;

    auto [output, profile] = workload.runProfiled(graph);
    bench.output = std::move(output);
    bench.profile = std::move(profile);

    bench.features.b = workload.bVariables();
    bench.features.i = extractIVariables(scale_stats);
    bench.shapeStats = shape_stats;
    bench.scaleStats = scale_stats;
    return bench;
}

double
BenchmarkCase::timeScale() const
{
    double proxy = std::max<double>(1.0, shapeStats.numEdges);
    double nominal = std::max<double>(1.0, scaleStats.numEdges);
    return std::max(1.0, nominal / proxy);
}

Oracle::Oracle(PerfModelParams params) : model_(params)
{
}

const AcceleratorSpec &
Oracle::specFor(const AcceleratorPair &pair, const MConfig &config) const
{
    return config.accelerator == AcceleratorKind::Gpu ? pair.gpu
                                                      : pair.multicore;
}

ExecutionReport
Oracle::run(const BenchmarkCase &bench, const AcceleratorPair &pair,
            const MConfig &config) const
{
    RunInput input;
    input.profile = &bench.profile;
    input.shapeStats = bench.shapeStats;
    input.scaleStats = bench.scaleStats;
    return model_.evaluate(input, specFor(pair, config), config);
}

double
Oracle::seconds(const BenchmarkCase &bench, const AcceleratorPair &pair,
                const MConfig &config) const
{
    return run(bench, pair, config).seconds;
}

TuneObjective
Oracle::timeObjective(const BenchmarkCase &bench,
                      const AcceleratorPair &pair) const
{
    return [this, &bench, pair](const MConfig &config) {
        return seconds(bench, pair, config);
    };
}

TuneObjective
Oracle::energyObjective(const BenchmarkCase &bench,
                        const AcceleratorPair &pair) const
{
    return [this, &bench, pair](const MConfig &config) {
        return run(bench, pair, config).joules;
    };
}

} // namespace heteromap
