/**
 * @file
 * The evaluation oracle: a BenchmarkCase bundles everything needed to
 * score machine choices for one benchmark-input combination (measured
 * profile, features, shape/scale statistics); the Oracle turns (case,
 * accelerator pair, MConfig) into modelled time/energy and builds
 * tuner objectives. It replaces the paper's hardware runs.
 */

#ifndef HETEROMAP_CORE_ORACLE_HH
#define HETEROMAP_CORE_ORACLE_HH

#include <string>

#include "arch/perf_model.hh"
#include "arch/presets.hh"
#include "features/feature_vector.hh"
#include "graph/datasets.hh"
#include "tuner/search_space.hh"
#include "workloads/workload.hh"

namespace heteromap {

/** One benchmark-input combination, profiled and featurized. */
struct BenchmarkCase {
    std::string workloadName;
    std::string inputName;
    FeatureVector features;
    WorkloadProfile profile;
    GraphStats shapeStats; //!< measured from the executed graph
    GraphStats scaleStats; //!< nominal scale for memory effects
    WorkloadOutput output; //!< kept for correctness checks

    /** "<workload>-<input>", e.g. "PR-LJ". */
    std::string label() const { return workloadName + "-" + inputName; }

    /**
     * Ratio between the nominal input scale and the executed proxy
     * (>= 1). Modelled proxy seconds times this factor approximate
     * the nominal-scale runtime; real-time costs (e.g. predictor
     * inference) are divided by it before being charged against
     * proxy-scale times so their relative weight matches the paper's
     * seconds-scale runs.
     */
    double timeScale() const;
};

/**
 * Build a case from a paper benchmark and a Table I dataset: the
 * workload runs on the dataset's proxy graph; I variables come from
 * the *nominal* stats (the paper's feature values).
 */
BenchmarkCase makeCase(const Workload &workload, const Dataset &dataset);

/**
 * Build a case from any workload and graph (used for synthetic
 * training data); I variables are measured from the graph itself.
 */
BenchmarkCase makeCase(const Workload &workload, const Graph &graph,
                       const std::string &input_name,
                       const GraphStats &stats);

/**
 * Build a case whose shape is measured from @p graph but whose scale
 * (I variables, memory effects) comes from @p scale_stats — how the
 * training pipeline makes small executed proxies stand in for
 * Table III-sized synthetic inputs.
 */
BenchmarkCase makeCase(const Workload &workload, const Graph &graph,
                       const std::string &input_name,
                       const GraphStats &shape_stats,
                       const GraphStats &scale_stats);

/** Scores benchmark cases under the performance model. */
class Oracle
{
  public:
    explicit Oracle(PerfModelParams params = {});

    /** Full modelled execution report. */
    ExecutionReport run(const BenchmarkCase &bench,
                        const AcceleratorPair &pair,
                        const MConfig &config) const;

    /** Modelled completion seconds. */
    double seconds(const BenchmarkCase &bench,
                   const AcceleratorPair &pair,
                   const MConfig &config) const;

    /** Tuner objective minimizing completion time. */
    TuneObjective timeObjective(const BenchmarkCase &bench,
                                const AcceleratorPair &pair) const;

    /** Tuner objective minimizing energy (Sec. VII-C). */
    TuneObjective energyObjective(const BenchmarkCase &bench,
                                  const AcceleratorPair &pair) const;

    const PerfModel &model() const { return model_; }

  private:
    PerfModel model_;

    const AcceleratorSpec &specFor(const AcceleratorPair &pair,
                                   const MConfig &config) const;
};

} // namespace heteromap

#endif // HETEROMAP_CORE_ORACLE_HH
