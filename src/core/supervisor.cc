/**
 * @file
 * Supervised deployment loop implementation.
 */

#include "core/supervisor.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/trace.hh"

namespace heteromap {

namespace {

/** Escalation order of the degradation ladder. */
constexpr FallbackAction kLadder[] = {
    FallbackAction::Initial,
    FallbackAction::MaskPredict,
    FallbackAction::SwitchAccelerator,
    FallbackAction::ShrinkConfig,
    FallbackAction::RetryBackoff,
};

AcceleratorKind
otherSide(AcceleratorKind side)
{
    return side == AcceleratorKind::Gpu ? AcceleratorKind::Multicore
                                        : AcceleratorKind::Gpu;
}

/** Modelled cost multiplier of a side's composed fault effect. */
double
effectScore(const FaultEffect &effect)
{
    if (effect.unavailable)
        return std::numeric_limits<double>::infinity();
    return 1.0 / effect.frequencyScale / effect.bandwidthScale +
           effect.stallSeconds;
}

} // namespace

const char *
fallbackActionName(FallbackAction action)
{
    switch (action) {
      case FallbackAction::Initial:           return "initial";
      case FallbackAction::MaskPredict:       return "mask-predict";
      case FallbackAction::SwitchAccelerator: return "switch-accelerator";
      case FallbackAction::ShrinkConfig:      return "shrink-config";
      case FallbackAction::RetryBackoff:      return "retry-backoff";
    }
    return "?";
}

std::string
DeploymentOutcome::toString() const
{
    std::ostringstream oss;
    oss << "deployment " << deploymentIndex << ": "
        << (completed ? (withinTolerance ? "ok" : "degraded")
                      : "failed")
        << ", " << attempts.size() << " attempt(s), " << faultsSeen
        << " fault(s), backoff=" << totalBackoffMs << "ms\n";
    for (const auto &a : attempts) {
        oss << "  " << fallbackActionName(a.action) << " on "
            << acceleratorKindName(a.config.accelerator) << ": ";
        if (!a.ran) {
            oss << "accelerator unavailable";
        } else {
            oss << "predicted=" << a.predictedSeconds * 1e3
                << "ms observed=" << a.observedSeconds * 1e3 << "ms"
                << (a.mispredict ? " MISPREDICT" : "");
        }
        for (FaultKind kind : a.faults)
            oss << " [" << faultKindName(kind) << "]";
        if (a.backoffMs > 0.0)
            oss << " (after " << a.backoffMs << "ms backoff)";
        oss << "\n";
    }
    if (!completed)
        oss << "  " << failure.toString() << "\n";
    return oss.str();
}

Supervisor::Supervisor(const HeteroMap &framework, FaultInjector injector,
                       SupervisorOptions options)
    : framework_(framework), injector_(std::move(injector)),
      options_(options)
{
    HM_ASSERT(options_.maxAttempts > 0,
              "supervisor needs at least one attempt");
    HM_ASSERT(options_.mispredictTolerance >= 0.0,
              "mispredict tolerance must be non-negative");
}

AcceleratorKind
Supervisor::healthierSide() const
{
    const double gpu_score =
        effectScore(injector_.schedule().effectAt(AcceleratorKind::Gpu,
                                                  clock_));
    const double mc_score = effectScore(injector_.schedule().effectAt(
        AcceleratorKind::Multicore, clock_));
    // Ties (both healthy or equally degraded) fall back to the
    // multicore: the conservative general-purpose host.
    return gpu_score < mc_score ? AcceleratorKind::Gpu
                                : AcceleratorKind::Multicore;
}

MConfig
Supervisor::conservativeConfig(AcceleratorKind side) const
{
    const AcceleratorPair &pair = framework_.pair();
    MConfig config;
    config.accelerator = side;
    if (side == AcceleratorKind::Multicore) {
        // Full cores, no SMT oversubscription, dynamic scheduling:
        // robust to imbalance even if not the tuned optimum.
        config.cores = std::max(1u, pair.multicore.cores);
        config.threadsPerCore = 1;
        config.simdWidth = std::max(1u, pair.multicore.simdWidth);
        config.schedule = SchedulePolicy::Dynamic;
    } else {
        config.gpuGlobalThreads =
            std::max(1u, pair.gpu.maxGlobalThreads / 2);
        config.gpuLocalThreads =
            std::max(1u, std::min(128u, pair.gpu.maxLocalThreads));
    }
    return config;
}

MConfig
Supervisor::shrinkConfig(MConfig config) const
{
    const double f = std::clamp(options_.shrinkFactor, 0.1, 1.0);
    auto shrink = [f](unsigned value) {
        return std::max(1u, static_cast<unsigned>(
                                std::floor(value * f)));
    };
    if (config.accelerator == AcceleratorKind::Multicore) {
        config.cores = shrink(config.cores);
        config.threadsPerCore = shrink(config.threadsPerCore);
        config.simdWidth = shrink(config.simdWidth);
    } else {
        config.gpuGlobalThreads = shrink(config.gpuGlobalThreads);
        config.gpuLocalThreads = shrink(config.gpuLocalThreads);
    }
    return config;
}

DeploymentOutcome
Supervisor::deploy(const BenchmarkCase &bench)
{
    HM_SPAN("supervise.deploy");
    HM_COUNTER_INC("supervisor.deployments");
    DeploymentOutcome out;
    out.deploymentIndex = clock_.deployment;

    const AcceleratorPair &pair = framework_.pair();
    const Oracle &oracle = framework_.oracle();

    double next_backoff_ms = options_.backoffBaseMs;
    double best_observed = std::numeric_limits<double>::infinity();
    Deployment best;
    Deployment candidate;
    AcceleratorKind failed_side = AcceleratorKind::Gpu;
    bool accepted = false;

    for (unsigned attempt_no = 0;
         attempt_no < options_.maxAttempts && !accepted; ++attempt_no) {
        DeploymentAttempt attempt;
        attempt.action = kLadder[std::min<std::size_t>(attempt_no, 4)];

        switch (attempt.action) {
          case FallbackAction::Initial:
            candidate = framework_.deploy(bench);
            break;
          case FallbackAction::MaskPredict: {
            DeployConstraints constraints;
            constraints.forceAccelerator = otherSide(failed_side);
            candidate = framework_.deploy(bench, constraints);
            break;
          }
          case FallbackAction::SwitchAccelerator:
            candidate.config = conservativeConfig(healthierSide());
            candidate.predicted =
                normalizeConfig(candidate.config, pair);
            candidate.overheadMs = 0.0;
            candidate.report =
                oracle.run(bench, pair, candidate.config);
            break;
          case FallbackAction::ShrinkConfig:
            candidate.config = shrinkConfig(candidate.config);
            candidate.predicted =
                normalizeConfig(candidate.config, pair);
            candidate.report =
                oracle.run(bench, pair, candidate.config);
            break;
          case FallbackAction::RetryBackoff:
            // Advance the modelled clock so transient faults can
            // expire before the retry.
            attempt.backoffMs = next_backoff_ms;
            out.totalBackoffMs += next_backoff_ms;
            clock_.seconds += next_backoff_ms * 1e-3;
            next_backoff_ms *= options_.backoffFactor;
            break;
        }

        const AcceleratorKind side = candidate.config.accelerator;
        attempt.config = candidate.config;
        attempt.predictedSeconds = candidate.report.seconds;
        for (const auto &spec :
             injector_.schedule().activeAt(side, clock_)) {
            attempt.faults.push_back(spec.kind);
        }
        out.faultsSeen += static_cast<unsigned>(attempt.faults.size());

        if (!injector_.available(side, clock_)) {
            // The device is gone: the attempt never runs. Classified
            // as a mispredict so the ladder escalates.
            attempt.ran = false;
            attempt.mispredict = true;
            failed_side = side;
        } else {
            ExecutionReport observed = candidate.report;
            injector_.perturb(observed, side, clock_);
            attempt.ran = true;
            attempt.observedSeconds = observed.seconds;
            attempt.mispredict =
                observed.seconds >
                attempt.predictedSeconds *
                    (1.0 + options_.mispredictTolerance);
            // The system paid for the attempt regardless of outcome.
            clock_.seconds += observed.seconds;

            if (observed.seconds < best_observed) {
                best_observed = observed.seconds;
                best = candidate;
                best.report = observed;
            }
            if (!attempt.mispredict) {
                out.completed = true;
                out.withinTolerance = true;
                out.deployment = candidate;
                out.deployment.report = observed;
                accepted = true;
            } else {
                failed_side = side;
            }
        }

        if (attempt.mispredict)
            HM_COUNTER_INC("supervisor.mispredicts");
        if (attempt.action != FallbackAction::Initial) {
            HM_COUNTER_INC("supervisor.degradation_steps");
            out.fallbackPath.push_back(attempt.action);
        }
        HM_COUNTER_ADD("supervisor.faults_seen",
                       uint64_t(attempt.faults.size()));
        out.attempts.push_back(std::move(attempt));
    }

    if (!accepted) {
        if (std::isfinite(best_observed)) {
            // Retries exhausted: degrade gracefully to the best
            // configuration that actually completed.
            out.completed = true;
            out.withinTolerance = false;
            out.deployment = best;
            out.failure = makeError(
                ErrorCode::Exhausted, 0, "attempts exhausted for ",
                bench.label(), "; kept best observed config");
        } else {
            out.completed = false;
            out.failure = HM_RECOVERABLE(
                ErrorCode::Unavailable, "no accelerator available for ",
                bench.label(), " within ", options_.maxAttempts,
                " attempts");
        }
    }

    ++clock_.deployment;
    return out;
}

} // namespace heteromap
