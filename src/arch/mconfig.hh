/**
 * @file
 * Machine choices (M variables), Fig. 3. M1 selects the accelerator;
 * M2-M18 configure a multicore (threading, placement, OpenMP runtime
 * knobs); M19-M20 configure a GPU (global/local threading). The tuner,
 * the decision-tree heuristic, and the learned predictors all produce
 * values of this struct.
 */

#ifndef HETEROMAP_ARCH_MCONFIG_HH
#define HETEROMAP_ARCH_MCONFIG_HH

#include <array>
#include <string>

#include "exec/executor.hh"

namespace heteromap {

/** Inter-accelerator choice (machine variable M1). */
enum class AcceleratorKind {
    Gpu,
    Multicore,
};

/** @return "gpu" or "multicore". */
const char *acceleratorKindName(AcceleratorKind kind);

/**
 * Full machine-choice tuple. Integer-valued members hold deployable
 * values (e.g. actual core counts), produced by scaling the model's
 * normalized outputs by the target accelerator's maxima.
 */
struct MConfig {
    AcceleratorKind accelerator = AcceleratorKind::Gpu; //!< M1

    // --- Multicore hardware choices ---
    unsigned cores = 1;            //!< M2: cores used
    unsigned threadsPerCore = 1;   //!< M3: threads per core
    double blocktimeMs = 1.0;      //!< M4: KMP blocktime before sleep
    double placementSpread = 0.0;  //!< M5-M7: 0 = compact .. 1 = loose
    double affinityMovable = 0.0;  //!< M8: 0 = pinned .. 1 = movable

    // --- Multicore OpenMP runtime choices ---
    SchedulePolicy schedule = SchedulePolicy::Static; //!< M9
    unsigned simdWidth = 1;        //!< M10: lanes per core used
    unsigned chunkSize = 0;        //!< M11: 0 = policy default
    bool nestedParallelism = false;//!< M12: OMP_NESTED
    unsigned maxActiveLevels = 1;  //!< M13: OMP_MAX_ACTIVE_LEVELS
    unsigned spinCount = 0;        //!< M14: GOMP_SPINCOUNT
    bool activeWaitPolicy = false; //!< M15: OMP_WAIT_POLICY=active
    bool procBindClose = true;     //!< M16: OMP_PROC_BIND
    bool dynamicTeams = false;     //!< M17: OMP_DYNAMIC
    unsigned stackSizeKb = 2048;   //!< M18: OMP_STACKSIZE

    // --- GPU hardware choices ---
    unsigned gpuGlobalThreads = 1; //!< M19: global work size
    unsigned gpuLocalThreads = 1;  //!< M20: work-group size

    /** Total multicore threads = cores * threadsPerCore. */
    unsigned multicoreThreads() const { return cores * threadsPerCore; }

    /** Threads deployed on the selected accelerator. */
    unsigned
    activeThreads() const
    {
        return accelerator == AcceleratorKind::Gpu ? gpuGlobalThreads
                                                   : multicoreThreads();
    }

    /** One-line summary for logs and bench output. */
    std::string toString() const;

    /**
     * Discretized integer choice vector used for the paper's accuracy
     * metric ("percentage accuracies are found by comparing the
     * integer outputs constituting choice selections"). Continuous
     * members snap to coarse levels; unused side's members are zeroed
     * so GPU and multicore configs compare fairly.
     */
    std::array<int, 12> choiceVector() const;

    bool operator==(const MConfig &) const = default;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_MCONFIG_HH
