/**
 * @file
 * Memory-size sensitivity model (Sec. VII-D, Fig. 16). Graphs whose
 * (nominal) footprint exceeds the accelerator's configured memory are
 * processed in streamed chunks (Stinger-style); each extra chunk adds
 * a streaming pass and, for iterative algorithms, cross-chunk
 * convergence overhead.
 */

#ifndef HETEROMAP_ARCH_MEMORY_SIZE_MODEL_HH
#define HETEROMAP_ARCH_MEMORY_SIZE_MODEL_HH

#include <cstdint>

#include "arch/accel_spec.hh"
#include "graph/props.hh"

namespace heteromap {

/** Tunable constants for the memory-size model. */
struct MemorySizeParams {
    /** Per-vertex state bytes streamed alongside the CSR chunk. */
    double vertexStateBytes = 16.0;
    /** CSR bytes per edge. */
    double edgeBytes = 12.0;
    /** Relative slowdown added per extra chunk pass. */
    double chunkPassPenalty = 0.22;
    /** Extra iterations fraction caused by chunked convergence. */
    double convergencePenalty = 0.08;
};

/** Result of a memory feasibility/penalty query. */
struct MemorySizeEffect {
    unsigned chunks = 1;      //!< streamed chunks per pass
    double slowdown = 1.0;    //!< multiplier on on-chip time
};

/** Computes chunking effects of a memory size on an input graph. */
class MemorySizeModel
{
  public:
    explicit MemorySizeModel(MemorySizeParams params = {});

    /** Nominal in-memory footprint of @p stats in bytes. */
    double footprintBytes(const GraphStats &stats) const;

    /**
     * Chunking penalty for running a graph of @p stats scale on
     * @p mem_bytes of device memory, with @p iterations outer
     * iterations (chunked convergence is charged per iteration).
     */
    MemorySizeEffect effect(const GraphStats &stats, uint64_t mem_bytes,
                            uint64_t iterations) const;

    const MemorySizeParams &params() const { return params_; }

  private:
    MemorySizeParams params_;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_MEMORY_SIZE_MODEL_HH
