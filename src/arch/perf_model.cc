/**
 * @file
 * PerfModel implementation. The composition rule per phase is
 *
 *   time = max(compute, bandwidth) + latency + atomics + scheduling
 *
 * (compute overlaps with bulk bandwidth, dependent latency and
 * serialized costs do not), plus per-invocation parallel-region /
 * kernel-launch costs and explicit barrier costs, all scaled by the
 * memory-size streaming penalty.
 */

#include "arch/perf_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace heteromap {

double
PhaseBreakdown::seconds() const
{
    return std::max(computeSeconds, bandwidthSeconds) + latencySeconds +
           atomicSeconds + scheduleSeconds;
}

std::string
ExecutionReport::toString() const
{
    std::ostringstream oss;
    oss << "time=" << seconds * 1e3 << "ms energy=" << joules
        << "J watts=" << watts << " util=" << utilization
        << " chunks=" << memoryChunks << "\n";
    for (const auto &p : phases) {
        oss << "  " << p.name << ": " << p.seconds() * 1e3
            << "ms (compute=" << p.computeSeconds * 1e3
            << " bw=" << p.bandwidthSeconds * 1e3
            << " lat=" << p.latencySeconds * 1e3
            << " atomic=" << p.atomicSeconds * 1e3
            << " sched=" << p.scheduleSeconds * 1e3 << ")\n";
    }
    return oss.str();
}

PerfModel::PerfModel(PerfModelParams params)
    : params_(params), cacheModel_(params.cache),
      memoryModel_(params.memory), syncModel_(params.sync),
      energyModel_(params.energy), memorySizeModel_(params.memorySize)
{
}

double
PerfModel::effectiveThreads(const AcceleratorSpec &spec,
                            const MConfig &config,
                            const PhaseProfile &phase) const
{
    // Deployable thread count, clamped to the hardware.
    double threads;
    if (spec.kind == AcceleratorKind::Gpu) {
        threads = std::clamp<double>(config.gpuGlobalThreads, 1.0,
                                     spec.maxThreads());
    } else {
        double cores = std::clamp<double>(config.cores, 1.0, spec.cores);
        double tpc = std::clamp<double>(config.threadsPerCore, 1.0,
                                        spec.threadsPerCore);
        threads = cores * tpc;
    }

    // A phase invocation with fewer items than threads cannot use all
    // of them — the high-diameter / narrow-frontier starvation effect.
    if (phase.invocations > 0) {
        double items_per_inv =
            static_cast<double>(phase.workItems) /
            static_cast<double>(phase.invocations);
        threads = std::min(threads, std::max(1.0, items_per_inv));
    }
    return threads;
}

double
PerfModel::computeRate(const AcceleratorSpec &spec, const MConfig &config,
                       const PhaseProfile &phase, const GraphStats &shape,
                       double threads, const CacheEstimate &cache) const
{
    const double ops = std::max(1.0, phase.totalOps());
    const double fp_frac = phase.fpOps / ops;
    const double peak = spec.opsPerSecond(fp_frac);

    if (spec.kind == AcceleratorKind::Gpu) {
        // Occupancy: throughput ramps with resident threads and
        // saturates well below the architectural maximum.
        const double sat = params_.gpuOccupancySaturation *
                           static_cast<double>(spec.maxThreads());
        const double occupancy = std::min(1.0, threads / sat);

        // Work-group size: tiny groups starve the SM's warp scheduler,
        // oversized groups thrash the small cache in proportion to how
        // badly the working set already misses.
        const double local = std::clamp<double>(
            config.gpuLocalThreads, 1.0, spec.maxLocalThreads);
        const double ramp_up = local / (local + 32.0);
        const double pressure =
            std::max(0.0, (local - params_.gpuLocalSweetSpot) /
                              params_.gpuLocalSweetSpot);
        const double ramp_down =
            1.0 / (1.0 + pressure * cache.missRate);
        const double group_eff =
            (ramp_up / (params_.gpuLocalSweetSpot /
                        (params_.gpuLocalSweetSpot + 32.0))) *
            ramp_down;

        // Warp divergence from irregular per-item work.
        const double cv =
            shape.avgDegree > 0.0
                ? std::min(3.0, shape.degreeStddev / shape.avgDegree)
                : 0.0;
        const double div_eff =
            1.0 / (1.0 + params_.gpuDivergenceCoef * cv);

        double kind_eff = 1.0;
        switch (phase.kind) {
          case PhaseKind::PushPop:
            kind_eff = params_.gpuPushPopEfficiency;
            break;
          case PhaseKind::Reduction:
            kind_eff = params_.gpuReductionEfficiency;
            break;
          case PhaseKind::Pareto:
          case PhaseKind::ParetoDynamic:
            kind_eff = params_.gpuParetoEfficiency;
            break;
          case PhaseKind::VertexDivision:
            kind_eff = 1.0;
            break;
        }
        return std::max(1.0, peak * occupancy *
                                 std::min(1.0, group_eff) * div_eff *
                                 kind_eff);
    }

    // Multicore: cores used scale throughput; SMT fills the issue
    // pipeline; SIMD accelerates the vectorizable (dense, FP,
    // directly-addressed) share of the work.
    const double cores = std::clamp<double>(config.cores, 1.0, spec.cores);
    const double tpc = std::clamp<double>(config.threadsPerCore, 1.0,
                                          spec.threadsPerCore);
    (void)threads;

    const double max_tpc = static_cast<double>(spec.threadsPerCore);
    const double yield =
        (tpc / (tpc + params_.smtYieldK)) /
        (max_tpc / (max_tpc + params_.smtYieldK));

    const double vec_frac = vectorShare(spec, config, phase, shape);
    const double simd_used = std::clamp<double>(
        config.simdWidth, 1.0, spec.simdWidth);
    const double simd_speedup =
        1.0 / (1.0 - vec_frac + vec_frac / simd_used);

    const double core_fraction = cores / static_cast<double>(spec.cores);
    return std::max(1.0, peak * core_fraction * yield * simd_speedup);
}

double
PerfModel::vectorShare(const AcceleratorSpec &spec, const MConfig &config,
                       const PhaseProfile &phase,
                       const GraphStats &shape) const
{
    if (spec.kind == AcceleratorKind::Gpu || config.simdWidth <= 1)
        return 0.0;
    const double ops = std::max(1.0, phase.totalOps());
    const double fp_frac = phase.fpOps / ops;
    const double accesses = std::max(1.0, phase.totalAccesses());
    const double direct_share = phase.directAccesses / accesses;
    const double degree_factor =
        shape.avgDegree / (shape.avgDegree + spec.simdWidth);
    return std::min(params_.simdVectorizableCap,
                    fp_frac * direct_share) *
           degree_factor;
}

ExecutionReport
PerfModel::evaluate(const RunInput &input, const AcceleratorSpec &spec,
                    const MConfig &config) const
{
    HM_ASSERT(input.profile != nullptr, "RunInput requires a profile");
    HM_ASSERT(config.accelerator == spec.kind,
              "MConfig accelerator kind does not match the spec");

    const WorkloadProfile &profile = *input.profile;
    ExecutionReport report;

    double compute_total = 0.0;
    double worst_imbalance = 0.0;

    for (const auto &phase : profile.phases) {
        PhaseBreakdown pb;
        pb.name = phase.name;

        const double threads = effectiveThreads(spec, config, phase);

        // Parallel span from the recorded work distribution.
        const double items_per_bucket =
            static_cast<double>(phase.workItems) /
            static_cast<double>(kNumBuckets);
        const double chunk_buckets =
            config.chunkSize == 0
                ? 1.0
                : std::max(0.01, config.chunkSize /
                                     std::max(1.0, items_per_bucket));
        ScheduleModel sched(phase.bucketCost, chunk_buckets,
                            phase.maxItemCost);
        const SchedulePolicy policy = spec.kind == AcceleratorKind::Gpu
                                          ? SchedulePolicy::Static
                                          : config.schedule;
        pb.spanFactor = sched.spanFactor(
            static_cast<unsigned>(threads), policy);
        worst_imbalance = std::max(worst_imbalance, pb.spanFactor - 1.0);

        const CacheEstimate cache = cacheModel_.estimate(
            spec, phase, input.scaleStats,
            static_cast<unsigned>(threads));

        const double rate =
            computeRate(spec, config, phase, input.shapeStats, threads,
                        cache);
        pb.computeSeconds = phase.totalOps() / rate * pb.spanFactor;

        MemoryTime mem = memoryModel_.estimate(
            spec, phase, cache, threads,
            vectorShare(spec, config, phase, input.shapeStats));
        pb.bandwidthSeconds = mem.bandwidthSeconds;
        // Latency chains partially overlap with imbalance: charge the
        // square root of the span factor rather than the full factor.
        pb.latencySeconds =
            mem.latencySeconds * std::sqrt(pb.spanFactor);

        SyncTime sync =
            syncModel_.phaseCost(spec, config, phase, threads);
        pb.atomicSeconds = sync.atomicSeconds;
        pb.scheduleSeconds = sync.scheduleSeconds;

        // Placement / affinity modulate the shared-data movement cost.
        const double rw_frac =
            phase.sharedWriteBytes / std::max(1.0, phase.totalBytes());
        const double placement = syncModel_.placementFactor(
            config, input.shapeStats, rw_frac);
        pb.bandwidthSeconds *= placement;
        pb.latencySeconds *= placement;

        compute_total += pb.computeSeconds;
        report.phases.push_back(pb);
    }

    // Parallel-region / kernel-launch boundaries: one per phase
    // invocation. A barrier that directly follows a parallel region is
    // the region's own end-of-kernel sync, so only barriers *beyond*
    // the invocation count cost extra.
    double region_crossings = 0.0;
    double threads_now = config.activeThreads();
    for (const auto &phase : profile.phases)
        region_crossings += static_cast<double>(phase.invocations);
    const double per_barrier = syncModel_.barrierCost(
        spec, config, threads_now, worst_imbalance);
    const double extra_barriers = std::max(
        0.0, static_cast<double>(profile.barriers) - region_crossings);
    report.regionSeconds = region_crossings * per_barrier;
    report.barrierSeconds = extra_barriers * per_barrier;

    double total = report.regionSeconds + report.barrierSeconds;
    for (const auto &pb : report.phases)
        total += pb.seconds();

    // Memory-size streaming penalty (Fig. 16).
    const auto mem_effect = memorySizeModel_.effect(
        input.scaleStats, std::max<uint64_t>(1, spec.memBytes),
        std::max<uint64_t>(1, profile.iterations));
    report.memoryChunks = mem_effect.chunks;
    total *= mem_effect.slowdown;

    report.seconds = total;

    // Chip-wide core utilization (Fig. 13): the busy fraction of the
    // *deployed* resources scaled by how much of the chip is deployed.
    double active_fraction;
    if (spec.kind == AcceleratorKind::Gpu) {
        // SMs count as active once they hold a handful of warps;
        // nvprof-style utilization is SM-granular, not thread-slot
        // granular.
        const double full_chip = static_cast<double>(spec.cores) *
                                 spec.simdWidth * 8.0;
        active_fraction = std::clamp(
            static_cast<double>(config.gpuGlobalThreads) / full_chip,
            0.0, 1.0);
    } else {
        active_fraction = std::clamp(
            static_cast<double>(config.cores) /
                std::max(1u, spec.cores), 0.0, 1.0);
    }
    const double busy_share =
        total > 0.0 ? std::clamp(compute_total / total, 0.0, 1.0) : 0.0;
    report.utilization = busy_share * active_fraction;
    report.watts =
        energyModel_.averageWatts(spec, config, report.utilization);
    report.joules = report.watts * report.seconds;
    return report;
}

} // namespace heteromap
