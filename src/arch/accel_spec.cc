/**
 * @file
 * AcceleratorSpec implementation.
 */

#include "arch/accel_spec.hh"

#include <algorithm>
#include <sstream>

namespace heteromap {

double
AcceleratorSpec::opsPerSecond(double fp_fraction) const
{
    fp_fraction = std::clamp(fp_fraction, 0.0, 1.0);
    // Integer/control throughput tracks core count and frequency; FP
    // throughput tracks the rated TFLOPs. Mix by the workload's FP
    // share. A small floor keeps degenerate specs finite.
    // Scalar throughput: hardware threads share a core's issue slots,
    // so capacity scales with cores x IPC, not thread contexts.
    double int_ops = static_cast<double>(cores) * freqGHz * issueIpc *
                     1e9;
    // Graph FP work mixes single and double precision; blend the rated
    // peaks so DP-capable multicores keep their Table II edge.
    double fp_ops =
        std::max(0.7 * spTflops + 0.3 * dpTflops, 0.001) * 1e12;
    return (1.0 - fp_fraction) * int_ops + fp_fraction * fp_ops;
}

std::string
AcceleratorSpec::toString() const
{
    std::ostringstream oss;
    oss << name << " (" << acceleratorKindName(kind) << "): "
        << cores << " cores x " << threadsPerCore << " threads, "
        << freqGHz << " GHz, cache " << (cacheBytes >> 20) << " MB"
        << (coherentCache ? " (coherent)" : "") << ", mem "
        << (memBytes >> 30) << " GB @ " << memBandwidthGBs << " GB/s, "
        << spTflops << "/" << dpTflops << " SP/DP TFLOPs";
    return oss.str();
}

} // namespace heteromap
