/**
 * @file
 * Synchronization model implementation.
 */

#include "arch/sync_model.hh"

#include <algorithm>
#include <cmath>

namespace heteromap {

SyncModel::SyncModel(SyncModelParams params) : params_(params)
{
}

SyncTime
SyncModel::phaseCost(const AcceleratorSpec &spec, const MConfig &config,
                     const PhaseProfile &phase, double threads) const
{
    SyncTime out;
    threads = std::max(1.0, threads);

    if (phase.atomics > 0.0) {
        // GPUs aggregate reduction atomics within a warp before
        // touching memory, cutting the global atomic count by the
        // warp width.
        double atomics = phase.atomics;
        if (spec.kind == AcceleratorKind::Gpu &&
            phase.kind == PhaseKind::Reduction) {
            atomics /= std::max(1u, spec.simdWidth);
        }
        // Fraction of traffic that is contended read-write data.
        const double total_bytes = std::max(1.0, phase.totalBytes());
        double contended = phase.sharedWriteBytes / total_bytes;
        if (config.schedule == SchedulePolicy::Dynamic ||
            config.schedule == SchedulePolicy::Guided) {
            contended *= (1.0 - params_.dynamicRelief);
        }
        // Atomics divide across threads but serialize under
        // contention, growing with sqrt(T). Without cache coherence
        // every contended retry round-trips through DRAM instead of
        // arbitrating in the cache hierarchy.
        const double coherence_factor = spec.coherentCache ? 1.0 : 2.5;
        const double serialization =
            1.0 + params_.contentionCoef * coherence_factor *
                      contended * std::sqrt(threads);
        out.atomicSeconds = atomics / threads * spec.atomicNs * 1e-9 *
                            serialization;
    }

    // Dynamic scheduling dispatch cost: one dequeue per chunk.
    // Guided shrinks its chunks exponentially and StaticChunked
    // precomputes its assignment, so both dispatch far fewer events
    // than a plain dynamic loop.
    if (config.schedule == SchedulePolicy::Dynamic ||
        config.schedule == SchedulePolicy::Guided ||
        config.schedule == SchedulePolicy::StaticChunked) {
        const double chunk = std::max<double>(
            1.0, config.chunkSize == 0 ? 16.0 : config.chunkSize);
        double events = static_cast<double>(phase.workItems) / chunk;
        if (config.schedule != SchedulePolicy::Dynamic)
            events *= 0.25;
        // Dequeues are distributed, but the shared queue head
        // serializes a fraction of them.
        out.scheduleSeconds = events * spec.schedEventNs * 1e-9 /
                              std::sqrt(threads);
    }
    return out;
}

double
SyncModel::barrierCost(const AcceleratorSpec &spec, const MConfig &config,
                       double threads, double imbalance) const
{
    threads = std::max(1.0, threads);
    double cost = spec.barrierBaseNs *
                  (1.0 + params_.barrierLogCoef * std::log2(threads));

    if (spec.kind == AcceleratorKind::Multicore) {
        // Threads that exhaust their blocktime sleep and pay an OS
        // wake-up on the next region. Imbalanced arrivals make short
        // blocktimes expensive; an active wait policy (or a large
        // spin count) avoids the sleep entirely.
        const bool spins = config.activeWaitPolicy ||
                           config.spinCount > 100000;
        if (!spins) {
            const double wait_ms = std::max(0.001, config.blocktimeMs);
            const double sleep_prob =
                std::clamp(imbalance, 0.0, 1.0) *
                std::exp(-wait_ms / 10.0);
            cost += params_.wakeupNs * sleep_prob;
        }
    }
    return cost * 1e-9;
}

double
SyncModel::placementFactor(const MConfig &config, const GraphStats &stats,
                           double rw_shared_fraction) const
{
    if (config.accelerator == AcceleratorKind::Gpu)
        return 1.0;

    // Ideal spread grows with work divergence (degree CV) and graph
    // diameter (Sec. IV's Avg.Deg.Dia reasoning): loose placement lets
    // threads borrow idle cores' cache slices on long dependence
    // chains; compact placement wins for tightly shared data.
    const double cv = stats.avgDegree > 0.0
                          ? std::min(1.0, stats.degreeStddev /
                                              stats.avgDegree)
                          : 0.0;
    const double dia_norm =
        std::min(1.0, static_cast<double>(stats.diameter) / 1000.0);
    const double ideal_spread = std::clamp(
        0.5 * cv + 0.5 * dia_norm, 0.0, 1.0);

    double factor = 1.0 + params_.placementPenalty *
                              std::fabs(config.placementSpread -
                                        ideal_spread);

    // Affinity: movable threads lose cached read-write data when the
    // OS migrates them; pinning wastes balance headroom otherwise.
    const double ideal_movable =
        std::clamp(1.0 - rw_shared_fraction * 2.0, 0.0, 1.0);
    factor += params_.affinityPenalty *
              std::fabs(config.affinityMovable - ideal_movable);
    return factor;
}

} // namespace heteromap
