/**
 * @file
 * Table II accelerator presets. Headline figures (cores, cache,
 * memory, bandwidth, TFLOPs) are taken from Table II / Sec. VI-A and
 * Sec. VII-D; microarchitectural cost constants (latencies, atomic and
 * barrier costs) are first-order literature values for each device
 * class, chosen once and shared by every experiment.
 */

#include "arch/presets.hh"

namespace heteromap {

AcceleratorSpec
gtx750TiSpec()
{
    AcceleratorSpec s;
    s.name = "GTX-750Ti";
    s.kind = AcceleratorKind::Gpu;
    s.cores = 5;              // SMM count (5 x 128 = 640 CUDA cores)
    s.threadsPerCore = 64;    // resident warps per SM
    s.simdWidth = 32;         // warp lanes
    s.freqGHz = 1.3;
    s.issueIpc = 128.0;       // CUDA lanes per SM
    s.cacheBytes = 2ULL << 20;
    s.coherentCache = false;
    s.memBytes = 2ULL << 30;
    s.maxMemBytes = 4ULL << 30;
    s.memBandwidthGBs = 86.0;
    s.memLatencyNs = 350.0;
    s.mlpPerThread = 0.5;
    s.maxOutstandingMisses = 640.0;  // 5 SMs' MSHR depth
    s.seqBwFraction = 0.9;    // coalesced CSR streams
    s.randBwFraction = 0.5;   // coalesced word-granule gathers
    s.scalarBwPenalty = 1.0;  // coalescing is independent of SIMD
    s.spTflops = 1.3;
    s.dpTflops = 0.04;
    s.tdpWatts = 60.0;
    s.idleWatts = 5.0;
    s.atomicNs = 120.0;       // global-memory RMW round trip
    s.barrierBaseNs = 2500.0; // kernel-boundary global sync
    s.schedEventNs = 200.0;
    s.maxLocalThreads = 1024;
    s.maxGlobalThreads = 10240;
    return s;
}

AcceleratorSpec
gtx970Spec()
{
    AcceleratorSpec s;
    s.name = "GTX-970";
    s.kind = AcceleratorKind::Gpu;
    s.cores = 13;             // SMM count (13 x 128 = 1664 CUDA cores)
    s.threadsPerCore = 64;
    s.simdWidth = 32;
    s.freqGHz = 1.7;
    s.issueIpc = 128.0;
    s.cacheBytes = 2ULL << 20;
    s.coherentCache = false;
    s.memBytes = 4ULL << 30;
    s.maxMemBytes = 4ULL << 30;
    s.memBandwidthGBs = 224.0;
    s.memLatencyNs = 320.0;
    s.mlpPerThread = 0.5;
    s.maxOutstandingMisses = 2048.0; // 13 SMs' MSHR depth
    s.seqBwFraction = 0.9;
    s.randBwFraction = 0.55;
    s.scalarBwPenalty = 1.0;
    s.spTflops = 3.5;
    s.dpTflops = 0.11;
    s.tdpWatts = 145.0;
    s.idleWatts = 10.0;
    s.atomicNs = 80.0;
    s.barrierBaseNs = 3000.0;
    s.schedEventNs = 180.0;
    s.maxLocalThreads = 1024;
    s.maxGlobalThreads = 26624;
    return s;
}

AcceleratorSpec
xeonPhi7120Spec()
{
    AcceleratorSpec s;
    s.name = "XeonPhi-7120P";
    s.kind = AcceleratorKind::Multicore;
    s.cores = 61;
    s.threadsPerCore = 4;     // 244 hardware threads
    s.simdWidth = 16;         // 512-bit SP vectors
    s.freqGHz = 1.24;
    s.issueIpc = 1.0;         // in-order; SMT only fills stalls
    s.cacheBytes = 32ULL << 20;
    s.coherentCache = true;
    s.memBytes = 16ULL << 30;
    s.maxMemBytes = 16ULL << 30;
    s.memBandwidthGBs = 352.0;
    s.memLatencyNs = 300.0;
    s.mlpPerThread = 1.2;     // in-order: stalls on load-use
    s.maxOutstandingMisses = 512.0;
    s.seqBwFraction = 0.6;    // vectorized streams approach this
    s.randBwFraction = 0.2;   // vector gather/scatter ceiling
    s.scalarBwPenalty = 0.25; // scalar code starves the ring
    s.spTflops = 2.4;
    s.dpTflops = 1.2;
    s.tdpWatts = 300.0;
    s.idleWatts = 50.0;
    s.atomicNs = 40.0;        // ring-hop RMW
    s.barrierBaseNs = 2000.0; // 61-core ring barrier
    s.schedEventNs = 60.0;
    s.maxLocalThreads = 4;
    s.maxGlobalThreads = 244;
    return s;
}

AcceleratorSpec
xeon40CoreSpec()
{
    AcceleratorSpec s;
    s.name = "Xeon-40Core";
    s.kind = AcceleratorKind::Multicore;
    s.cores = 40;             // 4 sockets x 10 cores (E5-2650 v3)
    s.threadsPerCore = 2;
    s.simdWidth = 8;          // AVX2 SP lanes
    s.freqGHz = 2.3;
    s.issueIpc = 1.6;         // wide OoO, NUMA-stalled
    s.cacheBytes = 100ULL << 20;
    s.coherentCache = true;
    s.memBytes = 1024ULL << 30;
    s.maxMemBytes = 1024ULL << 30;
    s.memBandwidthGBs = 272.0;
    s.memLatencyNs = 95.0;
    s.mlpPerThread = 5.0;     // wide OoO + prefetchers
    s.maxOutstandingMisses = 1200.0;
    s.seqBwFraction = 0.25;   // 4-socket NUMA interleave
    s.randBwFraction = 0.06;  // remote-socket scatter
    s.scalarBwPenalty = 0.85; // OoO prefetch works from scalar code
    s.spTflops = 1.47;
    s.dpTflops = 0.74;
    s.tdpWatts = 420.0;
    s.idleWatts = 80.0;
    s.atomicNs = 40.0;        // cross-socket RMW
    s.barrierBaseNs = 3000.0; // 4-socket barrier
    s.schedEventNs = 50.0;
    s.maxLocalThreads = 2;
    s.maxGlobalThreads = 80;
    return s;
}

std::string
AcceleratorPair::name() const
{
    return gpu.name + " + " + multicore.name;
}

AcceleratorPair
primaryPair()
{
    return {gtx750TiSpec(), xeonPhi7120Spec()};
}

std::vector<AcceleratorPair>
allPairs()
{
    return {
        {gtx750TiSpec(), xeonPhi7120Spec()},
        {gtx970Spec(), xeonPhi7120Spec()},
        {gtx750TiSpec(), xeon40CoreSpec()},
        {gtx970Spec(), xeon40CoreSpec()},
    };
}

} // namespace heteromap
