/**
 * @file
 * The four accelerators the paper evaluates (Table II and Sec. VI-A),
 * and the multi-accelerator pairings built from them.
 */

#ifndef HETEROMAP_ARCH_PRESETS_HH
#define HETEROMAP_ARCH_PRESETS_HH

#include <vector>

#include "arch/accel_spec.hh"

namespace heteromap {

/** NVidia GTX-750Ti: 640 CUDA cores, 2 MB cache, 2 GB @ 86 GB/s. */
AcceleratorSpec gtx750TiSpec();

/** NVidia GTX-970: 1664 CUDA cores, 3.5 SP TFLOPs, 4 GB. */
AcceleratorSpec gtx970Spec();

/** Intel Xeon Phi 7120P: 61 cores x 4 threads, 32 MB coherent cache. */
AcceleratorSpec xeonPhi7120Spec();

/** 4-socket Intel Xeon E5-2650 v3: 40 cores @ 2.3 GHz, up to 1 TB. */
AcceleratorSpec xeon40CoreSpec();

/** A GPU + multicore pairing forming one multi-accelerator system. */
struct AcceleratorPair {
    AcceleratorSpec gpu;
    AcceleratorSpec multicore;

    /** e.g. "GTX-750Ti + XeonPhi-7120P". */
    std::string name() const;
};

/** Primary paper configuration: GTX-750Ti + Xeon Phi 7120P. */
AcceleratorPair primaryPair();

/** All four pairings analyzed in Sec. VI-A. */
std::vector<AcceleratorPair> allPairs();

} // namespace heteromap

#endif // HETEROMAP_ARCH_PRESETS_HH
