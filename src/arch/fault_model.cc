/**
 * @file
 * Fault-injection layer implementation.
 */

#include "arch/fault_model.hh"

#include <algorithm>
#include <sstream>

#include "util/rng.hh"
#include "util/stats.hh"

namespace heteromap {

namespace {

/** Severity ceiling: never derate a resource below 5% capacity. */
constexpr double kMaxSeverity = 0.95;

/** Throttle ramp progress in [0, 1] at @p clock. */
double
rampProgress(const FaultSpec &spec, const FaultClock &clock)
{
    if (spec.rampDeployments == 0)
        return 1.0;
    const double elapsed = static_cast<double>(
        clock.deployment - spec.startDeployment + 1);
    return std::min(1.0,
                    elapsed / static_cast<double>(spec.rampDeployments));
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::AcceleratorUnavailable: return "unavailable";
      case FaultKind::ThermalThrottle:        return "thermal-throttle";
      case FaultKind::BandwidthDegrade:       return "bandwidth-degrade";
      case FaultKind::TransientStall:         return "transient-stall";
    }
    return "?";
}

bool
FaultSpec::activeAt(const FaultClock &clock) const
{
    if (clock.deployment < startDeployment ||
        clock.deployment >= endDeployment) {
        return false;
    }
    return clock.seconds >= startSeconds && clock.seconds < endSeconds;
}

std::string
FaultSpec::toString() const
{
    std::ostringstream oss;
    oss << faultKindName(kind) << " on " << acceleratorKindName(target)
        << " @deploy[" << startDeployment << ", ";
    if (endDeployment == kForeverDeployments)
        oss << "inf";
    else
        oss << endDeployment;
    oss << ")";
    if (startSeconds > 0.0 || endSeconds != kForeverSeconds) {
        oss << " @time[" << startSeconds << "s, ";
        if (endSeconds == kForeverSeconds)
            oss << "inf";
        else
            oss << endSeconds << "s";
        oss << ")";
    }
    if (kind == FaultKind::ThermalThrottle ||
        kind == FaultKind::BandwidthDegrade) {
        oss << " severity=" << severity;
    }
    if (kind == FaultKind::ThermalThrottle && rampDeployments > 0)
        oss << " ramp=" << rampDeployments;
    if (kind == FaultKind::TransientStall)
        oss << " stall=" << stallSeconds << "s";
    return oss.str();
}

bool
FaultEffect::healthy() const
{
    return !unavailable && frequencyScale >= 1.0 &&
           bandwidthScale >= 1.0 && stallSeconds <= 0.0;
}

void
FaultEffect::compose(const FaultEffect &other)
{
    unavailable = unavailable || other.unavailable;
    frequencyScale *= other.frequencyScale;
    bandwidthScale *= other.bandwidthScale;
    stallSeconds += other.stallSeconds;
}

void
FaultSchedule::add(FaultSpec spec)
{
    faults_.push_back(std::move(spec));
}

FaultSchedule
FaultSchedule::random(uint64_t seed, unsigned num_faults,
                      uint64_t horizon_deployments)
{
    Rng rng(seed);
    FaultSchedule schedule;
    const uint64_t horizon = std::max<uint64_t>(1, horizon_deployments);
    for (unsigned i = 0; i < num_faults; ++i) {
        FaultSpec spec;
        spec.kind = static_cast<FaultKind>(rng.nextBounded(4));
        spec.target = rng.nextBool() ? AcceleratorKind::Gpu
                                     : AcceleratorKind::Multicore;
        spec.startDeployment = rng.nextBounded(horizon);
        const uint64_t span = 1 + rng.nextBounded(
            std::max<uint64_t>(1, horizon - spec.startDeployment));
        spec.endDeployment = spec.startDeployment + span;
        spec.severity = rng.nextDouble(0.2, 0.8);
        spec.rampDeployments = rng.nextBounded(4);
        spec.stallSeconds = rng.nextDouble(0.1, 2.0);
        schedule.add(spec);
    }
    return schedule;
}

std::vector<FaultSpec>
FaultSchedule::activeAt(AcceleratorKind side,
                        const FaultClock &clock) const
{
    std::vector<FaultSpec> active;
    for (const auto &spec : faults_) {
        if (spec.target == side && spec.activeAt(clock))
            active.push_back(spec);
    }
    return active;
}

FaultEffect
FaultSchedule::effectAt(AcceleratorKind side,
                        const FaultClock &clock) const
{
    FaultEffect effect;
    for (const auto &spec : faults_) {
        if (spec.target != side || !spec.activeAt(clock))
            continue;
        FaultEffect one;
        const double strength =
            clamp(spec.severity, 0.0, kMaxSeverity);
        switch (spec.kind) {
          case FaultKind::AcceleratorUnavailable:
            one.unavailable = true;
            break;
          case FaultKind::ThermalThrottle:
            one.frequencyScale =
                1.0 - strength * rampProgress(spec, clock);
            break;
          case FaultKind::BandwidthDegrade:
            one.bandwidthScale = 1.0 - strength;
            break;
          case FaultKind::TransientStall:
            one.stallSeconds = std::max(0.0, spec.stallSeconds);
            break;
        }
        effect.compose(one);
    }
    // Composition of derates never undercuts the per-fault floor.
    effect.frequencyScale =
        std::max(effect.frequencyScale, 1.0 - kMaxSeverity);
    effect.bandwidthScale =
        std::max(effect.bandwidthScale, 1.0 - kMaxSeverity);
    return effect;
}

bool
FaultSchedule::available(AcceleratorKind side,
                         const FaultClock &clock) const
{
    for (const auto &spec : faults_) {
        if (spec.kind == FaultKind::AcceleratorUnavailable &&
            spec.target == side && spec.activeAt(clock)) {
            return false;
        }
    }
    return true;
}

const char *
chaosPointName(ChaosPoint point)
{
    switch (point) {
      case ChaosPoint::WorkerStall:      return "worker-stall";
      case ChaosPoint::WorkerCrashBatch: return "worker-crash-batch";
      case ChaosPoint::ModelLoadCorrupt: return "model-load-corrupt";
      case ChaosPoint::AdmissionDelay:   return "admission-delay";
      case ChaosPoint::SupervisorHang:   return "supervisor-hang";
    }
    return "?";
}

std::string
ChaosSpec::toString() const
{
    std::ostringstream oss;
    oss << chaosPointName(point) << " p=" << probability << " @visit["
        << startVisit << ", ";
    if (endVisit == kForeverVisits)
        oss << "inf";
    else
        oss << endVisit;
    oss << ")";
    if (delayMs > 0.0)
        oss << " delay=" << delayMs << "ms";
    if (lethal)
        oss << " lethal";
    return oss.str();
}

void
ChaosPolicy::arm(ChaosSpec spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    specs_.push_back(std::move(spec));
    armed_.store(true, std::memory_order_release);
}

void
ChaosPolicy::disarm()
{
    std::lock_guard<std::mutex> lock(mutex_);
    specs_.clear();
    armed_.store(false, std::memory_order_release);
}

bool
ChaosPolicy::armed() const
{
    return armed_.load(std::memory_order_acquire);
}

std::shared_ptr<ChaosPolicy>
ChaosPolicy::random(uint64_t seed, unsigned num_faults,
                    uint64_t horizon_visits, double max_delay_ms)
{
    auto policy = std::make_shared<ChaosPolicy>(seed);
    Rng rng(seed ^ 0xc4a05ULL);
    const uint64_t horizon = std::max<uint64_t>(1, horizon_visits);
    for (unsigned i = 0; i < num_faults; ++i) {
        ChaosSpec spec;
        spec.point =
            static_cast<ChaosPoint>(rng.nextBounded(kNumChaosPoints));
        spec.probability = rng.nextDouble(0.2, 1.0);
        spec.delayMs = rng.nextDouble(0.0, std::max(0.0, max_delay_ms));
        spec.startVisit = rng.nextBounded(horizon);
        spec.endVisit = spec.startVisit + 1 +
                        rng.nextBounded(std::max<uint64_t>(
                            1, horizon - spec.startVisit));
        policy->arm(spec);
    }
    return policy;
}

std::optional<ChaosAction>
ChaosPolicy::visit(ChaosPoint point)
{
    // Inert fast path: one relaxed load, no locking, no visit
    // accounting — production services carry the fire points for
    // free until a policy is armed.
    if (!armed_.load(std::memory_order_acquire))
        return std::nullopt;

    ChaosAction action;
    Hook hook;
    bool fired = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::size_t index = static_cast<std::size_t>(point);
        const uint64_t visit_number = visits_[index]++;
        for (const ChaosSpec &spec : specs_) {
            if (spec.point != point || visit_number < spec.startVisit ||
                visit_number >= spec.endVisit) {
                continue;
            }
            if (!rng_.nextBool(spec.probability))
                continue;
            fired = true;
            action.point = point;
            action.delayMs = std::max(action.delayMs, spec.delayMs);
            action.lethal = action.lethal || spec.lethal;
        }
        if (!fired)
            return std::nullopt;
        ++fires_[index];
        hook = hooks_[index];
    }
    // The hook runs outside the policy mutex so it may re-enter the
    // policy (and anything it throws reaches the visiting code).
    if (hook)
        hook(action);
    return action;
}

void
ChaosPolicy::setHook(ChaosPoint point, Hook hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    hooks_[static_cast<std::size_t>(point)] = std::move(hook);
}

uint64_t
ChaosPolicy::visits(ChaosPoint point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return visits_[static_cast<std::size_t>(point)];
}

uint64_t
ChaosPolicy::fires(ChaosPoint point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fires_[static_cast<std::size_t>(point)];
}

uint64_t
ChaosPolicy::totalFires() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (uint64_t f : fires_)
        total += f;
    return total;
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule))
{
}

bool
FaultInjector::available(AcceleratorKind side,
                         const FaultClock &clock) const
{
    return schedule_.available(side, clock);
}

FaultEffect
FaultInjector::perturb(ExecutionReport &report, AcceleratorKind side,
                       const FaultClock &clock) const
{
    const FaultEffect effect = schedule_.effectAt(side, clock);
    if (effect.healthy())
        return effect;

    // report.seconds folds in the memory-size streaming multiplier on
    // top of the per-phase sums, so the perturbation is applied as a
    // ratio: stretch the components, rescale the total by the stretch,
    // then add the serial stall.
    double before = report.regionSeconds + report.barrierSeconds;
    for (const auto &pb : report.phases)
        before += pb.seconds();

    const double freq = std::max(1.0 - kMaxSeverity,
                                 effect.frequencyScale);
    const double bw = std::max(1.0 - kMaxSeverity,
                               effect.bandwidthScale);
    for (auto &pb : report.phases) {
        pb.computeSeconds /= freq;
        pb.atomicSeconds /= freq;
        pb.scheduleSeconds /= freq;
        pb.bandwidthSeconds /= bw;
    }
    report.regionSeconds /= freq;
    report.barrierSeconds /= freq;

    double after = report.regionSeconds + report.barrierSeconds;
    for (const auto &pb : report.phases)
        after += pb.seconds();

    if (before > 0.0)
        report.seconds *= after / before;
    report.seconds += effect.stallSeconds;

    // Board power persists through derates (idle + leakage dominate a
    // throttled chip), so stretched time charges more energy.
    report.joules = report.watts * report.seconds;
    return effect;
}

} // namespace heteromap
