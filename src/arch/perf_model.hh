/**
 * @file
 * Whole-accelerator performance model. Converts a measured
 * WorkloadProfile plus graph characteristics into modelled completion
 * time, energy, and core utilization for any (AcceleratorSpec,
 * MConfig) pair. This is the oracle that replaces the paper's real
 * hardware runs — see DESIGN.md Sec. 2 for the substitution argument.
 */

#ifndef HETEROMAP_ARCH_PERF_MODEL_HH
#define HETEROMAP_ARCH_PERF_MODEL_HH

#include <string>
#include <vector>

#include "arch/accel_spec.hh"
#include "arch/cache_model.hh"
#include "arch/energy_model.hh"
#include "arch/mconfig.hh"
#include "arch/memory_model.hh"
#include "arch/memory_size_model.hh"
#include "arch/sync_model.hh"
#include "exec/profile.hh"
#include "graph/props.hh"

namespace heteromap {

/** Inputs to one model evaluation. */
struct RunInput {
    const WorkloadProfile *profile = nullptr;
    /** Shape statistics measured from the executed (proxy) graph. */
    GraphStats shapeStats;
    /** Scale statistics (nominal Table I values) for memory effects. */
    GraphStats scaleStats;
};

/** Per-phase time breakdown (seconds). */
struct PhaseBreakdown {
    std::string name;
    double computeSeconds = 0.0;
    double bandwidthSeconds = 0.0;
    double latencySeconds = 0.0;
    double atomicSeconds = 0.0;
    double scheduleSeconds = 0.0;
    double spanFactor = 1.0;

    /** Phase wall time under the overlap rule. */
    double seconds() const;
};

/** Full result of one model evaluation. */
struct ExecutionReport {
    double seconds = 0.0;
    double joules = 0.0;
    double watts = 0.0;
    double utilization = 0.0;     //!< pipeline-busy fraction [0, 1]
    unsigned memoryChunks = 1;    //!< streamed chunks (Fig. 16)
    double regionSeconds = 0.0;   //!< parallel-region/kernel launches
    double barrierSeconds = 0.0;  //!< explicit global barriers
    std::vector<PhaseBreakdown> phases;

    /** Multi-line diagnostic dump. */
    std::string toString() const;
};

/** Model constants beyond the component models' own parameters. */
struct PerfModelParams {
    CacheModelParams cache;
    MemoryModelParams memory;
    SyncModelParams sync;
    EnergyModelParams energy;
    MemorySizeParams memorySize;

    /** GPU efficiency on ordered push-pop phases. */
    double gpuPushPopEfficiency = 0.50;
    /** GPU efficiency on reduction phases (atomics charged apart). */
    double gpuReductionEfficiency = 0.70;
    /** GPU efficiency on pareto/frontier phases. */
    double gpuParetoEfficiency = 0.90;
    /** Warp-divergence penalty per unit degree CV. */
    double gpuDivergenceCoef = 0.35;
    /** Occupancy fraction of max threads at which GPUs reach peak. */
    double gpuOccupancySaturation = 0.25;
    /** Sweet-spot GPU work-group size before cache pressure builds. */
    double gpuLocalSweetSpot = 128.0;
    /** Multicore SMT issue-yield curve constant. */
    double smtYieldK = 1.0;
    /** Fraction of FP work that is vectorizable at best. */
    double simdVectorizableCap = 0.85;
};

/** The composed performance model. */
class PerfModel
{
  public:
    explicit PerfModel(PerfModelParams params = {});

    /** Modelled execution of @p input on @p spec under @p config. */
    ExecutionReport evaluate(const RunInput &input,
                             const AcceleratorSpec &spec,
                             const MConfig &config) const;

    const PerfModelParams &params() const { return params_; }

  private:
    PerfModelParams params_;
    CacheModel cacheModel_;
    MemoryModel memoryModel_;
    SyncModel syncModel_;
    EnergyModel energyModel_;
    MemorySizeModel memorySizeModel_;

    /** Effective scalar op throughput (ops/s) for one phase. */
    double computeRate(const AcceleratorSpec &spec, const MConfig &config,
                       const PhaseProfile &phase,
                       const GraphStats &shape, double threads,
                       const CacheEstimate &cache) const;

    /**
     * Share of a phase's work a multicore can issue as vector
     * operations: dense, FP, directly-addressed loops vectorize; the
     * rest stays scalar. Always 0 on GPUs (SIMT is implicit).
     */
    double vectorShare(const AcceleratorSpec &spec,
                       const MConfig &config, const PhaseProfile &phase,
                       const GraphStats &shape) const;

    /** Threads that can do useful work in a phase invocation. */
    double effectiveThreads(const AcceleratorSpec &spec,
                            const MConfig &config,
                            const PhaseProfile &phase) const;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_PERF_MODEL_HH
