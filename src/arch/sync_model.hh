/**
 * @file
 * Synchronization and runtime-overhead model: atomic contention,
 * barriers (kernel relaunches on GPUs), dynamic-scheduling dispatch,
 * thread placement / affinity data-movement effects, and the KMP
 * blocktime / OMP wait-policy sleep-wake trade-off. These are the
 * costs that make multicores win contended, phase-heavy workloads.
 */

#ifndef HETEROMAP_ARCH_SYNC_MODEL_HH
#define HETEROMAP_ARCH_SYNC_MODEL_HH

#include "arch/accel_spec.hh"
#include "arch/mconfig.hh"
#include "exec/profile.hh"
#include "graph/props.hh"

namespace heteromap {

/** Tunable constants for the synchronization model. */
struct SyncModelParams {
    /** Serialization growth per sqrt(thread) under full contention. */
    double contentionCoef = 0.18;
    /** Contention relief from dynamic scheduling (paper Sec. III-A). */
    double dynamicRelief = 0.5;
    /** OS wake-up cost paid when a slept thread is needed again. */
    double wakeupNs = 12000.0;
    /** Barrier cost growth per log2(threads). */
    double barrierLogCoef = 0.25;
    /** Communication penalty for a fully mismatched placement. */
    double placementPenalty = 0.35;
    /** Communication penalty for a fully mismatched affinity. */
    double affinityPenalty = 0.25;
};

/** Timing breakdown of synchronization costs for one phase. */
struct SyncTime {
    double atomicSeconds = 0.0;
    double scheduleSeconds = 0.0;
};

/** Estimates synchronization costs. */
class SyncModel
{
  public:
    explicit SyncModel(SyncModelParams params = {});

    /**
     * Atomic and dynamic-scheduling costs for @p phase when run with
     * @p threads threads under @p config on @p spec.
     */
    SyncTime phaseCost(const AcceleratorSpec &spec, const MConfig &config,
                       const PhaseProfile &phase, double threads) const;

    /**
     * Cost of one global barrier / parallel-region boundary crossing
     * with @p threads participants, including the sleep-wake penalty
     * implied by the blocktime / wait-policy choice when threads
     * arrive imbalanced.
     *
     * @param imbalance spanFactor - 1 of the preceding phase.
     */
    double barrierCost(const AcceleratorSpec &spec, const MConfig &config,
                       double threads, double imbalance) const;

    /**
     * Multiplier (>= 1) on shared-data communication time from the
     * thread placement (M5-M7) and affinity (M8) choices. The ideal
     * placement spread grows with work divergence and graph diameter
     * (Sec. IV); the ideal affinity pins threads when read-write
     * sharing is high.
     */
    double placementFactor(const MConfig &config,
                           const GraphStats &stats,
                           double rw_shared_fraction) const;

    const SyncModelParams &params() const { return params_; }

  private:
    SyncModelParams params_;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_SYNC_MODEL_HH
