/**
 * @file
 * Fault-injection layer for the analytical accelerator models.
 * Deterministic, seeded fault scenarios perturb the calibrated
 * PerfModel/MemoryModel/EnergyModel *outputs* — accelerator outage,
 * thermal throttling (a frequency-derate ramp), memory-bandwidth
 * degradation, and transient stalls — so the supervised deployment
 * loop (core/supervisor.hh) can be exercised against unhealthy
 * hardware without touching the models themselves. Every fault active
 * at a given point contributes a multiplicative or additive
 * FaultEffect; effects compose, and the composed effect is applied to
 * a healthy ExecutionReport.
 */

#ifndef HETEROMAP_ARCH_FAULT_MODEL_HH
#define HETEROMAP_ARCH_FAULT_MODEL_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "arch/mconfig.hh"
#include "arch/perf_model.hh"

namespace heteromap {

/** The modelled hardware fault classes. */
enum class FaultKind {
    AcceleratorUnavailable, //!< device lost: nothing can run on it
    ThermalThrottle,        //!< frequency derate, ramping per deployment
    BandwidthDegrade,       //!< memory bandwidth fraction lost
    TransientStall,         //!< additive serial stall (reset, ECC scrub)
};

/** @return e.g. "thermal-throttle". */
const char *faultKindName(FaultKind kind);

/** Point in a supervised run at which fault windows are evaluated. */
struct FaultClock {
    uint64_t deployment = 0; //!< 0-based deployment index
    double seconds = 0.0;    //!< cumulative modelled time (incl. backoff)
};

/**
 * One fault scenario with an activation window. Windows may be
 * expressed in deployment indices ([startDeployment, endDeployment))
 * and/or modelled seconds ([startSeconds, endSeconds)); the fault is
 * active only while every bound holds, so schedules can say "fault at
 * deployment N" or "fault at modelled time T" interchangeably.
 */
struct FaultSpec {
    static constexpr uint64_t kForeverDeployments =
        std::numeric_limits<uint64_t>::max();
    static constexpr double kForeverSeconds =
        std::numeric_limits<double>::infinity();

    FaultKind kind = FaultKind::TransientStall;
    AcceleratorKind target = AcceleratorKind::Gpu;

    uint64_t startDeployment = 0;
    uint64_t endDeployment = kForeverDeployments; //!< exclusive
    double startSeconds = 0.0;
    double endSeconds = kForeverSeconds;          //!< exclusive

    /**
     * Fraction of the affected resource lost at full strength, in
     * [0, 0.95]: frequency for ThermalThrottle, bandwidth for
     * BandwidthDegrade. Ignored by the other kinds.
     */
    double severity = 0.5;

    /** Deployments for ThermalThrottle to ramp to full severity. */
    uint64_t rampDeployments = 0;

    /** Serial seconds added per run by TransientStall. */
    double stallSeconds = 0.0;

    /** @return true when the activation window covers @p clock. */
    bool activeAt(const FaultClock &clock) const;

    /** One-line description for logs and tables. */
    std::string toString() const;
};

/** Composed perturbation applied to a healthy ExecutionReport. */
struct FaultEffect {
    bool unavailable = false;
    double frequencyScale = 1.0; //!< remaining core clock, (0, 1]
    double bandwidthScale = 1.0; //!< remaining memory bandwidth, (0, 1]
    double stallSeconds = 0.0;   //!< additive serial stall

    /** @return true when the effect leaves the report untouched. */
    bool healthy() const;

    /** Fold @p other in: scales multiply, stalls add, outages OR. */
    void compose(const FaultEffect &other);
};

/** A deterministic set of fault scenarios for one supervised run. */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Append one scenario. */
    void add(FaultSpec spec);

    /**
     * Deterministic pseudo-random scenario: @p num_faults specs with
     * windows inside [0, horizon_deployments), kinds, targets, and
     * severities all drawn from a seeded Rng. Identical seeds replay
     * identical schedules.
     */
    static FaultSchedule random(uint64_t seed, unsigned num_faults,
                                uint64_t horizon_deployments);

    const std::vector<FaultSpec> &faults() const { return faults_; }
    bool empty() const { return faults_.empty(); }
    std::size_t size() const { return faults_.size(); }

    /** Faults targeting @p side whose windows cover @p clock. */
    std::vector<FaultSpec> activeAt(AcceleratorKind side,
                                    const FaultClock &clock) const;

    /** Composed effect on @p side at @p clock. */
    FaultEffect effectAt(AcceleratorKind side,
                         const FaultClock &clock) const;

    /** False while an AcceleratorUnavailable fault covers @p clock. */
    bool available(AcceleratorKind side, const FaultClock &clock) const;

  private:
    std::vector<FaultSpec> faults_;
};

/** Applies a schedule's active faults to healthy model outputs. */
class FaultInjector
{
  public:
    /** Default-constructed injector models a healthy system. */
    FaultInjector() = default;
    explicit FaultInjector(FaultSchedule schedule);

    const FaultSchedule &schedule() const { return schedule_; }

    /** @see FaultSchedule::available */
    bool available(AcceleratorKind side, const FaultClock &clock) const;

    /**
     * Perturb a healthy modelled @p report in place: throttling
     * stretches the core-clocked components (compute, atomics,
     * scheduling, region/barrier crossings), bandwidth degradation
     * stretches the bandwidth components, stalls add serial seconds,
     * and energy is recharged over the stretched runtime. @return the
     * composed effect that was applied.
     */
    FaultEffect perturb(ExecutionReport &report, AcceleratorKind side,
                        const FaultClock &clock) const;

  private:
    FaultSchedule schedule_;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_FAULT_MODEL_HH
