/**
 * @file
 * Fault-injection layer for the analytical accelerator models.
 * Deterministic, seeded fault scenarios perturb the calibrated
 * PerfModel/MemoryModel/EnergyModel *outputs* — accelerator outage,
 * thermal throttling (a frequency-derate ramp), memory-bandwidth
 * degradation, and transient stalls — so the supervised deployment
 * loop (core/supervisor.hh) can be exercised against unhealthy
 * hardware without touching the models themselves. Every fault active
 * at a given point contributes a multiplicative or additive
 * FaultEffect; effects compose, and the composed effect is applied to
 * a healthy ExecutionReport.
 */

#ifndef HETEROMAP_ARCH_FAULT_MODEL_HH
#define HETEROMAP_ARCH_FAULT_MODEL_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/mconfig.hh"
#include "arch/perf_model.hh"
#include "util/rng.hh"

namespace heteromap {

/** The modelled hardware fault classes. */
enum class FaultKind {
    AcceleratorUnavailable, //!< device lost: nothing can run on it
    ThermalThrottle,        //!< frequency derate, ramping per deployment
    BandwidthDegrade,       //!< memory bandwidth fraction lost
    TransientStall,         //!< additive serial stall (reset, ECC scrub)
};

/** @return e.g. "thermal-throttle". */
const char *faultKindName(FaultKind kind);

/** Point in a supervised run at which fault windows are evaluated. */
struct FaultClock {
    uint64_t deployment = 0; //!< 0-based deployment index
    double seconds = 0.0;    //!< cumulative modelled time (incl. backoff)
};

/**
 * One fault scenario with an activation window. Windows may be
 * expressed in deployment indices ([startDeployment, endDeployment))
 * and/or modelled seconds ([startSeconds, endSeconds)); the fault is
 * active only while every bound holds, so schedules can say "fault at
 * deployment N" or "fault at modelled time T" interchangeably.
 */
struct FaultSpec {
    static constexpr uint64_t kForeverDeployments =
        std::numeric_limits<uint64_t>::max();
    static constexpr double kForeverSeconds =
        std::numeric_limits<double>::infinity();

    FaultKind kind = FaultKind::TransientStall;
    AcceleratorKind target = AcceleratorKind::Gpu;

    uint64_t startDeployment = 0;
    uint64_t endDeployment = kForeverDeployments; //!< exclusive
    double startSeconds = 0.0;
    double endSeconds = kForeverSeconds;          //!< exclusive

    /**
     * Fraction of the affected resource lost at full strength, in
     * [0, 0.95]: frequency for ThermalThrottle, bandwidth for
     * BandwidthDegrade. Ignored by the other kinds.
     */
    double severity = 0.5;

    /** Deployments for ThermalThrottle to ramp to full severity. */
    uint64_t rampDeployments = 0;

    /** Serial seconds added per run by TransientStall. */
    double stallSeconds = 0.0;

    /** @return true when the activation window covers @p clock. */
    bool activeAt(const FaultClock &clock) const;

    /** One-line description for logs and tables. */
    std::string toString() const;
};

/** Composed perturbation applied to a healthy ExecutionReport. */
struct FaultEffect {
    bool unavailable = false;
    double frequencyScale = 1.0; //!< remaining core clock, (0, 1]
    double bandwidthScale = 1.0; //!< remaining memory bandwidth, (0, 1]
    double stallSeconds = 0.0;   //!< additive serial stall

    /** @return true when the effect leaves the report untouched. */
    bool healthy() const;

    /** Fold @p other in: scales multiply, stalls add, outages OR. */
    void compose(const FaultEffect &other);
};

/** A deterministic set of fault scenarios for one supervised run. */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Append one scenario. */
    void add(FaultSpec spec);

    /**
     * Deterministic pseudo-random scenario: @p num_faults specs with
     * windows inside [0, horizon_deployments), kinds, targets, and
     * severities all drawn from a seeded Rng. Identical seeds replay
     * identical schedules.
     */
    static FaultSchedule random(uint64_t seed, unsigned num_faults,
                                uint64_t horizon_deployments);

    const std::vector<FaultSpec> &faults() const { return faults_; }
    bool empty() const { return faults_.empty(); }
    std::size_t size() const { return faults_.size(); }

    /** Faults targeting @p side whose windows cover @p clock. */
    std::vector<FaultSpec> activeAt(AcceleratorKind side,
                                    const FaultClock &clock) const;

    /** Composed effect on @p side at @p clock. */
    FaultEffect effectAt(AcceleratorKind side,
                         const FaultClock &clock) const;

    /** False while an AcceleratorUnavailable fault covers @p clock. */
    bool available(AcceleratorKind side, const FaultClock &clock) const;

  private:
    std::vector<FaultSpec> faults_;
};

/** Applies a schedule's active faults to healthy model outputs. */
class FaultInjector
{
  public:
    /** Default-constructed injector models a healthy system. */
    FaultInjector() = default;
    explicit FaultInjector(FaultSchedule schedule);

    const FaultSchedule &schedule() const { return schedule_; }

    /** @see FaultSchedule::available */
    bool available(AcceleratorKind side, const FaultClock &clock) const;

    /**
     * Perturb a healthy modelled @p report in place: throttling
     * stretches the core-clocked components (compute, atomics,
     * scheduling, region/barrier crossings), bandwidth degradation
     * stretches the bandwidth components, stalls add serial seconds,
     * and energy is recharged over the stretched runtime. @return the
     * composed effect that was applied.
     */
    FaultEffect perturb(ExecutionReport &report, AcceleratorKind side,
                        const FaultClock &clock) const;

  private:
    FaultSchedule schedule_;
};

/* ------------------------------------------------------------------ */
/* Serving-scoped chaos injection                                     */
/* ------------------------------------------------------------------ */

/**
 * Fault points in the serving tier (serve/prediction_service.hh and
 * serve/model_registry.hh) that a ChaosPolicy can arm. Unlike the
 * FaultKind scenarios above — which perturb the *modelled* hardware
 * the supervisor deploys onto — these perturb the serving runtime
 * itself: worker threads, the admission queue, the supervised lane,
 * and the model-persistence path.
 */
enum class ChaosPoint {
    WorkerStall,      //!< a worker sleeps before serving its batch
    WorkerCrashBatch, //!< an exception is thrown mid-batch
    ModelLoadCorrupt, //!< a model stream is bit-flipped before parsing
    AdmissionDelay,   //!< submit() is delayed before queue admission
    SupervisorHang,   //!< the supervised lane stalls under its mutex
};

/** Number of ChaosPoint values (for per-point counters). */
inline constexpr std::size_t kNumChaosPoints = 5;

/** @return e.g. "worker-crash-batch". */
const char *chaosPointName(ChaosPoint point);

/**
 * One armed chaos scenario. The activation window is expressed in
 * per-point visit counts ([startVisit, endVisit), exclusive end):
 * the Nth time the serving code reaches the point, the spec is
 * eligible iff the window covers N, and then fires with
 * @p probability (drawn from the policy's seeded Rng, so identical
 * seeds replay identical fault schedules).
 */
struct ChaosSpec {
    static constexpr uint64_t kForeverVisits =
        std::numeric_limits<uint64_t>::max();

    ChaosPoint point = ChaosPoint::WorkerStall;
    double probability = 1.0;  //!< per-visit fire probability
    double delayMs = 0.0;      //!< stall/hang/delay duration when fired

    /**
     * A lethal WorkerCrashBatch kills the worker thread (its loop
     * exits after failing the batch) instead of only failing the
     * batch — exercising the watchdog's restart path. Ignored by the
     * other points.
     */
    bool lethal = false;

    uint64_t startVisit = 0;
    uint64_t endVisit = kForeverVisits; //!< exclusive

    /** One-line description for logs and tables. */
    std::string toString() const;
};

/** What the serving code should do when a point fires. */
struct ChaosAction {
    ChaosPoint point = ChaosPoint::WorkerStall;
    double delayMs = 0.0;
    bool lethal = false;
};

/** Exception a fired WorkerCrashBatch injects into the batch path. */
class ChaosCrash : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A seeded, schedulable set of serving-tier fault scenarios.
 * Compiled in always; a default-constructed (or disarm()ed) policy
 * is inert and visit() is a cheap armed-flag check, so production
 * paths keep the fire points without paying for them. Thread-safe:
 * the serving workers, the submit path, and the registry all consult
 * one policy concurrently.
 */
class ChaosPolicy
{
  public:
    /** Callback a test can splice into a fire (e.g. to throw). */
    using Hook = std::function<void(const ChaosAction &)>;

    ChaosPolicy() = default;
    explicit ChaosPolicy(uint64_t seed) : rng_(seed) {}

    /** Arm one scenario (thread-safe; may land mid-run). */
    void arm(ChaosSpec spec);

    /** Drop every armed scenario; the policy becomes inert. */
    void disarm();

    /** @return true while any scenario is armed. */
    bool armed() const;

    /**
     * Deterministic pseudo-random schedule: @p num_faults specs with
     * windows inside [0, horizon_visits), points, probabilities, and
     * delays drawn from @p seed. Delays stay <= @p max_delay_ms so
     * soaks bound their stall time. Never draws lethal crashes.
     * (Returned shared — the policy itself is pinned by its mutex
     * and atomics, and consumers hold shared_ptrs anyway.)
     */
    static std::shared_ptr<ChaosPolicy> random(
        uint64_t seed, unsigned num_faults, uint64_t horizon_visits,
        double max_delay_ms = 10.0);

    /**
     * Record one visit of @p point and decide whether a scenario
     * fires. @return the composed action (max delay, OR of lethal)
     * when at least one armed spec fires, nullopt otherwise. The
     * caller applies the action (sleep, throw, corrupt); if a test
     * hook is installed for the point it is invoked here, and
     * anything it throws propagates to the visiting code.
     */
    std::optional<ChaosAction> visit(ChaosPoint point);

    /**
     * Install @p hook to run whenever @p point fires (nullptr
     * clears). Tests use this to inject arbitrary exceptions into
     * the fire site.
     */
    void setHook(ChaosPoint point, Hook hook);

    /** @name Per-point accounting (monotonic). @{ */
    uint64_t visits(ChaosPoint point) const;
    uint64_t fires(ChaosPoint point) const;
    uint64_t totalFires() const;
    /** @} */

  private:
    mutable std::mutex mutex_;
    Rng rng_{0x9e3779b97f4a7c15ULL};

    /**
     * Mirrors !specs_.empty(); written under mutex_, read lock-free
     * so an inert policy costs one relaxed load per visit.
     */
    std::atomic<bool> armed_{false};
    std::vector<ChaosSpec> specs_;
    std::array<uint64_t, kNumChaosPoints> visits_{};
    std::array<uint64_t, kNumChaosPoints> fires_{};
    std::array<Hook, kNumChaosPoints> hooks_{};
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_FAULT_MODEL_HH
