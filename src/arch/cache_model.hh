/**
 * @file
 * First-order cache model. Estimates the miss rate of a phase's
 * memory traffic on a given accelerator, capturing the three effects
 * the paper attributes accelerator wins/losses to:
 *
 *  - capacity: whether the working set fits in the last-level cache
 *    (the Xeon Phi's 32 MB vs the GPUs' 2 MB);
 *  - temporal reuse: denser graphs revisit neighbor data more often,
 *    and coherent caches keep read-write shared data on chip;
 *  - thrashing: more threads shrink the per-thread effective cache.
 */

#ifndef HETEROMAP_ARCH_CACHE_MODEL_HH
#define HETEROMAP_ARCH_CACHE_MODEL_HH

#include "arch/accel_spec.hh"
#include "exec/profile.hh"
#include "graph/props.hh"

namespace heteromap {

/** Tunable constants for the cache model. */
struct CacheModelParams {
    double lineBytes = 64.0;
    /** Reuse ceiling for read-only shared data in any cache. */
    double sharedReadReuse = 0.75;
    /** Extra reuse coherent caches extract from read-write data
     *  (modest: scattered writes also trigger invalidation traffic). */
    double coherentRwReuse = 0.22;
    /** Reuse non-coherent (GPU) memory gets on read-write data. */
    double incoherentRwReuse = 0.1;
    /** Degree at which neighbor-reuse saturates. */
    double reuseSaturationDegree = 32.0;
    /** Threads at which thrashing halves the effective cache. */
    double thrashThreads = 256.0;
};

/**
 * Per-phase cache behaviour estimate. All rates are in [0, 1].
 * DRAM traffic is split by access class because achievable bandwidth
 * differs sharply between streaming (CSR scans) and scattered
 * (per-vertex state) traffic on every accelerator.
 */
struct CacheEstimate {
    double missRate = 1.0;     //!< fraction of traffic missing LLC
    double missBytes = 0.0;    //!< total DRAM traffic for the phase
    double seqMissBytes = 0.0; //!< streaming-class DRAM traffic
    double randMissBytes = 0.0;//!< scattered-class DRAM traffic
    double indirectMissRate = 1.0; //!< miss rate of dependent chases
    double fitFraction = 0.0;  //!< working set captured by the cache
};

/** Estimates phase miss behaviour for one accelerator. */
class CacheModel
{
  public:
    explicit CacheModel(CacheModelParams params = {});

    /**
     * @param spec     Target accelerator.
     * @param phase    Measured phase counters.
     * @param stats    Input graph characteristics (scale: footprint;
     *                 shape: average degree for reuse).
     * @param threads  Concurrently active threads (thrash pressure).
     */
    CacheEstimate estimate(const AcceleratorSpec &spec,
                           const PhaseProfile &phase,
                           const GraphStats &stats,
                           unsigned threads) const;

    /** Algorithm working set for @p stats (CSR + per-vertex state). */
    static double workingSetBytes(const GraphStats &stats);

    /** Streaming (CSR) bytes of the working set. */
    static double csrBytes(const GraphStats &stats);

    /** Hot per-vertex state bytes of the working set. */
    static double vertexStateBytes(const GraphStats &stats);

    const CacheModelParams &params() const { return params_; }

  private:
    CacheModelParams params_;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_CACHE_MODEL_HH
