/**
 * @file
 * MConfig implementation.
 */

#include "arch/mconfig.hh"

#include <cmath>
#include <sstream>

namespace heteromap {

const char *
acceleratorKindName(AcceleratorKind kind)
{
    return kind == AcceleratorKind::Gpu ? "gpu" : "multicore";
}

std::string
MConfig::toString() const
{
    std::ostringstream oss;
    oss << acceleratorKindName(accelerator);
    if (accelerator == AcceleratorKind::Gpu) {
        oss << " global=" << gpuGlobalThreads
            << " local=" << gpuLocalThreads;
    } else {
        oss << " cores=" << cores << " tpc=" << threadsPerCore
            << " simd=" << simdWidth
            << " sched=" << schedulePolicyName(schedule)
            << " chunk=" << chunkSize
            << " place=" << placementSpread
            << " affin=" << affinityMovable
            << " blocktime=" << blocktimeMs << "ms";
    }
    return oss.str();
}

namespace {

/** Snap a [0, 1] continuous knob to one of four levels. */
int
level4(double x)
{
    if (x < 0.25)
        return 0;
    if (x < 0.5)
        return 1;
    if (x < 0.75)
        return 2;
    return 3;
}

/** Coarse log2 level for a thread-like count. */
int
logLevel(unsigned v)
{
    return v == 0 ? 0 : static_cast<int>(std::lround(std::log2(v)));
}

} // namespace

std::array<int, 12>
MConfig::choiceVector() const
{
    std::array<int, 12> out{};
    out[0] = accelerator == AcceleratorKind::Gpu ? 0 : 1;
    if (accelerator == AcceleratorKind::Gpu) {
        out[1] = logLevel(gpuGlobalThreads);
        out[2] = logLevel(gpuLocalThreads);
        return out;
    }
    out[3] = logLevel(cores);
    out[4] = logLevel(threadsPerCore);
    out[5] = level4(placementSpread);
    out[6] = level4(affinityMovable);
    out[7] = static_cast<int>(schedule);
    out[8] = logLevel(simdWidth);
    out[9] = logLevel(chunkSize);
    out[10] = level4(blocktimeMs / 1000.0);
    out[11] = (nestedParallelism ? 1 : 0) | (activeWaitPolicy ? 2 : 0) |
              (procBindClose ? 4 : 0) | (dynamicTeams ? 8 : 0);
    return out;
}

} // namespace heteromap
