/**
 * @file
 * Accelerator hardware description (Table II plus the model-relevant
 * microarchitectural constants). The four paper accelerators are
 * provided as presets in arch/presets.hh; users can describe their own
 * hardware by filling this struct.
 */

#ifndef HETEROMAP_ARCH_ACCEL_SPEC_HH
#define HETEROMAP_ARCH_ACCEL_SPEC_HH

#include <cstdint>
#include <string>

#include "arch/mconfig.hh"

namespace heteromap {

/**
 * Static description of one accelerator. "Cores" means physical cores
 * for a multicore and streaming multiprocessors for a GPU; GPU lane
 * counts are expressed through simdWidth (warp lanes per SM issue).
 */
struct AcceleratorSpec {
    std::string name;
    AcceleratorKind kind = AcceleratorKind::Multicore;

    unsigned cores = 1;             //!< physical cores / SMs
    unsigned threadsPerCore = 1;    //!< hardware thread contexts per core
    unsigned simdWidth = 1;         //!< SIMD lanes (multicore) / warp (GPU)
    double freqGHz = 1.0;

    /**
     * Sustained instruction throughput per core per cycle on scalar
     * irregular code (SIMD handled separately): ~1-2 for in-order
     * cores, ~3 for wide OoO cores, lanes-per-SM for GPUs.
     */
    double issueIpc = 1.0;

    uint64_t cacheBytes = 0;        //!< last-level cache capacity
    bool coherentCache = false;     //!< hardware cache coherence
    uint64_t memBytes = 0;          //!< configured main memory
    uint64_t maxMemBytes = 0;       //!< largest supported memory
    double memBandwidthGBs = 0.0;
    double memLatencyNs = 100.0;

    /**
     * Outstanding DRAM misses one hardware thread sustains: ~8 for a
     * wide OoO core, ~1.5 for an in-order core, ~0.5 per GPU thread
     * (a warp's lanes coalesce into a handful of lines).
     */
    double mlpPerThread = 4.0;

    /** Chip-wide cap on outstanding misses (MSHR/queue depth). */
    double maxOutstandingMisses = 512.0;

    /**
     * Achievable fraction of peak bandwidth on sequential/streaming
     * access (CSR scans). GPUs coalesce close to peak; the Xeon Phi
     * needs vector loads it cannot issue from scalar graph code.
     */
    double seqBwFraction = 0.6;

    /**
     * Achievable fraction of peak bandwidth on scattered word-granule
     * access (distance arrays, atomics). This is where GDDR+coalescing
     * beats the Phi's ring by a wide margin.
     */
    double randBwFraction = 0.2;

    /**
     * Multiplier on both bandwidth fractions when the code is purely
     * scalar. The Xeon Phi's memory system needs 512-bit vector
     * loads/gathers to approach its rating (~0.25); OoO CPUs prefetch
     * well even from scalar loops (~0.85); GPUs coalesce regardless
     * (1.0). Vectorized phases interpolate toward the full fraction.
     */
    double scalarBwPenalty = 1.0;

    double spTflops = 0.0;          //!< single-precision peak
    double dpTflops = 0.0;          //!< double-precision peak

    double tdpWatts = 100.0;        //!< board/package power rating
    double idleWatts = 10.0;

    // --- Synchronization microbenchmarks (modelled costs) ---
    double atomicNs = 20.0;         //!< uncontended atomic RMW
    double barrierBaseNs = 500.0;   //!< barrier latency floor
    double schedEventNs = 80.0;     //!< dynamic-schedule dequeue cost

    /** Maximum concurrently schedulable threads. */
    unsigned
    maxThreads() const
    {
        return cores * threadsPerCore *
               (kind == AcceleratorKind::Gpu ? simdWidth : 1);
    }

    /** GPU work-group size ceiling (CL_KERNEL_WORK_GROUP_SIZE). */
    unsigned maxLocalThreads = 1;

    /** GPU global work size ceiling for M19 scaling. */
    unsigned maxGlobalThreads = 1;

    /** Peak ops/second for a @p fp_fraction mix of FP and int work. */
    double opsPerSecond(double fp_fraction) const;

    /** One-line description. */
    std::string toString() const;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_ACCEL_SPEC_HH
