/**
 * @file
 * Energy and core-utilization models (Sec. VII-C). Power scales from
 * idle to the board rating with the fraction of the chip that is
 * active and how busy it is; energy is power times modelled time.
 */

#ifndef HETEROMAP_ARCH_ENERGY_MODEL_HH
#define HETEROMAP_ARCH_ENERGY_MODEL_HH

#include "arch/accel_spec.hh"
#include "arch/mconfig.hh"

namespace heteromap {

/** Tunable constants for the energy model. */
struct EnergyModelParams {
    /** Power floor an active-but-stalled core draws vs a busy one. */
    double stallPowerFraction = 0.45;
    /** Extra power for an active wait policy during stalls. */
    double spinPowerFraction = 0.25;
};

/** Computes power/energy from a modelled execution. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyModelParams params = {});

    /**
     * Average power draw.
     *
     * @param spec        Target accelerator.
     * @param config      Deployed machine choices (active fraction).
     * @param utilization Pipeline-busy fraction in [0, 1] (Fig. 13).
     */
    double averageWatts(const AcceleratorSpec &spec, const MConfig &config,
                        double utilization) const;

    /** Energy in joules for @p seconds of modelled time. */
    double joules(const AcceleratorSpec &spec, const MConfig &config,
                  double utilization, double seconds) const;

    const EnergyModelParams &params() const { return params_; }

  private:
    EnergyModelParams params_;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_ENERGY_MODEL_HH
