/**
 * @file
 * Memory-size model implementation.
 */

#include "arch/memory_size_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace heteromap {

MemorySizeModel::MemorySizeModel(MemorySizeParams params) : params_(params)
{
}

double
MemorySizeModel::footprintBytes(const GraphStats &stats) const
{
    return static_cast<double>(stats.numVertices) *
               params_.vertexStateBytes +
           static_cast<double>(stats.numEdges) * params_.edgeBytes;
}

MemorySizeEffect
MemorySizeModel::effect(const GraphStats &stats, uint64_t mem_bytes,
                        uint64_t iterations) const
{
    HM_ASSERT(mem_bytes > 0, "memory size must be positive");
    MemorySizeEffect out;

    const double footprint = footprintBytes(stats);
    const double chunks =
        std::ceil(footprint / static_cast<double>(mem_bytes));
    out.chunks = static_cast<unsigned>(std::max(1.0, chunks));
    if (out.chunks == 1)
        return out;

    // Each extra chunk costs a streaming pass; iterative algorithms
    // additionally converge slower because chunk-local updates only
    // propagate across chunk boundaries between passes.
    const double extra = static_cast<double>(out.chunks - 1);
    const double iter_scale =
        1.0 + params_.convergencePenalty *
                  std::log2(1.0 + static_cast<double>(iterations));
    out.slowdown = 1.0 + params_.chunkPassPenalty * extra * iter_scale;
    return out;
}

} // namespace heteromap
