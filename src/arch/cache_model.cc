/**
 * @file
 * Cache model implementation.
 */

#include "arch/cache_model.hh"

#include <algorithm>
#include <cmath>

namespace heteromap {

CacheModel::CacheModel(CacheModelParams params) : params_(params)
{
}

double
CacheModel::workingSetBytes(const GraphStats &stats)
{
    return csrBytes(stats) + vertexStateBytes(stats);
}

double
CacheModel::csrBytes(const GraphStats &stats)
{
    // Offsets + neighbors + weights.
    return static_cast<double>(stats.numVertices) * 8.0 +
           static_cast<double>(stats.numEdges) * (4.0 + 4.0);
}

double
CacheModel::vertexStateBytes(const GraphStats &stats)
{
    // Hot per-vertex state (labels, levels, one distance word).
    return static_cast<double>(stats.numVertices) * 8.0;
}

CacheEstimate
CacheModel::estimate(const AcceleratorSpec &spec, const PhaseProfile &phase,
                     const GraphStats &stats, unsigned threads) const
{
    CacheEstimate out;

    // Thrashing: concurrent threads partition the cache; the effective
    // capacity shrinks smoothly as thread count grows.
    const double thrash =
        params_.thrashThreads /
        (params_.thrashThreads + static_cast<double>(threads));
    const double effective_cache =
        static_cast<double>(spec.cacheBytes) * (0.5 + 0.5 * thrash);

    // The CSR arrays stream; per-vertex state is revisited constantly.
    // A large multicore cache holds the *state* resident even when the
    // graph itself cannot fit — the mechanism behind the paper's
    // "multicores cache shared data" wins. Split the capacity between
    // the two classes proportionally to how hot they are.
    const double ws_ro = std::max(1.0, csrBytes(stats));
    const double ws_rw = std::max(1.0, vertexStateBytes(stats));
    const double fit_ro =
        std::min(1.0, 0.3 * effective_cache / ws_ro);
    const double fit_rw =
        std::min(1.0, 0.7 * effective_cache / ws_rw);
    out.fitFraction = std::min(1.0, effective_cache / (ws_ro + ws_rw));

    // Temporal reuse beyond capacity: denser graphs revisit vertex
    // state from many incident edges before eviction.
    const double degree_reuse =
        stats.avgDegree /
        (stats.avgDegree + params_.reuseSaturationDegree);

    const double total_bytes = phase.totalBytes();
    if (total_bytes <= 0.0) {
        out.missRate = 0.0;
        return out;
    }

    // Classify traffic and apply class-specific reuse ceilings.
    const double ro = phase.sharedReadBytes;
    const double rw = phase.sharedWriteBytes;
    const double local = phase.localBytes;

    const double ro_hit =
        std::min(1.0, fit_ro + (1.0 - fit_ro) *
                                   params_.sharedReadReuse *
                                   degree_reuse);
    const double rw_reuse = spec.coherentCache
                                ? params_.coherentRwReuse
                                : params_.incoherentRwReuse;
    const double rw_hit =
        std::min(1.0, fit_rw + (1.0 - fit_rw) * rw_reuse);
    // Thread-local data lives in registers / L1 and nearly always hits.
    const double local_hit = 0.95;

    // Indirect addressing defeats spatial locality: scale the hit rate
    // of the load-bearing classes down by the indirect share.
    const double accesses = std::max(1.0, phase.totalAccesses());
    const double indirect_share = phase.indirectAccesses / accesses;
    const double indirect_scale =
        1.0 - indirect_share * (spec.coherentCache ? 0.35 : 0.7);

    // Read-only shared data (the CSR arrays) streams sequentially;
    // read-write shared and local spill traffic scatters.
    const double ro_eff_hit =
        std::clamp(ro_hit * indirect_scale, 0.0, 1.0);
    const double rw_eff_hit =
        std::clamp(rw_hit * indirect_scale, 0.0, 1.0);
    out.seqMissBytes = ro * (1.0 - ro_eff_hit);
    out.randMissBytes =
        rw * (1.0 - rw_eff_hit) + local * (1.0 - local_hit);
    out.missBytes = out.seqMissBytes + out.randMissBytes;
    out.missRate = std::clamp(out.missBytes / total_bytes, 0.0, 1.0);

    // Dependent (indirect) chases land in the per-vertex state class.
    out.indirectMissRate = 1.0 - rw_eff_hit;
    return out;
}

} // namespace heteromap
