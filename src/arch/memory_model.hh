/**
 * @file
 * DRAM timing model: a bandwidth component for bulk miss traffic and a
 * latency component for dependent (indirect) accesses, with latency
 * hiding from hardware thread concurrency — the mechanism that lets
 * GPUs tolerate low-locality graph accesses when the frontier is wide,
 * and starves them when it is narrow.
 */

#ifndef HETEROMAP_ARCH_MEMORY_MODEL_HH
#define HETEROMAP_ARCH_MEMORY_MODEL_HH

#include "arch/accel_spec.hh"
#include "arch/cache_model.hh"
#include "exec/profile.hh"

namespace heteromap {

/** Tunable constants for the DRAM model. Per-device MLP limits live
 *  on AcceleratorSpec (mlpPerThread, maxOutstandingMisses). */
struct MemoryModelParams {
    /** Fraction of peak bandwidth reachable by @p t threads:
     *  t / (t + bandwidthSaturationThreads). */
    double bandwidthSaturationThreads = 48.0;
};

/** Timing breakdown for one phase's memory behaviour. */
struct MemoryTime {
    double bandwidthSeconds = 0.0;
    double latencySeconds = 0.0;
};

/** Estimates memory time for a phase on one accelerator. */
class MemoryModel
{
  public:
    explicit MemoryModel(MemoryModelParams params = {});

    /**
     * @param spec         Target accelerator.
     * @param phase        Measured counters.
     * @param cache        Output of CacheModel::estimate.
     * @param threads      Effective concurrent threads.
     * @param vector_share Fraction of the phase's work issued as
     *                     vector operations (0 for GPUs); lifts a
     *                     multicore's achievable bandwidth toward its
     *                     rated fraction (see scalarBwPenalty).
     */
    MemoryTime estimate(const AcceleratorSpec &spec,
                        const PhaseProfile &phase,
                        const CacheEstimate &cache,
                        double threads,
                        double vector_share = 0.0) const;

    const MemoryModelParams &params() const { return params_; }

  private:
    MemoryModelParams params_;
};

} // namespace heteromap

#endif // HETEROMAP_ARCH_MEMORY_MODEL_HH
