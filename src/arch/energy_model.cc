/**
 * @file
 * Energy model implementation.
 */

#include "arch/energy_model.hh"

#include <algorithm>

namespace heteromap {

EnergyModel::EnergyModel(EnergyModelParams params) : params_(params)
{
}

double
EnergyModel::averageWatts(const AcceleratorSpec &spec,
                          const MConfig &config, double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);

    double active_fraction = 1.0;
    if (spec.kind == AcceleratorKind::Multicore) {
        active_fraction = std::clamp(
            static_cast<double>(config.cores) /
                std::max(1u, spec.cores), 0.0, 1.0);
    } else {
        // SMs power on at warp granularity: a handful of warps per
        // SM lights up the whole chip.
        const double full_chip = static_cast<double>(spec.cores) *
                                 spec.simdWidth * 8.0;
        active_fraction = std::clamp(
            static_cast<double>(config.gpuGlobalThreads) / full_chip,
            0.0, 1.0);
        active_fraction = std::max(active_fraction, 0.25);
    }

    double busy = utilization +
                  (1.0 - utilization) * params_.stallPowerFraction;
    if (spec.kind == AcceleratorKind::Multicore &&
        (config.activeWaitPolicy || config.spinCount > 100000)) {
        busy = std::min(1.0, busy + (1.0 - utilization) *
                                        params_.spinPowerFraction);
    }

    const double dynamic_range = spec.tdpWatts - spec.idleWatts;
    return spec.idleWatts + dynamic_range * active_fraction * busy;
}

double
EnergyModel::joules(const AcceleratorSpec &spec, const MConfig &config,
                    double utilization, double seconds) const
{
    return averageWatts(spec, config, utilization) * seconds;
}

} // namespace heteromap
