/**
 * @file
 * Memory model implementation.
 */

#include "arch/memory_model.hh"

#include <algorithm>

namespace heteromap {

MemoryModel::MemoryModel(MemoryModelParams params) : params_(params)
{
}

MemoryTime
MemoryModel::estimate(const AcceleratorSpec &spec, const PhaseProfile &phase,
                      const CacheEstimate &cache, double threads,
                      double vector_share) const
{
    MemoryTime out;
    threads = std::max(1.0, threads);
    vector_share = std::clamp(vector_share, 0.0, 1.0);

    // Bulk bandwidth term: DRAM traffic at the fraction of peak
    // bandwidth this many threads can generate, split by access
    // class — streaming traffic runs near the spec's sequential
    // fraction, scattered word-granule traffic far below it. Scalar
    // code further derates a multicore's achievable bandwidth.
    const double scalar_derate =
        spec.scalarBwPenalty +
        (1.0 - spec.scalarBwPenalty) * vector_share;
    const double bw_frac =
        threads / (threads + params_.bandwidthSaturationThreads);
    const double peak = spec.memBandwidthGBs * 1e9 * scalar_derate;
    const double seq_bw =
        std::max(1.0, peak * spec.seqBwFraction * bw_frac);
    const double rand_bw =
        std::max(1.0, peak * spec.randBwFraction * bw_frac);
    out.bandwidthSeconds = cache.seqMissBytes / seq_bw +
                           cache.randMissBytes / rand_bw;

    // Dependent-access term: indirect accesses that miss serialize on
    // DRAM latency; concurrent threads overlap them up to the MSHR cap.
    const double indirect_misses =
        phase.indirectAccesses * cache.indirectMissRate;
    if (indirect_misses > 0.0) {
        double mlp = std::clamp(threads * spec.mlpPerThread, 1.0,
                                spec.maxOutstandingMisses);
        out.latencySeconds =
            indirect_misses * spec.memLatencyNs * 1e-9 / mlp;
    }
    return out;
}

} // namespace heteromap
