/**
 * @file
 * Exhaustive grid search over an MSearchSpace — the "ideal"
 * configuration finder the paper compares HeteroMap against
 * ("manually optimizes by running all possible configurations").
 */

#ifndef HETEROMAP_TUNER_GRID_SEARCH_HH
#define HETEROMAP_TUNER_GRID_SEARCH_HH

#include "tuner/search_space.hh"

namespace heteromap {

/** Evaluate every grid candidate; return the objective minimizer. */
TuneResult gridSearch(const MSearchSpace &space,
                      const TuneObjective &objective);

} // namespace heteromap

#endif // HETEROMAP_TUNER_GRID_SEARCH_HH
