/**
 * @file
 * Exhaustive grid search over an MSearchSpace — the "ideal"
 * configuration finder the paper compares HeteroMap against
 * ("manually optimizes by running all possible configurations").
 * The candidate-list overloads let callers enumerate the grid once
 * and share the (read-only) list across several passes — the
 * training sweep's per-side tunes and its parallel workers.
 */

#ifndef HETEROMAP_TUNER_GRID_SEARCH_HH
#define HETEROMAP_TUNER_GRID_SEARCH_HH

#include "tuner/search_space.hh"

namespace heteromap {

/** Evaluate every grid candidate; return the objective minimizer. */
TuneResult gridSearch(const MSearchSpace &space,
                      const TuneObjective &objective);

/** Same, over a pre-enumerated candidate list. */
TuneResult gridSearch(const std::vector<MConfig> &candidates,
                      const TuneObjective &objective);

/** Minimizer among candidates on one accelerator side only. */
TuneResult gridSearchSide(const std::vector<MConfig> &candidates,
                          const TuneObjective &objective,
                          AcceleratorKind side);

} // namespace heteromap

#endif // HETEROMAP_TUNER_GRID_SEARCH_HH
